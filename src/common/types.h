/**
 * @file
 * Fundamental types shared by every mcdsm subsystem.
 */

#ifndef MCDSM_COMMON_TYPES_H
#define MCDSM_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace mcdsm {

/** Virtual (simulated) time in nanoseconds. */
using Time = std::int64_t;

/** Convenience literals for simulated time. */
constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * 1000;
constexpr Time kSecond = 1000LL * 1000 * 1000;

/**
 * A global shared-memory address: a byte offset into the DSM shared
 * segment. The segment starts at offset 0 and is page aligned.
 */
using GAddr = std::uint64_t;

/** Page number within the shared segment. */
using PageNum = std::uint32_t;

/** Virtual-memory page size: 8 KB, as on Digital Unix (paper §4). */
constexpr std::size_t kPageShift = 13;
constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;
constexpr std::uint64_t kPageMask = kPageSize - 1;

/** Cache line size: 64 bytes (paper §4). */
constexpr std::size_t kCacheLineSize = 64;

inline constexpr PageNum
pageOf(GAddr a)
{
    return static_cast<PageNum>(a >> kPageShift);
}

inline constexpr std::size_t
pageOffset(GAddr a)
{
    return static_cast<std::size_t>(a & kPageMask);
}

/** Identifier of a simulated processor (0 .. P-1). */
using ProcId = int;
/** Identifier of a simulated SMP node (0 .. N-1). */
using NodeId = int;

constexpr ProcId kNoProc = -1;
constexpr NodeId kNoNode = -1;

} // namespace mcdsm

#endif // MCDSM_COMMON_TYPES_H
