/**
 * @file
 * Cost model for the simulated AlphaServer 2100 4/233 cluster.
 *
 * Every constant in this file comes from the paper's section 3 and 4.1
 * (measured basic operation costs) or from published specifications of
 * the 21064A / AlphaServer 2100 / first-generation Memory Channel.
 * Where the supplied paper text was garbled, the chosen value and its
 * rationale are noted next to the field; EXPERIMENTS.md discusses the
 * sensitivity of each experiment to these values.
 */

#ifndef MCDSM_COMMON_COSTS_H
#define MCDSM_COMMON_COSTS_H

#include "common/types.h"

namespace mcdsm {

/**
 * Measured and derived machine costs. All times in nanoseconds of
 * simulated time, all bandwidths in bytes per nanosecond (== GB/s).
 */
struct CostModel
{
    // ---- processor -----------------------------------------------------
    /** 233 MHz 21064A; dual issue, we charge ~one cycle per simple op. */
    Time cycle = 4; // 4.29 ns truncated; computeOps uses cyclesPerOp
    double nsPerOp = 4.29;

    // ---- cache hierarchy (21064A + AlphaServer board cache) -------------
    Time l1HitTime = 4;       ///< ~1 cycle per load/store that hits L1
    Time l2HitTime = 60;      ///< first-level miss, board-cache hit
    Time memTime = 400;       ///< board-cache miss to local memory

    // ---- virtual memory (paper 4.1) -------------------------------------
    Time mprotect = 62 * kMicrosecond;  ///< "memory protection ops ~62us"
    Time pageFault = 9 * kMicrosecond;  ///< "page faults cost 9us" (trap
                                        ///< + dispatch only; VM changes
                                        ///< are charged via mprotect)

    // ---- signals / interrupts (paper 4.1) --------------------------------
    Time localSignal = 69 * kMicrosecond;   ///< deliver a signal locally
    Time remoteSignalSend = 5 * kMicrosecond; ///< sender cost of imc_kill
    Time remoteSignalLatency = 1 * kMillisecond; ///< end-to-end imc_kill

    // ---- Memory Channel (paper 3.1) --------------------------------------
    Time mcLatency = 5200;    ///< 5.2 us process-to-process write latency
    double mcLinkBw = 0.030;  ///< ~30 MB/s per link (32-bit PCI limit)
    double mcAggBw = 0.032;   ///< ~32 MB/s aggregate (early driver limit)
    Time mcPerWriteCpu = 10;  ///< CPU cost of issuing one doubled/MC
                              ///< write: 3-4 dual-issued instructions
                              ///< of address arithmetic plus the store
                              ///< (write-buffered, no stall)

    // ---- RDMA-verbs network (net/rdma.h) ----------------------------------
    // A modern-interconnect counterpoint to Memory Channel, sized
    // after user-level verbs on early InfiniBand-class hardware: ~1 us
    // one-way latency, ~GB/s links, NIC-resident atomics. Not from
    // the paper; EXPERIMENTS.md "Network eras" discusses sensitivity.
    Time rdmaLatency = 900;     ///< one-way NIC-to-NIC propagation
    double rdmaLinkBw = 1.2;    ///< per-port bandwidth (B/ns == GB/s)
    double rdmaAggBw = 9.6;     ///< switch aggregate bandwidth
    Time rdmaPerVerbCpu = 150;  ///< post one WQE + reap its CQE
    Time rdmaDoorbellCost = 450; ///< per-doorbell MMIO write (amortised
                                 ///< across a batched op region)
    Time rdmaNicAtomic = 250;   ///< CAS/FAA processing at the target NIC

    // ---- intra-node (SMP shared memory) -----------------------------------
    Time smpMessageLatency = 1 * kMicrosecond; ///< message buffer in
                                               ///< ordinary shared memory
    double busBw = 0.100;     ///< local copy bandwidth ~100 MB/s

    // ---- locks / directory (paper 4.1) ------------------------------------
    Time mcLockUncontended = 11 * kMicrosecond; ///< MC array lock acq+rel
    Time dirModify = 5 * kMicrosecond;   ///< directory entry update
    Time dirModifyLocked = 16 * kMicrosecond; ///< update incl. entry lock
    Time dirScan = 2 * kMicrosecond;     ///< read all 8 words of an entry

    // ---- TreadMarks protocol operations (paper 4.1) ------------------------
    Time twinCost = 362 * kMicrosecond;  ///< twin an 8K page
    Time diffCreateMin = 289 * kMicrosecond; ///< empty diff of an 8K page
    Time diffCreateMax = 533 * kMicrosecond; ///< full-page diff
    Time diffApplyBase = 20 * kMicrosecond;  ///< fixed cost to apply a diff
    double diffApplyPerByte = 15.0;      ///< ns per modified byte applied
    Time tmkPerInterval = 1 * kMicrosecond;  ///< (de)serialise one interval
    Time tmkPerNotice = 300;                 ///< handle one write notice

    // ---- message handling ---------------------------------------------------
    Time handlerDispatch = 10 * kMicrosecond; ///< enter/exit a request
                                              ///< handler (poll/pp paths)
    Time udpPerMessage = 80 * kMicrosecond;   ///< kernel UDP send or
                                              ///< receive CPU cost
    Time mcPerMessage = 8 * kMicrosecond;     ///< user-level MC message
                                              ///< buffer send/receive cost
    Time pollCheck = 5 * static_cast<Time>(4.29); ///< ~5 instructions per
                                                  ///< loop-top poll

    /** Cost to create a diff covering @p bytes modified bytes. */
    Time
    diffCreate(std::size_t bytes) const
    {
        double frac = static_cast<double>(bytes) /
                      static_cast<double>(kPageSize);
        if (frac > 1.0)
            frac = 1.0;
        return diffCreateMin +
               static_cast<Time>(frac * (diffCreateMax - diffCreateMin));
    }

    /** Cost to apply a diff carrying @p bytes of modified data. */
    Time
    diffApply(std::size_t bytes) const
    {
        return diffApplyBase +
               static_cast<Time>(diffApplyPerByte *
                                 static_cast<double>(bytes));
    }
};

} // namespace mcdsm

#endif // MCDSM_COMMON_COSTS_H
