/**
 * @file
 * Intrusive reference-counted pointer with a plain (non-atomic)
 * counter.
 *
 * Simulations are thread-confined: one experiment runs wholly on one
 * worker thread, and nothing reference-counted ever crosses an
 * experiment boundary. std::shared_ptr pays two atomic RMWs per
 * copy/destroy anyway, which shows up hard in protocols that fan
 * consistency records out to every processor — a TreadMarks barrier
 * at P processors copies O(P^2) record pointers, and at P >= 256 the
 * refcount traffic alone was a measurable slice of host time.
 *
 * Exception: the intra-simulation parallel engine (--sim-threads)
 * spreads ONE simulation over several host threads, and TreadMarks
 * interval/diff records travel between processors by pointer. The
 * first such run flips a sticky process-wide flag
 * (RcCounted::enableAtomicMode()) that switches inc/dec to atomic
 * RMWs. The flag is one relaxed load on the hot path; plain
 * single-thread batches that never start an engine keep the cheap
 * non-atomic arithmetic.
 */

#ifndef MCDSM_COMMON_RC_PTR_H
#define MCDSM_COMMON_RC_PTR_H

#include <atomic>
#include <cstdint>
#include <utility>

namespace mcdsm {

/** Base class providing the intrusive count. */
class RcCounted
{
  public:
    RcCounted() = default;
    // The count tracks handles to *this object*, not its value; it
    // never copies along with the payload.
    RcCounted(const RcCounted&) {}
    RcCounted& operator=(const RcCounted&) { return *this; }

    /**
     * Switch every RcPtr in the process to atomic refcounting,
     * permanently. Sticky by design: objects created before the flip
     * may still be alive, and a mixed-mode object must never see a
     * non-atomic update once engine threads can touch it. Safe
     * because experiments never share refcounted objects, so an
     * object's updates are either all pre-flip (single-threaded) or
     * all post-flip (atomic).
     */
    static void
    enableAtomicMode()
    {
        atomic_mode_.store(true, std::memory_order_relaxed);
    }

    static bool
    atomicMode()
    {
        return atomic_mode_.load(std::memory_order_relaxed);
    }

  private:
    template <typename T> friend class RcPtr;
    mutable std::atomic<std::uint32_t> rc_{0};
    inline static std::atomic<bool> atomic_mode_{false};
};

/**
 * Handle to an RcCounted object. Models the subset of shared_ptr the
 * simulator uses: copy/move, dereference, get(), bool.
 */
template <typename T> class RcPtr
{
  public:
    RcPtr() = default;
    RcPtr(std::nullptr_t) {}

    /** Adopt @p p (typically fresh from `new`). */
    explicit RcPtr(T* p) : p_(p) { inc(); }

    RcPtr(const RcPtr& o) : p_(o.p_) { inc(); }
    RcPtr(RcPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

    /** Converting copy (e.g. RcPtr<Rec> -> RcPtr<const Rec>). */
    template <typename U>
    RcPtr(const RcPtr<U>& o) : p_(o.get())
    {
        inc();
    }

    /** Converting move. */
    template <typename U>
    RcPtr(RcPtr<U>&& o) noexcept : p_(o.p_)
    {
        o.p_ = nullptr;
    }

    RcPtr&
    operator=(const RcPtr& o)
    {
        RcPtr tmp(o);
        swap(tmp);
        return *this;
    }

    RcPtr&
    operator=(RcPtr&& o) noexcept
    {
        swap(o);
        return *this;
    }

    ~RcPtr() { dec(); }

    void
    swap(RcPtr& o) noexcept
    {
        T* t = p_;
        p_ = o.p_;
        o.p_ = t;
    }

    T* get() const { return p_; }
    T& operator*() const { return *p_; }
    T* operator->() const { return p_; }
    explicit operator bool() const { return p_ != nullptr; }

    friend bool
    operator==(const RcPtr& a, const RcPtr& b)
    {
        return a.p_ == b.p_;
    }

  private:
    void
    inc() const
    {
        if (p_ == nullptr)
            return;
        auto& rc = p_->rc_;
        if (RcCounted::atomicMode())
            rc.fetch_add(1, std::memory_order_relaxed);
        else
            rc.store(rc.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    }

    void
    dec() const
    {
        T* p = p_;
        if (p == nullptr)
            return;
        auto& rc = p->rc_;
        if (RcCounted::atomicMode()) {
            // acq_rel so the deleting thread observes every write made
            // under references the other threads just dropped.
            if (rc.fetch_sub(1, std::memory_order_acq_rel) == 1)
                delete p;
        } else {
            const std::uint32_t n =
                rc.load(std::memory_order_relaxed) - 1;
            rc.store(n, std::memory_order_relaxed);
            if (n == 0)
                delete p;
        }
    }

    template <typename U> friend class RcPtr;

    T* p_ = nullptr;
};

/** make_shared analogue. */
template <typename T, typename... Args>
RcPtr<T>
makeRc(Args&&... args)
{
    return RcPtr<T>(new T(std::forward<Args>(args)...));
}

} // namespace mcdsm

#endif // MCDSM_COMMON_RC_PTR_H
