/**
 * @file
 * Intrusive reference-counted pointer with a plain (non-atomic)
 * counter.
 *
 * Simulations are thread-confined: one experiment runs wholly on one
 * worker thread, and nothing reference-counted ever crosses an
 * experiment boundary. std::shared_ptr pays two atomic RMWs per
 * copy/destroy anyway, which shows up hard in protocols that fan
 * consistency records out to every processor — a TreadMarks barrier
 * at P processors copies O(P^2) record pointers, and at P >= 256 the
 * refcount traffic alone was a measurable slice of host time.
 */

#ifndef MCDSM_COMMON_RC_PTR_H
#define MCDSM_COMMON_RC_PTR_H

#include <cstdint>
#include <utility>

namespace mcdsm {

/** Base class providing the intrusive count. */
class RcCounted
{
  public:
    RcCounted() = default;
    // The count tracks handles to *this object*, not its value; it
    // never copies along with the payload.
    RcCounted(const RcCounted&) {}
    RcCounted& operator=(const RcCounted&) { return *this; }

  private:
    template <typename T> friend class RcPtr;
    mutable std::uint32_t rc_ = 0;
};

/**
 * Handle to an RcCounted object. Models the subset of shared_ptr the
 * simulator uses: copy/move, dereference, get(), bool.
 */
template <typename T> class RcPtr
{
  public:
    RcPtr() = default;
    RcPtr(std::nullptr_t) {}

    /** Adopt @p p (typically fresh from `new`). */
    explicit RcPtr(T* p) : p_(p) { inc(); }

    RcPtr(const RcPtr& o) : p_(o.p_) { inc(); }
    RcPtr(RcPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

    /** Converting copy (e.g. RcPtr<Rec> -> RcPtr<const Rec>). */
    template <typename U>
    RcPtr(const RcPtr<U>& o) : p_(o.get())
    {
        inc();
    }

    /** Converting move. */
    template <typename U>
    RcPtr(RcPtr<U>&& o) noexcept : p_(o.p_)
    {
        o.p_ = nullptr;
    }

    RcPtr&
    operator=(const RcPtr& o)
    {
        RcPtr tmp(o);
        swap(tmp);
        return *this;
    }

    RcPtr&
    operator=(RcPtr&& o) noexcept
    {
        swap(o);
        return *this;
    }

    ~RcPtr() { dec(); }

    void
    swap(RcPtr& o) noexcept
    {
        T* t = p_;
        p_ = o.p_;
        o.p_ = t;
    }

    T* get() const { return p_; }
    T& operator*() const { return *p_; }
    T* operator->() const { return p_; }
    explicit operator bool() const { return p_ != nullptr; }

    friend bool
    operator==(const RcPtr& a, const RcPtr& b)
    {
        return a.p_ == b.p_;
    }

  private:
    void
    inc() const
    {
        if (p_ != nullptr)
            p_->rc_ += 1;
    }

    void
    dec() const
    {
        T* p = p_;
        if (p != nullptr && --p->rc_ == 0)
            delete p;
    }

    template <typename U> friend class RcPtr;

    T* p_ = nullptr;
};

/** make_shared analogue. */
template <typename T, typename... Args>
RcPtr<T>
makeRc(Args&&... args)
{
    return RcPtr<T>(new T(std::forward<Args>(args)...));
}

} // namespace mcdsm

#endif // MCDSM_COMMON_RC_PTR_H
