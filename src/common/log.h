/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in mcdsm itself);
 *            aborts so a debugger or core dump can capture the state.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — status messages.
 */

#ifndef MCDSM_COMMON_LOG_H
#define MCDSM_COMMON_LOG_H

#include <cstdarg>
#include <string>

namespace mcdsm {

[[noreturn]] void panicImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char* fmt, va_list ap);
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void assertFail(const char* file, int line, const char* cond,
                             const std::string& msg);

} // namespace mcdsm

#define mcdsm_panic(...) ::mcdsm::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define mcdsm_fatal(...) ::mcdsm::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define mcdsm_warn(...) ::mcdsm::warnImpl(__VA_ARGS__)
#define mcdsm_inform(...) ::mcdsm::informImpl(__VA_ARGS__)

/** Invariant check that survives NDEBUG; use for protocol invariants. */
#define mcdsm_assert(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) [[unlikely]] {                                        \
            ::mcdsm::assertFail(__FILE__, __LINE__, #cond,                 \
                                ::mcdsm::strprintf(__VA_ARGS__));          \
        }                                                                  \
    } while (0)

#endif // MCDSM_COMMON_LOG_H
