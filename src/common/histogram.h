/**
 * @file
 * HDR-style log-bucketed latency histogram.
 *
 * Serving workloads (src/apps/kv.*) report request-latency tails;
 * storing every sample would dominate RunStats, so samples land in
 * logarithmic buckets with a fixed number of linear sub-buckets per
 * octave. Values below kSubBuckets are recorded exactly; above that
 * the relative quantization error is bounded by 1/kSubBuckets
 * (= 1/32, ~3.1%). Everything is integer arithmetic on fixed
 * geometry, so histograms — like all simulated statistics — are
 * bit-identical across hosts and job counts.
 */

#ifndef MCDSM_COMMON_HISTOGRAM_H
#define MCDSM_COMMON_HISTOGRAM_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace mcdsm {

class LatencyHistogram
{
  public:
    /** Linear sub-buckets per octave (power of two). */
    static constexpr std::uint64_t kSubBuckets = 32;
    static constexpr int kSubBucketBits = 5; // log2(kSubBuckets)
    /** Bucket count covering the full uint64 range. */
    static constexpr std::size_t kBuckets =
        kSubBuckets * (64 - kSubBucketBits + 1);

    /** Bucket index of @p v. Exact for v < kSubBuckets. */
    static constexpr std::size_t
    bucketIndex(std::uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<std::size_t>(v);
        const int msb = 63 - std::countl_zero(v);
        const int shift = msb - kSubBucketBits;
        // v >> shift is in [kSubBuckets, 2*kSubBuckets).
        return static_cast<std::size_t>(shift + 1) * kSubBuckets +
               static_cast<std::size_t>((v >> shift) - kSubBuckets);
    }

    /** Smallest value mapping to bucket @p i. */
    static constexpr std::uint64_t
    bucketLow(std::size_t i)
    {
        if (i < 2 * kSubBuckets)
            return static_cast<std::uint64_t>(i);
        const std::size_t block = i / kSubBuckets; // >= 2
        const std::uint64_t sub = kSubBuckets + i % kSubBuckets;
        return sub << (block - 1);
    }

    /** Largest value mapping to bucket @p i. */
    static constexpr std::uint64_t
    bucketHigh(std::size_t i)
    {
        if (i < 2 * kSubBuckets)
            return static_cast<std::uint64_t>(i);
        const std::size_t block = i / kSubBuckets;
        return bucketLow(i) + (std::uint64_t{1} << (block - 1)) - 1;
    }

    void
    record(std::uint64_t v, std::uint64_t n = 1)
    {
        if (n == 0)
            return;
        counts_[bucketIndex(v)] += n;
        total_ += n;
        sum_ += v * n;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    void
    merge(const LatencyHistogram& o)
    {
        if (o.total_ == 0)
            return;
        for (std::size_t i = 0; i < kBuckets; ++i)
            counts_[i] += o.counts_[i];
        total_ += o.total_;
        sum_ += o.sum_;
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }

    std::uint64_t count() const { return total_; }
    std::uint64_t min() const { return total_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return total_ ? static_cast<double>(sum_) /
                            static_cast<double>(total_)
                      : 0.0;
    }

    /**
     * Value at quantile @p q in [0, 1]: the highest value equivalent
     * (within bucket resolution) to the sample of rank ceil(q*count),
     * clamped to the recorded extremes so percentile(0) == min() and
     * percentile(1) == max() exactly.
     */
    std::uint64_t
    percentile(double q) const
    {
        if (total_ == 0)
            return 0;
        std::uint64_t rank =
            static_cast<std::uint64_t>(q * static_cast<double>(total_));
        if (static_cast<double>(rank) < q * static_cast<double>(total_))
            ++rank; // ceil
        rank = std::clamp<std::uint64_t>(rank, 1, total_);
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += counts_[i];
            if (seen >= rank)
                return std::clamp(bucketHigh(i), min_, max_);
        }
        return max_;
    }

    std::uint64_t p50() const { return percentile(0.50); }
    std::uint64_t p90() const { return percentile(0.90); }
    std::uint64_t p99() const { return percentile(0.99); }
    std::uint64_t p999() const { return percentile(0.999); }

    bool
    operator==(const LatencyHistogram& o) const
    {
        return total_ == o.total_ && sum_ == o.sum_ && min_ == o.min_ &&
               max_ == o.max_ && counts_ == o.counts_;
    }

    bool operator!=(const LatencyHistogram& o) const { return !(*this == o); }

    /** Count in bucket @p i (tests poke at the geometry). */
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

} // namespace mcdsm

#endif // MCDSM_COMMON_HISTOGRAM_H
