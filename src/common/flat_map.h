/**
 * @file
 * FlatIntMap — a minimal open-addressing hash table keyed by a
 * non-negative int, for the checker hot paths in src/check/.
 *
 * std::unordered_map costs a heap node per element plus a pointer
 * chase per probe; on the per-sync-op paths of the race detector,
 * lockset checker and SyncClock (lock/flag/barrier id → vector clock)
 * that shows up both in the allocation gate and in --check=all wall
 * clock. Sync-object ids are small dense-ish integers, so a flat
 * power-of-two table with linear probing makes every lookup one or
 * two cache lines and every insert allocation-free until the next
 * capacity doubling.
 *
 * Deliberately tiny: no erase (checker state only grows), keys are
 * >= 0 (-1 is the empty-slot sentinel), values must be movable.
 * Pointers/references into the table are invalidated by rehash, same
 * as the iterator rules callers already lived under.
 */

#ifndef MCDSM_COMMON_FLAT_MAP_H
#define MCDSM_COMMON_FLAT_MAP_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.h"

namespace mcdsm {

template <typename V>
class FlatIntMap
{
  public:
    FlatIntMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Value for @p key, or nullptr if absent. */
    V*
    find(int key)
    {
        if (slots_.empty())
            return nullptr;
        for (std::size_t i = probe(key);; i = (i + 1) & mask_) {
            Slot& s = slots_[i];
            if (s.key == key)
                return &s.value;
            if (s.key == kEmpty)
                return nullptr;
        }
    }

    const V*
    find(int key) const
    {
        return const_cast<FlatIntMap*>(this)->find(key);
    }

    /**
     * Value for @p key, default-constructing it on first use — the
     * try_emplace(key, V{}) / operator[] shape the checkers need.
     */
    V&
    operator[](int key)
    {
        mcdsm_assert(key >= 0, "FlatIntMap keys must be >= 0");
        if (size_ + 1 > (slots_.size() * 7) / 10)
            grow();
        for (std::size_t i = probe(key);; i = (i + 1) & mask_) {
            Slot& s = slots_[i];
            if (s.key == key)
                return s.value;
            if (s.key == kEmpty) {
                s.key = key;
                size_ += 1;
                return s.value;
            }
        }
    }

    /** Visit every (key, value) pair in unspecified order. */
    template <typename F>
    void
    forEach(F&& fn) const
    {
        for (const Slot& s : slots_) {
            if (s.key != kEmpty)
                fn(s.key, s.value);
        }
    }

  private:
    static constexpr int kEmpty = -1;

    struct Slot
    {
        int key = kEmpty;
        V value{};
    };

    std::size_t
    probe(int key) const
    {
        // Fibonacci multiplicative hash: adjacent ids (the common
        // case for lock/flag/barrier numbering) spread across the
        // table instead of forming one probe run.
        const std::uint64_t h =
            static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ull;
        return static_cast<std::size_t>(h >> 32) & mask_;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        const std::size_t cap = old.empty() ? 16 : old.size() * 2;
        slots_.assign(cap, Slot{});
        mask_ = cap - 1;
        for (Slot& s : old) {
            if (s.key == kEmpty)
                continue;
            for (std::size_t i = probe(s.key);; i = (i + 1) & mask_) {
                if (slots_[i].key == kEmpty) {
                    slots_[i].key = s.key;
                    slots_[i].value = std::move(s.value);
                    break;
                }
            }
        }
    }

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace mcdsm

#endif // MCDSM_COMMON_FLAT_MAP_H
