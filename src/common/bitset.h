/**
 * @file
 * ProcSet: a dynamic processor-id bitset whose first 64 bits live
 * inline. Coherence metadata keeps one of these per page, so the
 * common case (the paper's machine, P <= 64) must stay exactly as
 * cheap as the old single-word presence field: no heap allocation,
 * one-word test/set/clear/popcount. Past 64 processors the overflow
 * words are heap-backed and grown lazily on the first set() of a
 * high bit, so pages never touched by high processors still carry
 * no allocation.
 */

#ifndef MCDSM_COMMON_BITSET_H
#define MCDSM_COMMON_BITSET_H

#include <cstdint>
#include <vector>

#include "common/log.h"

namespace mcdsm {

class ProcSet
{
  public:
    bool
    test(int p) const
    {
        mcdsm_assert(p >= 0, "negative bit index");
        if (p < kInlineBits)
            return (low_ >> p) & 1u;
        const std::size_t w = static_cast<std::size_t>(p) / 64 - 1;
        if (w >= high_.size())
            return false;
        return (high_[w] >> (p % 64)) & 1u;
    }

    void
    set(int p)
    {
        mcdsm_assert(p >= 0, "negative bit index");
        if (p < kInlineBits) {
            low_ |= std::uint64_t{1} << p;
            return;
        }
        const std::size_t w = static_cast<std::size_t>(p) / 64 - 1;
        if (w >= high_.size())
            high_.resize(w + 1, 0);
        high_[w] |= std::uint64_t{1} << (p % 64);
    }

    void
    clear(int p)
    {
        mcdsm_assert(p >= 0, "negative bit index");
        if (p < kInlineBits) {
            low_ &= ~(std::uint64_t{1} << p);
            return;
        }
        const std::size_t w = static_cast<std::size_t>(p) / 64 - 1;
        if (w < high_.size())
            high_[w] &= ~(std::uint64_t{1} << (p % 64));
    }

    /** Number of set bits. */
    int
    count() const
    {
        int n = __builtin_popcountll(low_);
        for (std::uint64_t w : high_)
            n += __builtin_popcountll(w);
        return n;
    }

    /** Number of set bits other than @p p. */
    int
    countExcept(int p) const
    {
        return count() - (test(p) ? 1 : 0);
    }

    bool
    empty() const
    {
        if (low_ != 0)
            return false;
        for (std::uint64_t w : high_)
            if (w != 0)
                return false;
        return true;
    }

    /**
     * Call @p f(p) for every set bit, in ascending order. The
     * deterministic order matters: protocol code charges costs per
     * sharer while iterating, so the visit order is part of the
     * simulated timeline.
     */
    template <typename F>
    void
    forEach(F&& f) const
    {
        forEachInWord(low_, 0, f);
        for (std::size_t w = 0; w < high_.size(); ++w)
            forEachInWord(high_[w], static_cast<int>((w + 1) * 64), f);
    }

  private:
    static constexpr int kInlineBits = 64;

    template <typename F>
    static void
    forEachInWord(std::uint64_t word, int base, F&& f)
    {
        while (word != 0) {
            const int b = __builtin_ctzll(word);
            f(base + b);
            word &= word - 1;
        }
    }

    std::uint64_t low_ = 0;             ///< bits 0..63, allocation-free
    std::vector<std::uint64_t> high_;   ///< bits 64.., grown on demand
};

} // namespace mcdsm

#endif // MCDSM_COMMON_BITSET_H
