#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mcdsm {

namespace {

/**
 * Serializes diagnostic emission. The parallel experiment engine
 * (harness/pool.h) runs one simulation per host thread; messages are
 * formatted into a private buffer first, so the lock only covers the
 * single fprintf and lines never interleave.
 */
std::mutex&
logMutex()
{
    static std::mutex mu;
    return mu;
}

} // namespace

std::string
vstrprintf(const char* fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), n + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
strprintf(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vstrprintf(fmt, ap);
    va_end(ap);
    return out;
}

void
panicImpl(const char* file, int line, const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
fatalImpl(const char* file, int line, const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
assertFail(const char* file, int line, const char* cond,
           const std::string& msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr,
                     "panic: assertion failed: %s (%s) at %s:%d\n",
                     msg.c_str(), cond, file, line);
    }
    std::abort();
}

void
warnImpl(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace mcdsm
