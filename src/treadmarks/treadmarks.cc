#include "treadmarks/treadmarks.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/log.h"

namespace mcdsm {

namespace {

inline GAddr
pageBase(PageNum pn)
{
    return static_cast<GAddr>(pn) << kPageShift;
}

/** Private address region used to charge twin traffic to the cache. */
inline std::uint64_t
twinAddr(PageNum pn)
{
    return 0x20000000ULL + pageBase(pn);
}

/** Causal application order: orderKey, then writer/seq for ties. */
bool
diffBefore(const DiffPtr& a, const DiffPtr& b)
{
    if (a->orderKey != b->orderKey)
        return a->orderKey < b->orderKey;
    if (a->writer != b->writer)
        return a->writer < b->writer;
    return a->seq < b->seq;
}

} // namespace

void
TreadMarks::attach(DsmRuntime& rt)
{
    rt_ = &rt;
    sparseVt_ = rt.cfg().tmkSparseVt;
    locks_.resize(rt.cfg().numLocks);
    barriers_.resize(rt.cfg().numBarriers);
    flags_.resize(rt.cfg().numFlags);
}

TreadMarks::PState&
TreadMarks::st(ProcCtx& ctx)
{
    if (!ctx.pstate) {
        ctx.pstate = std::make_unique<PState>(rt_->nprocs(),
                                              rt_->activePageCount());
    }
    return static_cast<PState&>(*ctx.pstate);
}

ProcId
TreadMarks::lockManager(int lock_id) const
{
    return lock_id % rt_->nprocs();
}

ProcId
TreadMarks::flagManager(int flag_id) const
{
    return flag_id % rt_->nprocs();
}

void
TreadMarks::mergeVt(PState& s, const VTime& b)
{
    for (std::size_t q = 0; q < s.vt.size(); ++q) {
        if (b[q] > s.vt[q])
            s.vt[q] = b[q];
    }
}

std::size_t
TreadMarks::vtWireBytes(const VTime& vt) const
{
    if (!sparseVt_)
        return 4 * vt.size();
    // Sparse delta: 8 bytes (index + value) per nonzero entry, never
    // more than the dense vector it replaces.
    std::size_t nnz = 0;
    for (std::uint32_t v : vt)
        nnz += v != 0;
    return std::min(4 * vt.size(), 8 * nnz);
}

std::uint32_t
TreadMarks::recVtWords() const
{
    return sparseVt_ ? 0
                     : static_cast<std::uint32_t>(rt_->nprocs());
}

std::shared_ptr<const VTime>
TreadMarks::snapshotVt(PState& s)
{
    if (s.vtBoxCache == nullptr || s.vtBoxCache.use_count() != 1)
        s.vtBoxCache = std::make_shared<VTime>(s.vt);
    else
        *s.vtBoxCache = s.vt; // equal sizes: memcpy, no allocation
    return s.vtBoxCache;
}

void
TreadMarks::closeInterval(ProcCtx& ctx)
{
    PState& s = st(ctx);
    if (s.curWrites.empty())
        return;

    auto rec = makeRc<IntervalRec>();
    rec->proc = ctx.id;
    rec->id = s.vt[ctx.id];
    rec->pages = s.curWrites;
    for (PageNum pn : s.curWrites)
        s.curMark[pn] = 0;
    s.curWrites.clear();

    s.vt[ctx.id] += 1;
    rec->vtWords = recVtWords();
    const Time npages = static_cast<Time>(rec->pages.size());
    s.log.add(std::move(rec));

    rt_->charge(ctx, TimeCat::Protocol,
                rt_->costs().tmkPerInterval +
                    rt_->costs().tmkPerNotice * npages);
}

void
TreadMarks::flushTwin(ProcCtx& ctx, PageNum pn)
{
    PState& s = st(ctx);
    PageMeta& m = s.pages[pn];
    mcdsm_assert(m.twin != nullptr, "flushTwin without a twin");

    // If the open interval wrote this page, close it first so the
    // diff's coverage statement ("all intervals <= coversUpTo") is
    // exact even if this page is written again later.
    if (s.curMark[pn])
        closeInterval(ctx);

    auto d = makeRc<Diff>();
    d->writer = ctx.id;
    d->page = pn;
    d->seq = ++s.diffSeq;
    d->coversUpTo = s.vt[ctx.id] == 0 ? 0 : s.vt[ctx.id] - 1;
    // Lamport stamp (see PState::lclock): strictly greater than every
    // diff stamp whose data this twin's writes could depend on.
    d->orderKey = s.lclock;
    computeRuns(ctx.frame(pn), m.twin, d->runs);

    const std::size_t bytes = d->dataBytes();
    // The flat run buffer is the one heap allocation a diff costs.
    rt_->memProf().countHeap(MemSite::Diff, d->runs.encodedBytes());
    ctx.stats.diffsCreated += 1;
    ctx.stats.diffBytes += bytes;
    rt_->charge(ctx, TimeCat::Protocol, rt_->costs().diffCreate(bytes));
    // The comparison streams both copies through the cache.
    ctx.cache.touchRange(pageBase(pn), kPageSize);
    ctx.cache.touchRange(twinAddr(pn), kPageSize);

    // Our own writes are part of the frame's composition too: a
    // rebuild in applyDiffs must replay them in causal position.
    m.applied.push_back(d);
    m.maxKeyApplied = std::max(m.maxKeyApplied, d->orderKey);
    m.ownDiffs.push_back(std::move(d));
    rt_->freeFrame(m.twin);
    m.twin = nullptr;

    // Catch subsequent writes with a fresh fault/twin/notice.
    if (ctx.pt.canWrite(pn)) {
        ctx.pt.setProtection(pn, ProtRead);
        rt_->charge(ctx, TimeCat::Protocol,
                    rt_->costs(ctx.node).mprotect);
    }
}

void
TreadMarks::mergeNotice(ProcCtx& ctx, PageNum pn, ProcId writer,
                        std::uint32_t id)
{
    if (writer == ctx.id)
        return;
    PState& s = st(ctx);
    PageMeta& m = s.pages[pn];
    rt_->charge(ctx, TimeCat::Protocol, rt_->costs().tmkPerNotice);

    const std::uint32_t* cov = m.coveredUpTo.find(writer);
    if (cov != nullptr && id <= *cov)
        return; // already satisfied by an applied diff

    m.pending.emplace_back(writer, id);

    if (ctx.pt.protection(pn) != ProtNone) {
        // Preserve our concurrent modifications before invalidating.
        if (m.twin)
            flushTwin(ctx, pn);
        ctx.pt.setProtection(pn, ProtNone);
        rt_->charge(ctx, TimeCat::Protocol,
                    rt_->costs(ctx.node).mprotect);
        // The frame is kept: diffs will be merged into it on the next
        // fault.
    }
}

void
TreadMarks::mergeRecords(ProcCtx& ctx,
                         const std::vector<IntervalRecPtr>& recs)
{
    PState& s = st(ctx);

    // Per-processor columns must be applied in id order. Sort indices
    // rather than a copy of the shared_ptr vector: a barrier release
    // at large P carries thousands of records, and the copy's
    // refcount traffic alone was visible in profiles.
    std::vector<std::uint32_t> order(recs.size());
    for (std::uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&recs](std::uint32_t a, std::uint32_t b) {
                  if (recs[a]->proc != recs[b]->proc)
                      return recs[a]->proc < recs[b]->proc;
                  return recs[a]->id < recs[b]->id;
              });

    for (const std::uint32_t idx : order) {
        const IntervalRecPtr& rec = recs[idx];
        if (rec->proc == ctx.id)
            continue; // our own past
        if (!s.log.add(rec))
            continue; // already known
        // Records arrive gapless per column, so the column count is
        // now rec->id + 1; fold it into the timestamp as we go
        // instead of re-scanning all P columns afterwards.
        const std::uint32_t cnt = rec->id + 1;
        if (cnt > s.vt[rec->proc])
            s.vt[rec->proc] = cnt;
        rt_->charge(ctx, TimeCat::Protocol, rt_->costs().tmkPerInterval);
        for (PageNum pn : rec->pages)
            mergeNotice(ctx, pn, rec->proc, rec->id);
    }
}

GrantInfo
TreadMarks::buildGrant(ProcCtx& ctx, const VTime& req_vt)
{
    PState& s = st(ctx);
    GrantInfo g;
    g.vt = s.vt;
    g.vtBytes = vtWireBytes(g.vt);
    g.records = s.log.collectSince(req_vt);
    rt_->charge(ctx, TimeCat::Protocol,
                rt_->costs().tmkPerInterval *
                    static_cast<Time>(g.records.size()));
    return g;
}

ArrivalInfo
TreadMarks::buildArrival(ProcCtx& ctx)
{
    PState& s = st(ctx);
    // Conservative guess of the manager's timestamp: everyone knows
    // everything up to the last barrier, so ship everything newer.
    ArrivalInfo info;
    info.vt = s.vt;
    info.vtBytes = vtWireBytes(info.vt);
    info.records = s.log.collectSince(s.lastBarrierVT);
    rt_->charge(ctx, TimeCat::Protocol,
                rt_->costs().tmkPerInterval *
                    static_cast<Time>(info.records.size()));
    return info;
}

// ---------------------------------------------------------------------------
// Page faults
// ---------------------------------------------------------------------------

void
TreadMarks::applyDiffs(ProcCtx& ctx, PageNum pn,
                       std::vector<DiffPtr>& diffs)
{
    PState& s = st(ctx);
    PageMeta& m = s.pages[pn];
    mcdsm_assert(m.twin == nullptr,
                 "diff application with un-flushed local writes");

    std::sort(diffs.begin(), diffs.end(), diffBefore);

    // Keep the diffs we have not applied yet (per-writer seqs are
    // monotonic, so anything at or below the newest applied seq is a
    // re-send).
    std::vector<DiffPtr> fresh;
    for (const auto& d : diffs) {
        auto& last = m.lastSeqApplied[d->writer];
        if (d->seq <= last && last != 0)
            continue;
        last = d->seq;
        auto& cov = m.coveredUpTo[d->writer];
        cov = std::max(cov, d->coversUpTo);
        fresh.push_back(d);
    }
    if (fresh.empty())
        return;

    // Any write this processor performs from here on depends (via
    // happens-before) on the data just merged, so the diff of its
    // next twin must stamp strictly after everything applied here.
    // This apply edge is what makes orderKey a true Lamport clock
    // for conflicting diffs — see PState::lclock.
    for (const auto& d : fresh)
        s.lclock = std::max(s.lclock, d->orderKey + 1);

    // A server ships every cached diff newer than the requester's seq,
    // which can include intervals the requester has no notices for
    // yet. A *causally older* diff can therefore still arrive at a
    // later fault; applied blindly it would roll freshly-applied bytes
    // back to stale values. Detect that case and rebuild the frame
    // from the initial image in causal order instead. (Diffs with
    // overlapping bytes stamp in strict happens-before order, and
    // concurrent diffs touch disjoint bytes in a data-race-free
    // program, so any total order consistent with orderKey
    // reproduces the frame.)
    if (!m.applied.empty() &&
        fresh.front()->orderKey < m.maxKeyApplied) {
        m.applied.insert(m.applied.end(), fresh.begin(), fresh.end());
        std::sort(m.applied.begin(), m.applied.end(), diffBefore);
        std::memcpy(ctx.frame(pn), rt_->initFrame(pn), kPageSize);
        for (const auto& d : m.applied)
            applyRuns(ctx.frame(pn), d->runs);
    } else {
        for (const auto& d : fresh) {
            applyRuns(ctx.frame(pn), d->runs);
            m.applied.push_back(d);
        }
    }

    for (const auto& d : fresh) {
        m.maxKeyApplied = std::max(m.maxKeyApplied, d->orderKey);
        ctx.stats.diffsApplied += 1;
        rt_->charge(ctx, TimeCat::Protocol,
                    rt_->costs().diffApply(d->dataBytes()));
        ctx.cache.touchRange(pageBase(pn), kPageSize);
    }
}

void
TreadMarks::onReadFault(ProcCtx& ctx, PageNum pn)
{
    PState& s = st(ctx);
    PageMeta& m = s.pages[pn];

    if (ctx.frame(pn) == nullptr) {
        std::uint8_t* frame = rt_->allocFrame();
        std::memcpy(frame, rt_->initFrame(pn), kPageSize);
        ctx.mapFrame(pn, frame);
        const Time lat = ctx.cache.touchRange(pageBase(pn), kPageSize);
        rt_->charge(ctx, TimeCat::Protocol, lat);
        m.everMapped = true;
    }

    // Fetch and merge diffs until no pending notice survives. New
    // notices can arrive while we wait for replies (requests are
    // serviced re-entrantly), hence the loop.
    for (;;) {
        auto unsatisfied = [&](const std::pair<ProcId, std::uint32_t>& p) {
            const std::uint32_t* cov = m.coveredUpTo.find(p.first);
            return cov == nullptr || p.second > *cov;
        };
        std::erase_if(m.pending, [&](const auto& p) {
            return !unsatisfied(p);
        });
        if (m.pending.empty())
            break;

        // Newest diff seq we already hold, per writer with notices.
        std::map<ProcId, std::uint32_t> writers;
        for (const auto& [w, id] : m.pending) {
            const std::uint32_t* last = m.lastSeqApplied.find(w);
            writers[w] = last == nullptr ? 0 : *last;
        }

        std::vector<DiffPtr> collected;
        std::vector<ProcId> msg_writers;
        for (const auto& [w, since] : writers) {
            // Pull fast path: a writer whose twin for this page is
            // already flushed has every shippable diff sitting in its
            // cache, so the requester can pull them with one-sided
            // reads — no request message, no handler dispatch, no
            // writer CPU. (An un-flushed twin still needs the message
            // path: only the writer can close its open interval.)
            const NodeId wnode = rt_->topo().nodeOf(w);
            if (rt_->rdmaPullDiffs() && wnode != ctx.node) {
                // Only touch the writer's state under the pull flag:
                // with the flag off (always the case under the
                // parallel engine) the writer may live on another
                // host thread, and even st() can allocate.
                PageMeta& wm = st(rt_->procCtx(w)).pages[pn];
                if (wm.twin == nullptr) {
                    ctx.noteWait("tmk_pull", pn, w);
                    // Descriptor read first: the writer's per-page
                    // diff directory (seq high-water mark + index).
                    rt_->rdmaWaitUntil(ctx,
                                       rt_->rdmaRead(ctx, wnode, 64));
                    // Then the diffs, one doorbell for all.
                    rt_->rdmaBatchBegin(ctx);
                    for (const auto& d : wm.ownDiffs) {
                        if (d->seq > since) {
                            collected.push_back(d);
                            rt_->rdmaRead(ctx, wnode, d->wireBytes());
                            rt_->rdmaBatchNote(ctx);
                        }
                    }
                    rt_->rdmaWaitUntil(ctx, rt_->rdmaBatchEnd(ctx));
                    continue;
                }
            }
            Message req;
            req.type = TmkReqDiffs;
            req.a = pn;
            req.b = since;
            req.bytes = 16;
            rt_->sendMessage(ctx, w, std::move(req));
            msg_writers.push_back(w);
        }

        for (const ProcId writer : msg_writers) {
            ctx.noteWait("tmk_diffs", pn, writer);
            Message rep = rt_->waitReply(
                ctx,
                ReplyMatch{TmkRepDiffs, static_cast<std::int64_t>(pn),
                           writer});
            auto list = std::static_pointer_cast<const DiffList>(rep.box);
            mcdsm_assert(list != nullptr, "diff reply without payload");
            collected.insert(collected.end(), list->begin(), list->end());
        }
        applyDiffs(ctx, pn, collected);
    }

    ctx.pt.setProtection(pn, ProtRead);
    rt_->charge(ctx, TimeCat::Protocol, rt_->costs(ctx.node).mprotect);
}

void
TreadMarks::onWriteFault(ProcCtx& ctx, PageNum pn)
{
    if (!ctx.pt.canRead(pn))
        onReadFault(ctx, pn);

    PState& s = st(ctx);
    PageMeta& m = s.pages[pn];
    const CostModel& c = rt_->costs();

    if (m.twin == nullptr) {
        m.twin = rt_->allocFrame();
        std::memcpy(m.twin, ctx.frame(pn), kPageSize);
        ctx.stats.twins += 1;
        rt_->charge(ctx, TimeCat::Protocol, c.twinCost);
        ctx.cache.touchRange(pageBase(pn), kPageSize);
        ctx.cache.touchRange(twinAddr(pn), kPageSize);
    }
    if (!s.curMark[pn]) {
        s.curMark[pn] = 1;
        s.curWrites.push_back(pn);
    }

    ctx.pt.setProtection(pn, ProtRw);
    rt_->charge(ctx, TimeCat::Protocol, rt_->costs(ctx.node).mprotect);
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

void
TreadMarks::grantLock(ProcCtx& owner, int lock_id, ProcId requester,
                      const VTime& req_vt)
{
    closeInterval(owner);
    GrantInfo g = buildGrant(owner, req_vt);

    Message rep;
    rep.type = TmkRepLockGrant;
    rep.a = static_cast<std::uint64_t>(lock_id);
    rep.bytes = g.wireBytes();
    rep.box = std::make_shared<const GrantInfo>(std::move(g));
    rt_->sendMessage(owner, requester, std::move(rep));
}

bool
TreadMarks::routeLockRequest(ProcCtx& mgr, int lock_id, ProcId requester,
                             const std::shared_ptr<const VTime>& req_vt)
{
    LockState& lk = locks_[lock_id];
    if (lk.grantsIssued.empty())
        lk.grantsIssued.assign(rt_->nprocs(), 0);

    if (lk.lastOwner == kNoProc || lk.lastOwner == requester) {
        // First acquisition, or the previous owner re-acquiring: no
        // consistency information is needed.
        lk.lastOwner = requester;
        lk.grantsIssued[requester] += 1;
        return true;
    }

    const ProcId owner = lk.lastOwner;
    const std::uint32_t obligation = lk.grantsIssued[owner];
    lk.lastOwner = requester;
    lk.grantsIssued[requester] += 1;

    if (owner == mgr.id) {
        handleForward(mgr, lock_id, requester, *req_vt, obligation);
    } else {
        Message fwd;
        fwd.type = TmkReqLockForward;
        fwd.a = static_cast<std::uint64_t>(lock_id);
        fwd.b = static_cast<std::uint64_t>(requester);
        fwd.c = obligation;
        fwd.bytes = 16 + vtWireBytes(*req_vt);
        fwd.box = req_vt;
        rt_->sendMessage(mgr, owner, std::move(fwd));
    }
    return false;
}

void
TreadMarks::handleForward(ProcCtx& owner, int lock_id, ProcId requester,
                          const VTime& req_vt, std::uint32_t obligation)
{
    PState& s = st(owner);
    if (s.lockTenuresDone[lock_id] >= obligation) {
        grantLock(owner, lock_id, requester, req_vt);
    } else {
        s.pendingGrants[lock_id].push_back(
            {obligation, requester, req_vt});
    }
}

void
TreadMarks::acquire(ProcCtx& ctx, int lock_id)
{
    PState& s = st(ctx);
    const ProcId mgr = lockManager(lock_id);
    const std::size_t vt_bytes = 16 + vtWireBytes(s.vt);

    if (mgr == ctx.id) {
        auto vt = snapshotVt(s);
        rt_->charge(ctx, TimeCat::Protocol, rt_->costs().tmkPerInterval);
        if (routeLockRequest(ctx, lock_id, ctx.id, vt))
            return; // direct self-grant, nothing to merge
    } else {
        Message req;
        req.type = TmkReqLock;
        req.a = static_cast<std::uint64_t>(lock_id);
        req.bytes = vt_bytes;
        req.box = snapshotVt(s);
        rt_->sendMessage(ctx, mgr, std::move(req));
    }

    ctx.noteWait("tmk_lock", lock_id);
    Message rep =
        rt_->waitReply(ctx, ReplyMatch{TmkRepLockGrant, lock_id, -1});
    auto g = std::static_pointer_cast<const GrantInfo>(rep.box);
    if (g) {
        mergeRecords(ctx, g->records);
        mergeVt(s, g->vt);
    }
}

void
TreadMarks::release(ProcCtx& ctx, int lock_id)
{
    PState& s = st(ctx);
    const std::uint32_t done = ++s.lockTenuresDone[lock_id];

    auto it = s.pendingGrants.find(lock_id);
    if (it == s.pendingGrants.end())
        return; // lazy: no communication on release

    auto& q = it->second;
    for (std::size_t i = 0; i < q.size(); ++i) {
        if (q[i].obligation <= done) {
            // At most one forward targets any given tenure.
            PState::PendingFwd fwd = std::move(q[i]);
            q.erase(q.begin() + i);
            grantLock(ctx, lock_id, fwd.requester, fwd.vt);
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Barriers
// ---------------------------------------------------------------------------

void
TreadMarks::barrier(ProcCtx& ctx, int barrier_id)
{
    closeInterval(ctx);
    PState& s = st(ctx);
    const int nprocs = rt_->nprocs();
    if (nprocs == 1)
        return;

    if (ctx.id == 0) {
        BarrierState& bar = barriers_[barrier_id];
        ctx.noteWait("tmk_barrier_mgr", barrier_id);
        rt_->waitEvent(ctx, [&bar, nprocs] {
            return bar.arrived == nprocs - 1;
        });

        for (const auto& [q, vt_q] : bar.waiters) {
            GrantInfo g = buildGrant(ctx, *vt_q);
            Message rep;
            rep.type = TmkRepBarrierRelease;
            rep.a = static_cast<std::uint64_t>(barrier_id);
            rep.b = static_cast<std::uint64_t>(bar.epoch);
            rep.bytes = g.wireBytes();
            rep.box = std::make_shared<const GrantInfo>(std::move(g));
            rt_->sendMessage(ctx, q, std::move(rep));
        }
        bar.waiters.clear();
        bar.arrived = 0;
        bar.epoch += 1;
        s.lastBarrierVT = s.vt;
    } else {
        ArrivalInfo info = buildArrival(ctx);
        Message arr;
        arr.type = TmkReqBarrierArrive;
        arr.a = static_cast<std::uint64_t>(barrier_id);
        arr.bytes = info.wireBytes();
        arr.box = std::make_shared<const ArrivalInfo>(std::move(info));
        rt_->sendMessage(ctx, 0, std::move(arr));

        ctx.noteWait("tmk_barrier", barrier_id);
        Message rep = rt_->waitReply(
            ctx, ReplyMatch{TmkRepBarrierRelease, barrier_id, -1});
        auto g = std::static_pointer_cast<const GrantInfo>(rep.box);
        mergeRecords(ctx, g->records);
        mergeVt(s, g->vt);
        s.lastBarrierVT = g->vt;
    }
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

void
TreadMarks::setFlag(ProcCtx& ctx, int flag_id)
{
    closeInterval(ctx);
    PState& s = st(ctx);
    const ProcId mgr = flagManager(flag_id);

    if (mgr == ctx.id) {
        FlagState& f = flags_[flag_id];
        f.set = true;
        for (const auto& [q, vt_q] : f.waiters) {
            GrantInfo g = buildGrant(ctx, *vt_q);
            Message rep;
            rep.type = TmkRepFlagGrant;
            rep.a = static_cast<std::uint64_t>(flag_id);
            rep.bytes = g.wireBytes();
            rep.box = std::make_shared<const GrantInfo>(std::move(g));
            rt_->sendMessage(ctx, q, std::move(rep));
        }
        f.waiters.clear();
        return;
    }

    ArrivalInfo info = buildArrival(ctx);
    Message msg;
    msg.type = TmkReqFlagSet;
    msg.a = static_cast<std::uint64_t>(flag_id);
    msg.bytes = info.wireBytes();
    msg.box = std::make_shared<const ArrivalInfo>(std::move(info));
    rt_->sendMessage(ctx, mgr, std::move(msg));
    (void)s;
}

void
TreadMarks::waitFlag(ProcCtx& ctx, int flag_id)
{
    PState& s = st(ctx);
    const ProcId mgr = flagManager(flag_id);

    if (mgr == ctx.id) {
        FlagState& f = flags_[flag_id];
        // The ReqFlagSet handler merges the setter's intervals into
        // our log as it is serviced, so once `set` is visible we
        // already have the consistency information.
        ctx.noteWait("tmk_flag_mgr", flag_id);
        rt_->waitEvent(ctx, [&f] { return f.set; });
        return;
    }

    Message req;
    req.type = TmkReqFlagWait;
    req.a = static_cast<std::uint64_t>(flag_id);
    req.bytes = 16 + vtWireBytes(s.vt);
    req.box = snapshotVt(s);
    rt_->sendMessage(ctx, mgr, std::move(req));

    ctx.noteWait("tmk_flag", flag_id);
    Message rep =
        rt_->waitReply(ctx, ReplyMatch{TmkRepFlagGrant, flag_id, -1});
    auto g = std::static_pointer_cast<const GrantInfo>(rep.box);
    mergeRecords(ctx, g->records);
    mergeVt(s, g->vt);
}

// ---------------------------------------------------------------------------
// Request servicing
// ---------------------------------------------------------------------------

void
TreadMarks::serviceRequest(ProcCtx& server, Message& msg)
{
    PState& s = st(server);

    switch (msg.type) {
      case TmkReqLock: {
        const int lock_id = static_cast<int>(msg.a);
        const ProcId requester = msg.src;
        auto req_vt = std::static_pointer_cast<const VTime>(msg.box);

        if (routeLockRequest(server, lock_id, requester, req_vt)) {
            Message rep; // direct grant, no consistency info needed
            rep.type = TmkRepLockGrant;
            rep.a = msg.a;
            rep.bytes = 32;
            rt_->sendMessage(server, requester, std::move(rep));
        }
        break;
      }

      case TmkReqLockForward: {
        const int lock_id = static_cast<int>(msg.a);
        auto req_vt = std::static_pointer_cast<const VTime>(msg.box);
        handleForward(server, lock_id, static_cast<ProcId>(msg.b),
                      *req_vt, static_cast<std::uint32_t>(msg.c));
        break;
      }

      case TmkReqBarrierArrive: {
        const int barrier_id = static_cast<int>(msg.a);
        mcdsm_assert(server.id == 0, "barrier arrival at non-manager");
        auto info = std::static_pointer_cast<const ArrivalInfo>(msg.box);
        mergeRecords(server, info->records);
        mergeVt(s, info->vt);
        BarrierState& bar = barriers_[barrier_id];
        // Alias the arrival payload's timestamp instead of copying
        // it: P-1 arrivals per barrier make an O(P) copy quadratic.
        bar.waiters.emplace_back(
            msg.src, std::shared_ptr<const VTime>(info, &info->vt));
        bar.arrived += 1;
        break;
      }

      case TmkReqFlagSet: {
        const int flag_id = static_cast<int>(msg.a);
        auto info = std::static_pointer_cast<const ArrivalInfo>(msg.box);
        mergeRecords(server, info->records);
        mergeVt(s, info->vt);
        FlagState& f = flags_[flag_id];
        f.set = true;
        for (const auto& [q, vt_q] : f.waiters) {
            GrantInfo g = buildGrant(server, *vt_q);
            Message rep;
            rep.type = TmkRepFlagGrant;
            rep.a = msg.a;
            rep.bytes = g.wireBytes();
            rep.box = std::make_shared<const GrantInfo>(std::move(g));
            rt_->sendMessage(server, q, std::move(rep));
        }
        f.waiters.clear();
        break;
      }

      case TmkReqFlagWait: {
        const int flag_id = static_cast<int>(msg.a);
        auto req_vt = std::static_pointer_cast<const VTime>(msg.box);
        FlagState& f = flags_[flag_id];
        if (f.set) {
            GrantInfo g = buildGrant(server, *req_vt);
            Message rep;
            rep.type = TmkRepFlagGrant;
            rep.a = msg.a;
            rep.bytes = g.wireBytes();
            rep.box = std::make_shared<const GrantInfo>(std::move(g));
            rt_->sendMessage(server, msg.src, std::move(rep));
        } else {
            f.waiters.emplace_back(msg.src, req_vt);
        }
        break;
      }

      case TmkReqDiffs: {
        const PageNum pn = static_cast<PageNum>(msg.a);
        const std::uint32_t since = static_cast<std::uint32_t>(msg.b);
        PageMeta& m = s.pages[pn];
        if (m.twin)
            flushTwin(server, pn);

        auto out = std::make_shared<DiffList>();
        std::size_t bytes = 32;
        for (const auto& d : m.ownDiffs) {
            if (d->seq > since) {
                out->push_back(d);
                bytes += d->wireBytes();
            }
        }
        Message rep;
        rep.type = TmkRepDiffs;
        rep.a = msg.a;
        rep.bytes = bytes;
        rep.box = std::move(out);
        rt_->sendMessage(server, msg.src, std::move(rep));
        break;
      }

      default:
        mcdsm_panic("TreadMarks: unknown request type %d", msg.type);
    }
}

void
TreadMarks::procEnd(ProcCtx& ctx)
{
    closeInterval(ctx);
}

} // namespace mcdsm
