#include "treadmarks/types.h"

#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/log.h"

namespace mcdsm {

void
vtMax(VTime& a, const VTime& b)
{
    mcdsm_assert(a.size() == b.size(), "vector timestamp size mismatch");
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (b[i] > a[i])
            a[i] = b[i];
    }
}

bool
vtLeq(const VTime& a, const VTime& b)
{
    mcdsm_assert(a.size() == b.size(), "vector timestamp size mismatch");
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
    }
    return true;
}

std::uint64_t
vtSum(const VTime& v)
{
    std::uint64_t s = 0;
    for (auto x : v)
        s += x;
    return s;
}

std::size_t
Diff::wireBytes() const
{
    if (wire_bytes_memo_ != 0)
        return wire_bytes_memo_;
    std::size_t n = 16;
    std::size_t prev_end = 0;
    bool first = true;
    for (const auto r : runs) {
        const std::size_t gap = r.offset - prev_end;
        if (!first && gap < 8)
            n += gap + r.len; // merged: gap rides as data
        else
            n += 8 + r.len; // fresh run header
        prev_end = r.offset + r.len;
        first = false;
    }
    wire_bytes_memo_ = n;
    return n;
}

#if defined(__SSE2__)

/*
 * SIMD scan: build a 64-bit dirty-byte mask per 64-byte group with
 * four compare+movemask pairs, then emit maximal dirty runs by
 * walking the mask's bit transitions with ctz. Diffing is the top
 * host cost of the TreadMarks protocols at large processor counts
 * (every barrier interval flushes its twins), and this form is both
 * branch-light on the common all-clean / all-dirty groups and exact
 * at run boundaries without a per-byte fallback. Output is
 * byte-for-byte identical to the reference byte scan
 * (tests/test_parallel.cc checks this on random page/twin pairs).
 */
void
computeRuns(const std::uint8_t* page, const std::uint8_t* twin,
            FlatRuns& out)
{
    static_assert(kPageSize % 64 == 0,
                  "SIMD scan assumes whole 64-byte groups per page");
    out.clear();
    constexpr std::size_t kNoRun = kPageSize;
    std::size_t run_start = kNoRun;
    for (std::size_t base = 0; base < kPageSize; base += 64) {
        std::uint64_t dirty = 0;
        for (int k = 0; k < 4; ++k) {
            const __m128i a = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(page + base + 16 * k));
            const __m128i b = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(twin + base + 16 * k));
            const unsigned eq = static_cast<unsigned>(
                _mm_movemask_epi8(_mm_cmpeq_epi8(a, b)));
            dirty |= static_cast<std::uint64_t>(~eq & 0xffffu)
                     << (16 * k);
        }
        if (dirty == 0) {
            if (run_start != kNoRun) {
                out.append(static_cast<std::uint16_t>(run_start),
                           page + run_start, base - run_start);
                run_start = kNoRun;
            }
            continue;
        }
        if (dirty == ~std::uint64_t{0}) {
            if (run_start == kNoRun)
                run_start = base;
            continue;
        }
        std::size_t pos = 0;
        while (pos < 64) {
            if (run_start == kNoRun) {
                const std::uint64_t d = dirty >> pos;
                if (d == 0)
                    break;
                pos += static_cast<std::size_t>(__builtin_ctzll(d));
                run_start = base + pos;
            } else {
                const std::uint64_t c = ~dirty >> pos;
                if (c == 0) {
                    pos = 64; // run continues into the next group
                    break;
                }
                pos += static_cast<std::size_t>(__builtin_ctzll(c));
                out.append(static_cast<std::uint16_t>(run_start),
                           page + run_start, base + pos - run_start);
                run_start = kNoRun;
            }
        }
    }
    if (run_start != kNoRun) {
        out.append(static_cast<std::uint16_t>(run_start),
                   page + run_start, kPageSize - run_start);
    }
}

#else // !__SSE2__

namespace {

/** High bit set in every byte of @p x that is zero (HAKMEM-style). */
inline bool
hasZeroByte(std::uint64_t x)
{
    return ((x - 0x0101010101010101ULL) & ~x &
            0x8080808080808080ULL) != 0;
}

inline std::uint64_t
loadWord(const std::uint8_t* p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

} // namespace

/*
 * Word-at-a-time scan. Both the clean stretches between runs and the
 * interior of a run advance 8 bytes per compare: a zero XOR word is
 * entirely clean, a zero-byte-free XOR word is entirely dirty. Only
 * run boundaries (a word mixing equal and differing bytes) fall back
 * to byte granularity, so the output is byte-for-byte identical to
 * the reference byte scan (tests/test_parallel.cc checks this on
 * random page/twin pairs).
 */
void
computeRuns(const std::uint8_t* page, const std::uint8_t* twin,
            FlatRuns& out)
{
    static_assert(kPageSize % sizeof(std::uint64_t) == 0,
                  "word scan assumes whole words per page");
    out.clear();
    std::size_t i = 0;
    while (i < kPageSize) {
        // Skip clean words (i is word-aligned here except when a run
        // ended mid-word; the byte loop below re-aligns it).
        if (i % 8 == 0) {
            while (i < kPageSize &&
                   loadWord(page + i) == loadWord(twin + i))
                i += 8;
            if (i >= kPageSize)
                break;
        }
        if (page[i] == twin[i]) {
            ++i;
            continue;
        }
        // Run starts at i; extend while bytes differ.
        std::size_t j = i + 1;
        while (j < kPageSize) {
            if (j % 8 == 0) {
                while (j + 8 <= kPageSize &&
                       !hasZeroByte(loadWord(page + j) ^
                                    loadWord(twin + j)))
                    j += 8;
                if (j >= kPageSize)
                    break;
            }
            if (page[j] == twin[j])
                break;
            ++j;
        }
        out.append(static_cast<std::uint16_t>(i), page + i, j - i);
        i = j;
    }
}

#endif // __SSE2__

void
applyRuns(std::uint8_t* page, const FlatRuns& runs)
{
    for (const auto r : runs) {
        mcdsm_assert(static_cast<std::size_t>(r.offset) + r.len <=
                         kPageSize,
                     "diff run [%u, %u+%u) overruns the page",
                     r.offset, r.offset, r.len);
        std::memcpy(page + r.offset, r.data, r.len);
    }
}

} // namespace mcdsm
