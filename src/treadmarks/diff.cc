#include "treadmarks/types.h"

#include <cstring>

#include "common/log.h"

namespace mcdsm {

void
vtMax(VTime& a, const VTime& b)
{
    mcdsm_assert(a.size() == b.size(), "vector timestamp size mismatch");
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (b[i] > a[i])
            a[i] = b[i];
    }
}

bool
vtLeq(const VTime& a, const VTime& b)
{
    mcdsm_assert(a.size() == b.size(), "vector timestamp size mismatch");
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] > b[i])
            return false;
    }
    return true;
}

std::uint64_t
vtSum(const VTime& v)
{
    std::uint64_t s = 0;
    for (auto x : v)
        s += x;
    return s;
}

std::size_t
Diff::dataBytes() const
{
    std::size_t n = 0;
    for (const auto& r : runs)
        n += r.bytes.size();
    return n;
}

std::vector<Diff::Run>
computeRuns(const std::uint8_t* page, const std::uint8_t* twin)
{
    std::vector<Diff::Run> runs;
    std::size_t i = 0;
    while (i < kPageSize) {
        if (page[i] == twin[i]) {
            ++i;
            continue;
        }
        std::size_t j = i + 1;
        while (j < kPageSize && page[j] != twin[j])
            ++j;
        Diff::Run run;
        run.offset = static_cast<std::uint16_t>(i);
        run.bytes.assign(page + i, page + j);
        runs.push_back(std::move(run));
        i = j;
    }
    return runs;
}

void
applyRuns(std::uint8_t* page, const std::vector<Diff::Run>& runs)
{
    for (const auto& r : runs)
        std::memcpy(page + r.offset, r.bytes.data(), r.bytes.size());
}

} // namespace mcdsm
