/**
 * @file
 * Per-processor log of known intervals, used to compute the
 * consistency information piggybacked on lock grants and barrier
 * messages.
 */

#ifndef MCDSM_TREADMARKS_INTERVALS_H
#define MCDSM_TREADMARKS_INTERVALS_H

#include <vector>

#include "common/log.h"
#include "treadmarks/types.h"

namespace mcdsm {

/**
 * Interval records known to one processor. A processor's own closed
 * intervals have contiguous ids, and consistency messages always ship
 * suffixes ("everything newer than your timestamp"), so each
 * per-processor column stays contiguous.
 */
class IntervalLog
{
  public:
    explicit IntervalLog(int nprocs) : cols_(nprocs) {}

    /**
     * Insert a record. @return true if it was new.
     */
    bool
    add(const IntervalRecPtr& rec)
    {
        auto& col = cols_[rec->proc];
        if (rec->id < col.size())
            return false;
        mcdsm_assert(rec->id == col.size(),
                     "interval records must arrive without gaps");
        col.push_back(rec);
        return true;
    }

    /** Number of known intervals of processor @p q. */
    std::uint32_t
    count(ProcId q) const
    {
        return static_cast<std::uint32_t>(cols_[q].size());
    }

    const IntervalRecPtr&
    get(ProcId q, std::uint32_t id) const
    {
        return cols_[q][id];
    }

    /** All known records with id >= from[q], across processors. */
    std::vector<IntervalRecPtr>
    collectSince(const VTime& from) const
    {
        std::vector<IntervalRecPtr> out;
        for (std::size_t q = 0; q < cols_.size(); ++q) {
            for (std::uint32_t i = from[q]; i < cols_[q].size(); ++i)
                out.push_back(cols_[q][i]);
        }
        return out;
    }

    /** Total wire bytes of the records collectSince would return. */
    std::size_t
    bytesSince(const VTime& from) const
    {
        std::size_t n = 0;
        for (std::size_t q = 0; q < cols_.size(); ++q) {
            for (std::uint32_t i = from[q]; i < cols_[q].size(); ++i)
                n += cols_[q][i]->wireBytes();
        }
        return n;
    }

  private:
    std::vector<std::vector<IntervalRecPtr>> cols_;
};

} // namespace mcdsm

#endif // MCDSM_TREADMARKS_INTERVALS_H
