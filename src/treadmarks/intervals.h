/**
 * @file
 * Per-processor log of known intervals, used to compute the
 * consistency information piggybacked on lock grants and barrier
 * messages.
 */

#ifndef MCDSM_TREADMARKS_INTERVALS_H
#define MCDSM_TREADMARKS_INTERVALS_H

#include <algorithm>
#include <vector>

#include "common/log.h"
#include "treadmarks/types.h"

namespace mcdsm {

/**
 * Interval records known to one processor. A processor's own closed
 * intervals have contiguous ids, and consistency messages always ship
 * suffixes ("everything newer than your timestamp"), so each
 * per-processor column stays contiguous.
 */
class IntervalLog
{
  public:
    explicit IntervalLog(int nprocs) : cols_(nprocs) {}

    /**
     * Insert a record. @return true if it was new.
     */
    bool
    add(const IntervalRecPtr& rec)
    {
        auto& col = cols_[rec->proc];
        if (rec->id < col.size())
            return false;
        mcdsm_assert(rec->id == col.size(),
                     "interval records must arrive without gaps");
        if (col.empty()) {
            // First record of this processor: index its column so the
            // collect walks only populated columns (most processors
            // never synchronise with most others at large P).
            const auto at = std::lower_bound(touched_.begin(),
                                             touched_.end(), rec->proc);
            touched_.insert(at, rec->proc);
        }
        col.push_back(rec);
        return true;
    }

    /** Number of known intervals of processor @p q. */
    std::uint32_t
    count(ProcId q) const
    {
        return static_cast<std::uint32_t>(cols_[q].size());
    }

    const IntervalRecPtr&
    get(ProcId q, std::uint32_t id) const
    {
        return cols_[q][id];
    }

    /**
     * All known records with id >= from[q], across processors, in
     * ascending (proc, id) order — `touched_` is kept sorted, so the
     * output matches a full 0..P-1 column scan exactly.
     */
    std::vector<IntervalRecPtr>
    collectSince(const VTime& from) const
    {
        std::vector<IntervalRecPtr> out;
        for (ProcId q : touched_) {
            for (std::uint32_t i = from[q]; i < cols_[q].size(); ++i)
                out.push_back(cols_[q][i]);
        }
        return out;
    }

    /** Total wire bytes of the records collectSince would return. */
    std::size_t
    bytesSince(const VTime& from) const
    {
        std::size_t n = 0;
        for (ProcId q : touched_) {
            for (std::uint32_t i = from[q]; i < cols_[q].size(); ++i)
                n += cols_[q][i]->wireBytes();
        }
        return n;
    }

  private:
    std::vector<std::vector<IntervalRecPtr>> cols_;
    std::vector<ProcId> touched_; ///< sorted ids of non-empty columns
};

} // namespace mcdsm

#endif // MCDSM_TREADMARKS_INTERVALS_H
