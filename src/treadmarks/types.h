/**
 * @file
 * TreadMarks data types: vector timestamps, interval records and
 * diffs (paper §2.2).
 */

#ifndef MCDSM_TREADMARKS_TYPES_H
#define MCDSM_TREADMARKS_TYPES_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rc_ptr.h"
#include "common/types.h"

namespace mcdsm {

/**
 * A vector timestamp: entry i is the number of intervals of processor
 * i in the owner's logical past (i.e. the next expected interval id).
 */
using VTime = std::vector<std::uint32_t>;

/** Elementwise max, in place. */
void vtMax(VTime& a, const VTime& b);

/** True if a <= b pointwise (a is in b's past or equal). */
bool vtLeq(const VTime& a, const VTime& b);

/** Sum of components (monotone under causality; used for ordering). */
std::uint64_t vtSum(const VTime& v);

/**
 * Tiny ProcId -> counter map backed by a flat vector. A page is
 * typically written by a handful of processors, so lookups are linear
 * scans over a few entries — far cheaper to build, query and
 * (crucially) destroy than an unordered_map each, when there are
 * nprocs * page_count PageMeta instances to tear down at hundreds of
 * simulated processors. Never iterated, so entry order is irrelevant.
 */
class ProcCounterMap
{
  public:
    /** Pointer to the counter for @p key, or nullptr if absent. */
    const std::uint32_t*
    find(ProcId key) const
    {
        for (const auto& e : v_)
            if (e.first == key)
                return &e.second;
        return nullptr;
    }

    /** Counter for @p key, inserted as 0 if absent. */
    std::uint32_t&
    operator[](ProcId key)
    {
        for (auto& e : v_)
            if (e.first == key)
                return e.second;
        v_.emplace_back(key, 0);
        return v_.back().second;
    }

  private:
    std::vector<std::pair<ProcId, std::uint32_t>> v_;
};

/**
 * One closed interval of one processor, with the pages it wrote
 * (its write notices).
 */
struct IntervalRec : RcCounted
{
    ProcId proc = kNoProc;
    std::uint32_t id = 0; ///< interval index on `proc`
    /**
     * Timestamp words this record ships on the wire. Dense encoding
     * carries the closer's full vector (nprocs words, the paper's
     * format); the sparse encoding carries none — the (proc, id)
     * header plus the enclosing grant's timestamp reconstruct the
     * causal position. Only accounting: the simulator itself never
     * needed the per-record vector, and storing one was an O(P)
     * allocation per closed interval.
     */
    std::uint32_t vtWords = 0;
    std::vector<PageNum> pages;

    /** Modelled wire size of this record. */
    std::size_t
    wireBytes() const
    {
        return 16 + 4 * std::size_t{vtWords} + 4 * pages.size();
    }
};

/**
 * Record handles use the non-atomic intrusive count (common/rc_ptr.h):
 * consistency messages fan each record out to every processor, and at
 * large P the shared_ptr atomic refcount traffic alone was a
 * measurable slice of host time.
 */
using IntervalRecPtr = RcPtr<const IntervalRec>;

/**
 * The runs of a diff in one contiguous byte buffer: a sequence of
 * [u16 offset][u16 len][len data bytes] records. This is the actual
 * wire layout TreadMarks ships (modulo the header-merge accounting in
 * Diff::wireBytes), and it costs one allocation per diff instead of
 * one vector per run.
 */
class FlatRuns
{
  public:
    static constexpr std::size_t kHeaderBytes = 4;

    /** Decoded header of one run; `data` points into the buffer. */
    struct View
    {
        std::uint16_t offset;
        std::uint16_t len;
        const std::uint8_t* data;
    };

    class const_iterator
    {
      public:
        explicit const_iterator(const std::uint8_t* p) : p_(p) {}

        View
        operator*() const
        {
            View v;
            std::memcpy(&v.offset, p_, 2);
            std::memcpy(&v.len, p_ + 2, 2);
            v.data = p_ + kHeaderBytes;
            return v;
        }

        const_iterator&
        operator++()
        {
            std::uint16_t len;
            std::memcpy(&len, p_ + 2, 2);
            p_ += kHeaderBytes + len;
            return *this;
        }

        bool
        operator!=(const const_iterator& o) const
        {
            return p_ != o.p_;
        }

      private:
        const std::uint8_t* p_;
    };

    std::size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    /** Total modified bytes across all runs. */
    std::size_t dataBytes() const { return data_bytes_; }
    /** Size of the encoded buffer (headers + data). */
    std::size_t encodedBytes() const { return buf_.size(); }

    void
    clear()
    {
        buf_.clear();
        count_ = 0;
        data_bytes_ = 0;
    }

    /** Append one run; @p len in [1, kPageSize]. */
    void
    append(std::uint16_t offset, const std::uint8_t* data,
           std::size_t len)
    {
        const std::uint16_t len16 = static_cast<std::uint16_t>(len);
        const std::size_t at = buf_.size();
        buf_.resize(at + kHeaderBytes + len);
        std::memcpy(buf_.data() + at, &offset, 2);
        std::memcpy(buf_.data() + at + 2, &len16, 2);
        std::memcpy(buf_.data() + at + kHeaderBytes, data, len);
        count_ += 1;
        data_bytes_ += len;
    }

    const_iterator begin() const { return const_iterator(buf_.data()); }
    const_iterator
    end() const
    {
        return const_iterator(buf_.data() + buf_.size());
    }

  private:
    std::vector<std::uint8_t> buf_;
    std::uint32_t count_ = 0;
    std::size_t data_bytes_ = 0;
};

// A page offset and a run length must fit the u16 header fields;
// widen them before growing kPageSize past 64 KB.
static_assert(kPageSize <= UINT16_MAX,
              "FlatRuns headers cannot address the whole page");

/**
 * A diff: the run-length-encoded difference between a page and its
 * twin. Diffs are created lazily by the writer when first requested
 * (or when the writer must invalidate its own dirty copy), cover
 * every write up to their creation, and are cached for later
 * requesters.
 */
struct Diff : RcCounted
{
    ProcId writer = kNoProc;
    PageNum page = 0;
    std::uint32_t seq = 0;         ///< per-writer creation counter
    std::uint32_t coversUpTo = 0;  ///< all intervals <= this are covered
    /**
     * Writer's Lamport clock at creation. Strictly greater than the
     * stamp of any diff whose data the writer had applied, so diffs
     * with overlapping bytes (always happens-before ordered in a
     * data-race-free program) sort in causal order at every reader.
     */
    std::uint64_t orderKey = 0;

    FlatRuns runs;

    /** Total modified bytes. */
    std::size_t dataBytes() const { return runs.dataBytes(); }
    /**
     * Modelled wire size. Adjacent runs separated by fewer than 8
     * equal bytes share one 8 B wire header, with the gap shipped as
     * data (always no more expensive than a fresh header). The merge
     * exists only in this wire-format accounting: the applied runs
     * stay byte-exact, because diffs of disjoint concurrent writes
     * must compose in any order and shipping a neighbour's gap bytes
     * as data would clobber its concurrent writes.
     *
     * Memoized: a diff is immutable once built but its size is
     * re-charged on every ship, and a cached diff can be shipped to
     * many requesters. 0 is a safe "unset" sentinel (the header alone
     * is 16 bytes). Experiments are thread-confined, so the mutable
     * cache needs no synchronisation.
     */
    std::size_t wireBytes() const;

  private:
    mutable std::size_t wire_bytes_memo_ = 0;
};

using DiffPtr = RcPtr<const Diff>;

/**
 * Compute the diff between @p page and @p twin (both kPageSize) into
 * @p out (cleared first).
 */
void computeRuns(const std::uint8_t* page, const std::uint8_t* twin,
                 FlatRuns& out);

/**
 * Apply a diff's runs to @p page. Each run is bounds-checked
 * (offset + len <= kPageSize) under mcdsm_assert, so a corrupt wire
 * diff fails loudly instead of smashing the neighbouring page.
 */
void applyRuns(std::uint8_t* page, const FlatRuns& runs);

} // namespace mcdsm

#endif // MCDSM_TREADMARKS_TYPES_H
