/**
 * @file
 * TreadMarks data types: vector timestamps, interval records and
 * diffs (paper §2.2).
 */

#ifndef MCDSM_TREADMARKS_TYPES_H
#define MCDSM_TREADMARKS_TYPES_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace mcdsm {

/**
 * A vector timestamp: entry i is the number of intervals of processor
 * i in the owner's logical past (i.e. the next expected interval id).
 */
using VTime = std::vector<std::uint32_t>;

/** Elementwise max, in place. */
void vtMax(VTime& a, const VTime& b);

/** True if a <= b pointwise (a is in b's past or equal). */
bool vtLeq(const VTime& a, const VTime& b);

/** Sum of components (monotone under causality; used for ordering). */
std::uint64_t vtSum(const VTime& v);

/**
 * One closed interval of one processor, with the pages it wrote
 * (its write notices).
 */
struct IntervalRec
{
    ProcId proc = kNoProc;
    std::uint32_t id = 0; ///< interval index on `proc`
    VTime vt;             ///< timestamp when the interval was closed
    std::vector<PageNum> pages;

    /** Modelled wire size of this record. */
    std::size_t
    wireBytes() const
    {
        return 16 + 4 * vt.size() + 4 * pages.size();
    }
};

using IntervalRecPtr = std::shared_ptr<const IntervalRec>;

/**
 * A diff: the run-length-encoded difference between a page and its
 * twin. Diffs are created lazily by the writer when first requested
 * (or when the writer must invalidate its own dirty copy), cover
 * every write up to their creation, and are cached for later
 * requesters.
 */
struct Diff
{
    ProcId writer = kNoProc;
    PageNum page = 0;
    std::uint32_t seq = 0;         ///< per-writer creation counter
    std::uint32_t coversUpTo = 0;  ///< all intervals <= this are covered
    std::uint64_t orderKey = 0;    ///< vtSum at creation (causal order)

    struct Run
    {
        std::uint16_t offset;
        std::vector<std::uint8_t> bytes;
    };
    // A page offset must fit Run::offset; widen the field before
    // growing kPageSize past 64 KB.
    static_assert(kPageSize - 1 <= UINT16_MAX,
                  "Diff::Run::offset cannot address the whole page");
    std::vector<Run> runs;

    /** Total modified bytes. */
    std::size_t dataBytes() const;
    /**
     * Modelled wire size. Adjacent runs separated by fewer than 8
     * equal bytes share one 8 B wire header, with the gap shipped as
     * data (always no more expensive than a fresh header). The merge
     * exists only in this wire-format accounting: the applied runs
     * stay byte-exact, because diffs of disjoint concurrent writes
     * must compose in any order and shipping a neighbour's gap bytes
     * as data would clobber its concurrent writes.
     */
    std::size_t wireBytes() const;
};

using DiffPtr = std::shared_ptr<const Diff>;

/** Compute the diff between @p page and @p twin (both kPageSize). */
std::vector<Diff::Run> computeRuns(const std::uint8_t* page,
                                   const std::uint8_t* twin);

/** Apply a diff's runs to @p page. */
void applyRuns(std::uint8_t* page, const std::vector<Diff::Run>& runs);

} // namespace mcdsm

#endif // MCDSM_TREADMARKS_TYPES_H
