/**
 * @file
 * TreadMarks data types: vector timestamps, interval records and
 * diffs (paper §2.2).
 */

#ifndef MCDSM_TREADMARKS_TYPES_H
#define MCDSM_TREADMARKS_TYPES_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/types.h"

namespace mcdsm {

/**
 * A vector timestamp: entry i is the number of intervals of processor
 * i in the owner's logical past (i.e. the next expected interval id).
 */
using VTime = std::vector<std::uint32_t>;

/** Elementwise max, in place. */
void vtMax(VTime& a, const VTime& b);

/** True if a <= b pointwise (a is in b's past or equal). */
bool vtLeq(const VTime& a, const VTime& b);

/** Sum of components (monotone under causality; used for ordering). */
std::uint64_t vtSum(const VTime& v);

/**
 * One closed interval of one processor, with the pages it wrote
 * (its write notices).
 */
struct IntervalRec
{
    ProcId proc = kNoProc;
    std::uint32_t id = 0; ///< interval index on `proc`
    VTime vt;             ///< timestamp when the interval was closed
    std::vector<PageNum> pages;

    /** Modelled wire size of this record. */
    std::size_t
    wireBytes() const
    {
        return 16 + 4 * vt.size() + 4 * pages.size();
    }
};

using IntervalRecPtr = std::shared_ptr<const IntervalRec>;

/**
 * The runs of a diff in one contiguous byte buffer: a sequence of
 * [u16 offset][u16 len][len data bytes] records. This is the actual
 * wire layout TreadMarks ships (modulo the header-merge accounting in
 * Diff::wireBytes), and it costs one allocation per diff instead of
 * one vector per run.
 */
class FlatRuns
{
  public:
    static constexpr std::size_t kHeaderBytes = 4;

    /** Decoded header of one run; `data` points into the buffer. */
    struct View
    {
        std::uint16_t offset;
        std::uint16_t len;
        const std::uint8_t* data;
    };

    class const_iterator
    {
      public:
        explicit const_iterator(const std::uint8_t* p) : p_(p) {}

        View
        operator*() const
        {
            View v;
            std::memcpy(&v.offset, p_, 2);
            std::memcpy(&v.len, p_ + 2, 2);
            v.data = p_ + kHeaderBytes;
            return v;
        }

        const_iterator&
        operator++()
        {
            std::uint16_t len;
            std::memcpy(&len, p_ + 2, 2);
            p_ += kHeaderBytes + len;
            return *this;
        }

        bool
        operator!=(const const_iterator& o) const
        {
            return p_ != o.p_;
        }

      private:
        const std::uint8_t* p_;
    };

    std::size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }
    /** Total modified bytes across all runs. */
    std::size_t dataBytes() const { return data_bytes_; }
    /** Size of the encoded buffer (headers + data). */
    std::size_t encodedBytes() const { return buf_.size(); }

    void
    clear()
    {
        buf_.clear();
        count_ = 0;
        data_bytes_ = 0;
    }

    /** Append one run; @p len in [1, kPageSize]. */
    void
    append(std::uint16_t offset, const std::uint8_t* data,
           std::size_t len)
    {
        const std::uint16_t len16 = static_cast<std::uint16_t>(len);
        const std::size_t at = buf_.size();
        buf_.resize(at + kHeaderBytes + len);
        std::memcpy(buf_.data() + at, &offset, 2);
        std::memcpy(buf_.data() + at + 2, &len16, 2);
        std::memcpy(buf_.data() + at + kHeaderBytes, data, len);
        count_ += 1;
        data_bytes_ += len;
    }

    const_iterator begin() const { return const_iterator(buf_.data()); }
    const_iterator
    end() const
    {
        return const_iterator(buf_.data() + buf_.size());
    }

  private:
    std::vector<std::uint8_t> buf_;
    std::uint32_t count_ = 0;
    std::size_t data_bytes_ = 0;
};

// A page offset and a run length must fit the u16 header fields;
// widen them before growing kPageSize past 64 KB.
static_assert(kPageSize <= UINT16_MAX,
              "FlatRuns headers cannot address the whole page");

/**
 * A diff: the run-length-encoded difference between a page and its
 * twin. Diffs are created lazily by the writer when first requested
 * (or when the writer must invalidate its own dirty copy), cover
 * every write up to their creation, and are cached for later
 * requesters.
 */
struct Diff
{
    ProcId writer = kNoProc;
    PageNum page = 0;
    std::uint32_t seq = 0;         ///< per-writer creation counter
    std::uint32_t coversUpTo = 0;  ///< all intervals <= this are covered
    std::uint64_t orderKey = 0;    ///< vtSum at creation (causal order)

    FlatRuns runs;

    /** Total modified bytes. */
    std::size_t dataBytes() const { return runs.dataBytes(); }
    /**
     * Modelled wire size. Adjacent runs separated by fewer than 8
     * equal bytes share one 8 B wire header, with the gap shipped as
     * data (always no more expensive than a fresh header). The merge
     * exists only in this wire-format accounting: the applied runs
     * stay byte-exact, because diffs of disjoint concurrent writes
     * must compose in any order and shipping a neighbour's gap bytes
     * as data would clobber its concurrent writes.
     */
    std::size_t wireBytes() const;
};

using DiffPtr = std::shared_ptr<const Diff>;

/**
 * Compute the diff between @p page and @p twin (both kPageSize) into
 * @p out (cleared first).
 */
void computeRuns(const std::uint8_t* page, const std::uint8_t* twin,
                 FlatRuns& out);

/**
 * Apply a diff's runs to @p page. Each run is bounds-checked
 * (offset + len <= kPageSize) under mcdsm_assert, so a corrupt wire
 * diff fails loudly instead of smashing the neighbouring page.
 */
void applyRuns(std::uint8_t* page, const FlatRuns& runs);

} // namespace mcdsm

#endif // MCDSM_TREADMARKS_TYPES_H
