/**
 * @file
 * The TreadMarks protocol (paper §2.2): lazy release consistency with
 * vector timestamps, intervals, write notices, twins and diffs.
 *
 * Unlike Cashmere, TreadMarks uses the Memory Channel purely as a
 * fast message transport: all coherence state is local, and every
 * interaction is request-response.
 *
 *  - Time on each processor is divided into intervals delimited by
 *    remote synchronization operations; each interval carries write
 *    notices for the pages written in it.
 *  - A lock acquire sends the acquirer's vector timestamp to the lock
 *    manager, which forwards to the last owner; the grant carries all
 *    intervals (and their write notices) in the owner's past that the
 *    acquirer has not seen. Pages named by incoming notices are
 *    invalidated.
 *  - A barrier sends every processor's new intervals to a manager,
 *    which merges and redistributes them.
 *  - On a page fault the processor requests diffs (run-length-encoded
 *    page-vs-twin differences) from the writers of pending notices,
 *    and applies them in causal (vector-timestamp) order.
 */

#ifndef MCDSM_TREADMARKS_TREADMARKS_H
#define MCDSM_TREADMARKS_TREADMARKS_H

#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "dsm/protocol.h"
#include "dsm/runtime.h"
#include "treadmarks/intervals.h"
#include "treadmarks/types.h"

namespace mcdsm {

/** TreadMarks message types. */
enum TmkMsg : int {
    TmkReqLock = 10,           ///< a=lock; box=VTime (requester's)
    TmkReqLockForward = 11,    ///< a=lock; b=requester; box=VTime
    TmkReqBarrierArrive = 12,  ///< a=barrier; box=ArrivalInfo
    TmkReqFlagSet = 13,        ///< a=flag; box=ArrivalInfo
    TmkReqFlagWait = 14,       ///< a=flag; box=VTime
    TmkReqDiffs = 15,          ///< a=page; b=sinceSeq

    TmkRepLockGrant = kReplyBase + 10,      ///< a=lock; box=GrantInfo
    TmkRepBarrierRelease = kReplyBase + 12, ///< a=barrier; b=epoch
    TmkRepFlagGrant = kReplyBase + 14,      ///< a=flag; box=GrantInfo
    TmkRepDiffs = kReplyBase + 15,          ///< a=page; box=DiffList
};

/** Consistency info piggybacked on grants and barrier releases. */
struct GrantInfo
{
    VTime vt;
    std::vector<IntervalRecPtr> records;
    /**
     * Modelled wire bytes of the timestamp part, set by the builder:
     * 4 * nprocs for the dense encoding, the run-length-compressed
     * size under DsmConfig::tmkSparseVt.
     */
    std::size_t vtBytes = 0;

    std::size_t
    wireBytes() const
    {
        std::size_t n = 16 + vtBytes;
        for (const auto& r : records)
            n += r->wireBytes();
        return n;
    }
};

/** Payload of a barrier-arrival / flag-set message. */
using ArrivalInfo = GrantInfo;

using DiffList = std::vector<DiffPtr>;

class TreadMarks final : public Protocol
{
  public:
    void attach(DsmRuntime& rt) override;

    void onReadFault(ProcCtx& ctx, PageNum pn) override;
    void onWriteFault(ProcCtx& ctx, PageNum pn) override;

    void acquire(ProcCtx& ctx, int lock_id) override;
    void release(ProcCtx& ctx, int lock_id) override;
    void barrier(ProcCtx& ctx, int barrier_id) override;
    void setFlag(ProcCtx& ctx, int flag_id) override;
    void waitFlag(ProcCtx& ctx, int flag_id) override;

    void procEnd(ProcCtx& ctx) override;

    void serviceRequest(ProcCtx& server, Message& msg) override;

  private:
    /** Per-page protocol metadata. */
    struct PageMeta
    {
        /** Write notices received but not yet applied: (writer, id). */
        std::vector<std::pair<ProcId, std::uint32_t>> pending;
        std::uint8_t* twin = nullptr;
        /** Newest diff seq applied, per writer. */
        ProcCounterMap lastSeqApplied;
        /** Intervals covered by applied diffs, per writer. */
        ProcCounterMap coveredUpTo;
        /**
         * Every diff composing this frame (own flushes and remote
         * diffs), kept so an out-of-order arrival can rebuild the
         * frame in causal order. A diff server ships everything newer
         * than the requester's seq — possibly intervals the requester
         * has no notices for yet — so a *causally older* diff can
         * arrive at a later fault, after newer bytes are already in
         * place. Applying it blindly would roll those bytes back (a
         * stale read the coherence oracle flags as a data-value
         * violation); see applyDiffs.
         */
        std::vector<DiffPtr> applied;
        /** Largest orderKey in `applied`. */
        std::uint64_t maxKeyApplied = 0;
        bool everMapped = false;
        /**
         * Writer-side diff cache for this page, ordered by seq (it
         * lives here rather than in a per-processor hash map so the
         * serve path is an indexed load and teardown is free).
         */
        std::vector<DiffPtr> ownDiffs;
    };

    struct PState final : ProtocolProcState
    {
        explicit PState(int nprocs, std::size_t pages)
            : vt(nprocs, 0), log(nprocs), lastBarrierVT(nprocs, 0),
              pages(pages), curMark(pages, 0)
        {}

        VTime vt;
        /**
         * Lamport clock for diff ordering. Advanced past every diff
         * stamp this processor applies (applyDiffs), so the orderKey
         * a later flushTwin assigns is strictly greater than the
         * stamp of any diff whose data this processor has seen. In a
         * data-race-free program two diffs with overlapping bytes are
         * always ordered by happens-before, and every such edge runs
         * through a notice and a diff application at the later writer
         * (or predates its twin epoch) — so conflicting diffs carry
         * strictly increasing stamps, and sorting by orderKey at a
         * reader reproduces the frame regardless of arrival order.
         * The page's vector-timestamp sum (the previous stamp) lacked
         * exactly this apply edge: a twin that survives an interval
         * close lumps writes from several causal positions into one
         * diff, and a sum taken at one of them could tie with — and
         * clobber — a causally-later writer's diff at a reader.
         */
        std::uint64_t lclock = 0;
        IntervalLog log;
        VTime lastBarrierVT;
        std::vector<PageNum> curWrites;
        std::vector<PageMeta> pages;
        std::vector<std::uint8_t> curMark;

        std::uint32_t diffSeq = 0;

        /**
         * Recycled buffer for the timestamp snapshot shipped with
         * lock / flag-wait requests (see snapshotVt). At hundreds of
         * processors the per-request make_shared of a P-word VTime is
         * a measurable share of synchronization cost.
         */
        std::shared_ptr<VTime> vtBoxCache;

        /** Completed tenures (release() calls) per lock. */
        std::unordered_map<int, std::uint32_t> lockTenuresDone;

        /** A forwarded request waiting for one of our tenures to end. */
        struct PendingFwd
        {
            std::uint32_t obligation; ///< grant after this many releases
            ProcId requester;
            VTime vt;
        };
        std::unordered_map<int, std::vector<PendingFwd>> pendingGrants;
    };

    /**
     * Lock-manager-side state (lives at proc lock%P). The manager
     * serialises requests into a chain: each request is forwarded to
     * the previous owner stamped with the *tenure* of that owner it
     * must wait for, so a forward that reaches a processor which has
     * already released (and may be re-acquiring) is granted
     * immediately instead of deadlocking the chain.
     */
    struct LockState
    {
        ProcId lastOwner = kNoProc;
        /** Grants issued (tenures started or scheduled), per proc. */
        std::vector<std::uint32_t> grantsIssued;
    };

    /**
     * Barrier-manager-side state (lives at proc 0). Waiter timestamps
     * are shared (aliased into the arrival message's payload), not
     * copied: an O(P) vector copy per arrival is an O(P^2) barrier.
     */
    struct BarrierState
    {
        int arrived = 0;
        long epoch = 0;
        std::vector<std::pair<ProcId, std::shared_ptr<const VTime>>>
            waiters;
    };

    /** Flag-manager-side state (lives at proc flag%P). */
    struct FlagState
    {
        bool set = false;
        std::vector<std::pair<ProcId, std::shared_ptr<const VTime>>>
            waiters;
    };

    PState& st(ProcCtx& ctx);

    /**
     * Immutable snapshot of s.vt to ship as a request box. Reuses the
     * per-processor buffer when no consumer still holds the previous
     * snapshot: the sender blocks until the matching grant, and a
     * grant is only sent after the request (and any forward of it)
     * has been consumed, so by the next snapshot the old box is
     * normally sole-owned and assignment recycles its heap block.
     */
    static std::shared_ptr<const VTime> snapshotVt(PState& s);

    ProcId lockManager(int lock_id) const;
    ProcId flagManager(int flag_id) const;

    /** Close the current interval if it performed any writes. */
    void closeInterval(ProcCtx& ctx);

    /** Merge received interval records; invalidate noticed pages. */
    void mergeRecords(ProcCtx& ctx, const std::vector<IntervalRecPtr>& recs);
    void mergeNotice(ProcCtx& ctx, PageNum pn, ProcId writer,
                     std::uint32_t id);

    /** Save a dirty page's modifications as a diff; drop the twin. */
    void flushTwin(ProcCtx& ctx, PageNum pn);

    /** Build the grant for @p requester (records newer than its vt). */
    GrantInfo buildGrant(ProcCtx& ctx, const VTime& req_vt);

    void grantLock(ProcCtx& owner, int lock_id, ProcId requester,
                   const VTime& req_vt);

    /**
     * Manager-side routing of a lock request. Issues a direct grant,
     * queues locally (manager is the previous owner), or forwards.
     * @return true if @p requester was granted directly with no
     *         consistency info (it was the previous owner).
     */
    bool routeLockRequest(ProcCtx& mgr, int lock_id, ProcId requester,
                          const std::shared_ptr<const VTime>& req_vt);

    /** Owner-side handling of a forwarded request. */
    void handleForward(ProcCtx& owner, int lock_id, ProcId requester,
                       const VTime& req_vt, std::uint32_t obligation);

    /** The paper's conservative guess for barrier/flag uploads. */
    ArrivalInfo buildArrival(ProcCtx& ctx);

    void applyDiffs(ProcCtx& ctx, PageNum pn,
                    std::vector<DiffPtr>& diffs);

    /** Elementwise max into s.vt, keeping s.vtSum consistent. */
    static void mergeVt(PState& s, const VTime& b);

    /** Wire bytes of a shipped timestamp (dense or sparse mode). */
    std::size_t vtWireBytes(const VTime& vt) const;

    /** Timestamp words one interval record ships (see IntervalRec). */
    std::uint32_t recVtWords() const;

    DsmRuntime* rt_ = nullptr;
    std::vector<LockState> locks_;
    std::vector<BarrierState> barriers_;
    std::vector<FlagState> flags_;
    bool sparseVt_ = false;
};

} // namespace mcdsm

#endif // MCDSM_TREADMARKS_TREADMARKS_H
