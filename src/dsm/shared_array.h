/**
 * @file
 * Typed convenience views over the shared segment.
 */

#ifndef MCDSM_DSM_SHARED_ARRAY_H
#define MCDSM_DSM_SHARED_ARRAY_H

#include "dsm/proc.h"
#include "dsm/system.h"

namespace mcdsm {

/**
 * A typed shared array: a base address plus element count. The same
 * descriptor works from the host side (initialization through
 * DsmSystem) and from inside workers (through Proc).
 */
template <typename T>
class SharedArray
{
  public:
    SharedArray() = default;

    SharedArray(GAddr base, std::size_t n) : base_(base), n_(n) {}

    /** Allocate a page-aligned array in @p sys's shared segment. */
    static SharedArray
    allocate(DsmSystem& sys, std::size_t n)
    {
        return SharedArray(sys.allocPageAligned(n * sizeof(T)), n);
    }

    GAddr base() const { return base_; }
    std::size_t size() const { return n_; }

    GAddr
    addr(std::size_t i) const
    {
        return base_ + i * sizeof(T);
    }

    T
    get(Proc& p, std::size_t i) const
    {
        return p.read<T>(addr(i));
    }

    void
    set(Proc& p, std::size_t i, T v) const
    {
        p.write<T>(addr(i), v);
    }

    /** Deliberately unsynchronized read; see Proc::readRacy. */
    T
    getRacy(Proc& p, std::size_t i) const
    {
        return p.readRacy<T>(addr(i));
    }

    /** Bulk read of elements [i, i+n) into @p dst; see Proc::readBlock. */
    void
    getRange(Proc& p, std::size_t i, T* dst, std::size_t n) const
    {
        p.readBlock<T>(addr(i), dst, n);
    }

    /** Bulk write of elements [i, i+n); see Proc::writeBlock. */
    void
    setRange(Proc& p, std::size_t i, const T* src, std::size_t n) const
    {
        p.writeBlock<T>(addr(i), src, n);
    }

    /** Host-side initialization (before run). */
    void
    init(DsmSystem& sys, std::size_t i, T v) const
    {
        sys.hostStore<T>(addr(i), v);
    }

    /** Host-side read-back. */
    T
    host(const DsmSystem& sys, std::size_t i) const
    {
        return sys.hostLoad<T>(addr(i));
    }

  private:
    GAddr base_ = 0;
    std::size_t n_ = 0;
};

} // namespace mcdsm

#endif // MCDSM_DSM_SHARED_ARRAY_H
