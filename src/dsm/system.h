/**
 * @file
 * DsmSystem — the public facade of the library.
 *
 * Typical use:
 * @code
 *     DsmConfig cfg;
 *     cfg.protocol = ProtocolKind::CsmPoll;
 *     cfg.topo = Topology::standard(8);
 *     auto sys = DsmSystem::create(cfg);
 *     auto a = SharedArray<double>::allocate(*sys, 1024);
 *     // ... host-side initialization ...
 *     sys->run([&](Proc& p) { ... parallel section ... });
 *     const RunStats& st = sys->stats();
 * @endcode
 */

#ifndef MCDSM_DSM_SYSTEM_H
#define MCDSM_DSM_SYSTEM_H

#include <functional>
#include <memory>

#include "dsm/config.h"
#include "dsm/runtime.h"

namespace mcdsm {

class Proc;

class DsmSystem
{
  public:
    /** Build a system with the protocol variant named in @p cfg. */
    static std::unique_ptr<DsmSystem> create(const DsmConfig& cfg);

    // ---- shared segment --------------------------------------------------
    GAddr
    alloc(std::size_t bytes, std::size_t align = 8)
    {
        return rt_->alloc(bytes, align);
    }

    GAddr
    allocPageAligned(std::size_t bytes)
    {
        return rt_->allocPageAligned(bytes);
    }

    void
    hostWrite(GAddr a, const void* src, std::size_t bytes)
    {
        rt_->hostWrite(a, src, bytes);
    }

    void
    hostRead(GAddr a, void* dst, std::size_t bytes) const
    {
        rt_->hostRead(a, dst, bytes);
    }

    template <typename T>
    void
    hostStore(GAddr a, T v)
    {
        rt_->hostStore<T>(a, v);
    }

    template <typename T>
    T
    hostLoad(GAddr a) const
    {
        return rt_->hostLoad<T>(a);
    }

    /**
     * Declare the traffic phases of a serving workload (host side,
     * before run); see DsmRuntime::declareServicePhases. Workers then
     * report completed requests through Proc::recordRequest and the
     * run's RunStats::service carries per-phase latency percentiles
     * and per-shard hot-key contention.
     */
    void
    declareServicePhases(const std::vector<std::string>& names,
                         int shards, std::uint32_t keys_per_shard)
    {
        rt_->declareServicePhases(names, shards, keys_per_shard);
    }

    // ---- execution ----------------------------------------------------------
    /** Run the parallel section (once per system). */
    void
    run(const std::function<void(Proc&)>& worker)
    {
        rt_->run(worker);
    }

    const RunStats& stats() const { return rt_->stats(); }
    const DsmConfig& cfg() const { return rt_->cfg(); }

    /** The underlying runtime (benchmarks read network counters). */
    DsmRuntime& runtime() { return *rt_; }

  private:
    explicit DsmSystem(std::unique_ptr<DsmRuntime> rt) : rt_(std::move(rt))
    {}

    std::unique_ptr<DsmRuntime> rt_;
};

} // namespace mcdsm

#endif // MCDSM_DSM_SYSTEM_H
