#include "dsm/system.h"

#include "cashmere/cashmere.h"
#include "common/log.h"
#include "dsm/null_protocol.h"
#include "treadmarks/treadmarks.h"

namespace mcdsm {

std::unique_ptr<DsmSystem>
DsmSystem::create(const DsmConfig& cfg)
{
    std::unique_ptr<Protocol> proto;
    switch (cfg.protocol) {
      case ProtocolKind::None:
        proto = std::make_unique<NullProtocol>();
        break;
      case ProtocolKind::CsmPp:
      case ProtocolKind::CsmInt:
      case ProtocolKind::CsmPoll:
        proto = std::make_unique<Cashmere>();
        break;
      case ProtocolKind::TmkUdpInt:
      case ProtocolKind::TmkMcInt:
      case ProtocolKind::TmkMcPoll:
        proto = std::make_unique<TreadMarks>();
        break;
    }
    mcdsm_assert(proto != nullptr, "unknown protocol kind");
    auto rt = std::make_unique<DsmRuntime>(cfg, std::move(proto));
    return std::unique_ptr<DsmSystem>(new DsmSystem(std::move(rt)));
}

} // namespace mcdsm
