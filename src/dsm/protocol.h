/**
 * @file
 * Abstract interface every coherence protocol implements.
 *
 * The runtime dispatches page faults, synchronization operations and
 * remote-request servicing into the active protocol; the protocol uses
 * the runtime's communication and accounting services (see runtime.h).
 */

#ifndef MCDSM_DSM_PROTOCOL_H
#define MCDSM_DSM_PROTOCOL_H

#include "common/types.h"
#include "dsm/proc_ctx.h"
#include "net/mailbox.h"

namespace mcdsm {

class DsmRuntime;

class Protocol
{
  public:
    virtual ~Protocol() = default;

    /** One-time binding to the runtime, before any worker starts. */
    virtual void attach(DsmRuntime& rt) = 0;

    /** Called on each worker fiber before the application body. */
    virtual void procStart(ProcCtx&) {}

    /** Called on each worker fiber after the application body. */
    virtual void procEnd(ProcCtx&) {}

    /** Read access to a page without read permission. */
    virtual void onReadFault(ProcCtx&, PageNum) = 0;

    /** Write access to a page without write permission. */
    virtual void onWriteFault(ProcCtx&, PageNum) = 0;

    /**
     * True if every shared store must be reported via afterWrite()
     * (Cashmere's write doubling).
     */
    virtual bool wantsWriteHook() const { return false; }

    /** Called after the store's bytes are in the local frame. */
    virtual void afterWrite(ProcCtx&, GAddr, std::size_t) {}

    /**
     * Symmetric to wantsWriteHook(): true if every shared load must
     * be reported via afterRead(). No shipped protocol needs it, but
     * the runtime also raises the read hook on behalf of observers
     * such as the race detector (DsmConfig::raceDetect).
     */
    virtual bool wantsReadHook() const { return false; }

    /** Called after the load's bytes left the local frame. */
    virtual void afterRead(ProcCtx&, GAddr, std::size_t) {}

    virtual void acquire(ProcCtx&, int lock_id) = 0;
    virtual void release(ProcCtx&, int lock_id) = 0;
    virtual void barrier(ProcCtx&, int barrier_id) = 0;

    /**
     * One-shot event flags with release (set) / acquire (wait)
     * semantics — the synchronization Gauss uses per pivot row.
     */
    virtual void setFlag(ProcCtx&, int flag_id) = 0;
    virtual void waitFlag(ProcCtx&, int flag_id) = 0;

    /**
     * Service one remote request on the servicing fiber (a compute
     * processor at a poll point / interrupt, or a dedicated protocol
     * processor). Dispatch cost has already been charged.
     */
    virtual void serviceRequest(ProcCtx& server, Message& msg) = 0;
};

} // namespace mcdsm

#endif // MCDSM_DSM_PROTOCOL_H
