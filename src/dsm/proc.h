/**
 * @file
 * Proc — the handle applications use inside a worker function.
 *
 * Exposes the full DSM programming model: typed reads/writes to the
 * shared segment, locks, barriers, flags, compute-time charging and
 * the loop-top poll instrumentation point.
 */

#ifndef MCDSM_DSM_PROC_H
#define MCDSM_DSM_PROC_H

#include <cstring>
#include <type_traits>

#include "dsm/runtime.h"

namespace mcdsm {

class Proc
{
  public:
    Proc(DsmRuntime& rt, ProcCtx& ctx) : rt_(rt), ctx_(ctx) {}

    /** This processor's id, 0 .. nprocs()-1. */
    ProcId id() const { return ctx_.id; }
    /** SMP node this processor lives on. */
    NodeId node() const { return ctx_.node; }
    /** Number of compute processors in the run. */
    int nprocs() const { return rt_.nprocs(); }

    /** Current virtual time (ns). */
    Time now() const { return rt_.sched().now(); }

    // ---- shared memory --------------------------------------------------
    template <typename T>
    T
    read(GAddr a)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        std::memcpy(&v, rt_.readAccess(ctx_, a, sizeof(T)), sizeof(T));
        if (rt_.readHook())
            rt_.afterRead(ctx_, a, sizeof(T));
        return v;
    }

    /**
     * A read the program declares intentionally racy (e.g. TSP's
     * best-bound refresh, which only prunes and is re-checked under
     * the lock before use). Identical to read() except the race
     * detector neither checks it nor records a read epoch — the
     * DSM-level annotation equivalent of a relaxed atomic load.
     */
    template <typename T>
    T
    readRacy(GAddr a)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T v;
        std::memcpy(&v, rt_.readAccess(ctx_, a, sizeof(T)), sizeof(T));
        return v;
    }

    template <typename T>
    void
    write(GAddr a, T v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::memcpy(rt_.writeAccess(ctx_, a, sizeof(T)), &v, sizeof(T));
        if (rt_.writeHook())
            rt_.afterWrite(ctx_, a, sizeof(T));
    }

    /**
     * Bulk read of @p n elements starting at @p a into @p dst.
     * Equivalent to n read<T>() calls but charged in bulk: one
     * permission check, one per-line cache charge and one
     * race-detector range call per contiguous page chunk (see
     * DsmRuntime::readRange). Use for contiguous inner loops — row
     * sweeps, reductions — where per-element hook dispatch dominates
     * host time.
     */
    template <typename T>
    void
    readBlock(GAddr a, T* dst, std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (n > 0)
            rt_.readRange(ctx_, a, dst, n * sizeof(T));
    }

    /** Bulk write of @p n elements; see readBlock. Writes every byte
     *  of the range, so callers must own the whole span (writing back
     *  unmodified bytes is harmless to the protocols — diffs are
     *  byte-exact — but would look like writes to the race detector).
     */
    template <typename T>
    void
    writeBlock(GAddr a, const T* src, std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (n > 0)
            rt_.writeRange(ctx_, a, src, n * sizeof(T));
    }

    // ---- synchronization --------------------------------------------------
    void acquire(int lock_id) { rt_.acquireLock(ctx_, lock_id); }
    void release(int lock_id) { rt_.releaseLock(ctx_, lock_id); }
    void barrier(int barrier_id) { rt_.barrier(ctx_, barrier_id); }
    void setFlag(int flag_id) { rt_.setFlag(ctx_, flag_id); }
    void waitFlag(int flag_id) { rt_.waitFlag(ctx_, flag_id); }

    // ---- instrumentation ---------------------------------------------------
    /**
     * Loop-top poll point — the equivalent of the paper's
     * assembly-level instrumentation at backward-referenced labels.
     * Applications call this at the top of every significant loop.
     */
    void pollPoint() { rt_.pollPoint(ctx_); }

    /** Charge @p ns nanoseconds of application compute time. */
    void compute(Time ns) { rt_.computeTime(ctx_, ns); }

    /** Charge @p ops simple operations (≈1 cycle each at 233 MHz). */
    void computeOps(std::int64_t ops) { rt_.computeOps(ctx_, ops); }

    /**
     * Report one completed serving request (see
     * DsmSystem::declareServicePhases): latency = completion minus
     * open-loop arrival time, @p lock_wait the time spent in the
     * shard-lock acquire, @p contended whether the app attributes
     * that wait to queueing behind another holder.
     */
    void
    recordRequest(int phase, int shard, std::uint32_t key, bool write,
                  Time latency, Time lock_wait, bool contended)
    {
        rt_.recordRequest(ctx_, phase, shard, key, write, latency,
                          lock_wait, contended);
    }

    /** Access to the runtime (examples / tests may want statistics). */
    DsmRuntime& runtime() { return rt_; }
    ProcCtx& ctx() { return ctx_; }

  private:
    DsmRuntime& rt_;
    ProcCtx& ctx_;
};

} // namespace mcdsm

#endif // MCDSM_DSM_PROC_H
