#include "dsm/null_protocol.h"

#include "common/log.h"
#include "dsm/runtime.h"

namespace mcdsm {

void
NullProtocol::attach(DsmRuntime& rt)
{
    rt_ = &rt;
    mcdsm_assert(rt.nprocs() == 1,
                 "ProtocolKind::None is the sequential baseline; "
                 "use 1 processor");
}

void
NullProtocol::onReadFault(ProcCtx& ctx, PageNum pn)
{
    // Map the init image directly; the runtime charges no fault cost
    // for ProtocolKind::None — the baseline is the unlinked
    // sequential program.
    ctx.mapFrame(pn, rt_->initFrame(pn));
    ctx.pt.setProtection(pn, ProtRw);
}

void
NullProtocol::onWriteFault(ProcCtx& ctx, PageNum pn)
{
    ctx.mapFrame(pn, rt_->initFrame(pn));
    ctx.pt.setProtection(pn, ProtRw);
}

void
NullProtocol::serviceRequest(ProcCtx&, Message&)
{
    mcdsm_panic("NullProtocol received a request");
}

} // namespace mcdsm
