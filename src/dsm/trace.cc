#include "dsm/trace.h"

#include "common/log.h"

namespace mcdsm {

const char*
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::ReadFault: return "read_fault";
      case TraceKind::WriteFault: return "write_fault";
      case TraceKind::LockAcquire: return "lock_acquire";
      case TraceKind::LockRelease: return "lock_release";
      case TraceKind::BarrierEnter: return "barrier_enter";
      case TraceKind::BarrierLeave: return "barrier_leave";
      case TraceKind::FlagSet: return "flag_set";
      case TraceKind::FlagWait: return "flag_wait";
      case TraceKind::MessageSend: return "message_send";
      case TraceKind::RequestService: return "request_service";
      case TraceKind::KvRequest: return "kv_request";
      case TraceKind::RdmaRead: return "rdma_read";
      case TraceKind::RdmaWrite: return "rdma_write";
      case TraceKind::RdmaCas: return "rdma_cas";
      case TraceKind::RdmaFaa: return "rdma_faa";
      case TraceKind::RdmaDoorbell: return "rdma_doorbell";
    }
    return "?";
}

std::string
TraceEvent::toString() const
{
    return strprintf("[%12lld] p%-2d %-16s arg=%llu peer=%d",
                     static_cast<long long>(time), proc,
                     traceKindName(kind),
                     static_cast<unsigned long long>(arg), peer);
}

std::vector<TraceEvent>
TraceRing::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (wrapped_) {
        out.insert(out.end(), ring_.begin() + head_, ring_.end());
        out.insert(out.end(), ring_.begin(), ring_.begin() + head_);
    } else {
        out = ring_;
    }
    return out;
}

std::vector<TraceEvent>
TraceRing::eventsOfKind(TraceKind k) const
{
    std::vector<TraceEvent> out;
    for (const auto& e : events()) {
        if (e.kind == k)
            out.push_back(e);
    }
    return out;
}

std::string
TraceRing::dump() const
{
    std::string out;
    for (const auto& e : events()) {
        out += e.toString();
        out += "\n";
    }
    return out;
}

} // namespace mcdsm
