/**
 * @file
 * Protocol event tracing.
 *
 * When enabled (DsmConfig::traceCapacity > 0) the runtime records a
 * bounded ring of protocol-level events — faults, synchronization
 * operations, request servicing, messages — with their virtual
 * timestamps. Tests assert on event sequences; users debug protocol
 * behavior by dumping the ring.
 */

#ifndef MCDSM_DSM_TRACE_H
#define MCDSM_DSM_TRACE_H

#include <string>
#include <vector>

#include "common/types.h"

namespace mcdsm {

enum class TraceKind : std::uint8_t {
    ReadFault,
    WriteFault,
    LockAcquire,
    LockRelease,
    BarrierEnter,
    BarrierLeave,
    FlagSet,
    FlagWait,
    MessageSend,
    RequestService,
    /** Completed serving request: arg = latency (ns), peer = shard. */
    KvRequest,
    // RDMA verbs (--net=rdma): arg = bytes, peer = remote node.
    RdmaRead,
    RdmaWrite,
    RdmaCas,
    RdmaFaa,
    /** Doorbell-batch flush: arg = ops posted, peer = -1. */
    RdmaDoorbell,
};

const char* traceKindName(TraceKind k);

struct TraceEvent
{
    Time time = 0;
    ProcId proc = kNoProc;
    TraceKind kind = TraceKind::ReadFault;
    /** Page number, lock/barrier/flag id, or message type. */
    std::uint64_t arg = 0;
    /** Destination endpoint (messages) or source (services). */
    std::int32_t peer = -1;

    std::string toString() const;
};

/** Bounded event ring. Disabled (capacity 0) recording is a no-op. */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity = 0) : cap_(capacity)
    {
        if (cap_ > 0)
            ring_.reserve(cap_);
    }

    bool enabled() const { return cap_ > 0; }

    void
    record(Time t, ProcId p, TraceKind k, std::uint64_t arg,
           std::int32_t peer = -1)
    {
        if (cap_ == 0)
            return;
        ++total_;
        if (ring_.size() < cap_) {
            ring_.push_back({t, p, k, arg, peer});
        } else {
            ring_[head_] = {t, p, k, arg, peer};
            head_ = (head_ + 1) % cap_;
            wrapped_ = true;
        }
    }

    /** Events in chronological order (oldest first). */
    std::vector<TraceEvent> events() const;

    /** Events of one kind, chronological. */
    std::vector<TraceEvent> eventsOfKind(TraceKind k) const;

    /** Total recorded (including overwritten). */
    std::size_t recorded() const { return total_; }

    bool dropped() const { return wrapped_; }

    /** Render the ring as text, one event per line. */
    std::string dump() const;

  private:
    std::size_t cap_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::size_t total_ = 0;
    bool wrapped_ = false;
};

} // namespace mcdsm

#endif // MCDSM_DSM_TRACE_H
