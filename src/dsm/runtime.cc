#include "dsm/runtime.h"

#include <algorithm>
#include <cstring>

#include "common/rc_ptr.h"
#include "dsm/proc.h"
#include "sim/engine.h"

namespace mcdsm {

const char*
protocolName(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::None: return "none";
      case ProtocolKind::CsmPp: return "csm_pp";
      case ProtocolKind::CsmInt: return "csm_int";
      case ProtocolKind::CsmPoll: return "csm_poll";
      case ProtocolKind::TmkUdpInt: return "tmk_udp_int";
      case ProtocolKind::TmkMcInt: return "tmk_mc_int";
      case ProtocolKind::TmkMcPoll: return "tmk_mc_poll";
    }
    return "?";
}

const char*
timeCatName(TimeCat c)
{
    switch (c) {
      case TimeCat::User: return "User";
      case TimeCat::Poll: return "Polling";
      case TimeCat::Doubling: return "Write doubling";
      case TimeCat::Protocol: return "Protocol";
      case TimeCat::CommWait: return "Comm & Wait";
    }
    return "?";
}

DsmRuntime::DsmRuntime(const DsmConfig& cfg,
                       std::unique_ptr<Protocol> protocol)
    : cfg_(cfg), costs_(cfg.costs), pool_(&prof_, cfg.memPool),
      protocol_(std::move(protocol)),
      batch_ops_(cfg.topo.nodes, 0),
      req_mode_(reqModeOf(cfg.protocol)),
      page_count_(cfg.maxSharedBytes >> kPageShift)
{
    // Cost sweeps apply before anything (backends, caches, protocol
    // constants) reads the model; the null plan leaves costs_
    // untouched. Backends hold the model by reference and read it
    // lazily, so constructing net_ after this point is not required
    // for correctness — but keeping the order makes it obvious.
    if (cfg_.fault.costActive()) {
        if (!applyCostFactor(costs_, cfg_.fault.costField,
                             cfg_.fault.costFactor)) {
            mcdsm_fatal("unknown cost field '%s' in fault plan",
                        cfg_.fault.costField.c_str());
        }
    }
    net_ = makeNetworkBackend(cfg_.net, costs_, cfg_.topo.nodes);
    rdma_page_read_ = net_->supportsOneSided() && cfg_.rdmaPageRead;
    rdma_dir_atomics_ = net_->supportsOneSided() && cfg_.rdmaDirAtomics;
    rdma_pull_diffs_ = net_->supportsOneSided() && cfg_.rdmaPullDiffs;
    if (cfg_.fault.active()) {
        faults_ = std::make_unique<FaultInjector>(cfg_.fault, cfg_.topo);
        if (faults_->perturbsNetwork())
            net_->attachFaults(faults_.get());
        if (faults_->perturbsNodes()) {
            straggler_mode_ = cfg_.fault.stragglerCompute != 1.0;
            node_costs_.reserve(cfg_.topo.nodes);
            node_compute_.reserve(cfg_.topo.nodes);
            for (NodeId n = 0; n < cfg_.topo.nodes; ++n) {
                node_costs_.push_back(faults_->nodeCosts(costs_, n));
                node_compute_.push_back(faults_->computeFactor(n));
            }
        }
    }

    mail_ = std::make_unique<MailboxSystem>(sched_, *net_, costs_,
                                            cfg_.topo);
    init_ = std::vector<std::atomic<std::uint8_t*>>(page_count_);
    trace_ = TraceRing(cfg_.traceCapacity);

    // Parallel engine setup must precede protocol_->attach(): the
    // engine forces the rdma pull-diffs fast path off (it reads the
    // writer's protocol state directly across processors) and
    // protocols may cache the flag at attach time.
    if (engineEligible()) {
        engine_workers_ =
            std::min(cfg_.simThreads, std::max(1, cfg_.topo.nodes));
        engine_ = std::make_unique<Engine>(sched_, engine_workers_,
                                           net_->minCrossNodeLatency());
        mail_->enableEngine(engine_.get(), engine_workers_);
        engine_->setDrainHook([this] { mail_->drainStaged(); });
        rdma_pull_diffs_ = false;
        if (engine_workers_ > 1) {
            // Shared structures crossed by more than one host thread;
            // single-worker engine runs keep the cheap paths.
            RcCounted::enableAtomicMode();
            pool_.setSerialized(true);
        }
    }

    int_mode_ = (req_mode_ == ReqMode::Interrupt);
    polls_while_waiting_ = pollsWhileWaiting(cfg_.protocol);

    if (req_mode_ == ReqMode::ProtocolProcessor) {
        mcdsm_assert(cfg_.topo.procsPerNode < DsmConfig::kCpusPerNode,
                     "csm_pp needs a spare CPU per node");
    }

    // Compute-processor contexts.
    for (ProcId p = 0; p < cfg_.topo.nprocs; ++p) {
        auto ctx = std::make_unique<ProcCtx>(p, cfg_.topo.nodeOf(p),
                                             page_count_, cfg_.cache,
                                             costs_);
        procs_.push_back(std::move(ctx));
    }
    // Protocol-processor contexts (always created; only scheduled in
    // pp mode).
    for (NodeId n = 0; n < cfg_.topo.nodes; ++n) {
        auto ctx = std::make_unique<ProcCtx>(mail_->ppEndpoint(n), n,
                                             page_count_, cfg_.cache,
                                             costs_);
        ctx->isPp = true;
        procs_.push_back(std::move(ctx));
    }

    protocol_->attach(*this);

    CheckConfig checks = cfg_.checks;
    checks.race = checks.race || cfg_.raceDetect;
    if (checks.any()) {
        checks_ = std::make_unique<CheckerSuite>(
            checks, cfg_.topo.nprocs, page_count_, cfg_.raceChunkShift,
            cfg_.raceMaxReports);
        data_checks_ = checks_->needsDataHooks();
    }
    write_hook_ = protocol_->wantsWriteHook() || data_checks_;
    read_hook_ = protocol_->wantsReadHook() || data_checks_;

    if (cfg_.schedSeed != 0)
        sched_.perturb(cfg_.schedSeed, cfg_.schedMaxJitter);
}

DsmRuntime::~DsmRuntime() = default;

/**
 * The parallel engine covers the core experiment grid. Excluded, with
 * silent fallback to the legacy loop (so --sim-threads can be set
 * globally for a batch):
 *  - verification analyses and tracing: the checkers and the trace
 *    ring are cross-processor shared state with order-sensitive
 *    internals;
 *  - schedule perturbation: jitter draws come from one sequential PRNG;
 *  - Cashmere: its home-node directory is read and written directly
 *    across processors rather than through messages;
 *  - the pp request mode: protocol-processor fibers poll peer queues
 *    outside the mailbox wake discipline.
 */
bool
DsmRuntime::engineEligible() const
{
    return cfg_.simThreads >= 1 && !cfg_.checks.any() &&
           !cfg_.raceDetect && cfg_.traceCapacity == 0 &&
           cfg_.schedSeed == 0 && !isCashmere(cfg_.protocol) &&
           req_mode_ != ReqMode::ProtocolProcessor;
}

int
DsmRuntime::activeWorkers() const
{
    return engine_ != nullptr ? engine_->activeCount() : active_workers_;
}

GAddr
DsmRuntime::alloc(std::size_t bytes, std::size_t align)
{
    mcdsm_assert(align != 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
    mcdsm_assert(!ran_,
                 "shared allocation after run() started (protocol page "
                 "tables are sized by activePageCount at first use)");
    alloc_bytes_ = (alloc_bytes_ + align - 1) & ~(align - 1);
    GAddr a = alloc_bytes_;
    alloc_bytes_ += bytes;
    if (alloc_bytes_ > cfg_.maxSharedBytes) {
        mcdsm_fatal("shared segment exhausted (%zu > %zu bytes)",
                    alloc_bytes_, cfg_.maxSharedBytes);
    }
    return a;
}

GAddr
DsmRuntime::allocPageAligned(std::size_t bytes)
{
    return alloc(bytes, kPageSize);
}

std::size_t
DsmRuntime::activePageCount() const
{
    const std::size_t sp = static_cast<std::size_t>(
        std::max(1, cfg_.effectiveSuperpagePages(page_count_)));
    std::size_t pages = (alloc_bytes_ + kPageSize - 1) >> kPageShift;
    pages = (pages + sp - 1) / sp * sp;
    return std::min(pages, page_count_);
}

std::uint8_t*
DsmRuntime::initFrame(PageNum pn)
{
    mcdsm_assert(pn < page_count_, "page out of range");
    std::uint8_t* f = init_[pn].load(std::memory_order_acquire);
    if (f != nullptr)
        return f;
    // Double-checked creation: under the parallel engine two
    // processors can demand the same page's init image at once. The
    // frame contents are the same (zeros, or pre-run hostWrite data
    // published before tasks start), so whoever wins is immaterial.
    std::lock_guard<std::mutex> lk(init_mu_);
    f = init_[pn].load(std::memory_order_relaxed);
    if (f == nullptr) {
        f = pool_.acquire(MemSite::Frame);
        std::memset(f, 0, kPageSize);
        init_[pn].store(f, std::memory_order_release);
    }
    return f;
}

void
DsmRuntime::hostWrite(GAddr a, const void* src, std::size_t bytes)
{
    const auto* s = static_cast<const std::uint8_t*>(src);
    while (bytes > 0) {
        const PageNum pn = pageOf(a);
        const std::size_t off = pageOffset(a);
        const std::size_t chunk = std::min(bytes, kPageSize - off);
        std::memcpy(initFrame(pn) + off, s, chunk);
        a += chunk;
        s += chunk;
        bytes -= chunk;
    }
}

void
DsmRuntime::hostRead(GAddr a, void* dst, std::size_t bytes) const
{
    auto* d = static_cast<std::uint8_t*>(dst);
    while (bytes > 0) {
        const PageNum pn = pageOf(a);
        const std::size_t off = pageOffset(a);
        const std::size_t chunk = std::min(bytes, kPageSize - off);
        const std::uint8_t* f =
            init_[pn].load(std::memory_order_acquire);
        if (f != nullptr)
            std::memcpy(d, f + off, chunk);
        else
            std::memset(d, 0, chunk);
        a += chunk;
        d += chunk;
        bytes -= chunk;
    }
}

std::uint8_t*
DsmRuntime::allocFrame()
{
    return pool_.acquire(MemSite::Frame);
}

void
DsmRuntime::freeFrame(std::uint8_t* frame)
{
    pool_.release(frame, MemSite::Frame);
}

ProcId
DsmRuntime::requestEndpointForNode(NodeId n) const
{
    if (req_mode_ == ReqMode::ProtocolProcessor)
        return mail_->ppEndpoint(n);
    return cfg_.topo.firstProcOf(n);
}

void
DsmRuntime::handleReadFault(ProcCtx& ctx, PageNum pn)
{
    if (cfg_.protocol != ProtocolKind::None) {
        ctx.stats.readFaults += 1;
        charge(ctx, TimeCat::Protocol, costs(ctx.node).pageFault);
    }
    trace_.record(sched_.now(), ctx.id, TraceKind::ReadFault, pn);
    protocol_->onReadFault(ctx, pn);
    mcdsm_assert(ctx.pt.canRead(pn) && ctx.frame(pn) != nullptr,
                 "protocol did not resolve read fault");
}

void
DsmRuntime::handleWriteFault(ProcCtx& ctx, PageNum pn)
{
    if (cfg_.protocol != ProtocolKind::None) {
        ctx.stats.writeFaults += 1;
        charge(ctx, TimeCat::Protocol, costs(ctx.node).pageFault);
    }
    trace_.record(sched_.now(), ctx.id, TraceKind::WriteFault, pn);
    protocol_->onWriteFault(ctx, pn);
    mcdsm_assert(ctx.pt.canWrite(pn) && ctx.frame(pn) != nullptr,
                 "protocol did not resolve write fault");
}

void
DsmRuntime::acquireLock(ProcCtx& ctx, int lock_id)
{
    mcdsm_assert(lock_id >= 0 && lock_id < cfg_.numLocks, "bad lock id");
    // Synchronization operations are ordering points: yield so that
    // lower-virtual-clock processors perform their (causally earlier)
    // synchronization first. Without this a never-blocking processor
    // could monopolize a lock forever.
    sched_.yield();
    ctx.stats.lockAcquires += 1;
    trace_.record(sched_.now(), ctx.id, TraceKind::LockAcquire, lock_id);
    // The lock-order graph records held->requested edges before the
    // processor may block: the edge must exist even if the run then
    // deadlocks.
    if (checks_)
        checks_->beforeAcquire(ctx.id, lock_id, sched_.now());
    protocol_->acquire(ctx, lock_id);
    // The detectors join the lock's clock only once the lock is held:
    // by then the previous holder has published via beforeRelease.
    if (checks_)
        checks_->afterAcquire(ctx.id, lock_id);
}

void
DsmRuntime::releaseLock(ProcCtx& ctx, int lock_id)
{
    mcdsm_assert(lock_id >= 0 && lock_id < cfg_.numLocks, "bad lock id");
    sched_.yield();
    trace_.record(sched_.now(), ctx.id, TraceKind::LockRelease, lock_id);
    if (checks_)
        checks_->beforeRelease(ctx.id, lock_id);
    protocol_->release(ctx, lock_id);
}

void
DsmRuntime::barrier(ProcCtx& ctx, int barrier_id)
{
    mcdsm_assert(barrier_id >= 0 && barrier_id < cfg_.numBarriers,
                 "bad barrier id");
    sched_.yield();
    ctx.stats.barriers += 1;
    trace_.record(sched_.now(), ctx.id, TraceKind::BarrierEnter,
                  barrier_id);
    if (checks_)
        checks_->barrierEnter(ctx.id, barrier_id, sched_.now());
    protocol_->barrier(ctx, barrier_id);
    if (checks_)
        checks_->barrierLeave(ctx.id, barrier_id);
    trace_.record(sched_.now(), ctx.id, TraceKind::BarrierLeave,
                  barrier_id);
}

void
DsmRuntime::setFlag(ProcCtx& ctx, int flag_id)
{
    mcdsm_assert(flag_id >= 0 && flag_id < cfg_.numFlags, "bad flag id");
    sched_.yield();
    ctx.stats.flagOps += 1;
    trace_.record(sched_.now(), ctx.id, TraceKind::FlagSet, flag_id);
    // Publish before the protocol makes the flag observable.
    if (checks_)
        checks_->beforeFlagSet(ctx.id, flag_id);
    protocol_->setFlag(ctx, flag_id);
}

void
DsmRuntime::waitFlag(ProcCtx& ctx, int flag_id)
{
    mcdsm_assert(flag_id >= 0 && flag_id < cfg_.numFlags, "bad flag id");
    sched_.yield();
    ctx.stats.flagOps += 1;
    trace_.record(sched_.now(), ctx.id, TraceKind::FlagWait, flag_id);
    protocol_->waitFlag(ctx, flag_id);
    // Join only after the wait completed: the setter has published.
    if (checks_)
        checks_->afterFlagWait(ctx.id, flag_id);
}

Time
DsmRuntime::sendMessage(ProcCtx& ctx, ProcId dst, Message msg)
{
    trace_.record(sched_.now(), ctx.id, TraceKind::MessageSend,
                  static_cast<std::uint64_t>(msg.type), dst);
    const Time t0 = sched_.now();
    const Time arrival =
        mail_->send(ctx.id, dst, std::move(msg), transportOf(cfg_.protocol));
    const Time dt = sched_.now() - t0;
    ctx.stats.timeIn[static_cast<int>(TimeCat::Protocol)] += dt;
    ctx.accounted += dt;
    return arrival;
}

void
DsmRuntime::serviceArrived(ProcCtx& ctx, bool in_wait)
{
    const CostModel& nc = costs(ctx.node);
    for (;;) {
        const Time now = sched_.now();
        auto msg = mail_->tryReceiveIf(
            ctx.id, now, [&](const Message& m) {
                if (m.type >= kReplyBase)
                    return false;
                if (req_mode_ != ReqMode::Interrupt)
                    return true;
                if (in_wait && polls_while_waiting_)
                    return true;
                return m.arrival + nc.remoteSignalLatency <= now;
            });
        if (!msg)
            return;

        Time overhead =
            nc.handlerDispatch + mail_->receiveCpuCost(*msg);
        const bool via_signal =
            req_mode_ == ReqMode::Interrupt &&
            !(in_wait && polls_while_waiting_);
        if (via_signal)
            overhead += nc.localSignal;
        charge(ctx, TimeCat::Protocol, overhead);
        ctx.stats.requestsServiced += 1;
        trace_.record(sched_.now(), ctx.id, TraceKind::RequestService,
                      static_cast<std::uint64_t>(msg->type), msg->src);
        protocol_->serviceRequest(ctx, *msg);
    }
}

Time
DsmRuntime::nextActionable(ProcCtx& ctx, bool in_wait) const
{
    const bool delay_requests =
        req_mode_ == ReqMode::Interrupt &&
        !(in_wait && polls_while_waiting_);
    const Time sig = costs(ctx.node).remoteSignalLatency;
    const Time now = sched_.now();
    // Only strictly-future events arm a self-wake: anything already
    // actionable was just examined by the caller and found
    // unconsumable (e.g. a reply for a different outstanding request),
    // so re-waking for it would mask the wake needed for a later
    // message.
    return mail_->minActionable(ctx.id, [&](const Message& m) -> Time {
        Time t;
        if (m.type >= kReplyBase)
            t = m.arrival;
        else
            t = delay_requests ? m.arrival + sig : m.arrival;
        return t > now ? t : -1;
    });
}

void
DsmRuntime::waitEvent(ProcCtx& ctx, const std::function<bool()>& ready)
{
    const Time t0 = sched_.now();
    const Time a0 = ctx.accounted;
    sched_.yield();
    for (;;) {
        serviceArrived(ctx, true);
        if (ready())
            break;
        const Time next = nextActionable(ctx, true);
        if (next >= 0 && next > sched_.now())
            sched_.wake(ctx.task, next);
        sched_.block();
    }
    const Time waited = (sched_.now() - t0) - (ctx.accounted - a0);
    if (waited > 0) {
        ctx.stats.timeIn[static_cast<int>(TimeCat::CommWait)] += waited;
        ctx.accounted += waited;
    }
}

void
DsmRuntime::lingerLoop(ProcCtx& ctx)
{
    while (activeWorkers() > 0) {
        serviceArrived(ctx, true);
        if (activeWorkers() == 0)
            break;
        const Time next = nextActionable(ctx, true);
        if (next >= 0 && next > sched_.now())
            sched_.wake(ctx.task, next);
        sched_.block();
    }
}

void
DsmRuntime::ppLoop(ProcCtx& pp)
{
    for (;;) {
        bool serviced = false;
        for (;;) {
            auto m = mail_->tryReceive(pp.id, sched_.now());
            if (!m)
                break;
            charge(pp, TimeCat::Protocol,
                   costs_.handlerDispatch + mail_->receiveCpuCost(*m));
            pp.stats.requestsServiced += 1;
            protocol_->serviceRequest(pp, *m);
            serviced = true;
        }
        if (serviced)
            continue;
        if (activeWorkers() == 0)
            return;
        const Time next = mail_->earliestArrival(pp.id);
        if (next >= 0 && next > sched_.now()) {
            sched_.wake(pp.task, next);
            sched_.block();
            continue;
        }
        if (next < 0)
            sched_.block();
    }
}

void
DsmRuntime::run(const std::function<void(Proc&)>& worker)
{
    mcdsm_assert(!ran_, "DsmRuntime::run() may only be called once");
    ran_ = true;

    active_workers_ = nprocs();

    for (ProcId p = 0; p < nprocs(); ++p) {
        ProcCtx* ctx = procs_[p].get();
        TaskId task = sched_.spawn(
            strprintf("proc%d", p),
            [this, ctx, &worker](TaskId) {
                protocol_->procStart(*ctx);
                {
                    Proc proc(*this, *ctx);
                    worker(proc);
                }
                protocol_->procEnd(*ctx);
                ctx->stats.endTime = sched_.now();
                if (engine_ != nullptr) {
                    // Engine mode: the decrement lands at the next
                    // epoch barrier so every worker sees the same
                    // count for a whole epoch; the engine performs
                    // the shutdown storm when it reaches zero. Every
                    // finisher lingers — the loop exits right after
                    // the barrier that applies the last finish.
                    engine_->noteFinish();
                    lingerLoop(*ctx);
                } else if (--active_workers_ == 0) {
                    // Unblock lingering workers and idle protocol
                    // processors for shutdown.
                    for (const auto& other : procs_) {
                        if (other.get() != ctx && other->task >= 0) {
                            sched_.wake(other->task,
                                        sched_.timeOf(other->task));
                        }
                    }
                } else {
                    // Stay resident until every worker is done: real
                    // processes keep servicing remote requests (page
                    // fetches, diffs, lock forwards) while sitting at
                    // the exit barrier.
                    lingerLoop(*ctx);
                }
            });
        ctx->task = task;
        mail_->bindTask(ctx->id, task);
        if (engine_ != nullptr)
            engine_->assignTask(task, ctx->node % engine_workers_);
    }

    if (req_mode_ == ReqMode::ProtocolProcessor) {
        for (NodeId n = 0; n < cfg_.topo.nodes; ++n) {
            ProcCtx* ctx = procs_[nprocs() + n].get();
            TaskId task = sched_.spawn(strprintf("pp%d", n),
                                       [this, ctx](TaskId) { ppLoop(*ctx); });
            ctx->task = task;
            mail_->bindTask(ctx->id, task);
        }
    }

    bool all_finished;
    if (engine_ != nullptr) {
        engine_->setInitialActive(nprocs());
        all_finished = engine_->run();
    } else {
        all_finished = sched_.run();
    }
    if (!all_finished) {
        for (const auto& ctx : procs_) {
            if (ctx->task >= 0) {
                std::string types;
                mail_->minActionable(ctx->id, [&](const Message& m) {
                    types += strprintf(" (type=%d src=%d a=%llu t=%lld)",
                                       m.type, m.src,
                                       (unsigned long long)m.a,
                                       (long long)m.arrival);
                    return m.arrival;
                });
                std::fprintf(stderr,
                             "  endpoint %d: t=%lld wait=%s(%llu,%llu)"
                             " queued:%s\n",
                             ctx->id,
                             (long long)sched_.timeOf(ctx->task),
                             ctx->waitNote,
                             (unsigned long long)ctx->waitArg0,
                             (unsigned long long)ctx->waitArg1,
                             types.c_str());
            }
        }
        mcdsm_panic("%s", sched_.deadlockReport().c_str());
    }

    collectStats();
}

void
DsmRuntime::declareServicePhases(const std::vector<std::string>& names,
                                 int shards,
                                 std::uint32_t keys_per_shard)
{
    mcdsm_assert(!ran_, "declare service phases before run()");
    mcdsm_assert(shards > 0, "serving workload needs >= 1 shard");
    service_.clear();
    service_.reserve(names.size());
    for (const auto& name : names) {
        ServicePhaseAccum ph;
        ph.stats.name = name;
        ph.stats.shards.assign(static_cast<std::size_t>(shards),
                               ShardStats{});
        ph.keyCounts.assign(
            static_cast<std::size_t>(shards),
            std::vector<std::uint32_t>(keys_per_shard, 0));
        service_.push_back(std::move(ph));
    }
}

void
DsmRuntime::recordRequest(ProcCtx& ctx, int phase, int shard,
                          std::uint32_t key, bool write, Time latency,
                          Time lock_wait, bool contended)
{
    mcdsm_assert(phase >= 0 &&
                     phase < static_cast<int>(service_.size()),
                 "recordRequest: phase %d not declared", phase);
    // The accumulators are cross-processor shared state; under the
    // engine several host threads record at once. Every update is
    // commutative (sums, counts, histogram buckets), so the totals
    // are deterministic regardless of arrival order.
    std::unique_lock<std::mutex> lk(record_mu_, std::defer_lock);
    if (engine_ != nullptr)
        lk.lock();
    ServicePhaseAccum& ph = service_[phase];
    mcdsm_assert(shard >= 0 &&
                     shard < static_cast<int>(ph.stats.shards.size()),
                 "recordRequest: bad shard %d", shard);
    mcdsm_assert(key < ph.keyCounts[shard].size(),
                 "recordRequest: bad key %u", key);
    ph.stats.latency.record(
        latency > 0 ? static_cast<std::uint64_t>(latency) : 0);
    ShardStats& ss = ph.stats.shards[shard];
    ss.requests += 1;
    if (write)
        ss.writes += 1;
    else
        ss.reads += 1;
    if (contended)
        ss.contendedAcquires += 1;
    ss.lockWait += lock_wait;
    ph.keyCounts[shard][key] += 1;
    trace_.record(sched_.now(), ctx.id, TraceKind::KvRequest,
                  latency > 0 ? static_cast<std::uint64_t>(latency) : 0,
                  shard);
}

void
DsmRuntime::collectStats()
{
    stats_.procs.clear();
    stats_.nodes.assign(static_cast<std::size_t>(cfg_.topo.nodes),
                        NodeStats{});
    for (NodeId n = 0; n < cfg_.topo.nodes; ++n)
        stats_.nodes[n].node = n;
    Time elapsed = 0;
    for (ProcId p = 0; p < nprocs(); ++p) {
        ProcCtx& ctx = *procs_[p];
        ProcStats s = ctx.stats;
        s.messagesSent = mail_->messagesSentBy(p);
        s.bytesSent = mail_->bytesSentBy(p);
        s.cacheAccesses = ctx.cache.accesses();
        s.l1Misses = ctx.cache.l1Misses();
        s.l2Misses = ctx.cache.l2Misses();
        s.vmProtOps = ctx.pt.protectOps();
        NodeStats& ns = stats_.nodes[ctx.node];
        ns.procs += 1;
        ns.endTime = std::max(ns.endTime, s.endTime);
        ns.messagesSent += s.messagesSent;
        ns.bytesSent += s.bytesSent;
        ns.pageFaults += s.readFaults + s.writeFaults;
        ns.requestsServiced += s.requestsServiced;
        stats_.procs.push_back(s);
        elapsed = std::max(elapsed, s.endTime);
    }
    stats_.elapsed = elapsed;
    stats_.mcBytes = net_->totalBytes();
    stats_.mcStreamBytes = net_->streamBytes();
    stats_.messages = mail_->totalMessages();
    stats_.netOneSidedBytes = net_->oneSidedBytes();
    stats_.rdmaReads = net_->readVerbs();
    stats_.rdmaWrites = net_->writeVerbs();
    stats_.rdmaCasOps = net_->casVerbs();
    stats_.rdmaFaaOps = net_->faaVerbs();
    stats_.rdmaDoorbells = net_->doorbells();
    if (checks_)
        checks_->finish();
    stats_.racesDetected =
        raceChecker() ? raceChecker()->raceCount() : 0;
    stats_.checkViolations = checks_ ? checks_->violations() : 0;
    stats_.mem = prof_.stats();

    // Serving statistics: reduce the per-key hit tables to each
    // shard's hottest key, then hand the phases to RunStats.
    stats_.service.phases.clear();
    for (ServicePhaseAccum& ph : service_) {
        for (std::size_t s = 0; s < ph.stats.shards.size(); ++s) {
            const auto& keys = ph.keyCounts[s];
            std::uint32_t hot = 0;
            std::uint32_t hot_n = 0;
            for (std::uint32_t k = 0;
                 k < static_cast<std::uint32_t>(keys.size()); ++k) {
                if (keys[k] > hot_n) {
                    hot_n = keys[k];
                    hot = k;
                }
            }
            ph.stats.shards[s].hotKey = hot;
            ph.stats.shards[s].hotKeyRequests = hot_n;
        }
        stats_.service.phases.push_back(std::move(ph.stats));
    }
    service_.clear();
}

} // namespace mcdsm
