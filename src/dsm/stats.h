/**
 * @file
 * Per-processor and per-run statistics. These are the quantities the
 * paper reports in Table 3 (communication statistics) and Figure 6
 * (execution-time breakdown).
 */

#ifndef MCDSM_DSM_STATS_H
#define MCDSM_DSM_STATS_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/alloc_profiler.h"

namespace mcdsm {

/**
 * Execution-time categories of Figure 6. Unlike the paper (which
 * extrapolates User/Polling/Doubling from single-processor runs), the
 * simulator measures each category directly.
 */
enum class TimeCat : int {
    User = 0,     ///< application compute + memory-hierarchy time
    Poll,         ///< loop-top poll instrumentation
    Doubling,     ///< Cashmere write doubling (2nd store + MC issue)
    Protocol,     ///< protocol code: faults, directory, twins, diffs
    CommWait,     ///< communication + synchronization wait
};
constexpr int kTimeCatCount = 5;

const char* timeCatName(TimeCat c);

struct ProcStats
{
    // Event counts (Table 3 rows).
    std::uint64_t readFaults = 0;
    std::uint64_t writeFaults = 0;
    std::uint64_t pageTransfers = 0; ///< whole-page copies (Cashmere)
    std::uint64_t lockAcquires = 0;  ///< application lock acquires
    std::uint64_t barriers = 0;      ///< application barrier episodes
    std::uint64_t flagOps = 0;       ///< application flag waits+sets

    // Protocol internals.
    std::uint64_t twins = 0;
    std::uint64_t diffsCreated = 0;
    std::uint64_t diffsApplied = 0;
    std::uint64_t diffBytes = 0;
    std::uint64_t writeNoticesSent = 0;
    std::uint64_t dirUpdates = 0;
    std::uint64_t requestsServiced = 0;

    // Communication (filled from the mailbox at run end).
    std::uint64_t messagesSent = 0;
    std::uint64_t bytesSent = 0;

    // Memory hierarchy.
    std::uint64_t cacheAccesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t vmProtOps = 0;

    /// Figure 6 breakdown.
    Time timeIn[kTimeCatCount] = {0, 0, 0, 0, 0};
    /// Virtual time at which this processor finished the worker.
    Time endTime = 0;
};

/**
 * Per-node rollup of the processor statistics. Straggler fault
 * scenarios (src/fault/) report through this which node bound the
 * run; healthy runs use it to check load balance across the ladder.
 */
struct NodeStats
{
    NodeId node = 0;
    int procs = 0; ///< compute processors on this node
    /** Latest worker end time on the node. */
    Time endTime = 0;
    std::uint64_t messagesSent = 0;
    std::uint64_t bytesSent = 0;
    /** Read + write page faults taken on the node. */
    std::uint64_t pageFaults = 0;
    std::uint64_t requestsServiced = 0;
};

struct RunStats
{
    std::vector<ProcStats> procs;

    /** Per-node rollup (one entry per topology node). */
    std::vector<NodeStats> nodes;

    /** Wall (virtual) time of the parallel section: max end time. */
    Time elapsed = 0;

    /** Total bytes through the Memory Channel hub. */
    std::uint64_t mcBytes = 0;
    /** Of which: write-through (doubled-write) traffic. */
    std::uint64_t mcStreamBytes = 0;
    /** Total mailbox messages (both systems; "Messages" in Table 3). */
    std::uint64_t messages = 0;

    /**
     * Data races detected (always 0 unless DsmConfig::raceDetect;
     * detailed reports via DsmRuntime::raceChecker()).
     */
    std::uint64_t racesDetected = 0;

    /**
     * Host-side allocation counters (src/mem/). Unlike every other
     * field, these describe the *host* execution, legitimately vary
     * with DsmConfig::memPool, and are excluded from bit-identity
     * comparisons between runs.
     */
    MemStats mem;

    /** Sum a per-processor counter across processors. */
    template <typename F>
    std::uint64_t
    total(F field) const
    {
        std::uint64_t sum = 0;
        for (const auto& p : procs)
            sum += field(p);
        return sum;
    }

    /** Total time spent in a category across processors. */
    Time
    totalTime(TimeCat c) const
    {
        Time sum = 0;
        for (const auto& p : procs)
            sum += p.timeIn[static_cast<int>(c)];
        return sum;
    }

    /** Node whose last worker finished last (binds the run). */
    NodeId
    slowestNode() const
    {
        NodeId worst = 0;
        Time worst_end = -1;
        for (const auto& n : nodes) {
            if (n.endTime > worst_end) {
                worst_end = n.endTime;
                worst = n.node;
            }
        }
        return worst;
    }
};

} // namespace mcdsm

#endif // MCDSM_DSM_STATS_H
