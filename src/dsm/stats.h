/**
 * @file
 * Per-processor and per-run statistics. These are the quantities the
 * paper reports in Table 3 (communication statistics) and Figure 6
 * (execution-time breakdown).
 */

#ifndef MCDSM_DSM_STATS_H
#define MCDSM_DSM_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "mem/alloc_profiler.h"

namespace mcdsm {

/**
 * Execution-time categories of Figure 6. Unlike the paper (which
 * extrapolates User/Polling/Doubling from single-processor runs), the
 * simulator measures each category directly.
 */
enum class TimeCat : int {
    User = 0,     ///< application compute + memory-hierarchy time
    Poll,         ///< loop-top poll instrumentation
    Doubling,     ///< Cashmere write doubling (2nd store + MC issue)
    Protocol,     ///< protocol code: faults, directory, twins, diffs
    CommWait,     ///< communication + synchronization wait
};
constexpr int kTimeCatCount = 5;

const char* timeCatName(TimeCat c);

struct ProcStats
{
    // Event counts (Table 3 rows).
    std::uint64_t readFaults = 0;
    std::uint64_t writeFaults = 0;
    std::uint64_t pageTransfers = 0; ///< whole-page copies (Cashmere)
    std::uint64_t lockAcquires = 0;  ///< application lock acquires
    std::uint64_t barriers = 0;      ///< application barrier episodes
    std::uint64_t flagOps = 0;       ///< application flag waits+sets

    // Protocol internals.
    std::uint64_t twins = 0;
    std::uint64_t diffsCreated = 0;
    std::uint64_t diffsApplied = 0;
    std::uint64_t diffBytes = 0;
    std::uint64_t writeNoticesSent = 0;
    std::uint64_t dirUpdates = 0;
    std::uint64_t requestsServiced = 0;

    // Communication (filled from the mailbox at run end).
    std::uint64_t messagesSent = 0;
    std::uint64_t bytesSent = 0;

    // Memory hierarchy.
    std::uint64_t cacheAccesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t vmProtOps = 0;

    /// Figure 6 breakdown.
    Time timeIn[kTimeCatCount] = {0, 0, 0, 0, 0};
    /// Virtual time at which this processor finished the worker.
    Time endTime = 0;
};

/**
 * Per-node rollup of the processor statistics. Straggler fault
 * scenarios (src/fault/) report through this which node bound the
 * run; healthy runs use it to check load balance across the ladder.
 */
struct NodeStats
{
    NodeId node = 0;
    int procs = 0; ///< compute processors on this node
    /** Latest worker end time on the node. */
    Time endTime = 0;
    std::uint64_t messagesSent = 0;
    std::uint64_t bytesSent = 0;
    /** Read + write page faults taken on the node. */
    std::uint64_t pageFaults = 0;
    std::uint64_t requestsServiced = 0;
};

/**
 * Per-shard counters of a serving workload (src/apps/kv.*). Requests
 * name a shard and a key within it; the runtime tracks per-key hit
 * counts while the run executes and reduces them to the hottest key
 * here, so hot-key contention is reported without shipping the whole
 * key-frequency table in RunStats.
 */
struct ShardStats
{
    std::uint64_t requests = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** Shard-lock acquires that waited (wait above the app's bar). */
    std::uint64_t contendedAcquires = 0;
    /** Total virtual time spent acquiring the shard lock. */
    Time lockWait = 0;
    /** Most-requested key of the shard and its request count. */
    std::uint32_t hotKey = 0;
    std::uint64_t hotKeyRequests = 0;

    bool
    operator==(const ShardStats& o) const
    {
        return requests == o.requests && reads == o.reads &&
               writes == o.writes &&
               contendedAcquires == o.contendedAcquires &&
               lockWait == o.lockWait && hotKey == o.hotKey &&
               hotKeyRequests == o.hotKeyRequests;
    }
    bool operator!=(const ShardStats& o) const { return !(*this == o); }
};

/** One traffic phase (read-heavy, write-heavy, ...) of a serving run. */
struct PhaseServiceStats
{
    std::string name;
    /** Per-request latency (ns): completion minus open-loop arrival. */
    LatencyHistogram latency;
    std::vector<ShardStats> shards;

    std::uint64_t
    requests() const
    {
        return latency.count();
    }

    bool
    operator==(const PhaseServiceStats& o) const
    {
        return name == o.name && latency == o.latency &&
               shards == o.shards;
    }
    bool
    operator!=(const PhaseServiceStats& o) const
    {
        return !(*this == o);
    }
};

/**
 * Request-serving statistics, empty unless the application declared
 * service phases (DsmSystem::declareServicePhases) and recorded
 * requests (Proc::recordRequest). Like every simulated quantity these
 * are bit-identical for any --jobs value and reproducible from
 * (plan, seed).
 */
struct ServiceStats
{
    std::vector<PhaseServiceStats> phases;

    bool enabled() const { return !phases.empty(); }

    bool operator==(const ServiceStats& o) const
    {
        return phases == o.phases;
    }
    bool operator!=(const ServiceStats& o) const { return !(*this == o); }

    /** All phases merged into one histogram. */
    LatencyHistogram
    overallLatency() const
    {
        LatencyHistogram h;
        for (const auto& ph : phases)
            h.merge(ph.latency);
        return h;
    }

    /** Per-shard counters summed across phases. */
    std::vector<ShardStats>
    overallShards() const
    {
        std::vector<ShardStats> out;
        for (const auto& ph : phases) {
            if (out.size() < ph.shards.size())
                out.resize(ph.shards.size());
            for (std::size_t s = 0; s < ph.shards.size(); ++s) {
                const ShardStats& x = ph.shards[s];
                out[s].requests += x.requests;
                out[s].reads += x.reads;
                out[s].writes += x.writes;
                out[s].contendedAcquires += x.contendedAcquires;
                out[s].lockWait += x.lockWait;
                // The per-phase hot key is phase-local; report the
                // hottest single (phase, key) spike across the run.
                if (x.hotKeyRequests > out[s].hotKeyRequests) {
                    out[s].hotKeyRequests = x.hotKeyRequests;
                    out[s].hotKey = x.hotKey;
                }
            }
        }
        return out;
    }
};

struct RunStats
{
    std::vector<ProcStats> procs;

    /** Per-node rollup (one entry per topology node). */
    std::vector<NodeStats> nodes;

    /** Wall (virtual) time of the parallel section: max end time. */
    Time elapsed = 0;

    /** Total bytes through the network backend (hub or switch). */
    std::uint64_t mcBytes = 0;
    /** Of which: write-through (doubled-write) traffic. */
    std::uint64_t mcStreamBytes = 0;
    /** Total mailbox messages (both systems; "Messages" in Table 3). */
    std::uint64_t messages = 0;

    // ---- RDMA-verb wire accounting (all 0 on --net=mc) ----------------
    /** Of mcBytes: moved by one-sided verbs rather than messages. */
    std::uint64_t netOneSidedBytes = 0;
    std::uint64_t rdmaReads = 0;
    std::uint64_t rdmaWrites = 0;
    std::uint64_t rdmaCasOps = 0;
    std::uint64_t rdmaFaaOps = 0;
    /** Doorbell MMIO writes rung (batched regions ring one). */
    std::uint64_t rdmaDoorbells = 0;

    /**
     * Data races detected (always 0 unless DsmConfig::raceDetect;
     * detailed reports via DsmRuntime::raceChecker()).
     */
    std::uint64_t racesDetected = 0;

    /**
     * Total findings across all enabled verification analyses
     * (DsmConfig::checks): races + lockset-discipline violations +
     * coherence-invariant violations + predicted deadlocks. Always 0
     * when no analysis runs; detailed text via DsmRuntime::checks().
     */
    std::uint64_t checkViolations = 0;

    /**
     * Request-serving statistics (empty for the HPC-style apps).
     * Filled from Proc::recordRequest by the KV/parameter-server
     * workload; reports per-phase latency percentiles and per-shard
     * hot-key contention.
     */
    ServiceStats service;

    /**
     * Host-side allocation counters (src/mem/). Unlike every other
     * field, these describe the *host* execution, legitimately vary
     * with DsmConfig::memPool, and are excluded from bit-identity
     * comparisons between runs.
     */
    MemStats mem;

    /** Sum a per-processor counter across processors. */
    template <typename F>
    std::uint64_t
    total(F field) const
    {
        std::uint64_t sum = 0;
        for (const auto& p : procs)
            sum += field(p);
        return sum;
    }

    /** Total time spent in a category across processors. */
    Time
    totalTime(TimeCat c) const
    {
        Time sum = 0;
        for (const auto& p : procs)
            sum += p.timeIn[static_cast<int>(c)];
        return sum;
    }

    /** Node whose last worker finished last (binds the run). */
    NodeId
    slowestNode() const
    {
        NodeId worst = 0;
        Time worst_end = -1;
        for (const auto& n : nodes) {
            if (n.endTime > worst_end) {
                worst_end = n.endTime;
                worst = n.node;
            }
        }
        return worst;
    }
};

} // namespace mcdsm

#endif // MCDSM_DSM_STATS_H
