/**
 * @file
 * Per-processor runtime context: page table, cache, local page frames,
 * statistics and protocol-private state.
 */

#ifndef MCDSM_DSM_PROC_CTX_H
#define MCDSM_DSM_PROC_CTX_H

#include <memory>
#include <vector>

#include "cache/cache_model.h"
#include "common/types.h"
#include "dsm/stats.h"
#include "sim/scheduler.h"
#include "vm/page_table.h"

namespace mcdsm {

/** Base class for protocol-private per-processor state. */
struct ProtocolProcState
{
    virtual ~ProtocolProcState() = default;
};

struct ProcCtx
{
    ProcCtx(ProcId id_, NodeId node_, std::size_t pages,
            const CacheConfig& cache_cfg, const CostModel& costs)
        : id(id_), node(node_), pt(pages), cache(cache_cfg, costs),
          pages_(pages, nullptr)
    {}

    ProcId id;       ///< endpoint id (compute procs: 0..P-1; pp: P+node)
    NodeId node;
    TaskId task = -1;
    bool isPp = false;

    PageTable pt;
    CacheModel cache;

    /** Mapped local frame per page (nullptr when unmapped). */
    std::vector<std::uint8_t*> pages_;

    ProcStats stats;

    /** Sum of all explicitly charged (categorised) time. */
    Time accounted = 0;

    /**
     * Latest outstanding write-through completion time across all
     * destination nodes. Only the overall drain point matters to a
     * release, so a running max replaces the old per-node vector —
     * O(1) space and no O(nodes) scan per release at large P.
     */
    Time writeThroughDone = 0;

    /**
     * Debug note describing the current wait (set by protocols before
     * blocking); printed in deadlock diagnostics.
     */
    const char* waitNote = "";
    std::uint64_t waitArg0 = 0;
    std::uint64_t waitArg1 = 0;

    void
    noteWait(const char* what, std::uint64_t a0 = 0, std::uint64_t a1 = 0)
    {
        waitNote = what;
        waitArg0 = a0;
        waitArg1 = a1;
    }

    std::unique_ptr<ProtocolProcState> pstate;

    std::uint8_t*
    frame(PageNum pn) const
    {
        return pages_[pn];
    }

    void
    mapFrame(PageNum pn, std::uint8_t* f)
    {
        pages_[pn] = f;
    }
};

} // namespace mcdsm

#endif // MCDSM_DSM_PROC_CTX_H
