/**
 * @file
 * The "no DSM" protocol used for sequential baselines: direct access
 * to the init image with zero protocol cost. Only valid with a single
 * processor (the paper's sequential times are measured "without
 * linking to either TreadMarks or Cashmere").
 */

#ifndef MCDSM_DSM_NULL_PROTOCOL_H
#define MCDSM_DSM_NULL_PROTOCOL_H

#include "dsm/protocol.h"

namespace mcdsm {

class NullProtocol final : public Protocol
{
  public:
    void attach(DsmRuntime& rt) override;
    void onReadFault(ProcCtx& ctx, PageNum pn) override;
    void onWriteFault(ProcCtx& ctx, PageNum pn) override;
    void acquire(ProcCtx&, int) override {}
    void release(ProcCtx&, int) override {}
    void barrier(ProcCtx&, int) override {}
    void setFlag(ProcCtx&, int) override {}
    void waitFlag(ProcCtx&, int) override {}
    void serviceRequest(ProcCtx&, Message&) override;

  private:
    DsmRuntime* rt_ = nullptr;
};

} // namespace mcdsm

#endif // MCDSM_DSM_NULL_PROTOCOL_H
