/**
 * @file
 * Configuration for a DSM run: protocol variant, cluster topology,
 * machine cost model, cache geometry and protocol knobs.
 */

#ifndef MCDSM_DSM_CONFIG_H
#define MCDSM_DSM_CONFIG_H

#include <cstddef>
#include <cstdint>

#include "cache/cache_model.h"
#include "check/check_config.h"
#include "common/costs.h"
#include "fault/fault_plan.h"
#include "mem/buffer_pool.h"
#include "net/backend.h"
#include "net/mailbox.h"
#include "net/topology.h"

namespace mcdsm {

/**
 * The six protocol implementations compared in the paper, plus None
 * (direct execution) for the sequential baseline.
 */
enum class ProtocolKind {
    None,      ///< no DSM: sequential baseline ("not linked to either")
    CsmPp,     ///< Cashmere, dedicated protocol processor per node
    CsmInt,    ///< Cashmere, imc_kill interrupts
    CsmPoll,   ///< Cashmere, polling at loop tops
    TmkUdpInt, ///< TreadMarks, kernel UDP + SIGIO interrupts
    TmkMcInt,  ///< TreadMarks, MC buffers + imc_kill interrupts
    TmkMcPoll, ///< TreadMarks, MC buffers + polling
};

const char* protocolName(ProtocolKind k);

inline bool
isCashmere(ProtocolKind k)
{
    return k == ProtocolKind::CsmPp || k == ProtocolKind::CsmInt ||
           k == ProtocolKind::CsmPoll;
}

inline bool
isTreadMarks(ProtocolKind k)
{
    return k == ProtocolKind::TmkUdpInt || k == ProtocolKind::TmkMcInt ||
           k == ProtocolKind::TmkMcPoll;
}

/** How remote requests reach a handler. */
enum class ReqMode { Poll, Interrupt, ProtocolProcessor };

inline ReqMode
reqModeOf(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::CsmPp:
        return ReqMode::ProtocolProcessor;
      case ProtocolKind::CsmInt:
      case ProtocolKind::TmkUdpInt:
      case ProtocolKind::TmkMcInt:
        return ReqMode::Interrupt;
      default:
        return ReqMode::Poll;
    }
}

inline Transport
transportOf(ProtocolKind k)
{
    return k == ProtocolKind::TmkUdpInt ? Transport::Udp
                                        : Transport::McBuffer;
}

/**
 * Does this variant poll for (and service) incoming requests while
 * spinning in a wait? True for polling variants, and for TreadMarks
 * interrupt variants (the paper makes the request handler re-entrant:
 * while spinning for a reply it polls for and queues requests).
 * Cashmere's interrupt variant relies on signal delivery even while
 * spinning on Memory Channel flags.
 */
inline bool
pollsWhileWaiting(ProtocolKind k)
{
    return k != ProtocolKind::CsmInt;
}

struct DsmConfig
{
    ProtocolKind protocol = ProtocolKind::None;
    Topology topo{1, 1};
    CostModel costs{};
    CacheConfig cache{};

    /**
     * Network backend (net/backend.h): the paper's Memory Channel or
     * the RDMA-verbs model. The default reproduces the paper; every
     * protocol variant runs on either backend.
     */
    NetKind net = NetKind::Mc;

    /**
     * Protocol fast paths enabled when the backend supports one-sided
     * operations (no effect on Memory Channel, which has none):
     *  - rdmaPageRead: Cashmere fetches pages and scans remote
     *    directory entries with one-sided reads instead of
     *    request/reply messages through a handler;
     *  - rdmaDirAtomics: directory presence-bit/home updates use
     *    NIC-resident CAS/FAA at a partitioned directory node instead
     *    of broadcast writes;
     *  - rdmaPullDiffs: TreadMarks pulls already-flushed diffs with
     *    doorbell-batched reads instead of TmkReqDiffs messages.
     * Individually switchable so ablations can price each idea.
     */
    bool rdmaPageRead = true;
    bool rdmaDirAtomics = true;
    bool rdmaPullDiffs = true;

    /** Capacity of the shared segment. */
    std::size_t maxSharedBytes = std::size_t{64} << 20;

    /**
     * Cashmere home-node granularity in pages. Digital Unix's fixed
     * kernel tables force Cashmere to group pages into superpages
     * that share a home node (paper §3.3): superpage size = shared
     * segment size / table entries. 0 = derive from kMcTableEntries
     * (the default, matching the paper's description).
     */
    int superpagePages = 0;

    /** Modelled number of Memory Channel kernel-table entries. */
    static constexpr int kMcTableEntries = 4096;

    int
    effectiveSuperpagePages(std::size_t page_count) const
    {
        if (superpagePages > 0)
            return superpagePages;
        return static_cast<int>(
            (page_count + kMcTableEntries - 1) / kMcTableEntries);
    }

    int numLocks = 1024;
    int numBarriers = 64;
    int numFlags = 1 << 16;

    /** Seed for applications' deterministic RNG. */
    std::uint64_t seed = 1;

    /**
     * Fault / perturbation plan (src/fault/). The default (null) plan
     * creates no injector and leaves the run bit-identical to a build
     * without the fault subsystem; an active plan degrades links,
     * straggles nodes, or sweeps a cost field, deterministically from
     * FaultPlan::seed.
     */
    FaultPlan fault{};

    /**
     * Enable the vector-clock happens-before race detector
     * (src/check/race_detector.h). Adds simulator-side bookkeeping on
     * every shared access but charges no virtual time, so timings are
     * unchanged; benches leave it off.
     */
    bool raceDetect = false;

    /**
     * Verification analyses to run (src/check/suite.h): race, lockset,
     * invariant, deadlock. `raceDetect` above is the historical alias
     * for `checks.race` and is OR-ed in; either spelling works.
     */
    CheckConfig checks;

    /** Checker chunk granularity: log2 bytes per tracked chunk. */
    int raceChunkShift = 2;

    /** Detailed reports retained per analysis (counts are unbounded). */
    std::size_t raceMaxReports = 64;

    /**
     * Schedule-perturbation seed. 0 = the deterministic baseline
     * schedule (FIFO tie-break, no jitter); any other value seeds
     * randomized tie-breaking plus bounded virtual-time jitter at
     * block/wake points (see Scheduler::perturb). Runs remain fully
     * reproducible: the same seed always yields the same schedule.
     */
    std::uint64_t schedSeed = 0;

    /** Jitter bound (ns) injected per block/wake when schedSeed != 0. */
    Time schedMaxJitter = 200;

    /**
     * Host worker threads executing THIS simulation (conservative
     * PDES, src/sim/engine.h). 0 = the legacy sequential event loop;
     * any value >= 1 runs the parallel engine (1 = single worker,
     * engine scheduling semantics but no host threads spawned).
     * Results are bit-identical for every value >= 1; the engine's
     * tie-break differs from the legacy loop's FIFO seq, so 0 is
     * kept as its own mode for the recorded goldens. Incompatible
     * features (checkers, race detection, schedule perturbation,
     * tracing, Cashmere's directly-polled MC words) force a silent
     * fall-back to the legacy loop; see DsmRuntime.
     */
    int simThreads = 0;

    /**
     * Protocol event-trace ring capacity (0 = tracing disabled).
     * See dsm/trace.h; DsmRuntime::trace() exposes the ring.
     */
    std::size_t traceCapacity = 0;

    /**
     * Enable Cashmere's exclusive-mode optimisation (paper §2.1).
     * Disabled by the ablation bench to quantify its value.
     */
    bool cashmereExclusiveMode = true;

    /**
     * TreadMarks: model vector timestamps on the wire as run-length
     * compressed sparse deltas (8 bytes per nonzero entry, capped at
     * the dense size) and drop the redundant per-interval-record
     * timestamp words. The dense default reproduces the paper's
     * message sizes bit-for-bit; sparse is what a scalable
     * implementation would ship at hundreds of processors, where the
     * dense O(P) vectors dominate every message. Accounting only —
     * protocol decisions and simulated memory traffic are identical.
     */
    bool tmkSparseVt = false;

    /**
     * Use the pooled memory subsystem (src/mem/) for frames and
     * message payloads. Defaults to on; MCDSM_NO_POOL=1 in the
     * environment flips the default to off. Purely a host-side
     * choice: simulated results are bit-identical either way (the
     * pooled-vs-heap matrix in tests/test_mem.cc enforces this), so
     * the switch exists to fail loudly if they ever diverge and to
     * give the AllocProfiler a general-purpose-heap control to
     * compare against.
     */
    bool memPool = BufferPool::enabledFromEnv();

    /**
     * Processors per node available for computation. The csm_pp
     * variant consumes one CPU per node for the protocol processor,
     * so 32 compute processors are "not applicable" to it on the
     * 8x4 machine; the harness enforces that.
     */
    static constexpr int kCpusPerNode = 4;
};

} // namespace mcdsm

#endif // MCDSM_DSM_CONFIG_H
