/**
 * @file
 * The DSM runtime: owns the scheduler, network, per-processor
 * contexts and the shared segment; dispatches faults and requests into
 * the active protocol; provides the communication/wait/accounting
 * services protocols are built from.
 */

#ifndef MCDSM_DSM_RUNTIME_H
#define MCDSM_DSM_RUNTIME_H

#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "check/suite.h"
#include "common/costs.h"
#include "common/log.h"
#include "common/types.h"
#include "dsm/config.h"
#include "dsm/proc_ctx.h"
#include "dsm/protocol.h"
#include "dsm/stats.h"
#include "dsm/trace.h"
#include "fault/fault_injector.h"
#include "mem/alloc_profiler.h"
#include "mem/buffer_pool.h"
#include "net/backend.h"
#include "net/mailbox.h"
#include "sim/scheduler.h"

namespace mcdsm {

class Proc;
class Engine;

/** Message types >= kReplyBase are replies; below are requests. */
constexpr int kReplyBase = 1000;

/**
 * Non-allocating reply matcher for the waitReply fast path. Every
 * protocol wait in the system reduces to "a reply of this type,
 * optionally about this page/id, optionally from this processor";
 * encoding that as three integers keeps the per-wait loop free of the
 * std::function allocation a capturing-lambda predicate would cost.
 * Negative a / src mean "don't care".
 */
struct ReplyMatch
{
    int type = 0;
    std::int64_t a = -1;
    std::int64_t src = -1;

    bool
    operator()(const Message& m) const
    {
        return m.type == type &&
               (a < 0 || m.a == static_cast<std::uint64_t>(a)) &&
               (src < 0 || m.src == static_cast<ProcId>(src));
    }
};

class DsmRuntime
{
  public:
    DsmRuntime(const DsmConfig& cfg, std::unique_ptr<Protocol> protocol);
    ~DsmRuntime();

    DsmRuntime(const DsmRuntime&) = delete;
    DsmRuntime& operator=(const DsmRuntime&) = delete;

    // ---- shared segment management (host side, before run()) ---------
    /** Allocate @p bytes in the shared segment. */
    GAddr alloc(std::size_t bytes, std::size_t align = 8);
    /** Allocate page-aligned (avoids false sharing between arrays). */
    GAddr allocPageAligned(std::size_t bytes);

    /** Initialize shared memory before the parallel section. */
    void hostWrite(GAddr a, const void* src, std::size_t bytes);
    /** Read back shared memory (valid before run, or after a None run). */
    void hostRead(GAddr a, void* dst, std::size_t bytes) const;

    template <typename T>
    void
    hostStore(GAddr a, T v)
    {
        hostWrite(a, &v, sizeof(T));
    }

    template <typename T>
    T
    hostLoad(GAddr a) const
    {
        T v;
        hostRead(a, &v, sizeof(T));
        return v;
    }

    // ---- execution ----------------------------------------------------
    /** Run the parallel section: one worker fiber per processor. */
    void run(const std::function<void(Proc&)>& worker);

    const RunStats& stats() const { return stats_; }

    // ---- hot data path (called by Proc) --------------------------------
    void*
    readAccess(ProcCtx& ctx, GAddr a, std::size_t size)
    {
        const PageNum pn = pageOf(a);
        mcdsm_assert(pageOffset(a) + size <= kPageSize,
                     "access spans a page boundary");
        if (!ctx.pt.canRead(pn)) [[unlikely]]
            handleReadFault(ctx, pn);
        if (int_mode_) [[unlikely]]
            maybeInterrupt(ctx);
        chargeUser(ctx, costs_.l1HitTime + ctx.cache.access(a));
        return ctx.frame(pn) + pageOffset(a);
    }

    void*
    writeAccess(ProcCtx& ctx, GAddr a, std::size_t size)
    {
        const PageNum pn = pageOf(a);
        mcdsm_assert(pageOffset(a) + size <= kPageSize,
                     "access spans a page boundary");
        if (!ctx.pt.canWrite(pn)) [[unlikely]]
            handleWriteFault(ctx, pn);
        if (int_mode_) [[unlikely]] {
            // A request serviced here can race with the store about
            // to be issued: e.g. a TreadMarks diff request arriving
            // between the fault and the store flushes the fresh twin
            // (capturing pre-store contents) and write-protects the
            // page — the store would then land unseen by the
            // protocol and be lost from every future diff. Keep
            // re-faulting until the page is still writable when the
            // pointer is handed back (a real SIGIO handler gets the
            // same guarantee from the hardware: the store re-faults).
            maybeInterrupt(ctx);
            while (!ctx.pt.canWrite(pn)) [[unlikely]]
                handleWriteFault(ctx, pn);
        }
        chargeUser(ctx, costs_.l1HitTime + ctx.cache.access(a));
        return ctx.frame(pn) + pageOffset(a);
    }

    /**
     * Bulk read of [a, a+bytes) into @p dst. Semantically equivalent
     * to per-element readAccess/afterRead, but charged in bulk: per
     * page chunk it performs one permission check (faulting at most
     * once per page), one per-line cache charge for the whole run
     * (l1HitTime per overlapped line rather than per element), one
     * protocol afterRead and one race-detector range call (the
     * checker already marks every chunk the range overlaps). See
     * DESIGN.md §8.
     */
    void
    readRange(ProcCtx& ctx, GAddr a, void* dst, std::size_t bytes)
    {
        auto* d = static_cast<std::uint8_t*>(dst);
        while (bytes > 0) {
            const PageNum pn = pageOf(a);
            const std::size_t off = pageOffset(a);
            const std::size_t chunk = std::min(bytes, kPageSize - off);
            if (!ctx.pt.canRead(pn)) [[unlikely]]
                handleReadFault(ctx, pn);
            if (int_mode_) [[unlikely]]
                maybeInterrupt(ctx);
            chargeUser(ctx, costs_.l1HitTime * lineSpan(a, chunk) +
                                ctx.cache.touchRange(a, chunk));
            std::memcpy(d, ctx.frame(pn) + off, chunk);
            if (read_hook_)
                afterRead(ctx, a, chunk);
            a += chunk;
            d += chunk;
            bytes -= chunk;
        }
    }

    /**
     * Bulk write of [a, a+bytes) from @p src. Same bulk charging as
     * readRange; the interrupt-mode re-fault loop of writeAccess is
     * preserved per page chunk (a request serviced between the fault
     * and the store can write-protect the page again — see
     * writeAccess).
     */
    void
    writeRange(ProcCtx& ctx, GAddr a, const void* src, std::size_t bytes)
    {
        const auto* s = static_cast<const std::uint8_t*>(src);
        while (bytes > 0) {
            const PageNum pn = pageOf(a);
            const std::size_t off = pageOffset(a);
            const std::size_t chunk = std::min(bytes, kPageSize - off);
            if (!ctx.pt.canWrite(pn)) [[unlikely]]
                handleWriteFault(ctx, pn);
            if (int_mode_) [[unlikely]] {
                maybeInterrupt(ctx);
                while (!ctx.pt.canWrite(pn)) [[unlikely]]
                    handleWriteFault(ctx, pn);
            }
            chargeUser(ctx, costs_.l1HitTime * lineSpan(a, chunk) +
                                ctx.cache.touchRange(a, chunk));
            std::memcpy(ctx.frame(pn) + off, s, chunk);
            if (write_hook_)
                afterWrite(ctx, a, chunk);
            a += chunk;
            s += chunk;
            bytes -= chunk;
        }
    }

    bool writeHook() const { return write_hook_; }
    bool readHook() const { return read_hook_; }

    void
    afterWrite(ProcCtx& ctx, GAddr a, std::size_t size)
    {
        protocol_->afterWrite(ctx, a, size);
        if (data_checks_ && !ctx.isPp) {
            checks_->onWrite(ctx.id, a, size, sched_.now(),
                             ctx.frame(pageOf(a)));
        }
    }

    void
    afterRead(ProcCtx& ctx, GAddr a, std::size_t size)
    {
        protocol_->afterRead(ctx, a, size);
        if (data_checks_ && !ctx.isPp) {
            checks_->onRead(ctx.id, a, size, sched_.now(),
                            ctx.frame(pageOf(a)));
        }
    }

    /** Application loop-top instrumentation point. */
    void
    pollPoint(ProcCtx& ctx)
    {
        switch (req_mode_) {
          case ReqMode::Poll:
            charge(ctx, TimeCat::Poll, costs_.pollCheck);
            serviceArrived(ctx, false);
            break;
          case ReqMode::Interrupt:
            maybeInterrupt(ctx);
            break;
          case ReqMode::ProtocolProcessor:
            break;
        }
    }

    /** Charge application compute time. */
    void
    computeTime(ProcCtx& ctx, Time ns)
    {
        chargeUser(ctx, ns);
    }

    void
    computeOps(ProcCtx& ctx, std::int64_t ops)
    {
        chargeUser(ctx, static_cast<Time>(static_cast<double>(ops) *
                                          costs_.nsPerOp));
    }

    // ---- synchronization front (counts app stats, calls protocol) -----
    void acquireLock(ProcCtx& ctx, int lock_id);
    void releaseLock(ProcCtx& ctx, int lock_id);
    void barrier(ProcCtx& ctx, int barrier_id);
    void setFlag(ProcCtx& ctx, int flag_id);
    void waitFlag(ProcCtx& ctx, int flag_id);

    // ---- services for protocol implementations -------------------------
    const DsmConfig& cfg() const { return cfg_; }
    const CostModel& costs() const { return costs_; }

    /**
     * Cost model as seen from node @p n: the global model unless the
     * fault plan straggles the node, in which case VM and signal costs
     * are inflated (see FaultInjector::nodeCosts). Charges for
     * node-local work (mprotect, page faults, signal delivery) should
     * go through this accessor.
     */
    const CostModel&
    costs(NodeId n) const
    {
        return node_costs_.empty() ? costs_ : node_costs_[n];
    }
    const Topology& topo() const { return cfg_.topo; }
    Scheduler& sched() { return sched_; }
    NetworkBackend& net() { return *net_; }
    MailboxSystem& mail() { return *mail_; }

    // ---- one-sided verbs (RDMA backend; see DESIGN.md §13) -------------
    /**
     * True when the backend is one-sided capable AND the matching
     * DsmConfig switch is on — protocols key their fast paths off
     * these, so every variant still runs on Memory Channel.
     */
    bool rdmaPageRead() const { return rdma_page_read_; }
    bool rdmaDirAtomics() const { return rdma_dir_atomics_; }
    bool rdmaPullDiffs() const { return rdma_pull_diffs_; }

    /**
     * Issue a one-sided read of @p bytes from @p remote into @p ctx's
     * node. Charges rdmaPerVerbCpu as Protocol, records the trace
     * event, and returns the completion time (-1 inside a doorbell
     * batch: the caller learns completion from rdmaBatchEnd).
     * The caller is responsible for waiting (rdmaWaitUntil) and for
     * copying the simulated data — by determinism of the simulation,
     * remote frames are directly readable host-side.
     */
    Time
    rdmaRead(ProcCtx& ctx, NodeId remote, std::size_t bytes)
    {
        charge(ctx, TimeCat::Protocol, costs_.rdmaPerVerbCpu);
        const Time done =
            net_->readRemote(ctx.node, remote, bytes, sched_.now());
        trace_.record(sched_.now(), ctx.id, TraceKind::RdmaRead, bytes,
                      remote);
        return done;
    }

    /** One-sided write of @p bytes to @p remote (posted). */
    Time
    rdmaWrite(ProcCtx& ctx, NodeId remote, std::size_t bytes)
    {
        charge(ctx, TimeCat::Protocol, costs_.rdmaPerVerbCpu);
        const Time done =
            net_->writeRemote(ctx.node, remote, bytes, sched_.now());
        trace_.record(sched_.now(), ctx.id, TraceKind::RdmaWrite, bytes,
                      remote);
        return done;
    }

    /** NIC-resident compare-and-swap at @p remote. */
    Time
    rdmaCas(ProcCtx& ctx, NodeId remote)
    {
        charge(ctx, TimeCat::Protocol, costs_.rdmaPerVerbCpu);
        const Time done = net_->atomicCas(ctx.node, remote, sched_.now());
        trace_.record(sched_.now(), ctx.id, TraceKind::RdmaCas,
                      NetworkBackend::kAtomicWireBytes, remote);
        return done;
    }

    /** NIC-resident fetch-and-add at @p remote. */
    Time
    rdmaFaa(ProcCtx& ctx, NodeId remote)
    {
        charge(ctx, TimeCat::Protocol, costs_.rdmaPerVerbCpu);
        const Time done = net_->atomicFaa(ctx.node, remote, sched_.now());
        trace_.record(sched_.now(), ctx.id, TraceKind::RdmaFaa,
                      NetworkBackend::kAtomicWireBytes, remote);
        return done;
    }

    /** Open a doorbell-batched op region for @p ctx's node. */
    void
    rdmaBatchBegin(ProcCtx& ctx)
    {
        net_->batchBegin(ctx.node);
        batch_ops_[ctx.node] = 0;
    }

    /**
     * Ring the doorbell: flush the batched region. @return completion
     * time of the slowest op (0 if the region was empty).
     */
    Time
    rdmaBatchEnd(ProcCtx& ctx)
    {
        const Time done = net_->batchEnd(ctx.node, sched_.now());
        trace_.record(sched_.now(), ctx.id, TraceKind::RdmaDoorbell,
                      batch_ops_[ctx.node]);
        return done;
    }

    /** Count an op inside an open batch (for the doorbell trace arg). */
    void
    rdmaBatchNote(ProcCtx& ctx)
    {
        batch_ops_[ctx.node] += 1;
    }

    /**
     * Spin until virtual time @p done (verb completion); the wait is
     * charged as CommWait. No-op if @p done has already passed.
     */
    void
    rdmaWaitUntil(ProcCtx& ctx, Time done)
    {
        const Time now = sched_.now();
        if (done > now)
            charge(ctx, TimeCat::CommWait, done - now);
    }

    int nprocs() const { return cfg_.topo.nprocs; }
    std::size_t pageCount() const { return page_count_; }

    /**
     * Pages actually backed by app allocations, rounded up to a whole
     * superpage (Cashmere invalidations cover superpages). Protocols
     * size their per-processor page metadata with this instead of
     * pageCount(): maxSharedBytes is a generous segment bound, and at
     * hundreds of processors metadata for never-allocated pages
     * dominates run setup and teardown. Allocation is only legal
     * before run(), so the value is stable by the time any
     * per-processor protocol state is built.
     */
    std::size_t activePageCount() const;

    ProcCtx& procCtx(ProcId p) { return *procs_[p]; }

    /** Charge categorised time on the current fiber. */
    void
    charge(ProcCtx& ctx, TimeCat cat, Time ns)
    {
        ctx.stats.timeIn[static_cast<int>(cat)] += ns;
        ctx.accounted += ns;
        sched_.advance(ns);
    }

    /**
     * Endpoint to which node-directed requests (e.g. Cashmere page
     * fetches) should be sent: the node's protocol processor in pp
     * mode, otherwise the first compute processor of the node.
     */
    ProcId requestEndpointForNode(NodeId n) const;

    /**
     * Send a protocol request/reply. Sender CPU is charged as
     * TimeCat::Protocol. @return arrival time.
     */
    Time sendMessage(ProcCtx& ctx, ProcId dst, Message msg);

    /**
     * Block until a reply satisfying @p pred arrives; services
     * incoming requests while waiting (per variant rules). The wait
     * time is charged as CommWait; the reply's receive CPU cost as
     * Protocol. Prefer the ReplyMatch overload on hot paths — this
     * one allocates for the std::function.
     */
    Message
    waitReplyIf(ProcCtx& ctx,
                const std::function<bool(const Message&)>& pred)
    {
        return waitReplyLoop(ctx, pred);
    }

    /** Non-allocating fast path: wait for a (type, a, src) match. */
    Message
    waitReply(ProcCtx& ctx, ReplyMatch match)
    {
        return waitReplyLoop(ctx, match);
    }

    /** Convenience: wait for a reply of exactly @p type. */
    Message
    waitReply(ProcCtx& ctx, int type)
    {
        return waitReplyLoop(ctx, ReplyMatch{type, -1, -1});
    }

    /**
     * Block until @p ready() becomes true (used for Memory Channel
     * flag/lock spins); services incoming requests while waiting.
     * Wait time is charged as CommWait.
     */
    void waitEvent(ProcCtx& ctx, const std::function<bool()>& ready);

    /** Service arrived, eligible requests on this fiber. */
    void serviceArrived(ProcCtx& ctx, bool in_wait);

    /**
     * Allocate / release an 8 KB local page frame (twins, page
     * copies, home-node images) from the per-simulation pool. Frames
     * still mapped at end of run need not be freed individually; the
     * pool reclaims them with the runtime.
     */
    std::uint8_t* allocFrame();
    void freeFrame(std::uint8_t* frame);

    /** Init-image frame for a page (allocates zero-filled on demand). */
    std::uint8_t* initFrame(PageNum pn);
    /** True if the page was ever touched by hostWrite/initFrame. */
    bool
    hasInitFrame(PageNum pn) const
    {
        return init_[pn].load(std::memory_order_acquire) != nullptr;
    }

    /** The per-simulation buffer pool (message payloads, frames). */
    BufferPool& bufPool() { return pool_; }
    /** Host-side allocation counters (never affect simulated state). */
    AllocProfiler& memProf() { return prof_; }

    // ---- request-serving statistics (serving apps) ---------------------
    /**
     * Declare the traffic phases of a serving workload (host side,
     * before run()). Pre-sizes the per-phase histograms, per-shard
     * counters and per-key hit tables that Proc::recordRequest fills.
     */
    void declareServicePhases(const std::vector<std::string>& names,
                              int shards, std::uint32_t keys_per_shard);

    /**
     * Record one completed request. @p latency is completion time
     * minus the open-loop arrival time; @p lock_wait the time spent
     * acquiring the shard lock (@p contended marks waits the app
     * considers queueing rather than base protocol cost). Free when
     * no phases were declared.
     */
    void recordRequest(ProcCtx& ctx, int phase, int shard,
                       std::uint32_t key, bool write, Time latency,
                       Time lock_wait, bool contended);

    /** Number of workers that have not finished yet. */
    int activeWorkers() const;

    /**
     * True when this run executes on the parallel conservative-PDES
     * engine (cfg.simThreads >= 1 and the configuration is eligible;
     * see DESIGN.md §14). Ineligible configurations silently fall
     * back to the legacy sequential loop.
     */
    bool engineActive() const { return engine_ != nullptr; }

    /** Protocol event trace (empty unless cfg.traceCapacity > 0). */
    const TraceRing& trace() const { return trace_; }

    /** Race detector (nullptr unless the race analysis is enabled). */
    const RaceChecker*
    raceChecker() const
    {
        return checks_ ? checks_->raceChecker() : nullptr;
    }

    /** Verification suite (nullptr unless any analysis is enabled). */
    const CheckerSuite* checks() const { return checks_.get(); }

    /** Fault injector (nullptr unless cfg.fault.active()). */
    const FaultInjector* faults() const { return faults_.get(); }

    /**
     * Brown-out windows injected up to @p horizon (empty without an
     * active brown-out plan). Trace exporters overlay these on the
     * protocol timeline.
     */
    std::vector<FaultWindow>
    faultWindows(Time horizon) const
    {
        return faults_ ? faults_->faultWindows(horizon)
                       : std::vector<FaultWindow>{};
    }

  private:
    void handleReadFault(ProcCtx& ctx, PageNum pn);
    void handleWriteFault(ProcCtx& ctx, PageNum pn);

    /** Cache lines overlapped by [a, a+bytes), bytes >= 1. */
    static Time
    lineSpan(GAddr a, std::size_t bytes)
    {
        return static_cast<Time>((a + bytes - 1) / kCacheLineSize -
                                 a / kCacheLineSize + 1);
    }

    /**
     * The wait-for-reply loop, templated on the predicate so the
     * ReplyMatch fast path compiles to direct integer compares with
     * no std::function indirection or allocation.
     */
    template <typename Pred>
    Message
    waitReplyLoop(ProcCtx& ctx, const Pred& pred)
    {
        const Time t0 = sched_.now();
        const Time a0 = ctx.accounted;
        sched_.yield();
        for (;;) {
            serviceArrived(ctx, true);
            auto m = mail_->tryReceiveIf(
                ctx.id, sched_.now(), [&](const Message& msg) {
                    return msg.type >= kReplyBase && pred(msg);
                });
            if (m) {
                const Time waited =
                    (sched_.now() - t0) - (ctx.accounted - a0);
                if (waited > 0) {
                    ctx.stats
                        .timeIn[static_cast<int>(TimeCat::CommWait)] +=
                        waited;
                    ctx.accounted += waited;
                }
                charge(ctx, TimeCat::Protocol,
                       mail_->receiveCpuCost(*m));
                return std::move(*m);
            }
            const Time next = nextActionable(ctx, true);
            if (next >= 0 && next > sched_.now())
                sched_.wake(ctx.task, next);
            sched_.block();
        }
    }

    void
    chargeUser(ProcCtx& ctx, Time ns)
    {
        if (straggler_mode_) [[unlikely]] {
            ns = static_cast<Time>(static_cast<double>(ns) *
                                   node_compute_[ctx.node]);
        }
        ctx.stats.timeIn[static_cast<int>(TimeCat::User)] += ns;
        ctx.accounted += ns;
        sched_.advance(ns);
    }

    /** In interrupt mode: service requests whose signal has landed. */
    void
    maybeInterrupt(ProcCtx& ctx)
    {
        const Time a = mail_->earliestArrival(ctx.id);
        if (a >= 0 &&
            a + costs(ctx.node).remoteSignalLatency <= sched_.now())
            serviceArrived(ctx, false);
    }

    /** Earliest time any queued message becomes actionable. */
    Time nextActionable(ProcCtx& ctx, bool in_wait) const;

    void ppLoop(ProcCtx& pp);
    void lingerLoop(ProcCtx& ctx);
    void collectStats();

    DsmConfig cfg_;
    CostModel costs_;
    // The profiler and pool must outlive everything holding pooled
    // buffers: mail_ (PoolBuf payloads parked in queues) and the
    // contexts (mapped frames, twins) are declared — and therefore
    // destroyed — after them.
    AllocProfiler prof_;
    BufferPool pool_;
    Scheduler sched_;
    std::unique_ptr<NetworkBackend> net_;
    std::unique_ptr<MailboxSystem> mail_;
    std::unique_ptr<Protocol> protocol_;

    /** Pending-op counts of open doorbell batches (per node). */
    std::vector<std::uint64_t> batch_ops_;

    /** cfg switches ANDed with net_->supportsOneSided(), cached. */
    bool rdma_page_read_ = false;
    bool rdma_dir_atomics_ = false;
    bool rdma_pull_diffs_ = false;

    ReqMode req_mode_;
    bool int_mode_ = false;
    bool polls_while_waiting_ = true;
    bool write_hook_ = false;
    bool read_hook_ = false;
    bool data_checks_ = false; ///< checks_ set and wants data hooks
    std::unique_ptr<CheckerSuite> checks_;

    std::unique_ptr<FaultInjector> faults_;
    /** Per-node cost models (empty unless the plan straggles nodes). */
    std::vector<CostModel> node_costs_;
    /** Per-node compute multipliers (parallel to node_costs_). */
    std::vector<double> node_compute_;
    bool straggler_mode_ = false;

    std::size_t page_count_;
    std::size_t alloc_bytes_ = 0;

    std::vector<std::unique_ptr<ProcCtx>> procs_; ///< incl. pp contexts
    /**
     * Init-image frames (pool blocks; reclaimed with the pool).
     * Atomic entries: under the parallel engine two processors can
     * race to materialise frames; init_mu_ serialises creation and
     * the acquire/release pair publishes the zero-fill.
     */
    std::vector<std::atomic<std::uint8_t*>> init_;
    std::mutex init_mu_;
    /** Serialises recordRequest accumulators under the engine. */
    std::mutex record_mu_;

    /** Parallel engine (null: legacy sequential loop). */
    std::unique_ptr<Engine> engine_;
    int engine_workers_ = 0;

    bool engineEligible() const;

    int active_workers_ = 0;
    bool ran_ = false;
    RunStats stats_;
    TraceRing trace_;

    /** Serving-phase accumulators (empty unless declared). */
    struct ServicePhaseAccum
    {
        PhaseServiceStats stats;
        /** keyCounts[shard][key]: requests per key, for hot keys. */
        std::vector<std::vector<std::uint32_t>> keyCounts;
    };
    std::vector<ServicePhaseAccum> service_;
};

} // namespace mcdsm

#endif // MCDSM_DSM_RUNTIME_H
