#include "cashmere/directory.h"

#include "common/log.h"

namespace mcdsm {

Directory::Directory(std::size_t pages, int superpage_pages)
    : entries_(pages), spp_(superpage_pages)
{
    mcdsm_assert(superpage_pages > 0, "superpage size must be positive");
    home_.assign((pages + spp_ - 1) / spp_, kNoNode);
}

bool
Directory::assignHome(PageNum pn, NodeId node)
{
    auto& h = home_[pn / spp_];
    if (h != kNoNode)
        return false;
    h = node;
    ++assignments_;
    return true;
}

} // namespace mcdsm
