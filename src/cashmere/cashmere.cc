#include "cashmere/cashmere.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/log.h"

namespace mcdsm {

namespace {

inline GAddr
pageBase(PageNum pn)
{
    return static_cast<GAddr>(pn) << kPageShift;
}

/**
 * Barrier arrivals climb an 8-ary combining tree of nodes instead of
 * all landing on node 0's receive link. With at most 8 nodes (every
 * paper configuration) the parent of every non-root node is the root,
 * so the tree degenerates to the original flat notification and the
 * simulated timeline is bit-identical; past 8 nodes the arrival
 * writes spread across interior nodes' receive links the way a real
 * Memory Channel combining tree would.
 */
constexpr int kBarrierFanout = 8;

inline NodeId
barrierParent(NodeId n)
{
    return (n - 1) / kBarrierFanout;
}

} // namespace

void
Cashmere::attach(DsmRuntime& rt)
{
    rt_ = &rt;
    dir_ = std::make_unique<Directory>(
        rt.pageCount(),
        rt.cfg().effectiveSuperpagePages(rt.pageCount()));
    appLocks_.resize(rt.cfg().numLocks);
    barriers_.resize(rt.cfg().numBarriers);
    flags_.resize(rt.cfg().numFlags);
    barrierDepth_ = 1;
    while ((1 << barrierDepth_) < rt.nprocs())
        ++barrierDepth_;
    dirEntryBytes_ = dirEntryWireBytes(rt.topo().nodes);
}

Cashmere::PState&
Cashmere::st(ProcCtx& ctx)
{
    if (!ctx.pstate) {
        auto s = std::make_unique<PState>();
        s->wnPending.assign(rt_->activePageCount(), 0);
        s->dirtyPending.assign(rt_->activePageCount(), 0);
        ctx.pstate = std::move(s);
    }
    return static_cast<PState&>(*ctx.pstate);
}

std::uint8_t*
Cashmere::canonicalFrame(PageNum pn)
{
    // The canonical (home) copy of the page; initialized from (and
    // stored as) the init image, so host-side readback after a run
    // observes the home copies.
    return rt_->initFrame(pn);
}

NodeId
Cashmere::homeOf(ProcCtx& ctx, PageNum pn)
{
    if (!dir_->homeAssigned(pn)) {
        // First touch after initialization claims the whole superpage;
        // requires the directory-entry lock (paper: the only locked
        // directory operation).
        if (dir_->assignHome(pn, ctx.node)) {
            if (rt_->rdmaDirAtomics()) {
                // The first-touch claim is one NIC-resident CAS on
                // the entry word at its directory node — no entry
                // lock, no broadcast of the updated entry.
                rt_->charge(ctx, TimeCat::Protocol,
                            rt_->costs().dirModify);
                const NodeId dn = dirNodeOf(pn);
                if (dn != ctx.node)
                    rt_->rdmaWaitUntil(ctx, rt_->rdmaCas(ctx, dn));
            } else {
                rt_->charge(ctx, TimeCat::Protocol,
                            rt_->costs().dirModifyLocked);
                rt_->net().broadcast(ctx.node, dirEntryBytes_,
                                     rt_->sched().now());
            }
            ctx.stats.dirUpdates += 1;
        }
    }
    return dir_->home(pn);
}

void
Cashmere::loadPage(ProcCtx& ctx, PageNum pn)
{
    const NodeId home = homeOf(ctx, pn);
    std::uint8_t* canon = canonicalFrame(pn);

    if (ctx.frame(pn) == nullptr)
        ctx.mapFrame(pn, rt_->allocFrame());

    if (ctx.node == home) {
        // On the home node the canonical (Memory Channel receive)
        // page is local memory: fill the local copy with an ordinary
        // memory-to-memory copy, no messages.
        std::memcpy(ctx.frame(pn), canon, kPageSize);
        const Time lat = ctx.cache.touchRange(pageBase(pn), kPageSize);
        rt_->charge(ctx, TimeCat::Protocol, lat);
        return;
    }

    if (rt_->rdmaPageRead()) {
        // One-sided page fetch: the requester's NIC pulls the
        // canonical copy straight out of the home's memory — no
        // request message, no handler occupancy at the home.
        ctx.noteWait("csm_fetch", pn, home);
        rt_->rdmaWaitUntil(ctx, rt_->rdmaRead(ctx, home, kPageSize));
        std::memcpy(ctx.frame(pn), canon, kPageSize);
        const Time lat = ctx.cache.touchRange(pageBase(pn), kPageSize);
        rt_->charge(ctx, TimeCat::Protocol, lat);
        ctx.stats.pageTransfers += 1;
        return;
    }

    // No remote reads on MC: ask a processor at the home node (or its
    // protocol processor) to write the page to us.
    Message req;
    req.type = CsmReqPageFetch;
    req.a = pn;
    req.bytes = 16;
    rt_->sendMessage(ctx, rt_->requestEndpointForNode(home),
                     std::move(req));

    ctx.noteWait("csm_fetch", pn, home);
    Message rep = rt_->waitReply(
        ctx, ReplyMatch{CsmRepPageFetch, static_cast<std::int64_t>(pn),
                        -1});
    mcdsm_assert(rep.payload.size() == kPageSize, "bad page payload");
    std::memcpy(ctx.frame(pn), rep.payload.data(), kPageSize);
    // The copy into the local frame streams the page through our
    // cache (the second bus crossing the paper mentions).
    const Time lat = ctx.cache.touchRange(pageBase(pn), kPageSize);
    rt_->charge(ctx, TimeCat::Protocol, lat);
    ctx.stats.pageTransfers += 1;
}

void
Cashmere::onReadFault(ProcCtx& ctx, PageNum pn)
{
    const CostModel& c = rt_->costs();
    DirEntry& e = dir_->entry(pn);

    // Join the sharing set. On MC: ll/sc on our node's directory
    // word, broadcast of the updated word. On RDMA with atomics: a
    // posted fetch-and-add of our presence bit at the entry's
    // directory node — fire-and-forget, nothing to broadcast.
    e.addSharer(ctx.id);
    ctx.stats.dirUpdates += 1;
    rt_->charge(ctx, TimeCat::Protocol, c.dirModify);
    if (rt_->rdmaDirAtomics()) {
        const NodeId dn = dirNodeOf(pn);
        if (dn != ctx.node)
            rt_->rdmaFaa(ctx, dn);
    } else {
        rt_->net().broadcast(ctx.node, 8, rt_->sched().now());
    }

    // If some other processor held the page exclusive, post an NLE
    // descriptor to it and clear exclusive mode.
    if (e.exclusive != kNoProc && e.exclusive != ctx.id) {
        ProcCtx& owner = rt_->procCtx(e.exclusive);
        st(owner).nle.push_back(pn);
        e.exclusive = kNoProc;
        if (rt_->rdmaDirAtomics()) {
            // Clearing exclusive mode is a CAS on the entry word; no
            // entry lock needed.
            rt_->charge(ctx, TimeCat::Protocol, c.dirScan);
            const NodeId dn = dirNodeOf(pn);
            if (dn != ctx.node)
                rt_->rdmaWaitUntil(ctx, rt_->rdmaCas(ctx, dn));
        } else {
            rt_->charge(ctx, TimeCat::Protocol,
                        c.dirScan + c.mcLockUncontended);
        }
        const NodeId owner_node = rt_->topo().nodeOf(owner.id);
        if (owner_node != ctx.node) {
            rt_->net().streamWrite(ctx.node, owner_node, 16,
                                   rt_->sched().now());
        }
    }

    loadPage(ctx, pn);
    ctx.pt.setProtection(pn, ProtRead);
    rt_->charge(ctx, TimeCat::Protocol, rt_->costs(ctx.node).mprotect);
}

void
Cashmere::onWriteFault(ProcCtx& ctx, PageNum pn)
{
    if (!ctx.pt.canRead(pn))
        onReadFault(ctx, pn);

    PState& s = st(ctx);
    if (!s.dirtyPending[pn]) {
        s.dirtyPending[pn] = 1;
        s.dirty.push_back(pn);
    }
    ctx.pt.setProtection(pn, ProtRw);
    rt_->charge(ctx, TimeCat::Protocol, rt_->costs(ctx.node).mprotect);
}

void
Cashmere::afterWrite(ProcCtx& ctx, GAddr a, std::size_t size)
{
    const PageNum pn = pageOf(a);
    std::uint8_t* canon = rt_->initFrame(pn);
    std::uint8_t* frame = ctx.frame(pn);
    const CostModel& c = rt_->costs();

    // Doubled store to the MC region: a different L1 line by
    // construction (the paper's +0x...2000 address arithmetic). The
    // store itself retires through the write buffer (a few cycles),
    // but the line it installs *pollutes* the cache — subsequent
    // loads pay the evictions. This is the working-set blowup the
    // paper measures on LU and Gauss, and it applies on the home node
    // too (the MC receive region is a distinct mapping). Bulk writes
    // (writeRange) arrive here with size > one scalar datum: the
    // doubled region is then streamed line-by-line and the per-word
    // write-buffer cost charged once per 8-byte doubled store, the
    // same totals a per-element loop would produce.
    if (size <= sizeof(std::uint64_t)) {
        ctx.cache.access(a + kDoubleOffset);
        rt_->charge(ctx, TimeCat::Doubling, c.mcPerWriteCpu);
    } else {
        ctx.cache.touchRange(a + kDoubleOffset, size);
        rt_->charge(ctx, TimeCat::Doubling,
                    c.mcPerWriteCpu *
                        static_cast<Time>((size + 7) / 8));
    }

    // Apply to the canonical copy; Memory Channel bandwidth is only
    // consumed when the home is remote (first-touch homing makes most
    // write-through node-local in well-partitioned applications).
    const std::size_t off = pageOffset(a);
    std::memcpy(canon + off, frame + off, size);
    const NodeId home = dir_->home(pn);
    if (home != ctx.node) {
        const Time arr = rt_->net().streamWrite(ctx.node, home, size,
                                                rt_->sched().now());
        ctx.writeThroughDone = std::max(ctx.writeThroughDone, arr);
    }
}

void
Cashmere::processWriteNotices(ProcCtx& ctx)
{
    PState& s = st(ctx);
    const CostModel& c = rt_->costs();
    for (PageNum pn : s.writeNotices) {
        DirEntry& e = dir_->entry(pn);
        e.removeSharer(ctx.id);
        ctx.stats.dirUpdates += 1;
        rt_->charge(ctx, TimeCat::Protocol, c.dirModify);
        if (rt_->rdmaDirAtomics()) {
            // Dropping our presence bit is a posted FAA at the
            // directory node (no broadcast, no reply needed).
            const NodeId dn = dirNodeOf(pn);
            if (dn != ctx.node)
                rt_->rdmaFaa(ctx, dn);
        } else {
            rt_->net().broadcast(ctx.node, 8, rt_->sched().now());
        }

        if (ctx.pt.protection(pn) != ProtNone) {
            std::uint8_t* frame = ctx.frame(pn);
            ctx.pt.setProtection(pn, ProtNone);
            rt_->charge(ctx, TimeCat::Protocol,
                        rt_->costs(ctx.node).mprotect);
            if (frame != nullptr && frame != rt_->initFrame(pn))
                rt_->freeFrame(frame);
            ctx.mapFrame(pn, nullptr);
        }
        s.wnPending[pn] = 0;
    }
    s.writeNotices.clear();
}

void
Cashmere::postWriteNotices(ProcCtx& ctx, PageNum pn, bool from_nle)
{
    DirEntry& e = dir_->entry(pn);
    PState& s = st(ctx);
    const CostModel& c = rt_->costs();

    if (!from_nle)
        s.dirtyPending[pn] = 0;

    if (rt_->rdmaDirAtomics() && dirNodeOf(pn) != ctx.node) {
        // The entry lives only at its directory node now (no
        // broadcast replica to scan locally): pull it with a
        // one-sided read before walking the sharer set.
        ctx.noteWait("csm_dir_read", pn, dirNodeOf(pn));
        rt_->rdmaWaitUntil(
            ctx, rt_->rdmaRead(ctx, dirNodeOf(pn), dirEntryBytes_));
    } else {
        rt_->charge(ctx, TimeCat::Protocol, c.dirScan);
    }

    const int others = e.otherSharers(ctx.id);
    if (others > 0) {
        // Walk the sharer bitmap, not the processor range: posting is
        // O(sharers) per page, independent of P. Ascending bit order
        // matches the old 0..P-1 scan, so charges land identically.
        e.forEachSharer([&](ProcId q) {
            if (q == ctx.id)
                return;
            PState& qs = st(rt_->procCtx(q));
            if (qs.wnPending[pn])
                return; // duplicate notice suppressed by the bitmap
            qs.wnPending[pn] = 1;
            qs.writeNotices.push_back(pn);
            ctx.stats.writeNoticesSent += 1;
            rt_->charge(ctx, TimeCat::Protocol, c.dirModify);
            const NodeId qnode = rt_->topo().nodeOf(q);
            if (qnode != ctx.node) {
                rt_->net().streamWrite(ctx.node, qnode, 16,
                                       rt_->sched().now());
            }
        });
    }

    if (from_nle)
        e.neverExclusive = true;

    const bool go_exclusive = others == 0 && !from_nle &&
                              rt_->cfg().cashmereExclusiveMode &&
                              !e.neverExclusive;
    if (go_exclusive) {
        // Keep the read-write mapping; skip all per-release overhead
        // for this page until some other processor touches it.
        if (e.exclusive != ctx.id) {
            e.exclusive = ctx.id;
            ctx.stats.dirUpdates += 1;
            rt_->charge(ctx, TimeCat::Protocol, c.dirModify);
            if (rt_->rdmaDirAtomics()) {
                // Winning exclusive mode must be atomic against a
                // concurrent sharer joining: CAS, and wait for the
                // old value before trusting the transition.
                const NodeId dn = dirNodeOf(pn);
                if (dn != ctx.node)
                    rt_->rdmaWaitUntil(ctx, rt_->rdmaCas(ctx, dn));
            } else {
                rt_->net().broadcast(ctx.node, 8, rt_->sched().now());
            }
        }
        return;
    }

    // Downgrade to read-only so subsequent writes fault again.
    if (ctx.pt.canWrite(pn)) {
        ctx.pt.setProtection(pn, ProtRead);
        rt_->charge(ctx, TimeCat::Protocol,
                    rt_->costs(ctx.node).mprotect);
    }
}

void
Cashmere::drainWriteThrough(ProcCtx& ctx)
{
    const Time done = ctx.writeThroughDone;
    const Time now = rt_->sched().now();
    if (done > now)
        rt_->charge(ctx, TimeCat::CommWait, done - now);
}

void
Cashmere::processRelease(ProcCtx& ctx)
{
    PState& s = st(ctx);

    // Iterate over snapshots: posting notices never appends to our
    // own lists, but be explicit about it. The snapshot vectors are
    // PState members so their capacity is reused phase after phase.
    s.dirtySnap.swap(s.dirty);
    for (PageNum pn : s.dirtySnap)
        postWriteNotices(ctx, pn, false);
    s.dirtySnap.clear();

    s.nleSnap.swap(s.nle);
    for (PageNum pn : s.nleSnap)
        postWriteNotices(ctx, pn, true);
    s.nleSnap.clear();

    drainWriteThrough(ctx);
}

void
Cashmere::lockAcquire(ProcCtx& ctx, McLock& lk)
{
    rt_->charge(ctx, TimeCat::Protocol, rt_->costs().mcLockUncontended);
    rt_->net().broadcast(ctx.node, 8, rt_->sched().now());
    if (lk.holder == kNoProc) {
        lk.holder = ctx.id;
        // If the previous release is not yet MC-visible, our array
        // write appears to lose the first round; retry succeeds once
        // the release propagates.
        const Time now = rt_->sched().now();
        if (now < lk.visibleAt)
            rt_->charge(ctx, TimeCat::CommWait, lk.visibleAt - now);
        return;
    }
    lk.waiters.push_back(ctx.id);
    ctx.noteWait("csm_lock");
    rt_->waitEvent(ctx, [this, &lk, &ctx] {
        return lk.holder == ctx.id && rt_->sched().now() >= lk.visibleAt;
    });
}

void
Cashmere::lockRelease(ProcCtx& ctx, McLock& lk)
{
    mcdsm_assert(lk.holder == ctx.id, "releasing a lock we do not hold");
    const Time now = rt_->sched().now();
    rt_->charge(ctx, TimeCat::Protocol, rt_->costs().mcPerWriteCpu);
    rt_->net().broadcast(ctx.node, 8, now);

    if (!lk.waiters.empty()) {
        const ProcId next = lk.waiters.front();
        lk.waiters.pop_front();
        lk.holder = next;
        // The new holder observes its array entry winning via
        // loop-back after the release write propagates.
        lk.visibleAt = now + 2 * rt_->costs().mcLatency;
        rt_->sched().wake(rt_->procCtx(next).task, lk.visibleAt);
    } else {
        lk.holder = kNoProc;
        lk.visibleAt = now + rt_->costs().mcLatency;
    }
}

void
Cashmere::acquire(ProcCtx& ctx, int lock_id)
{
    lockAcquire(ctx, appLocks_[lock_id]);
    processWriteNotices(ctx);
}

void
Cashmere::release(ProcCtx& ctx, int lock_id)
{
    processRelease(ctx);
    lockRelease(ctx, appLocks_[lock_id]);
}

void
Cashmere::barrier(ProcCtx& ctx, int barrier_id)
{
    processRelease(ctx);

    McBarrier& bar = barriers_[barrier_id];
    const int P = rt_->nprocs();
    const CostModel& c = rt_->costs();
    const NodeId root = rt_->topo().nodeOf(0);

    // Notify arrival up the tree (a Memory Channel word write to the
    // parent node's notification region; see barrierParent above).
    rt_->charge(ctx, TimeCat::Protocol, c.mcPerWriteCpu);
    if (ctx.node != root) {
        rt_->net().streamWrite(ctx.node, barrierParent(ctx.node), 8,
                               rt_->sched().now());
    }

    const long my_epoch = bar.epoch;
    bar.arrived += 1;
    if (bar.arrived == P) {
        bar.arrived = 0;
        bar.epoch += 1;
        // Arrival and release waves each traverse the notification
        // tree: depth hops of MC latency each way.
        bar.releaseAt = rt_->sched().now() +
                        2 * barrierDepth_ * c.mcLatency;
        rt_->net().broadcast(root, 8, rt_->sched().now());
        for (ProcId q = 0; q < P; ++q) {
            if (q != ctx.id)
                rt_->sched().wake(rt_->procCtx(q).task, bar.releaseAt);
        }
        rt_->charge(ctx, TimeCat::CommWait,
                    bar.releaseAt - rt_->sched().now());
    } else {
        ctx.noteWait("csm_barrier", barrier_id);
        rt_->waitEvent(ctx, [this, &bar, my_epoch] {
            return bar.epoch != my_epoch &&
                   rt_->sched().now() >= bar.releaseAt;
        });
    }

    processWriteNotices(ctx);
}

void
Cashmere::setFlag(ProcCtx& ctx, int flag_id)
{
    processRelease(ctx);
    McFlag& f = flags_[flag_id];
    const Time now = rt_->sched().now();
    rt_->charge(ctx, TimeCat::Protocol, rt_->costs().mcPerWriteCpu);
    rt_->net().broadcast(ctx.node, 8, now);
    f.set = true;
    f.visibleAt = now + rt_->costs().mcLatency;
    for (TaskId t : f.waiters)
        rt_->sched().wake(t, f.visibleAt);
    f.waiters.clear();
}

void
Cashmere::waitFlag(ProcCtx& ctx, int flag_id)
{
    McFlag& f = flags_[flag_id];
    if (!f.set) {
        f.waiters.push_back(ctx.task);
        ctx.noteWait("csm_flag", flag_id);
        rt_->waitEvent(ctx, [&f] { return f.set; });
    }
    // Spin out the remaining Memory Channel visibility delay, if any.
    const Time now = rt_->sched().now();
    if (now < f.visibleAt)
        rt_->charge(ctx, TimeCat::CommWait, f.visibleAt - now);
    processWriteNotices(ctx);
}

void
Cashmere::procEnd(ProcCtx& ctx)
{
    // Final implicit release: flush write-through and leave directory
    // state consistent.
    processRelease(ctx);
}

void
Cashmere::serviceRequest(ProcCtx& server, Message& msg)
{
    switch (msg.type) {
      case CsmReqPageFetch: {
        const PageNum pn = static_cast<PageNum>(msg.a);
        mcdsm_assert(dir_->home(pn) == server.node,
                     "page fetch routed to non-home node");
        std::uint8_t* canon = canonicalFrame(pn);
        // First bus crossing: the servicing processor reads the page
        // through its registers.
        const Time lat = server.cache.touchRange(pageBase(pn), kPageSize);
        rt_->charge(server, TimeCat::Protocol, lat);

        Message rep;
        rep.type = CsmRepPageFetch;
        rep.a = pn;
        rep.payload.assign(rt_->bufPool(), MemSite::Message, canon,
                           kPageSize);
        rep.bytes = kPageSize + 32;
        rt_->sendMessage(server, msg.src, std::move(rep));
        break;
      }
      default:
        mcdsm_panic("Cashmere: unknown request type %d", msg.type);
    }
}

} // namespace mcdsm
