/**
 * @file
 * The Cashmere protocol (paper §2.1, §3.3).
 *
 * Directory-based multi-writer release consistency over Memory
 * Channel remote writes:
 *  - every shared page has a home node holding its canonical copy;
 *    homes are chosen by first touch (at superpage granularity);
 *  - every shared store is *doubled*: written to the local copy and
 *    written through to the home's canonical copy over MC;
 *  - at a release, the dirty and no-longer-exclusive (NLE) lists are
 *    processed: write notices are posted to sharers, pages with no
 *    other sharers enter exclusive mode, others are downgraded to
 *    read-only; the release stalls until the home has seen all
 *    write-through traffic;
 *  - at an acquire, posted write notices invalidate local copies;
 *  - a page fault fetches a fresh copy from the home node; since MC
 *    has no remote reads, a processor at the home (or the dedicated
 *    protocol processor in csm_pp) writes the page back to the
 *    requester;
 *  - locks, barriers and flags are built from Memory Channel words
 *    (remote writes + loop-back), not from messages.
 */

#ifndef MCDSM_CASHMERE_CASHMERE_H
#define MCDSM_CASHMERE_CASHMERE_H

#include <deque>
#include <vector>

#include "cashmere/directory.h"
#include "dsm/protocol.h"
#include "dsm/runtime.h"

namespace mcdsm {

/** Cashmere request/reply message types. */
enum CsmMsg : int {
    CsmReqPageFetch = 1,
    CsmRepPageFetch = kReplyBase + 1,
};

class Cashmere final : public Protocol
{
  public:
    void attach(DsmRuntime& rt) override;

    void onReadFault(ProcCtx& ctx, PageNum pn) override;
    void onWriteFault(ProcCtx& ctx, PageNum pn) override;

    bool wantsWriteHook() const override { return true; }
    void afterWrite(ProcCtx& ctx, GAddr a, std::size_t size) override;

    void acquire(ProcCtx& ctx, int lock_id) override;
    void release(ProcCtx& ctx, int lock_id) override;
    void barrier(ProcCtx& ctx, int barrier_id) override;
    void setFlag(ProcCtx& ctx, int flag_id) override;
    void waitFlag(ProcCtx& ctx, int flag_id) override;

    void procEnd(ProcCtx& ctx) override;

    void serviceRequest(ProcCtx& server, Message& msg) override;

    const Directory& directory() const { return *dir_; }

    /**
     * Offset between a local-copy address and its doubled Memory
     * Channel address. Bit 28 keeps doubled writes out of the shared
     * segment; bit 13 makes the doubled write map to a *different*
     * first-level cache line (the paper's address trick), which is
     * what blows up the L1 working set of write-intensive kernels.
     */
    static constexpr std::uint64_t kDoubleOffset = 0x10002000;

  private:
    /** Per-processor protocol state. */
    struct PState final : ProtocolProcState
    {
        std::vector<PageNum> dirty;
        std::vector<PageNum> nle;
        std::vector<PageNum> writeNotices;
        std::vector<std::uint8_t> wnPending; ///< dedup bitmap, by page
        std::vector<std::uint8_t> dirtyPending;

        /**
         * Release-time snapshots of dirty/nle. Members (not locals)
         * so their capacity survives across phases: a release swaps
         * the live list in, walks it, clears it — zero steady-state
         * heap traffic no matter how many phases the app runs.
         */
        std::vector<PageNum> dirtySnap;
        std::vector<PageNum> nleSnap;
    };

    /** A cluster-wide lock built from an MC array + per-node flag. */
    struct McLock
    {
        ProcId holder = kNoProc;
        Time visibleAt = 0; ///< when the holder change is MC-visible
        std::deque<ProcId> waiters;
    };

    /** Tree barrier state (notifications through MC words). */
    struct McBarrier
    {
        long epoch = 0;
        int arrived = 0;
        Time releaseAt = 0;
    };

    /** One-shot event flag in MC space. */
    struct McFlag
    {
        bool set = false;
        Time visibleAt = 0;
        std::vector<TaskId> waiters;
    };

    PState& st(ProcCtx& ctx);

    NodeId homeOf(ProcCtx& ctx, PageNum pn);
    std::uint8_t* canonicalFrame(PageNum pn);

    /**
     * Node holding a superpage's directory entry in the RDMA era.
     * With NIC atomics the directory is partitioned round-robin by
     * superpage instead of broadcast-replicated: presence-bit updates
     * become a CAS/FAA at this node rather than a cluster broadcast.
     */
    NodeId
    dirNodeOf(PageNum pn) const
    {
        return static_cast<NodeId>(
            (pn / static_cast<PageNum>(dir_->superpagePages())) %
            static_cast<PageNum>(rt_->topo().nodes));
    }

    /** Fetch (or directly map) the page data and map it read-only. */
    void loadPage(ProcCtx& ctx, PageNum pn);

    /** Acquire-side: consume write notices, invalidate pages. */
    void processWriteNotices(ProcCtx& ctx);

    /** Release-side: process dirty + NLE lists, drain write-through. */
    void processRelease(ProcCtx& ctx);

    void postWriteNotices(ProcCtx& ctx, PageNum pn, bool from_nle);
    void drainWriteThrough(ProcCtx& ctx);

    void lockAcquire(ProcCtx& ctx, McLock& lk);
    void lockRelease(ProcCtx& ctx, McLock& lk);

    DsmRuntime* rt_ = nullptr;
    std::unique_ptr<Directory> dir_;
    std::vector<McLock> appLocks_;
    std::vector<McBarrier> barriers_;
    std::vector<McFlag> flags_;
    int barrierDepth_ = 1;
    std::size_t dirEntryBytes_ = dirEntryWireBytes(8);
};

} // namespace mcdsm

#endif // MCDSM_CASHMERE_CASHMERE_H
