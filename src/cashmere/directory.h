/**
 * @file
 * Cashmere's distributed page directory (paper §2.1, §3.3.2).
 *
 * On the real machine each directory entry is eight 4-byte words (one
 * per SMP node), replicated on every node through Memory Channel
 * broadcast; each word holds per-CPU presence bits, the home node id,
 * a home-valid bit and exclusive-mode bits. The simulator keeps one
 * authoritative entry per page; the cost of keeping the replicas
 * consistent is charged by the protocol (dirModify / dirModifyLocked
 * plus broadcast bytes).
 *
 * Digital Unix's fixed-size Memory Channel kernel tables force pages
 * into "superpages" that must share a home node; the directory tracks
 * home assignment at superpage granularity.
 */

#ifndef MCDSM_CASHMERE_DIRECTORY_H
#define MCDSM_CASHMERE_DIRECTORY_H

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/types.h"

namespace mcdsm {

/**
 * Wire size of one replicated directory entry: one 4-byte word per
 * node, never less than the paper's 8-node machine (whose entry is
 * eight words even when fewer nodes are populated).
 */
constexpr std::size_t
dirEntryWireBytes(int nodes)
{
    return 4 * static_cast<std::size_t>(nodes < 8 ? 8 : nodes);
}

struct DirEntry
{
    /** Presence bit per processor (any P; inline words for P <= 64). */
    ProcSet presence;

    /** Processor holding exclusive read/write mode, if any. */
    ProcId exclusive = kNoProc;

    /** Once set, this page may never re-enter exclusive mode. */
    bool neverExclusive = false;

    bool
    isPresent(ProcId p) const
    {
        return presence.test(p);
    }

    void
    addSharer(ProcId p)
    {
        presence.set(p);
    }

    void
    removeSharer(ProcId p)
    {
        presence.clear(p);
    }

    /** Number of sharers other than @p p. */
    int
    otherSharers(ProcId p) const
    {
        return presence.countExcept(p);
    }

    /** Visit every sharer in ascending processor order. */
    template <typename F>
    void
    forEachSharer(F&& f) const
    {
        presence.forEach(f);
    }
};

class Directory
{
  public:
    /**
     * @param pages shared-segment page count
     * @param superpage_pages pages per superpage (home granularity)
     */
    Directory(std::size_t pages, int superpage_pages);

    DirEntry&
    entry(PageNum pn)
    {
        return entries_[pn];
    }

    const DirEntry&
    entry(PageNum pn) const
    {
        return entries_[pn];
    }

    /** Home node of @p pn, or kNoNode before first touch. */
    NodeId
    home(PageNum pn) const
    {
        return home_[pn / spp_];
    }

    bool
    homeAssigned(PageNum pn) const
    {
        return home_[pn / spp_] != kNoNode;
    }

    /**
     * First-touch home assignment: claims the whole superpage for
     * @p node. @return true if this call performed the assignment
     * (the caller then charges the locked directory update).
     */
    bool assignHome(PageNum pn, NodeId node);

    std::size_t pageCount() const { return entries_.size(); }
    int superpagePages() const { return spp_; }

    /** Number of home assignments performed (one lock each). */
    std::uint64_t homeAssignments() const { return assignments_; }

  private:
    std::vector<DirEntry> entries_;
    std::vector<NodeId> home_;
    int spp_;
    std::uint64_t assignments_ = 0;
};

} // namespace mcdsm

#endif // MCDSM_CASHMERE_DIRECTORY_H
