#include "net/mailbox.h"

#include <algorithm>

#include "common/log.h"

namespace mcdsm {

MailboxSystem::MailboxSystem(Scheduler& sched, NetworkBackend& net,
                             const CostModel& costs, const Topology& topo)
    : sched_(sched), net_(net), costs_(costs), topo_(topo),
      queues_(endpointCount()), tasks_(endpointCount(), -1),
      sent_count_(endpointCount(), 0), sent_bytes_(endpointCount(), 0),
      node_of_(endpointCount())
{
    // Endpoint -> node is fixed at construction; the table turns the
    // two per-send divisions into loads (send() is one of the hottest
    // simulator paths at large processor counts).
    for (ProcId p = 0; p < endpointCount(); ++p) {
        node_of_[p] = p < topo_.nprocs ? topo_.nodeOf(p)
                                       : p - topo_.nprocs;
    }
}

NodeId
MailboxSystem::nodeOfEndpoint(ProcId p) const
{
    mcdsm_assert(p >= 0 && p < endpointCount(), "bad endpoint id");
    return node_of_[p];
}

void
MailboxSystem::bindTask(ProcId endpoint, TaskId task)
{
    mcdsm_assert(endpoint >= 0 && endpoint < endpointCount(),
                 "bad endpoint id");
    tasks_[endpoint] = task;
}

Time
MailboxSystem::send(ProcId src, ProcId dst, Message msg,
                    Transport transport)
{
    mcdsm_assert(dst >= 0 && dst < endpointCount(), "bad destination");

    const NodeId src_node = nodeOfEndpoint(src);
    const NodeId dst_node = nodeOfEndpoint(dst);
    const bool same_node = (src_node == dst_node);
    const std::size_t wire_bytes = std::max(msg.bytes, msg.payload.size());

    // Sender CPU cost.
    Time cpu;
    if (same_node) {
        cpu = costs_.mcPerMessage; // same buffer-management code path
    } else {
        cpu = (transport == Transport::Udp) ? costs_.udpPerMessage
                                            : costs_.mcPerMessage;
    }
    sched_.advance(cpu);
    const Time send_time = sched_.now();

    Time arrival;
    if (same_node) {
        arrival = send_time + costs_.smpMessageLatency;
    } else {
        arrival = net_.transfer(src_node, dst_node,
                                wire_bytes + 32 /* header */, send_time);
    }

    msg.src = src;
    msg.arrival = arrival;
    msg.transport = transport;
    msg.sameNode = same_node;
    msg.bytes = wire_bytes;

    sent_count_[src] += 1;
    sent_bytes_[src] += wire_bytes;
    total_messages_ += 1;

    auto& q = queues_[dst];
    Queued item{arrival, seq_++, std::move(msg)};
    if (q.empty() || q.v.back().arrival <= arrival) {
        // Common case: the new message arrives last (seq_ is
        // monotone, so equal arrivals keep send order).
        q.v.push_back(std::move(item));
    } else {
        auto it = std::upper_bound(
            q.v.begin() + static_cast<std::ptrdiff_t>(q.head),
            q.v.end(), item,
            [](const Queued& a, const Queued& b) {
                if (a.arrival != b.arrival)
                    return a.arrival < b.arrival;
                return a.seq < b.seq;
            });
        q.v.insert(it, std::move(item));
    }

    if (tasks_[dst] >= 0)
        sched_.wakeIfBlocked(tasks_[dst], arrival);
    return arrival;
}

std::optional<Message>
MailboxSystem::tryReceive(ProcId dst, Time now)
{
    auto& q = queues_[dst];
    if (q.empty() || q.v[q.head].arrival > now)
        return std::nullopt;
    Message msg = std::move(q.v[q.head].msg);
    q.consume(q.head);
    return msg;
}

Time
MailboxSystem::receiveCpuCost(const Message& msg) const
{
    if (!msg.sameNode && msg.transport == Transport::Udp)
        return costs_.udpPerMessage;
    return costs_.mcPerMessage;
}

} // namespace mcdsm
