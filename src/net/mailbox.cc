#include "net/mailbox.h"

#include <algorithm>

#include "common/log.h"
#include "sim/engine.h"

namespace mcdsm {

MailboxSystem::MailboxSystem(Scheduler& sched, NetworkBackend& net,
                             const CostModel& costs, const Topology& topo)
    : sched_(sched), net_(net), costs_(costs), topo_(topo),
      queues_(endpointCount()), tasks_(endpointCount(), -1),
      sent_count_(endpointCount(), 0), sent_bytes_(endpointCount(), 0),
      node_of_(endpointCount())
{
    // Endpoint -> node is fixed at construction; the table turns the
    // two per-send divisions into loads (send() is one of the hottest
    // simulator paths at large processor counts).
    for (ProcId p = 0; p < endpointCount(); ++p) {
        node_of_[p] = p < topo_.nprocs ? topo_.nodeOf(p)
                                       : p - topo_.nprocs;
    }
}

NodeId
MailboxSystem::nodeOfEndpoint(ProcId p) const
{
    mcdsm_assert(p >= 0 && p < endpointCount(), "bad endpoint id");
    return node_of_[p];
}

void
MailboxSystem::bindTask(ProcId endpoint, TaskId task)
{
    mcdsm_assert(endpoint >= 0 && endpoint < endpointCount(),
                 "bad endpoint id");
    tasks_[endpoint] = task;
}

void
MailboxSystem::enableEngine(Engine* engine, int workers)
{
    engine_ = engine;
    staged_.resize(static_cast<std::size_t>(workers));
    send_idx_.assign(static_cast<std::size_t>(endpointCount()), 0);
}

void
MailboxSystem::enqueue(ProcId dst, Queued item)
{
    auto& q = queues_[dst];
    if (q.empty() || !queuedBefore(item, q.v.back())) {
        // Common case: the new message sorts last.
        q.v.push_back(std::move(item));
    } else {
        auto it = std::upper_bound(
            q.v.begin() + static_cast<std::ptrdiff_t>(q.head), q.v.end(),
            item, queuedBefore);
        q.v.insert(it, std::move(item));
    }
}

void
MailboxSystem::drainStaged()
{
    std::size_t n = 0;
    for (const auto& v : staged_)
        n += v.size();
    if (n == 0)
        return;
    drain_buf_.clear();
    drain_buf_.reserve(n);
    for (auto& v : staged_) {
        for (Staged& s : v)
            drain_buf_.push_back(std::move(s));
        v.clear();
    }
    // (sk, idx) is a total order: a slice key names one task at one
    // clock, and idx counts that sender's sends.
    std::sort(drain_buf_.begin(), drain_buf_.end(),
              [](const Staged& a, const Staged& b) {
                  if (a.sk != b.sk)
                      return a.sk < b.sk;
                  return a.idx < b.idx;
              });
    for (Staged& s : drain_buf_) {
        const Time arrival =
            net_.transfer(s.src_node, s.dst_node,
                          s.wire_bytes + 32 /* header */, s.send_time);
        s.msg.arrival = arrival;
        const ProcId dst = s.dst;
        enqueue(dst, Queued{arrival, s.sk, s.idx, std::move(s.msg)});
        if (tasks_[dst] >= 0)
            sched_.wakeIfBlocked(tasks_[dst], arrival);
    }
    drain_buf_.clear();
}

Time
MailboxSystem::send(ProcId src, ProcId dst, Message msg,
                    Transport transport)
{
    mcdsm_assert(dst >= 0 && dst < endpointCount(), "bad destination");

    const NodeId src_node = nodeOfEndpoint(src);
    const NodeId dst_node = nodeOfEndpoint(dst);
    const bool same_node = (src_node == dst_node);
    const std::size_t wire_bytes = std::max(msg.bytes, msg.payload.size());

    // Sender CPU cost.
    Time cpu;
    if (same_node) {
        cpu = costs_.mcPerMessage; // same buffer-management code path
    } else {
        cpu = (transport == Transport::Udp) ? costs_.udpPerMessage
                                            : costs_.mcPerMessage;
    }
    sched_.advance(cpu);
    const Time send_time = sched_.now();

    msg.src = src;
    msg.transport = transport;
    msg.sameNode = same_node;
    msg.bytes = wire_bytes;

    sent_count_[src] += 1;
    sent_bytes_[src] += wire_bytes;
    total_messages_.fetch_add(1, std::memory_order_relaxed);

    if (engine_ != nullptr && !same_node) {
        // Engine mode: the receiver lives on another worker's node, so
        // neither its queue nor the network backend may be touched
        // from this thread. Stage the send; the epoch barrier computes
        // the arrival and delivers. No caller inspects the arrival
        // time of a cross-node send (receivers derive timing from the
        // delivered message), so report "unknown".
        Staged s;
        s.sk = engine_->currentSliceKey();
        s.idx = send_idx_[src]++;
        s.dst = dst;
        s.src_node = src_node;
        s.dst_node = dst_node;
        s.wire_bytes = wire_bytes;
        s.send_time = send_time;
        s.msg = std::move(msg);
        staged_[Engine::currentWorker()].push_back(std::move(s));
        return -1;
    }

    Time arrival;
    if (same_node) {
        arrival = send_time + costs_.smpMessageLatency;
    } else {
        arrival = net_.transfer(src_node, dst_node,
                                wire_bytes + 32 /* header */, send_time);
    }
    msg.arrival = arrival;

    std::uint64_t sk = 0;
    std::uint64_t sq;
    if (engine_ != nullptr) {
        // Same-node, same worker: deliver inline, but tie-break by
        // (slice key, sender index) — the global counter's value
        // would depend on the host-thread interleaving.
        sk = engine_->currentSliceKey();
        sq = send_idx_[src]++;
    } else {
        sq = seq_++;
    }
    enqueue(dst, Queued{arrival, sk, sq, std::move(msg)});

    if (tasks_[dst] >= 0)
        sched_.wakeIfBlocked(tasks_[dst], arrival);
    return arrival;
}

std::optional<Message>
MailboxSystem::tryReceive(ProcId dst, Time now)
{
    auto& q = queues_[dst];
    if (q.empty() || q.v[q.head].arrival > now)
        return std::nullopt;
    Message msg = std::move(q.v[q.head].msg);
    q.consume(q.head);
    return msg;
}

Time
MailboxSystem::receiveCpuCost(const Message& msg) const
{
    if (!msg.sameNode && msg.transport == Transport::Udp)
        return costs_.udpPerMessage;
    return costs_.mcPerMessage;
}

} // namespace mcdsm
