/**
 * @file
 * Cluster topology: which processors live on which SMP node.
 *
 * The paper's machine is 8 AlphaServer nodes with 4 processors each;
 * experiment configurations use subsets such as "16 processors = two
 * processors in each of 8 nodes".
 */

#ifndef MCDSM_NET_TOPOLOGY_H
#define MCDSM_NET_TOPOLOGY_H

#include "common/log.h"
#include "common/types.h"

namespace mcdsm {

struct Topology
{
    int nprocs = 1;        ///< compute processors
    int nodes = 1;         ///< SMP nodes in use
    int procsPerNode = 1;  ///< compute processors per node

    Topology() = default;

    Topology(int nprocs_, int nodes_)
        : nprocs(nprocs_), nodes(nodes_)
    {
        mcdsm_assert(nodes_ > 0 && nprocs_ > 0, "bad topology");
        mcdsm_assert(nprocs_ % nodes_ == 0,
                     "nprocs must be a multiple of nodes");
        procsPerNode = nprocs_ / nodes_;
    }

    NodeId
    nodeOf(ProcId p) const
    {
        mcdsm_assert(p >= 0 && p < nprocs, "proc id out of range");
        return p / procsPerNode;
    }

    /** First compute processor on a node. */
    ProcId
    firstProcOf(NodeId n) const
    {
        mcdsm_assert(n >= 0 && n < nodes, "node id out of range");
        return n * procsPerNode;
    }

    bool
    sameNode(ProcId a, ProcId b) const
    {
        return nodeOf(a) == nodeOf(b);
    }

    /**
     * The paper's standard processor-count ladder on an 8x4 machine:
     * 1; 2 on separate nodes; 4 = 1x4 nodes; 8 = 2x4; 12 = 3x4;
     * 16 = 2x8; 24 = 3x8; 32 = 4x8. Beyond the paper, the ladder
     * extends to hypothetical larger clusters of the same 4-CPU
     * nodes: 64 = 16x4 up to 1024 = 256x4.
     */
    static Topology
    standard(int nprocs)
    {
        switch (nprocs) {
          case 1: return {1, 1};
          case 2: return {2, 2};
          case 4: return {4, 4};
          case 8: return {8, 4};
          case 12: return {12, 4};
          case 16: return {16, 8};
          case 24: return {24, 8};
          case 32: return {32, 8};
          case 64: return {64, 16};
          case 128: return {128, 32};
          case 256: return {256, 64};
          case 512: return {512, 128};
          case 1024: return {1024, 256};
          default:
            mcdsm_fatal("no standard topology for %d processors "
                        "(ladder: 1,2,4,8,12,16,24,32,64,128,256,512,"
                        "1024)",
                        nprocs);
        }
    }
};

} // namespace mcdsm

#endif // MCDSM_NET_TOPOLOGY_H
