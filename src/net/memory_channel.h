/**
 * @file
 * Timing model of DEC's first-generation Memory Channel network.
 *
 * Modelled properties (paper §3.1):
 *  - user-level remote *writes* only; no remote reads;
 *  - fixed process-to-process latency (5.2 us);
 *  - per-link bandwidth limited by the 32-bit PCI bus (~30 MB/s);
 *  - aggregate (hub) bandwidth ~32 MB/s — the "modest cross-sectional
 *    bandwidth" that constrains Cashmere's write-through;
 *  - total ordering of writes (delivery times are monotone per queue,
 *    and the mailbox layer delivers in arrival order).
 *
 * The model keeps a next-free time per transmit link, per receive
 * link, and for the hub, and serialises transfers on all three.
 */

#ifndef MCDSM_NET_MEMORY_CHANNEL_H
#define MCDSM_NET_MEMORY_CHANNEL_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/costs.h"
#include "common/types.h"
#include "net/backend.h"

namespace mcdsm {

class FaultInjector;

class MemoryChannel final : public NetworkBackend
{
  public:
    MemoryChannel(const CostModel& costs, int nodes);

    /**
     * Every MC delivery path ends in `+ costs_.mcLatency` after
     * non-negative queueing/jitter terms, so the process-to-process
     * latency is an exact lower bound.
     */
    Time minCrossNodeLatency() const override { return costs_.mcLatency; }

    /**
     * Account a bulk transfer (page copy, message) of @p bytes from
     * node @p src to node @p dst, initiated at @p send_time.
     * @return time at which the data is fully visible at @p dst.
     */
    Time transfer(NodeId src, NodeId dst, std::size_t bytes,
                  Time send_time) override;

    /**
     * Account a broadcast write of @p bytes (e.g. a directory update):
     * occupies the source link and the hub once; all receive links.
     * @return time at which all nodes have seen the data.
     */
    Time broadcast(NodeId src, std::size_t bytes, Time send_time) override;

    /**
     * Account fine-grain write-through traffic (doubled writes).
     * Same queueing as transfer(); split out so callers can keep
     * separate statistics and so tests can target it.
     */
    Time
    streamWrite(NodeId src, NodeId dst, std::size_t bytes,
                Time send_time) override
    {
        stream_bytes_ += bytes;
        return occupy(src, dst, bytes, send_time);
    }

  private:
    Time occupy(NodeId src, NodeId dst, std::size_t bytes, Time send_time);

    /**
     * Effective receive-link next-free time for @p n: the per-node
     * value folded with the broadcast floor. A healthy broadcast lands
     * on every receive link but the sender's at the same instant, so
     * instead of an O(nodes) write per broadcast the model keeps the
     * landing time as a floor: the latest broadcast-done time overall
     * (bc_hi_, from node bc_hi_src_) plus the latest from any *other*
     * source (bc_lo_). For node n the applicable floor excludes n's
     * own broadcasts, which is bc_lo_ when n == bc_hi_src_ and bc_hi_
     * otherwise. The pair is maintainable exactly: whenever the
     * argmax source changes, the displaced bc_hi_ dominates every
     * earlier broadcast and its source differs from the new argmax.
     */
    Time
    rxFree(NodeId n) const
    {
        return std::max(rx_free_[n], n == bc_hi_src_ ? bc_lo_ : bc_hi_);
    }

    /** Fold a broadcast from @p src finishing at @p done into the floor. */
    void
    raiseBroadcastFloor(NodeId src, Time done)
    {
        if (src == bc_hi_src_) {
            bc_hi_ = std::max(bc_hi_, done);
        } else if (done > bc_hi_) {
            bc_lo_ = bc_hi_;
            bc_hi_ = done;
            bc_hi_src_ = src;
        } else {
            bc_lo_ = std::max(bc_lo_, done);
        }
    }

    std::vector<Time> tx_free_;
    std::vector<Time> rx_free_;
    Time hub_free_ = 0;
    Time bc_hi_ = 0;
    Time bc_lo_ = 0;
    NodeId bc_hi_src_ = kNoNode;
};

} // namespace mcdsm

#endif // MCDSM_NET_MEMORY_CHANNEL_H
