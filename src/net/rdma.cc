#include "net/rdma.h"

#include <algorithm>

#include "common/log.h"
#include "fault/fault_injector.h"

namespace mcdsm {

RdmaBackend::RdmaBackend(const CostModel& costs, int nodes)
    : NetworkBackend(costs, nodes), tx_free_(nodes, 0), rx_free_(nodes, 0),
      batching_(nodes, 0), batch_(nodes)
{}

Time
RdmaBackend::occupy(NodeId data_src, NodeId data_dst, std::size_t bytes,
                    Time t0)
{
    mcdsm_assert(data_src >= 0 && data_src < nodes(), "bad src node");
    mcdsm_assert(data_dst >= 0 && data_dst < nodes(), "bad dst node");

    Time start = std::max({t0, tx_free_[data_src], switch_free_});
    if (data_src != data_dst)
        start = std::max(start, rx_free_[data_dst]);

    // Fault injection samples link state at the transfer's start time;
    // with no injector attached the arithmetic below is exactly the
    // healthy model's.
    double link_bw = costs_.rdmaLinkBw;
    double agg_bw = costs_.rdmaAggBw;
    Time jitter = 0;
    if (faults_ != nullptr) [[unlikely]] {
        link_bw *= faults_->linkFactor(data_src, start);
        agg_bw *= faults_->hubFactor();
        jitter = faults_->latencyJitter(data_src);
    }

    const Time link_time =
        static_cast<Time>(static_cast<double>(bytes) / link_bw);
    const Time agg_time =
        static_cast<Time>(static_cast<double>(bytes) / agg_bw);

    const Time tx_done = start + link_time;
    tx_free_[data_src] = tx_done;
    switch_free_ = start + agg_time;
    Time done = std::max(tx_done, switch_free_);
    if (faults_ != nullptr && data_src != data_dst) [[unlikely]] {
        // Receive leg: a degraded destination port drains no faster
        // than its own bandwidth allows.
        const Time rx_time = static_cast<Time>(
            static_cast<double>(bytes) /
            (costs_.rdmaLinkBw * faults_->linkFactor(data_dst, start)));
        done = std::max(done, start + rx_time);
    }
    done += jitter;
    if (data_src != data_dst) {
        rx_free_[data_dst] = done;
    } else {
        // Loop-back through the local HCA: the data crosses the host
        // bus twice; the receive leg shares the same port budget.
        tx_free_[data_src] = done + link_time;
        done = tx_free_[data_src];
    }
    return done;
}

Time
RdmaBackend::complete(Op op, NodeId src, NodeId peer, std::size_t bytes,
                      Time t)
{
    switch (op) {
      case Op::Read:
        // Request propagates to the responder NIC, the data flows
        // back (occupying the responder's tx port), the completion
        // propagates with the tail of the data. No responder CPU.
        return occupy(peer, src, bytes, t + costs_.rdmaLatency) +
               costs_.rdmaLatency;
      case Op::Write:
        // Posted write: returns remote-visibility time (data landed
        // at the target). The initiator does not wait for an ack.
        return occupy(src, peer, bytes, t) + costs_.rdmaLatency;
      case Op::Cas:
      case Op::Faa:
        // The request word reaches the target NIC, the atomic unit
        // executes it against host memory, the old value returns.
        return occupy(src, peer, kAtomicWireBytes, t) +
               costs_.rdmaLatency + costs_.rdmaNicAtomic +
               costs_.rdmaLatency;
    }
    mcdsm_panic("unknown rdma op");
}

void
RdmaBackend::account(Op op, std::size_t bytes)
{
    total_bytes_ += bytes;
    one_sided_bytes_ += bytes;
    transfers_ += 1;
    switch (op) {
      case Op::Read: read_verbs_ += 1; break;
      case Op::Write: write_verbs_ += 1; break;
      case Op::Cas: cas_verbs_ += 1; break;
      case Op::Faa: faa_verbs_ += 1; break;
    }
}

Time
RdmaBackend::readRemote(NodeId src, NodeId from, std::size_t bytes, Time t)
{
    mcdsm_assert(src != from, "one-sided read of the local node");
    account(Op::Read, bytes);
    if (batching_[src]) {
        batch_[src].push_back({Op::Read, from, bytes});
        return -1;
    }
    doorbells_ += 1;
    return complete(Op::Read, src, from, bytes,
                    t + costs_.rdmaDoorbellCost);
}

Time
RdmaBackend::writeRemote(NodeId src, NodeId to, std::size_t bytes, Time t)
{
    mcdsm_assert(src != to, "one-sided write to the local node");
    account(Op::Write, bytes);
    if (batching_[src]) {
        batch_[src].push_back({Op::Write, to, bytes});
        return -1;
    }
    doorbells_ += 1;
    return complete(Op::Write, src, to, bytes,
                    t + costs_.rdmaDoorbellCost);
}

Time
RdmaBackend::atomicCas(NodeId src, NodeId at, Time t)
{
    mcdsm_assert(src != at, "NIC atomic on the local node");
    account(Op::Cas, kAtomicWireBytes);
    if (batching_[src]) {
        batch_[src].push_back({Op::Cas, at, kAtomicWireBytes});
        return -1;
    }
    doorbells_ += 1;
    return complete(Op::Cas, src, at, kAtomicWireBytes,
                    t + costs_.rdmaDoorbellCost);
}

Time
RdmaBackend::atomicFaa(NodeId src, NodeId at, Time t)
{
    mcdsm_assert(src != at, "NIC atomic on the local node");
    account(Op::Faa, kAtomicWireBytes);
    if (batching_[src]) {
        batch_[src].push_back({Op::Faa, at, kAtomicWireBytes});
        return -1;
    }
    doorbells_ += 1;
    return complete(Op::Faa, src, at, kAtomicWireBytes,
                    t + costs_.rdmaDoorbellCost);
}

void
RdmaBackend::batchBegin(NodeId src)
{
    mcdsm_assert(!batching_[src], "nested doorbell batch");
    batching_[src] = 1;
}

Time
RdmaBackend::batchEnd(NodeId src, Time t)
{
    mcdsm_assert(batching_[src], "batchEnd without batchBegin");
    batching_[src] = 0;
    if (batch_[src].empty())
        return 0;
    // One doorbell covers the whole region; the NIC then walks the
    // work queue in post order, so the ops serialise on the source
    // port exactly as the sequential occupy calls model.
    doorbells_ += 1;
    const Time rang = t + costs_.rdmaDoorbellCost;
    Time done = 0;
    for (const BatchedOp& op : batch_[src])
        done = std::max(done, complete(op.op, src, op.peer, op.bytes,
                                       rang));
    batch_[src].clear();
    return done;
}

Time
RdmaBackend::transfer(NodeId src, NodeId dst, std::size_t bytes,
                      Time send_time)
{
    total_bytes_ += bytes;
    transfers_ += 1;
    // Send/recv over a reliable-connected QP: one doorbell, data to
    // the receive buffer, completion visible latency later.
    return occupy(src, dst, bytes,
                  send_time + costs_.rdmaDoorbellCost) +
           costs_.rdmaLatency;
}

Time
RdmaBackend::broadcast(NodeId src, std::size_t bytes, Time send_time)
{
    // No hardware multicast: (nodes-1) posted writes serialised on
    // the source port, one doorbell for the batch. Receive-port
    // occupancy of the tiny per-node copies is not materialised
    // (unlike MC, the switch is not the bottleneck for word-sized
    // broadcasts); the completion reflects the source-port drain.
    const auto fanout = static_cast<std::uint64_t>(nodes() - 1);
    total_bytes_ += bytes * fanout;
    transfers_ += 1;
    if (fanout == 0)
        return send_time + costs_.rdmaLatency;

    Time start = std::max({send_time + costs_.rdmaDoorbellCost,
                           tx_free_[src], switch_free_});
    double link_bw = costs_.rdmaLinkBw;
    double agg_bw = costs_.rdmaAggBw;
    Time jitter = 0;
    if (faults_ != nullptr) [[unlikely]] {
        link_bw *= faults_->linkFactor(src, start);
        agg_bw *= faults_->hubFactor();
        jitter = faults_->latencyJitter(src);
    }
    const double total = static_cast<double>(bytes * fanout);
    const Time tx_done = start + static_cast<Time>(total / link_bw);
    tx_free_[src] = tx_done;
    switch_free_ = start + static_cast<Time>(total / agg_bw);
    return std::max(tx_done, switch_free_) + jitter +
           costs_.rdmaLatency;
}

Time
RdmaBackend::streamWrite(NodeId src, NodeId dst, std::size_t bytes,
                         Time send_time)
{
    stream_bytes_ += bytes;
    total_bytes_ += bytes;
    transfers_ += 1;
    // Write-through traffic maps to posted RDMA writes; fine-grain
    // stores coalesce in the write-combining doorbell page, so no
    // per-store doorbell cost is charged here (the CPU-side cost
    // stays with the protocol's mcPerWriteCpu charge).
    return occupy(src, dst, bytes, send_time) + costs_.rdmaLatency;
}

} // namespace mcdsm
