#include "net/backend.h"

#include "common/log.h"
#include "net/memory_channel.h"
#include "net/rdma.h"

namespace mcdsm {

const char*
netName(NetKind k)
{
    switch (k) {
      case NetKind::Mc: return "mc";
      case NetKind::Rdma: return "rdma";
    }
    return "?";
}

bool
netFromName(const std::string& name, NetKind* out)
{
    if (name == "mc") {
        *out = NetKind::Mc;
        return true;
    }
    if (name == "rdma") {
        *out = NetKind::Rdma;
        return true;
    }
    return false;
}

NetworkBackend::NetworkBackend(const CostModel& costs, int nodes)
    : costs_(costs), nodes_(nodes)
{
    mcdsm_assert(nodes > 0, "network backend needs at least one node");
}

// Message-era backends reject the verb set loudly: protocol fast
// paths must gate on supportsOneSided() before issuing verbs.
Time
NetworkBackend::readRemote(NodeId, NodeId, std::size_t, Time)
{
    mcdsm_panic("backend '%s-era' has no one-sided read verb",
                supportsOneSided() ? "rdma" : "message");
}

Time
NetworkBackend::writeRemote(NodeId, NodeId, std::size_t, Time)
{
    mcdsm_panic("backend has no one-sided write verb");
}

Time
NetworkBackend::atomicCas(NodeId, NodeId, Time)
{
    mcdsm_panic("backend has no CAS verb");
}

Time
NetworkBackend::atomicFaa(NodeId, NodeId, Time)
{
    mcdsm_panic("backend has no FAA verb");
}

void
NetworkBackend::batchBegin(NodeId)
{
    mcdsm_panic("backend has no doorbell batching");
}

Time
NetworkBackend::batchEnd(NodeId, Time)
{
    mcdsm_panic("backend has no doorbell batching");
}

std::unique_ptr<NetworkBackend>
makeNetworkBackend(NetKind kind, const CostModel& costs, int nodes)
{
    switch (kind) {
      case NetKind::Mc:
        return std::make_unique<MemoryChannel>(costs, nodes);
      case NetKind::Rdma:
        return std::make_unique<RdmaBackend>(costs, nodes);
    }
    mcdsm_panic("unknown network kind");
}

} // namespace mcdsm
