/**
 * @file
 * Timing model of an RDMA-verbs network — the "modern interconnect"
 * counterpoint to the paper's Memory Channel (ROADMAP item 2).
 *
 * Modelled properties (after the SMART DSM verb set and user-level
 * DSM work on modern interconnects, see PAPERS.md / SNIPPETS.md §2):
 *  - one-sided remote reads AND writes (the paper's central
 *    constraint — "no remote reads" — is lifted);
 *  - NIC-resident atomics: compare-and-swap and fetch-and-add
 *    execute at the target NIC with no target-CPU involvement;
 *  - doorbell batching: posting N work requests costs one MMIO
 *    doorbell write when issued inside a batchBegin/batchEnd region;
 *  - ~1 us one-way latency, ~GB/s per-port bandwidth, a switch with
 *    ~8x aggregate bandwidth (vs. MC's hub at ~1x a single link).
 *
 * The queueing skeleton mirrors MemoryChannel: a next-free time per
 * transmit port, per receive port, and for the switch, with
 * cut-through occupancy on all three. Unlike MC, broadcasts are
 * modelled as (nodes-1) posted writes serialised on the source port
 * (no hardware multicast), and reads occupy the *responder's*
 * transmit port — the data flows toward the requester.
 *
 * Fault injection reuses the Memory Channel hooks: linkFactor scales
 * port bandwidth, hubFactor the switch, latencyJitter bounds delivery
 * jitter. Byte accounting is never affected by injection.
 */

#ifndef MCDSM_NET_RDMA_H
#define MCDSM_NET_RDMA_H

#include <cstdint>
#include <vector>

#include "common/costs.h"
#include "common/types.h"
#include "net/backend.h"

namespace mcdsm {

class RdmaBackend final : public NetworkBackend
{
  public:
    RdmaBackend(const CostModel& costs, int nodes);

    bool supportsOneSided() const override { return true; }

    /**
     * Every verb and send/recv completion includes at least one
     * one-way wire latency on top of non-negative port/switch
     * occupancy, so rdmaLatency lower-bounds cross-node visibility.
     */
    Time minCrossNodeLatency() const override { return costs_.rdmaLatency; }

    // ---- message-era operations (send/recv over RC queue pairs) ------
    Time transfer(NodeId src, NodeId dst, std::size_t bytes,
                  Time send_time) override;
    Time broadcast(NodeId src, std::size_t bytes, Time send_time) override;
    Time streamWrite(NodeId src, NodeId dst, std::size_t bytes,
                     Time send_time) override;

    // ---- one-sided verbs ----------------------------------------------
    Time readRemote(NodeId src, NodeId from, std::size_t bytes,
                    Time t) override;
    Time writeRemote(NodeId src, NodeId to, std::size_t bytes,
                     Time t) override;
    Time atomicCas(NodeId src, NodeId at, Time t) override;
    Time atomicFaa(NodeId src, NodeId at, Time t) override;

    void batchBegin(NodeId src) override;
    Time batchEnd(NodeId src, Time t) override;

  private:
    enum class Op : std::uint8_t { Read, Write, Cas, Faa };

    /**
     * Occupy the three resources for @p bytes flowing from
     * @p data_src to @p data_dst starting no earlier than @p t0.
     * @return when the last byte lands at @p data_dst.
     */
    Time occupy(NodeId data_src, NodeId data_dst, std::size_t bytes,
                Time t0);

    /** Completion time of one posted op whose doorbell rang at @p t. */
    Time complete(Op op, NodeId src, NodeId peer, std::size_t bytes,
                  Time t);

    /** Count an op's bytes/verbs (done at issue, batched or not). */
    void account(Op op, std::size_t bytes);

    struct BatchedOp
    {
        Op op;
        NodeId peer;
        std::size_t bytes;
    };

    std::vector<Time> tx_free_;
    std::vector<Time> rx_free_;
    Time switch_free_ = 0;

    /** Open batch region per source node (empty vector = not batching). */
    std::vector<std::uint8_t> batching_;
    std::vector<std::vector<BatchedOp>> batch_;
};

} // namespace mcdsm

#endif // MCDSM_NET_RDMA_H
