/**
 * @file
 * Point-to-point message buffers between simulated processors.
 *
 * Models the paper's two messaging substrates:
 *  - user-level Memory Channel message buffers with sense-reversing
 *    flow-control flags (Transport::McBuffer);
 *  - DEC's kernel-level UDP over Memory Channel (Transport::Udp).
 *
 * Messages between processors on the same SMP node use ordinary shared
 * memory (the only place the paper's systems exploit intra-node
 * hardware coherence), so they bypass the Memory Channel entirely.
 *
 * Delivery is in arrival-time order per receiver, with a global
 * sequence number as a deterministic tie-break.
 */

#ifndef MCDSM_NET_MAILBOX_H
#define MCDSM_NET_MAILBOX_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/costs.h"
#include "common/types.h"
#include "mem/buffer_pool.h"
#include "net/backend.h"
#include "net/topology.h"
#include "sim/scheduler.h"

namespace mcdsm {

class Engine;

/** Which wire a message travels on. */
enum class Transport { McBuffer, Udp };

/**
 * A protocol message. `type` is protocol defined; a/b/c carry small
 * scalar arguments; payload carries bulk data (pages, diffs, interval
 * records). `bytes` is the modelled wire size, which may exceed
 * payload.size() to account for headers.
 *
 * The payload is a pooled flat buffer (move-only), so a Message moves
 * but does not copy — in steady state a send/receive round trip of a
 * page-carrying message performs no heap allocation at all.
 */
struct Message
{
    int type = 0;
    ProcId src = kNoProc;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    std::size_t bytes = 0;
    PoolBuf payload;

    /**
     * Structured payload (interval records, diff lists). The
     * simulator carries these by shared pointer instead of
     * serialising; `bytes` still models the wire size.
     */
    std::shared_ptr<const void> box;

    // Filled in by MailboxSystem::send().
    Time arrival = 0;
    Transport transport = Transport::McBuffer;
    bool sameNode = false;
};

/**
 * All mailboxes in the cluster. Endpoint ids 0..nprocs-1 are compute
 * processors; ids nprocs..nprocs+nodes-1 are the per-node protocol
 * processors used by the csm_pp variant.
 */
class MailboxSystem
{
  public:
    MailboxSystem(Scheduler& sched, NetworkBackend& net,
                  const CostModel& costs, const Topology& topo);

    /** Endpoint id of node @p n's dedicated protocol processor. */
    ProcId ppEndpoint(NodeId n) const { return topo_.nprocs + n; }
    int endpointCount() const { return topo_.nprocs + topo_.nodes; }

    /** Node an endpoint lives on (works for pp endpoints too). */
    NodeId nodeOfEndpoint(ProcId p) const;

    /** Associate an endpoint with its scheduler task (for wakeups). */
    void bindTask(ProcId endpoint, TaskId task);

    /**
     * Send @p msg from @p src to @p dst. Charges the sender's CPU via
     * the scheduler (the caller must be the sending task), computes
     * the arrival time through the Memory Channel or intra-node shared
     * memory, enqueues, and wakes the receiver.
     * @return the arrival time.
     */
    Time send(ProcId src, ProcId dst, Message msg, Transport transport);

    /**
     * Pop the earliest message for @p dst that has arrived by @p now.
     */
    std::optional<Message> tryReceive(ProcId dst, Time now);

    /**
     * Pop the earliest message for @p dst that has arrived by @p now
     * and satisfies @p pred; messages failing @p pred stay queued in
     * order. Used by wait loops to pull replies past requests that
     * are not yet serviceable.
     */
    template <typename Pred>
    std::optional<Message>
    tryReceiveIf(ProcId dst, Time now, Pred pred)
    {
        auto& q = queues_[dst];
        for (std::size_t i = q.head; i < q.v.size(); ++i) {
            if (q.v[i].arrival > now)
                break;
            if (pred(q.v[i].msg)) {
                Message msg = std::move(q.v[i].msg);
                q.consume(i);
                return msg;
            }
        }
        return std::nullopt;
    }

    /**
     * Minimum of @p actionable_time(msg) over queued messages, or -1
     * if none apply. @p actionable_time returns -1 to skip a message
     * and otherwise a value >= msg.arrival, which allows early exit
     * on the arrival-ordered queue.
     */
    template <typename F>
    Time
    minActionable(ProcId dst, F actionable_time) const
    {
        const auto& q = queues_[dst];
        Time best = -1;
        for (std::size_t i = q.head; i < q.v.size(); ++i) {
            if (best >= 0 && q.v[i].arrival >= best)
                break;
            const Time t = actionable_time(q.v[i].msg);
            if (t >= 0 && (best < 0 || t < best))
                best = t;
        }
        return best;
    }

    /** Earliest arrival time queued for @p dst, or -1 if none. */
    Time
    earliestArrival(ProcId dst) const
    {
        const auto& q = queues_[dst];
        return q.empty() ? -1 : q.v[q.head].arrival;
    }

    bool empty(ProcId dst) const { return queues_[dst].empty(); }

    /**
     * Receiver-side CPU cost of consuming a message of transport type
     * @p t (charged by the caller once per receive).
     */
    Time receiveCpuCost(const Message& msg) const;

    std::uint64_t messagesSentBy(ProcId p) const { return sent_count_[p]; }
    std::uint64_t bytesSentBy(ProcId p) const { return sent_bytes_[p]; }
    std::uint64_t
    totalMessages() const
    {
        return total_messages_.load(std::memory_order_relaxed);
    }

    /**
     * Switch to parallel-engine mode: cross-node sends are staged in
     * per-worker buffers instead of being delivered inline, and queue
     * tie-breaks use (sender slice key, per-sender send index) instead
     * of the global send counter — the counter's value would depend on
     * how slices interleave across host threads.
     */
    void enableEngine(Engine* engine, int workers);

    /**
     * Deliver every staged cross-node message, in the global
     * deterministic order (sender slice key, per-sender send index).
     * Called from the engine's epoch barrier (single-threaded): the
     * network backend computes arrivals in an order independent of the
     * worker count, so its internal state (channel occupancy, fault
     * jitter draws) evolves identically for every --sim-threads value.
     */
    void drainStaged();

  private:
    /**
     * One queued message. Per-endpoint queues are flat vectors kept
     * sorted by (arrival, seq): messages mostly arrive in order, so
     * insertion is a push_back, and the retained capacity makes the
     * steady-state enqueue/dequeue cycle allocation-free (the
     * node-per-message std::map this replaces allocated on every
     * send).
     */
    struct Queued
    {
        Time arrival;
        /// Sender slice key in engine mode; 0 in the legacy loop.
        std::uint64_t sk;
        /// Legacy: global send order. Engine: per-sender send index.
        std::uint64_t seq;
        Message msg;
    };

    /**
     * Queue order: arrival, then sender slice key, then seq. The
     * legacy loop stamps sk = 0 and a globally monotone seq, so the
     * comparison degenerates to the historical (arrival, send order).
     * In engine mode (sk, seq) identifies the send uniquely and is
     * independent of how slices were spread over host threads.
     */
    static bool
    queuedBefore(const Queued& a, const Queued& b)
    {
        if (a.arrival != b.arrival)
            return a.arrival < b.arrival;
        if (a.sk != b.sk)
            return a.sk < b.sk;
        return a.seq < b.seq;
    }

    /** A cross-node send awaiting the epoch barrier (engine mode). */
    struct Staged
    {
        std::uint64_t sk;  ///< sender slice key
        std::uint64_t idx; ///< per-sender send index
        ProcId dst;
        NodeId src_node;
        NodeId dst_node;
        std::size_t wire_bytes;
        Time send_time;
        Message msg;
    };

    void enqueue(ProcId dst, Queued item);

    /**
     * Per-endpoint queue: the live messages are v[head..v.size()).
     * Consuming the front advances `head` instead of erasing —
     * erase-at-front moves every queued Message, which makes a
     * barrier manager draining P arrivals an O(P^2) shuffle at large
     * processor counts. Consumed slots (their Messages already moved
     * from) are reclaimed wholesale once the queue drains.
     */
    struct Queue
    {
        std::vector<Queued> v;
        std::size_t head = 0;

        bool empty() const { return head == v.size(); }

        /** Remove position @p i (>= head) after moving its Message out. */
        void
        consume(std::size_t i)
        {
            if (i == head) {
                head += 1;
                if (head == v.size()) {
                    v.clear();
                    head = 0;
                }
            } else {
                v.erase(v.begin() +
                        static_cast<std::ptrdiff_t>(i));
            }
        }
    };

    Scheduler& sched_;
    NetworkBackend& net_;
    const CostModel& costs_;
    Topology topo_;

    std::vector<Queue> queues_;
    std::vector<TaskId> tasks_;
    std::vector<std::uint64_t> sent_count_;
    std::vector<std::uint64_t> sent_bytes_;
    std::vector<NodeId> node_of_; ///< endpoint -> node lookup
    std::uint64_t seq_ = 0;
    /// Atomic: same-node sends bump it concurrently in engine mode.
    std::atomic<std::uint64_t> total_messages_{0};

    Engine* engine_ = nullptr;
    /// Staged cross-node sends, one buffer per engine worker.
    std::vector<std::vector<Staged>> staged_;
    /// Per-endpoint send index (engine-mode queue tie-break).
    std::vector<std::uint64_t> send_idx_;
    /// Barrier-time merge scratch (capacity retained across epochs).
    std::vector<Staged> drain_buf_;
};

} // namespace mcdsm

#endif // MCDSM_NET_MAILBOX_H
