#include "net/memory_channel.h"

#include <algorithm>

#include "common/log.h"

namespace mcdsm {

MemoryChannel::MemoryChannel(const CostModel& costs, int nodes)
    : costs_(costs), tx_free_(nodes, 0), rx_free_(nodes, 0)
{
    mcdsm_assert(nodes > 0, "MemoryChannel needs at least one node");
}

Time
MemoryChannel::occupy(NodeId src, NodeId dst, std::size_t bytes,
                      Time send_time)
{
    mcdsm_assert(src >= 0 && src < nodes(), "bad src node");
    mcdsm_assert(dst >= 0 && dst < nodes(), "bad dst node");

    total_bytes_ += bytes;
    transfers_ += 1;

    const Time link_time =
        static_cast<Time>(static_cast<double>(bytes) / costs_.mcLinkBw);
    const Time hub_time =
        static_cast<Time>(static_cast<double>(bytes) / costs_.mcAggBw);

    // Cut-through approximation: the transfer starts when all three
    // resources are free, occupies the links for bytes/linkBw and the
    // hub for bytes/aggBw, and lands latency after it finishes.
    Time start = std::max({send_time, tx_free_[src], hub_free_});
    if (src != dst)
        start = std::max(start, rx_free_[dst]);

    const Time tx_done = start + link_time;
    tx_free_[src] = tx_done;
    hub_free_ = start + hub_time;
    Time done = std::max(tx_done, hub_free_);
    if (src != dst) {
        rx_free_[dst] = done;
    } else {
        // Loop-back: the data crosses the source PCI bus twice; the
        // receive leg shares the same link budget.
        tx_free_[src] = done + link_time;
        done = tx_free_[src];
    }

    return done + costs_.mcLatency;
}

Time
MemoryChannel::transfer(NodeId src, NodeId dst, std::size_t bytes,
                        Time send_time)
{
    return occupy(src, dst, bytes, send_time);
}

Time
MemoryChannel::broadcast(NodeId src, std::size_t bytes, Time send_time)
{
    total_bytes_ += bytes * static_cast<std::uint64_t>(nodes() - 1);
    transfers_ += 1;

    const Time link_time =
        static_cast<Time>(static_cast<double>(bytes) / costs_.mcLinkBw);
    const Time hub_time =
        static_cast<Time>(static_cast<double>(bytes) / costs_.mcAggBw);

    Time start = std::max({send_time, tx_free_[src], hub_free_});
    const Time tx_done = start + link_time;
    tx_free_[src] = tx_done;
    hub_free_ = start + hub_time;

    Time done = std::max(tx_done, hub_free_);
    for (NodeId n = 0; n < nodes(); ++n) {
        if (n == src)
            continue;
        rx_free_[n] = std::max(rx_free_[n], done);
    }
    return done + costs_.mcLatency;
}

} // namespace mcdsm
