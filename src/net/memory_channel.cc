#include "net/memory_channel.h"

#include <algorithm>

#include "common/log.h"
#include "fault/fault_injector.h"

namespace mcdsm {

MemoryChannel::MemoryChannel(const CostModel& costs, int nodes)
    : NetworkBackend(costs, nodes), tx_free_(nodes, 0), rx_free_(nodes, 0)
{}

Time
MemoryChannel::occupy(NodeId src, NodeId dst, std::size_t bytes,
                      Time send_time)
{
    mcdsm_assert(src >= 0 && src < nodes(), "bad src node");
    mcdsm_assert(dst >= 0 && dst < nodes(), "bad dst node");

    total_bytes_ += bytes;
    transfers_ += 1;

    // Cut-through approximation: the transfer starts when all three
    // resources are free, occupies the links for bytes/linkBw and the
    // hub for bytes/aggBw, and lands latency after it finishes.
    Time start = std::max({send_time, tx_free_[src], hub_free_});
    if (src != dst)
        start = std::max(start, rxFree(dst));

    // Fault injection samples link state at the transfer's start time;
    // with no injector attached the arithmetic below is exactly the
    // healthy model's.
    double link_bw = costs_.mcLinkBw;
    double agg_bw = costs_.mcAggBw;
    Time jitter = 0;
    if (faults_ != nullptr) [[unlikely]] {
        link_bw *= faults_->linkFactor(src, start);
        agg_bw *= faults_->hubFactor();
        jitter = faults_->latencyJitter(src);
    }

    const Time link_time =
        static_cast<Time>(static_cast<double>(bytes) / link_bw);
    const Time hub_time =
        static_cast<Time>(static_cast<double>(bytes) / agg_bw);

    const Time tx_done = start + link_time;
    tx_free_[src] = tx_done;
    hub_free_ = start + hub_time;
    Time done = std::max(tx_done, hub_free_);
    if (faults_ != nullptr && src != dst) [[unlikely]] {
        // Receive leg: a degraded destination link drains no faster
        // than its own bandwidth allows.
        const Time rx_time = static_cast<Time>(
            static_cast<double>(bytes) /
            (costs_.mcLinkBw * faults_->linkFactor(dst, start)));
        done = std::max(done, start + rx_time);
    }
    // Jitter lands before the receive link is released, so delivery
    // stays monotone per link: the next transfer to this destination
    // starts no earlier than rx_free_[dst].
    done += jitter;
    if (src != dst) {
        rx_free_[dst] = done;
    } else {
        // Loop-back: the data crosses the source PCI bus twice; the
        // receive leg shares the same link budget.
        tx_free_[src] = done + link_time;
        done = tx_free_[src];
    }

    return done + costs_.mcLatency;
}

Time
MemoryChannel::transfer(NodeId src, NodeId dst, std::size_t bytes,
                        Time send_time)
{
    return occupy(src, dst, bytes, send_time);
}

Time
MemoryChannel::broadcast(NodeId src, std::size_t bytes, Time send_time)
{
    total_bytes_ += bytes * static_cast<std::uint64_t>(nodes() - 1);
    transfers_ += 1;

    Time start = std::max({send_time, tx_free_[src], hub_free_});

    double link_bw = costs_.mcLinkBw;
    double agg_bw = costs_.mcAggBw;
    Time jitter = 0;
    if (faults_ != nullptr) [[unlikely]] {
        link_bw *= faults_->linkFactor(src, start);
        agg_bw *= faults_->hubFactor();
        jitter = faults_->latencyJitter(src);
    }

    const Time link_time =
        static_cast<Time>(static_cast<double>(bytes) / link_bw);
    const Time hub_time =
        static_cast<Time>(static_cast<double>(bytes) / agg_bw);

    const Time tx_done = start + link_time;
    tx_free_[src] = tx_done;
    hub_free_ = start + hub_time;

    const Time done = std::max(tx_done, hub_free_) + jitter;
    // The broadcast completes only when the slowest receive link has
    // drained it. Healthy links all land at `done`, which the floor
    // records in O(1) — no per-node write (see rxFree()). Only a
    // degraded link can land later than `done`; that excess is
    // materialised per node on the (rare) faulted path.
    raiseBroadcastFloor(src, done);
    Time done_all = done;
    if (faults_ != nullptr) [[unlikely]] {
        for (NodeId n = 0; n < nodes(); ++n) {
            if (n == src)
                continue;
            const Time rx_time = static_cast<Time>(
                static_cast<double>(bytes) /
                (costs_.mcLinkBw * faults_->linkFactor(n, start)));
            const Time land = std::max(done, start + rx_time + jitter);
            if (land > done)
                rx_free_[n] = std::max(rx_free_[n], land);
            done_all = std::max(done_all, land);
        }
    }
    return done_all + costs_.mcLatency;
}

} // namespace mcdsm
