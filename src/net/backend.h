/**
 * @file
 * Network-backend interface: the timing/accounting contract every
 * interconnect model implements.
 *
 * Two backends exist:
 *  - MemoryChannel (net/memory_channel.h): the paper's machine —
 *    remote writes only, 5.2 us latency, ~30 MB/s links;
 *  - RdmaBackend (net/rdma.h): a modern RDMA-verbs network with
 *    one-sided remote reads/writes, NIC-resident CAS/FAA atomics and
 *    doorbell-batched op regions.
 *
 * The message-era operations (transfer / broadcast / streamWrite) are
 * the ones the original protocols were written against; the one-sided
 * verb set is only meaningful on backends where supportsOneSided()
 * returns true, and the protocol fast paths that use it are gated on
 * that plus per-feature DsmConfig switches. All byte accounting lives
 * in this base class so RunStats is filled uniformly regardless of
 * backend.
 */

#ifndef MCDSM_NET_BACKEND_H
#define MCDSM_NET_BACKEND_H

#include <cstdint>
#include <memory>
#include <string>

#include "common/costs.h"
#include "common/types.h"

namespace mcdsm {

class FaultInjector;

/** Which interconnect model a run simulates. */
enum class NetKind {
    Mc,   ///< first-generation Memory Channel (the paper's machine)
    Rdma, ///< RDMA verbs: one-sided read/write, CAS/FAA, doorbells
};

const char* netName(NetKind k);

/** Parse "mc" / "rdma". @return false on an unknown name. */
bool netFromName(const std::string& name, NetKind* out);

class NetworkBackend
{
  public:
    NetworkBackend(const CostModel& costs, int nodes);
    virtual ~NetworkBackend() = default;

    NetworkBackend(const NetworkBackend&) = delete;
    NetworkBackend& operator=(const NetworkBackend&) = delete;

    /**
     * Attach a fault injector (src/fault/): subsequent operations see
     * per-link bandwidth factors, background switch/hub load and
     * bounded delivery jitter. Unattached (the default), each model
     * is bit-identical to its healthy machine. Byte accounting is
     * never affected by injection.
     */
    void attachFaults(FaultInjector* faults) { faults_ = faults; }

    /**
     * Lower bound on the delivery time of any cross-node operation:
     * a transfer sent at time T is never visible at another node
     * before T + minCrossNodeLatency(). This is the lookahead the
     * conservative-PDES engine (src/sim/engine.h) turns into its
     * execution horizon, so it must hold under every load and fault
     * condition the backend models (queueing and degradation only
     * ever add delay on top of the base latency; jitter is
     * non-negative).
     */
    virtual Time minCrossNodeLatency() const = 0;

    // ---- message-era operations ---------------------------------------
    /**
     * Account a bulk transfer (page copy, message) of @p bytes from
     * node @p src to node @p dst, initiated at @p send_time.
     * @return time at which the data is fully visible at @p dst.
     */
    virtual Time transfer(NodeId src, NodeId dst, std::size_t bytes,
                          Time send_time) = 0;

    /**
     * Account a broadcast write of @p bytes (e.g. a directory update).
     * @return time at which all nodes have seen the data.
     */
    virtual Time broadcast(NodeId src, std::size_t bytes,
                           Time send_time) = 0;

    /**
     * Account fine-grain write-through traffic (doubled writes).
     * Same queueing as transfer(); split out so callers can keep
     * separate statistics and so tests can target it.
     */
    virtual Time streamWrite(NodeId src, NodeId dst, std::size_t bytes,
                             Time send_time) = 0;

    // ---- one-sided verbs (RDMA-era backends only) ----------------------
    /** True if the one-sided verb set below is usable. */
    virtual bool supportsOneSided() const { return false; }

    /** Wire bytes one atomic op moves (request + response words). */
    static constexpr std::size_t kAtomicWireBytes = 16;

    /**
     * One-sided read: node @p src pulls @p bytes from node @p from
     * with no CPU involvement at @p from. Issued at @p t.
     * @return completion time at the requester (CQE reaped).
     * Inside a batchBegin/batchEnd region the op is queued unposted
     * and -1 is returned; batchEnd() reports the flush completion.
     */
    virtual Time readRemote(NodeId src, NodeId from, std::size_t bytes,
                            Time t);

    /**
     * One-sided (posted) write of @p bytes from @p src into @p to.
     * @return time the data is visible at @p to.
     */
    virtual Time writeRemote(NodeId src, NodeId to, std::size_t bytes,
                             Time t);

    /**
     * NIC-resident compare-and-swap on a word at node @p at.
     * @return completion time at the requester (old value available).
     */
    virtual Time atomicCas(NodeId src, NodeId at, Time t);

    /** NIC-resident fetch-and-add; same timing contract as CAS. */
    virtual Time atomicFaa(NodeId src, NodeId at, Time t);

    /**
     * Open a doorbell-batched op region for @p src: verbs issued
     * until batchEnd() share a single doorbell (the per-QP MMIO
     * write), amortising its cost across the batch.
     */
    virtual void batchBegin(NodeId src);

    /**
     * Ring the doorbell for @p src's queued ops at time @p t.
     * @return completion time of the last op in the batch (0 when
     * the batch was empty).
     */
    virtual Time batchEnd(NodeId src, Time t);

    // ---- accounting -----------------------------------------------------
    /** Total bytes moved through the network. */
    std::uint64_t totalBytes() const { return total_bytes_; }
    /** Bytes moved by streamWrite (write-through). */
    std::uint64_t streamBytes() const { return stream_bytes_; }
    std::uint64_t transferCount() const { return transfers_; }
    /** Bytes moved by one-sided verbs (subset of totalBytes). */
    std::uint64_t oneSidedBytes() const { return one_sided_bytes_; }
    std::uint64_t readVerbs() const { return read_verbs_; }
    std::uint64_t writeVerbs() const { return write_verbs_; }
    std::uint64_t casVerbs() const { return cas_verbs_; }
    std::uint64_t faaVerbs() const { return faa_verbs_; }
    std::uint64_t doorbells() const { return doorbells_; }

    int nodes() const { return nodes_; }

  protected:
    const CostModel& costs_;
    const int nodes_;
    FaultInjector* faults_ = nullptr;

    std::uint64_t total_bytes_ = 0;
    std::uint64_t stream_bytes_ = 0;
    std::uint64_t transfers_ = 0;
    std::uint64_t one_sided_bytes_ = 0;
    std::uint64_t read_verbs_ = 0;
    std::uint64_t write_verbs_ = 0;
    std::uint64_t cas_verbs_ = 0;
    std::uint64_t faa_verbs_ = 0;
    std::uint64_t doorbells_ = 0;
};

/** Construct the backend for @p kind over @p costs / @p nodes. */
std::unique_ptr<NetworkBackend>
makeNetworkBackend(NetKind kind, const CostModel& costs, int nodes);

} // namespace mcdsm

#endif // MCDSM_NET_BACKEND_H
