#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>

#include "common/log.h"

namespace mcdsm {

namespace {

struct TimeField
{
    const char* name;
    Time CostModel::* field;
};

struct DoubleField
{
    const char* name;
    double CostModel::* field;
};

constexpr TimeField kTimeFields[] = {
    {"cycle", &CostModel::cycle},
    {"l1HitTime", &CostModel::l1HitTime},
    {"l2HitTime", &CostModel::l2HitTime},
    {"memTime", &CostModel::memTime},
    {"mprotect", &CostModel::mprotect},
    {"pageFault", &CostModel::pageFault},
    {"localSignal", &CostModel::localSignal},
    {"remoteSignalSend", &CostModel::remoteSignalSend},
    {"remoteSignalLatency", &CostModel::remoteSignalLatency},
    {"mcLatency", &CostModel::mcLatency},
    {"mcPerWriteCpu", &CostModel::mcPerWriteCpu},
    {"rdmaLatency", &CostModel::rdmaLatency},
    {"rdmaPerVerbCpu", &CostModel::rdmaPerVerbCpu},
    {"rdmaDoorbellCost", &CostModel::rdmaDoorbellCost},
    {"rdmaNicAtomic", &CostModel::rdmaNicAtomic},
    {"smpMessageLatency", &CostModel::smpMessageLatency},
    {"mcLockUncontended", &CostModel::mcLockUncontended},
    {"dirModify", &CostModel::dirModify},
    {"dirModifyLocked", &CostModel::dirModifyLocked},
    {"dirScan", &CostModel::dirScan},
    {"twinCost", &CostModel::twinCost},
    {"diffCreateMin", &CostModel::diffCreateMin},
    {"diffCreateMax", &CostModel::diffCreateMax},
    {"diffApplyBase", &CostModel::diffApplyBase},
    {"tmkPerInterval", &CostModel::tmkPerInterval},
    {"tmkPerNotice", &CostModel::tmkPerNotice},
    {"handlerDispatch", &CostModel::handlerDispatch},
    {"udpPerMessage", &CostModel::udpPerMessage},
    {"mcPerMessage", &CostModel::mcPerMessage},
    {"pollCheck", &CostModel::pollCheck},
};

constexpr DoubleField kDoubleFields[] = {
    {"nsPerOp", &CostModel::nsPerOp},
    {"mcLinkBw", &CostModel::mcLinkBw},
    {"mcAggBw", &CostModel::mcAggBw},
    {"rdmaLinkBw", &CostModel::rdmaLinkBw},
    {"rdmaAggBw", &CostModel::rdmaAggBw},
    {"busBw", &CostModel::busBw},
    {"diffApplyPerByte", &CostModel::diffApplyPerByte},
};

} // namespace

bool
applyCostFactor(CostModel& costs, const std::string& field, double factor)
{
    for (const auto& f : kTimeFields) {
        if (field == f.name) {
            if (factor != 1.0) {
                costs.*f.field = static_cast<Time>(
                    static_cast<double>(costs.*f.field) * factor);
            }
            return true;
        }
    }
    for (const auto& f : kDoubleFields) {
        if (field == f.name) {
            if (factor != 1.0)
                costs.*f.field *= factor;
            return true;
        }
    }
    return false;
}

const std::vector<std::string>&
costFieldNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto& f : kTimeFields)
            v.emplace_back(f.name);
        for (const auto& f : kDoubleFields)
            v.emplace_back(f.name);
        return v;
    }();
    return names;
}

const std::vector<std::string>&
scenarioNames()
{
    static const std::vector<std::string> names = {
        "null",     "link_degrade",    "one_slow_link",
        "hub_load", "jitter",          "brownout",
        "straggler", "slow_interrupts",
    };
    return names;
}

FaultPlan
makeScenario(const std::string& name, double magnitude,
             std::uint64_t seed)
{
    mcdsm_assert(magnitude >= 1.0, "scenario magnitude must be >= 1");
    FaultPlan p;
    p.scenario = name;
    p.seed = seed;
    p.magnitude = magnitude;

    if (name.rfind("cost:", 0) == 0) {
        CostModel probe;
        if (!applyCostFactor(probe, name.substr(5), 1.0)) {
            mcdsm_fatal("unknown cost field '%s' (see costFieldNames())",
                        name.substr(5).c_str());
        }
    } else {
        bool known = false;
        for (const auto& n : scenarioNames())
            known = known || n == name;
        if (!known)
            mcdsm_fatal("unknown fault scenario '%s'", name.c_str());
    }

    // Magnitude 1 is the healthy machine for every scenario: an inert
    // plan, so magnitude sweeps can include the baseline point.
    if (name == "null" || magnitude == 1.0)
        return p;

    if (name == "link_degrade") {
        p.linkBwFactor = 1.0 / magnitude;
    } else if (name == "one_slow_link") {
        p.linkBwFactor = 1.0 / magnitude;
        p.degradedLinks = 1;
    } else if (name == "hub_load") {
        p.hubLoadFraction = 1.0 - 1.0 / magnitude;
    } else if (name == "jitter") {
        p.latencyJitterMax =
            static_cast<Time>(magnitude * kMicrosecond);
    } else if (name == "brownout") {
        p.degradedLinks = 1;
        p.brownoutFactor = 0.25;
        p.brownoutPeriod = 5 * kMillisecond;
        p.brownoutDuty = std::min<Time>(
            p.brownoutPeriod,
            static_cast<Time>(magnitude * 500 * kMicrosecond));
    } else if (name == "straggler") {
        p.stragglerNodes = 1;
        p.stragglerCompute = magnitude;
        p.stragglerVm = magnitude;
        p.stragglerSignal = magnitude;
    } else if (name == "slow_interrupts") {
        p.stragglerNodes = -1;
        p.stragglerSignal = magnitude;
    } else {
        p.costField = name.substr(5);
        p.costFactor = magnitude;
    }
    return p;
}

FaultPlan
faultPlanFromSpec(const std::string& spec, std::uint64_t seed)
{
    std::string name = spec;
    double magnitude = 2.0;
    const std::size_t colon = spec.rfind(':');
    if (colon != std::string::npos) {
        const std::string tail = spec.substr(colon + 1);
        char* end = nullptr;
        const double v = std::strtod(tail.c_str(), &end);
        if (end != tail.c_str() && *end == '\0') {
            magnitude = v;
            name = spec.substr(0, colon);
        }
    }
    return makeScenario(name, magnitude, seed);
}

} // namespace mcdsm
