/**
 * @file
 * Deterministic fault injector.
 *
 * Turns a FaultPlan into concrete injections against the three hook
 * layers:
 *
 *  - MemoryChannel: per-link bandwidth factors (steady degradation and
 *    transient brown-out windows over virtual time), background hub
 *    load, and bounded per-transfer delivery jitter;
 *  - DsmRuntime / Proc: per-node cycle-time multipliers and per-node
 *    CostModel copies with inflated VM and signal costs (stragglers);
 *  - CostModel: multiplicative sweeps over one named field
 *    (applyCostFactor, applied by the runtime before anything reads
 *    the model).
 *
 * Determinism: one injector belongs to one DsmRuntime, which runs on
 * one host thread, so every stateful draw happens in the deterministic
 * order the simulation itself imposes. Link/node *selection* and
 * per-link jitter streams are derived from the plan seed with
 * Rng::split; brown-out window offsets are a pure (stateless) hash of
 * (seed, link, window index), so they are identical no matter in what
 * order transfers sample them. A given (FaultPlan, seed) is therefore
 * bit-reproducible under any --jobs=N.
 */

#ifndef MCDSM_FAULT_FAULT_INJECTOR_H
#define MCDSM_FAULT_FAULT_INJECTOR_H

#include <vector>

#include "common/costs.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "net/topology.h"
#include "sim/rng.h"

namespace mcdsm {

class FaultInjector
{
  public:
    FaultInjector(const FaultPlan& plan, const Topology& topo);

    const FaultPlan& plan() const { return plan_; }

    /** True if any MemoryChannel hook can fire. */
    bool perturbsNetwork() const { return plan_.networkActive(); }
    /** True if any per-node (straggler) hook can fire. */
    bool perturbsNodes() const { return plan_.stragglerActive(); }

    // ---- MemoryChannel hooks -------------------------------------------
    /**
     * Bandwidth multiplier for @p link at virtual time @p t: steady
     * degradation x brown-out factor when @p t falls inside one of the
     * link's brown-out windows. Always in (0, 1].
     */
    double
    linkFactor(NodeId link, Time t) const
    {
        if (!degraded_[link])
            return 1.0;
        double f = plan_.linkBwFactor;
        if (plan_.brownoutPeriod > 0 && inBrownout(link, t))
            f *= plan_.brownoutFactor;
        return f;
    }

    /** Aggregate (hub) bandwidth multiplier from background load. */
    double hubFactor() const { return hub_factor_; }

    /**
     * Delivery jitter (ns) for the next transfer on @p link's transmit
     * path. Stateful: consumes one draw from the link's split stream.
     */
    Time
    latencyJitter(NodeId link)
    {
        if (plan_.latencyJitterMax <= 0)
            return 0;
        return static_cast<Time>(jitter_rng_[link].nextBounded(
            static_cast<std::uint64_t>(plan_.latencyJitterMax) + 1));
    }

    /** Is @p link subject to degradation / brown-outs? */
    bool linkDegraded(NodeId link) const { return degraded_[link] != 0; }

    /** Is @p t inside one of @p link's brown-out windows? */
    bool inBrownout(NodeId link, Time t) const;

    /**
     * Every brown-out window starting before @p horizon, across all
     * degraded links, in (link, begin) order. Used to annotate
     * exported traces with the injected fault windows.
     */
    std::vector<FaultWindow> faultWindows(Time horizon) const;

    // ---- node (straggler) hooks ------------------------------------------
    bool straggles(NodeId n) const { return straggler_[n] != 0; }

    /** Cycle-time multiplier for compute charged on node @p n. */
    double
    computeFactor(NodeId n) const
    {
        return straggler_[n] ? plan_.stragglerCompute : 1.0;
    }

    /**
     * Per-node cost model: @p base with VM and signal costs inflated
     * when node @p n straggles.
     */
    CostModel nodeCosts(const CostModel& base, NodeId n) const;

  private:
    /** Start offset of window @p idx on @p link within its period. */
    Time brownoutOffset(NodeId link, std::uint64_t idx) const;

    FaultPlan plan_;
    int nodes_;
    double hub_factor_ = 1.0;
    std::vector<char> degraded_;   ///< per link
    std::vector<char> straggler_;  ///< per node
    std::vector<Rng> jitter_rng_;  ///< per tx link
};

} // namespace mcdsm

#endif // MCDSM_FAULT_FAULT_INJECTOR_H
