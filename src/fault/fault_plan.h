/**
 * @file
 * Declarative fault / perturbation plans.
 *
 * A FaultPlan describes *what* to perturb about the simulated machine:
 * straggler nodes, degraded or jittery Memory Channel links, transient
 * link brown-outs, background hub traffic, or a multiplicative sweep
 * over one cost-model field. It is pure data — the FaultInjector
 * (fault_injector.h) turns a plan plus a seed into concrete,
 * deterministic injections.
 *
 * The default-constructed plan is the null plan: active() is false, no
 * injector is created, and a run is bit-identical to one that never
 * heard of the fault subsystem. Named scenarios are produced by
 * makeScenario(name, magnitude, seed); magnitude 1 is "the healthy
 * machine" and larger magnitudes mean harsher perturbation, so the
 * sensitivity bench can sweep magnitude until a paper conclusion
 * flips.
 */

#ifndef MCDSM_FAULT_FAULT_PLAN_H
#define MCDSM_FAULT_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/costs.h"
#include "common/types.h"

namespace mcdsm {

/** One transient link brown-out interval (virtual time). */
struct FaultWindow
{
    NodeId link = 0;
    Time begin = 0;
    Time end = 0;
};

struct FaultPlan
{
    /** Scenario label (reporting only; "null" = no faults). */
    std::string scenario = "null";

    /** Root seed for every derived Rng::split stream. */
    std::uint64_t seed = 1;

    /** Scenario magnitude this plan was built at (reporting only). */
    double magnitude = 1.0;

    // ---- stragglers (Scheduler / Proc layer) -------------------------
    /** Straggling nodes: 0 = none, -1 = every node, else a count
     *  chosen deterministically from the seed. */
    int stragglerNodes = 0;
    /** Cycle-time multiplier on straggler nodes (compute + memory). */
    double stragglerCompute = 1.0;
    /** mprotect / page-fault cost multiplier on straggler nodes. */
    double stragglerVm = 1.0;
    /** Signal / interrupt latency multiplier on straggler nodes. */
    double stragglerSignal = 1.0;

    // ---- Memory Channel links ----------------------------------------
    /** Steady-state per-link bandwidth multiplier (< 1 degrades). */
    double linkBwFactor = 1.0;
    /** Links affected by linkBwFactor / brown-outs: 0 = all, else a
     *  count chosen deterministically from the seed. */
    int degradedLinks = 0;
    /** Per-transfer delivery jitter bound (ns), drawn per tx link. */
    Time latencyJitterMax = 0;
    /** Fraction of aggregate hub bandwidth consumed by background
     *  traffic (0 = none, 0.5 = half the hub is gone). */
    double hubLoadFraction = 0.0;

    // ---- transient brown-outs -----------------------------------------
    /** Bandwidth multiplier inside a brown-out window (< 1). */
    double brownoutFactor = 1.0;
    /** Window period (virtual ns); 0 disables brown-outs. */
    Time brownoutPeriod = 0;
    /** Busy span per period (virtual ns, <= brownoutPeriod). */
    Time brownoutDuty = 0;

    // ---- cost-model sweep ----------------------------------------------
    /** CostModel field to scale (see costFieldNames()); empty = none. */
    std::string costField;
    double costFactor = 1.0;

    bool
    stragglerActive() const
    {
        return stragglerNodes != 0 &&
               (stragglerCompute != 1.0 || stragglerVm != 1.0 ||
                stragglerSignal != 1.0);
    }

    bool
    networkActive() const
    {
        return linkBwFactor != 1.0 || latencyJitterMax > 0 ||
               hubLoadFraction != 0.0 ||
               (brownoutPeriod > 0 && brownoutDuty > 0 &&
                brownoutFactor != 1.0);
    }

    bool
    costActive() const
    {
        return !costField.empty() && costFactor != 1.0;
    }

    /** False for the null plan: no injector, bit-identical baseline. */
    bool
    active() const
    {
        return stragglerActive() || networkActive() || costActive();
    }
};

/**
 * Multiply one CostModel field by @p factor. Field names match the
 * struct members ("mcLatency", "mcLinkBw", "mprotect", ...).
 * @return false if @p field names no known cost.
 */
bool applyCostFactor(CostModel& costs, const std::string& field,
                     double factor);

/** Sweepable CostModel field names (for --help and validation). */
const std::vector<std::string>& costFieldNames();

/**
 * Build a named scenario at @p magnitude (>= 1; 1 = healthy machine).
 *
 *  - "null"            no perturbation
 *  - "link_degrade"    every link at 1/magnitude of its bandwidth
 *  - "one_slow_link"   a single seed-chosen link at 1/magnitude
 *  - "hub_load"        background traffic eats (1 - 1/magnitude) of
 *                      the hub's aggregate bandwidth
 *  - "jitter"          per-transfer delivery jitter up to
 *                      magnitude microseconds
 *  - "brownout"        one seed-chosen link loses 75% of its bandwidth
 *                      for magnitude x 500us out of every 5ms
 *  - "straggler"       one seed-chosen node runs magnitude x slower
 *                      (compute, VM ops, signal delivery)
 *  - "slow_interrupts" every node's interrupt/signal latency
 *                      x magnitude
 *  - "cost:<field>"    multiply CostModel::<field> by magnitude
 */
FaultPlan makeScenario(const std::string& name, double magnitude,
                       std::uint64_t seed);

/** Scenario names accepted by makeScenario (excluding "cost:*"). */
const std::vector<std::string>& scenarioNames();

/**
 * Parse a --scenario=SPEC value: "name" or "name:magnitude"
 * (e.g. "straggler:4", "cost:mcLatency:8"). The last ':'-separated
 * token is the magnitude if it parses as a number; default 2.
 */
FaultPlan faultPlanFromSpec(const std::string& spec, std::uint64_t seed);

} // namespace mcdsm

#endif // MCDSM_FAULT_FAULT_PLAN_H
