#include "fault/fault_injector.h"

#include <algorithm>

#include "common/log.h"

namespace mcdsm {

namespace {

/** SplitMix64 finalizer: the stateless mix behind window offsets. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Pick @p want distinct indices out of @p n using @p rng (partial
 * Fisher-Yates); returns a membership mask. want <= 0 selects all.
 */
std::vector<char>
pickIndices(int n, int want, Rng& rng)
{
    std::vector<char> member(n, 0);
    if (want <= 0 || want >= n) {
        std::fill(member.begin(), member.end(), 1);
        return member;
    }
    std::vector<int> idx(n);
    for (int i = 0; i < n; ++i)
        idx[i] = i;
    for (int i = 0; i < want; ++i) {
        const int j = i + static_cast<int>(rng.nextBounded(
                              static_cast<std::uint64_t>(n - i)));
        std::swap(idx[i], idx[j]);
        member[idx[i]] = 1;
    }
    return member;
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, const Topology& topo)
    : plan_(plan), nodes_(topo.nodes)
{
    mcdsm_assert(plan_.linkBwFactor > 0 && plan_.brownoutFactor > 0,
                 "bandwidth factors must be positive");
    mcdsm_assert(plan_.hubLoadFraction >= 0 && plan_.hubLoadFraction < 1,
                 "hub load fraction must be in [0, 1)");
    mcdsm_assert(plan_.brownoutDuty <= plan_.brownoutPeriod,
                 "brown-out duty exceeds its period");

    hub_factor_ = 1.0 - plan_.hubLoadFraction;

    // Derivation order is fixed so selections are a function of the
    // seed alone: link-pick stream, node-pick stream, then one jitter
    // stream per tx link.
    Rng root(plan_.seed);
    Rng link_pick = root.split();
    Rng node_pick = root.split();

    const bool link_faults = plan_.linkBwFactor != 1.0 ||
                             (plan_.brownoutPeriod > 0 &&
                              plan_.brownoutDuty > 0 &&
                              plan_.brownoutFactor != 1.0);
    degraded_ = link_faults
                    ? pickIndices(nodes_, plan_.degradedLinks, link_pick)
                    : std::vector<char>(nodes_, 0);

    const int want_nodes =
        plan_.stragglerNodes < 0 ? nodes_ : plan_.stragglerNodes;
    straggler_ = plan_.stragglerActive()
                     ? pickIndices(nodes_, want_nodes, node_pick)
                     : std::vector<char>(nodes_, 0);

    jitter_rng_.reserve(nodes_);
    for (int n = 0; n < nodes_; ++n)
        jitter_rng_.push_back(root.split());
}

Time
FaultInjector::brownoutOffset(NodeId link, std::uint64_t idx) const
{
    const Time span = plan_.brownoutPeriod - plan_.brownoutDuty;
    if (span <= 0)
        return 0;
    const std::uint64_t h =
        mix64(plan_.seed ^ (static_cast<std::uint64_t>(link) + 1) *
                               0x9e3779b97f4a7c15ULL ^
              (idx + 1) * 0xd6e8feb86659fd93ULL);
    return static_cast<Time>(h % (static_cast<std::uint64_t>(span) + 1));
}

bool
FaultInjector::inBrownout(NodeId link, Time t) const
{
    if (plan_.brownoutPeriod <= 0 || plan_.brownoutDuty <= 0 || t < 0)
        return false;
    const std::uint64_t idx =
        static_cast<std::uint64_t>(t) /
        static_cast<std::uint64_t>(plan_.brownoutPeriod);
    const Time begin =
        static_cast<Time>(idx) * plan_.brownoutPeriod +
        brownoutOffset(link, idx);
    return t >= begin && t < begin + plan_.brownoutDuty;
}

std::vector<FaultWindow>
FaultInjector::faultWindows(Time horizon) const
{
    std::vector<FaultWindow> out;
    if (plan_.brownoutPeriod <= 0 || plan_.brownoutDuty <= 0 ||
        plan_.brownoutFactor == 1.0)
        return out;
    for (NodeId link = 0; link < nodes_; ++link) {
        if (!degraded_[link])
            continue;
        for (std::uint64_t idx = 0;; ++idx) {
            const Time begin =
                static_cast<Time>(idx) * plan_.brownoutPeriod +
                brownoutOffset(link, idx);
            if (begin >= horizon)
                break;
            out.push_back({link, begin, begin + plan_.brownoutDuty});
        }
    }
    return out;
}

CostModel
FaultInjector::nodeCosts(const CostModel& base, NodeId n) const
{
    CostModel c = base;
    if (!straggler_[n])
        return c;
    auto scale = [](Time t, double f) {
        return static_cast<Time>(static_cast<double>(t) * f);
    };
    if (plan_.stragglerVm != 1.0) {
        c.mprotect = scale(c.mprotect, plan_.stragglerVm);
        c.pageFault = scale(c.pageFault, plan_.stragglerVm);
    }
    if (plan_.stragglerSignal != 1.0) {
        c.localSignal = scale(c.localSignal, plan_.stragglerSignal);
        c.remoteSignalSend =
            scale(c.remoteSignalSend, plan_.stragglerSignal);
        c.remoteSignalLatency =
            scale(c.remoteSignalLatency, plan_.stragglerSignal);
    }
    return c;
}

} // namespace mcdsm
