/**
 * @file
 * Shared diagnostic formatting for the verification layer.
 *
 * Every analysis in src/check/ (race detector, coherence-invariant
 * oracle, lockset detector, lock-order graph) emits diagnostics
 * through these helpers so reports are uniform and — critically —
 * stable text: the same (plan, seed, --jobs) must produce
 * byte-identical checker output, which the harness tests enforce.
 * Nothing here may read host state (wall clock, addresses, iteration
 * order of unordered containers); diagnostics are built only from
 * simulated quantities.
 */

#ifndef MCDSM_CHECK_REPORT_H
#define MCDSM_CHECK_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace mcdsm {

/** "page 3 bytes [32,40)" — the site of a shared-memory finding. */
std::string diagSite(PageNum page, std::uint32_t begin_off,
                     std::uint32_t end_off);

/** "P2 write (acquire(lock 7))" — one side of an access pair. */
std::string diagAccess(ProcId p, bool is_write, const std::string& sync);

/** "{3, 9}" — a lock set, rendered from a sorted id list. */
std::string diagLockSet(const std::vector<int>& locks);

/**
 * Bounded, counting sink for one analysis' diagnostics. Holds up to
 * @p cap formatted lines; findings past the cap are still counted.
 * The line format is "<analysis>: <body> at t=<when>".
 */
class DiagSink
{
  public:
    DiagSink(std::string analysis, std::size_t cap)
        : analysis_(std::move(analysis)), cap_(cap)
    {}

    void
    report(Time when, const std::string& body)
    {
        count_ += 1;
        if (lines_.size() >= cap_)
            return;
        lines_.push_back(strdiag(analysis_, when, body));
    }

    /** Full line text for one diagnostic (also used by tests). */
    static std::string strdiag(const std::string& analysis, Time when,
                               const std::string& body);

    std::uint64_t count() const { return count_; }
    const std::vector<std::string>& lines() const { return lines_; }

    /** One line per retained diagnostic plus an overflow note. */
    std::string summary() const;

  private:
    std::string analysis_;
    std::size_t cap_;
    std::uint64_t count_ = 0;
    std::vector<std::string> lines_;
};

} // namespace mcdsm

#endif // MCDSM_CHECK_REPORT_H
