/**
 * @file
 * Lock-order graph with cycle detection — deadlock *prediction* from
 * acquisition history (in the style of the kernel's lockdep).
 *
 * Every time a processor requests lock B while holding lock A, the
 * directed edge A→B is recorded (with the first such acquisition as
 * the example). A cycle in this graph means some interleaving of the
 * observed program can deadlock, even if this run happened to get
 * through — which is exactly the case simulation schedules tend to
 * hide. Cycles are searched at finish() so the whole history is in
 * the graph; the search iterates std::map adjacency, so reports are
 * deterministic.
 *
 * A second hazard is flagged immediately: entering a barrier while
 * holding a lock. Another processor blocked on that lock can never
 * reach the barrier, so the program deadlocks under an adversarial
 * schedule (reported once per lock/barrier pair).
 *
 * Hook placement: onAcquire fires *before* the processor may block on
 * the lock (the edge must be recorded even if the run then deadlocks);
 * onAcquired after the lock is granted; onRelease before the protocol
 * releases. Covers the protocol lock space, including PR 6's per-shard
 * KV locks.
 */

#ifndef MCDSM_CHECK_LOCK_ORDER_H
#define MCDSM_CHECK_LOCK_ORDER_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/report.h"
#include "common/types.h"

namespace mcdsm {

class LockOrderChecker
{
  public:
    LockOrderChecker(int nprocs, std::size_t max_reports);

    /** Before the processor may block waiting for @p lock_id. */
    void onAcquire(ProcId p, int lock_id, Time now);
    /** After the lock was granted. */
    void onAcquired(ProcId p, int lock_id);
    /** Before the lock is released. */
    void onRelease(ProcId p, int lock_id);

    /** Barrier entry: holding any lock here is a deadlock hazard. */
    void barrierEnter(ProcId p, int barrier_id, Time now);

    /** Run cycle detection over the accumulated graph. */
    void finish();

    std::uint64_t violations() const { return sink_.count(); }
    std::string summary() const { return sink_.summary(); }

  private:
    /** Example acquisition that created an edge. */
    struct Edge
    {
        ProcId proc = kNoProc;
        Time when = 0;
    };

    int nprocs_;
    std::vector<std::vector<int>> held_; ///< per-proc sorted lock ids

    /** held→requested adjacency; inner map keeps neighbors ordered. */
    std::map<int, std::map<int, Edge>> edges_;

    std::set<std::pair<int, int>> barrierHazards_; ///< (lock, barrier)
    bool finished_ = false;
    DiagSink sink_;
};

} // namespace mcdsm

#endif // MCDSM_CHECK_LOCK_ORDER_H
