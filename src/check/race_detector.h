/**
 * @file
 * Dynamic data-race detection for DSM programs.
 *
 * A happens-before checker in the FastTrack style, layered on the
 * DSM's own synchronization events (the shape argued for by Butelle &
 * Coti's coherent-distributed-memory race-detection model): each
 * processor carries a vector clock that advances at release-type
 * operations; locks, flags and barriers carry the clocks their
 * releasers published; shared reads and writes are checked against
 * per-page-chunk "last writer" / "last readers" epochs.
 *
 * The checker observes accesses through the runtime's read/write
 * hooks and sync operations through the runtime's synchronization
 * front, so it is protocol-independent: the same detector runs under
 * all six Cashmere/TreadMarks variants (and would flag a coherence
 * bug as a race only if the *application* is racy — protocol bugs
 * show up instead as wrong golden values under schedule
 * perturbation; the two tools are complementary).
 *
 * Granularity: pages are divided into fixed chunks of
 * 2^chunkShift bytes (default 4). An access marks every chunk it
 * overlaps. Two accesses to disjoint bytes of the same chunk are
 * indistinguishable from a true overlap, so chunkShift trades memory
 * for false-sharing precision; 4-byte chunks are exact for the
 * int32/double element types the applications use.
 *
 * The detector maintains simulator-side state only — it charges no
 * virtual time and sends no messages, so enabling it does not change
 * the schedule or the modelled timings.
 */

#ifndef MCDSM_CHECK_RACE_DETECTOR_H
#define MCDSM_CHECK_RACE_DETECTOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"

namespace mcdsm {

/** One reported race: two unordered accesses to the same chunk. */
struct RaceReport
{
    PageNum page = 0;
    /** Byte range within the page covered by the racing access. */
    std::uint32_t beginOff = 0;
    std::uint32_t endOff = 0;

    /** The earlier access (the recorded epoch). */
    ProcId firstProc = kNoProc;
    bool firstIsWrite = false;
    /** Sync context of the earlier access ("start", "acquire(lock 3)"...). */
    std::string firstSync;

    /** The later access (the one that tripped the check). */
    ProcId secondProc = kNoProc;
    bool secondIsWrite = false;
    std::string secondSync;

    /** Virtual time of the later access. */
    Time when = 0;

    std::string toString() const;
};

class RaceChecker
{
  public:
    /**
     * @param nprocs compute processors tracked (ProcIds 0..nprocs-1)
     * @param page_count pages in the shared segment
     * @param chunk_shift log2 bytes per tracked chunk
     * @param max_reports detailed reports kept; races past the cap
     *        are still counted
     */
    RaceChecker(int nprocs, std::size_t page_count, int chunk_shift,
                std::size_t max_reports);

    // ---- data-access hooks (called by the runtime's read/write hooks)
    void onRead(ProcId p, GAddr a, std::size_t size, Time now);
    void onWrite(ProcId p, GAddr a, std::size_t size, Time now);

    // ---- synchronization hooks -------------------------------------
    // Placement relative to the protocol operation matters: the
    // release side must publish *before* any other processor can
    // observe the synchronization object, the acquire side must join
    // *after* the operation completed.
    void afterAcquire(ProcId p, int lock_id);
    void beforeRelease(ProcId p, int lock_id);
    void barrierEnter(ProcId p, int barrier_id);
    void barrierLeave(ProcId p, int barrier_id);
    void beforeFlagSet(ProcId p, int flag_id);
    void afterFlagWait(ProcId p, int flag_id);

    /** Total races detected (>= reports().size()). */
    std::uint64_t raceCount() const { return race_count_; }

    /** Detailed reports, up to the construction-time cap. */
    const std::vector<RaceReport>& reports() const { return reports_; }

    /** One line per retained report. */
    std::string summary() const;

  private:
    using Clock = std::uint32_t;
    using VC = std::vector<Clock>;

    /** Epoch state of one 2^chunkShift-byte chunk. */
    struct Chunk
    {
        std::int32_t wProc = -1; ///< last writer (-1: never written)
        Clock wClock = 0;
        std::uint32_t wSync = 0; ///< index into syncCtx_

        // Read state: a single epoch in the common case, promoted to
        // a full vector (sharedReads_[rShared]) on concurrent readers.
        std::int32_t rProc = -1;
        Clock rClock = 0;
        std::uint32_t rSync = 0;
        std::int32_t rShared = -1;
    };

    struct SharedRead
    {
        VC clocks;
        std::vector<std::uint32_t> sync;
    };

    Chunk* chunksFor(PageNum pn);
    void joinInto(VC& dst, const VC& src);
    void report(PageNum pn, std::uint32_t begin, std::uint32_t end,
                ProcId first, bool first_w, std::uint32_t first_sync,
                ProcId second, bool second_w, Time now);
    void setSyncCtx(ProcId p, std::string desc);

    int nprocs_;
    int chunk_shift_;
    std::size_t chunks_per_page_;
    std::size_t max_reports_;

    std::vector<VC> vc_;           ///< per-proc vector clock
    FlatIntMap<VC> locks_;         ///< lock id -> released VC
    FlatIntMap<VC> flags_;         ///< flag id -> released VC

    struct BarrierState
    {
        VC pending;  ///< join of clocks of arrivals this episode
        VC released; ///< published clock of the completed episode
        int arrived = 0;
    };
    FlatIntMap<BarrierState> barriers_;

    std::vector<std::unique_ptr<Chunk[]>> pages_;
    std::vector<SharedRead> sharedReads_;

    /** Interned per-proc sync-context descriptions. */
    std::vector<std::string> syncCtx_;
    std::vector<std::uint32_t> curCtx_; ///< per-proc index into syncCtx_

    std::uint64_t race_count_ = 0;
    std::vector<RaceReport> reports_;
};

} // namespace mcdsm

#endif // MCDSM_CHECK_RACE_DETECTOR_H
