/**
 * @file
 * CheckerSuite — the verification layer's single entry point.
 *
 * Bundles the four dynamic analyses behind one set of hooks so the
 * runtime calls the suite, not individual checkers, and a CheckConfig
 * decides which analyses actually run:
 *
 *   race      — vector-clock happens-before detector (race_detector.h)
 *   lockset   — Eraser-style discipline detector (lockset.h)
 *   invariant — coherence-invariant oracle (invariant_oracle.h)
 *   deadlock  — lock-order graph + cycle detection (lock_order.h)
 *
 * When both `race` and `lockset` run, finish() cross-validates the two
 * models: a lockset finding no overlapping happens-before race report
 * touches (the discipline is broken but this schedule serialized it)
 * and vice versa. Disagreements are informational — they are reported
 * but not counted as violations, because each model is wrong about the
 * other's domain by design.
 *
 * All analyses are simulator-side only: no virtual time is charged and
 * no messages are sent, so enabling checks does not perturb schedules
 * or modelled timings. All diagnostics are built from simulated
 * quantities only, so the same (plan, seed, --jobs) yields
 * byte-identical report() output.
 */

#ifndef MCDSM_CHECK_SUITE_H
#define MCDSM_CHECK_SUITE_H

#include <cstdint>
#include <memory>
#include <string>

#include "check/check_config.h"
#include "check/invariant_oracle.h"
#include "check/lock_order.h"
#include "check/lockset.h"
#include "check/race_detector.h"
#include "common/types.h"

namespace mcdsm {

class CheckerSuite
{
  public:
    CheckerSuite(const CheckConfig& cfg, int nprocs,
                 std::size_t page_count, int chunk_shift,
                 std::size_t max_reports);

    const CheckConfig& config() const { return cfg_; }

    /** True if any enabled analysis needs read/write hooks. */
    bool
    needsDataHooks() const
    {
        return race_ != nullptr || lockset_ != nullptr ||
               oracle_ != nullptr;
    }

    // ---- data-access hooks (frame: accessor's mapped page frame) ----
    void onRead(ProcId p, GAddr a, std::size_t size, Time now,
                const std::uint8_t* frame);
    void onWrite(ProcId p, GAddr a, std::size_t size, Time now,
                 const std::uint8_t* frame);

    // ---- synchronization hooks --------------------------------------
    /** Before the processor may block on the lock (deadlock edges). */
    void beforeAcquire(ProcId p, int lock_id, Time now);
    void afterAcquire(ProcId p, int lock_id);
    void beforeRelease(ProcId p, int lock_id);
    void barrierEnter(ProcId p, int barrier_id, Time now);
    void barrierLeave(ProcId p, int barrier_id);
    void beforeFlagSet(ProcId p, int flag_id);
    void afterFlagWait(ProcId p, int flag_id);

    /** End of run: cycle detection + cross-validation. Idempotent. */
    void finish();

    /** Total violations across enabled analyses (after finish()). */
    std::uint64_t violations() const;

    /** Per-analysis sections + cross-validation; "" when all clean. */
    std::string report() const;

    // Sub-checker access (runner stats, tests). May be null.
    RaceChecker* raceChecker() const { return race_.get(); }
    LocksetChecker* lockset() const { return lockset_.get(); }
    InvariantOracle* oracle() const { return oracle_.get(); }
    LockOrderChecker* lockOrder() const { return lockOrder_.get(); }

    /** Cross-validation disagreement count (after finish()). */
    std::uint64_t disagreements() const { return disagreements_; }

  private:
    CheckConfig cfg_;
    std::unique_ptr<RaceChecker> race_;
    std::unique_ptr<LocksetChecker> lockset_;
    std::unique_ptr<InvariantOracle> oracle_;
    std::unique_ptr<LockOrderChecker> lockOrder_;

    bool finished_ = false;
    std::uint64_t disagreements_ = 0;
    std::string crossValidation_;
};

} // namespace mcdsm

#endif // MCDSM_CHECK_SUITE_H
