#include "check/suite.h"

#include "common/log.h"

namespace mcdsm {

CheckerSuite::CheckerSuite(const CheckConfig& cfg, int nprocs,
                           std::size_t page_count, int chunk_shift,
                           std::size_t max_reports)
    : cfg_(cfg)
{
    if (cfg.race)
        race_ = std::make_unique<RaceChecker>(nprocs, page_count,
                                              chunk_shift, max_reports);
    if (cfg.lockset)
        lockset_ = std::make_unique<LocksetChecker>(
            nprocs, page_count, chunk_shift, max_reports);
    if (cfg.invariant)
        oracle_ = std::make_unique<InvariantOracle>(
            nprocs, page_count, chunk_shift, max_reports);
    if (cfg.deadlock)
        lockOrder_ = std::make_unique<LockOrderChecker>(nprocs,
                                                        max_reports);
}

void
CheckerSuite::onRead(ProcId p, GAddr a, std::size_t size, Time now,
                     const std::uint8_t* frame)
{
    // The oracle checks the loaded bytes before the access is recorded
    // as this chunk's latest event by the other analyses.
    if (oracle_)
        oracle_->onRead(p, a, size, now, frame);
    if (race_)
        race_->onRead(p, a, size, now);
    if (lockset_)
        lockset_->onRead(p, a, size, now);
}

void
CheckerSuite::onWrite(ProcId p, GAddr a, std::size_t size, Time now,
                      const std::uint8_t* frame)
{
    if (oracle_)
        oracle_->onWrite(p, a, size, now, frame);
    if (race_)
        race_->onWrite(p, a, size, now);
    if (lockset_)
        lockset_->onWrite(p, a, size, now);
}

void
CheckerSuite::beforeAcquire(ProcId p, int lock_id, Time now)
{
    if (lockOrder_)
        lockOrder_->onAcquire(p, lock_id, now);
}

void
CheckerSuite::afterAcquire(ProcId p, int lock_id)
{
    if (race_)
        race_->afterAcquire(p, lock_id);
    if (lockset_)
        lockset_->afterAcquire(p, lock_id);
    if (oracle_)
        oracle_->afterAcquire(p, lock_id);
    if (lockOrder_)
        lockOrder_->onAcquired(p, lock_id);
}

void
CheckerSuite::beforeRelease(ProcId p, int lock_id)
{
    if (race_)
        race_->beforeRelease(p, lock_id);
    if (lockset_)
        lockset_->beforeRelease(p, lock_id);
    if (oracle_)
        oracle_->beforeRelease(p, lock_id);
    if (lockOrder_)
        lockOrder_->onRelease(p, lock_id);
}

void
CheckerSuite::barrierEnter(ProcId p, int barrier_id, Time now)
{
    if (race_)
        race_->barrierEnter(p, barrier_id);
    if (lockset_)
        lockset_->barrierEnter(p, barrier_id);
    if (oracle_)
        oracle_->barrierEnter(p, barrier_id);
    if (lockOrder_)
        lockOrder_->barrierEnter(p, barrier_id, now);
}

void
CheckerSuite::barrierLeave(ProcId p, int barrier_id)
{
    if (race_)
        race_->barrierLeave(p, barrier_id);
    if (lockset_)
        lockset_->barrierLeave(p, barrier_id);
    if (oracle_)
        oracle_->barrierLeave(p, barrier_id);
}

void
CheckerSuite::beforeFlagSet(ProcId p, int flag_id)
{
    if (race_)
        race_->beforeFlagSet(p, flag_id);
    if (lockset_)
        lockset_->beforeFlagSet(p, flag_id);
    if (oracle_)
        oracle_->beforeFlagSet(p, flag_id);
}

void
CheckerSuite::afterFlagWait(ProcId p, int flag_id)
{
    if (race_)
        race_->afterFlagWait(p, flag_id);
    if (lockset_)
        lockset_->afterFlagWait(p, flag_id);
    if (oracle_)
        oracle_->afterFlagWait(p, flag_id);
}

void
CheckerSuite::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (lockOrder_)
        lockOrder_->finish();

    if (!race_ || !lockset_)
        return;

    // Cross-validation: the two race models cover different ground
    // (happens-before sees this schedule; lockset sees the
    // discipline), so one firing without the other is worth a line.
    // Comparison uses the retained reports, so it is best-effort past
    // the report cap.
    auto overlaps = [](PageNum pg, std::uint32_t b, std::uint32_t e,
                       PageNum pg2, std::uint32_t b2, std::uint32_t e2) {
        return pg == pg2 && b < e2 && b2 < e;
    };
    for (const auto& f : lockset_->findings()) {
        bool seen = false;
        for (const auto& r : race_->reports()) {
            if (overlaps(f.page, f.beginOff, f.endOff, r.page,
                         r.beginOff, r.endOff)) {
                seen = true;
                break;
            }
        }
        if (!seen) {
            disagreements_ += 1;
            crossValidation_ += strprintf(
                "cross-validation: lockset flagged page %llu bytes "
                "[%u,%u) but happens-before saw no race there (this "
                "schedule serialized it)\n",
                static_cast<unsigned long long>(f.page), f.beginOff,
                f.endOff);
        }
    }
    for (const auto& r : race_->reports()) {
        bool seen = false;
        for (const auto& f : lockset_->findings()) {
            if (overlaps(f.page, f.beginOff, f.endOff, r.page,
                         r.beginOff, r.endOff)) {
                seen = true;
                break;
            }
        }
        if (!seen) {
            disagreements_ += 1;
            crossValidation_ += strprintf(
                "cross-validation: happens-before raced on page %llu "
                "bytes [%u,%u) but the lockset model did not flag it "
                "(barrier/flag-phased or initialization-excused)\n",
                static_cast<unsigned long long>(r.page), r.beginOff,
                r.endOff);
        }
    }
}

std::uint64_t
CheckerSuite::violations() const
{
    std::uint64_t n = 0;
    if (race_)
        n += race_->raceCount();
    if (lockset_)
        n += lockset_->violations();
    if (oracle_)
        n += oracle_->violations();
    if (lockOrder_)
        n += lockOrder_->violations();
    return n;
}

std::string
CheckerSuite::report() const
{
    std::string out;
    auto section = [&](const char* name, std::uint64_t count,
                       const std::string& body) {
        if (count == 0)
            return;
        out += strprintf("== %s: %llu finding(s) ==\n", name,
                         static_cast<unsigned long long>(count));
        out += body;
        if (!body.empty() && body.back() != '\n')
            out += "\n";
    };
    if (race_)
        section("race", race_->raceCount(), race_->summary());
    if (lockset_)
        section("lockset", lockset_->violations(), lockset_->summary());
    if (oracle_)
        section("invariant", oracle_->violations(), oracle_->summary());
    if (lockOrder_)
        section("deadlock", lockOrder_->violations(),
                lockOrder_->summary());
    if (!crossValidation_.empty())
        section("cross-validation", disagreements_, crossValidation_);
    return out;
}

} // namespace mcdsm
