#include "check/lockset.h"

#include <algorithm>

#include "common/log.h"

namespace mcdsm {

LocksetChecker::LocksetChecker(int nprocs, std::size_t page_count,
                               int chunk_shift, std::size_t max_reports)
    : bf_(nprocs, /*lock_edges=*/false), chunk_shift_(chunk_shift),
      chunks_per_page_(kPageSize >> chunk_shift), pages_(page_count),
      sink_("lockset", max_reports)
{
    mcdsm_assert(chunk_shift >= 0 &&
                     (std::size_t{1} << chunk_shift) <= kPageSize,
                 "bad lockset chunk shift");
    held_.resize(nprocs);
    heldSet_.assign(nprocs, 0);
    sets_.push_back({}); // id 0: the empty set
    setIds_[{}] = 0;
}

LocksetChecker::Chunk*
LocksetChecker::chunksFor(PageNum pn)
{
    mcdsm_assert(pn < pages_.size(), "lockset: page out of range");
    if (!pages_[pn])
        pages_[pn] = std::make_unique<Chunk[]>(chunks_per_page_);
    return pages_[pn].get();
}

std::uint32_t
LocksetChecker::internSet(std::vector<int> locks)
{
    auto it = setIds_.find(locks);
    if (it != setIds_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(sets_.size());
    setIds_.emplace(locks, id);
    sets_.push_back(std::move(locks));
    return id;
}

std::uint32_t
LocksetChecker::intersect(std::uint32_t a, std::uint32_t b)
{
    if (a == b)
        return a;
    if (a == 0 || b == 0)
        return 0;
    std::vector<int> out;
    std::set_intersection(sets_[a].begin(), sets_[a].end(),
                          sets_[b].begin(), sets_[b].end(),
                          std::back_inserter(out));
    return internSet(std::move(out));
}

void
LocksetChecker::afterAcquire(ProcId p, int lock_id)
{
    if (p < 0 || p >= bf_.nprocs())
        return;
    bf_.afterAcquire(p, lock_id);
    auto& h = held_[p];
    h.insert(std::lower_bound(h.begin(), h.end(), lock_id), lock_id);
    heldSet_[p] = internSet(h);
}

void
LocksetChecker::beforeRelease(ProcId p, int lock_id)
{
    if (p < 0 || p >= bf_.nprocs())
        return;
    bf_.beforeRelease(p, lock_id);
    auto& h = held_[p];
    auto it = std::lower_bound(h.begin(), h.end(), lock_id);
    if (it != h.end() && *it == lock_id)
        h.erase(it);
    heldSet_[p] = internSet(h);
}

void
LocksetChecker::onRead(ProcId p, GAddr a, std::size_t size, Time now)
{
    access(p, a, size, now, false);
}

void
LocksetChecker::onWrite(ProcId p, GAddr a, std::size_t size, Time now)
{
    access(p, a, size, now, true);
}

void
LocksetChecker::access(ProcId p, GAddr a, std::size_t size, Time now,
                       bool is_write)
{
    if (p < 0 || p >= bf_.nprocs() || size == 0)
        return;
    const PageNum pn = pageOf(a);
    Chunk* chunks = chunksFor(pn);
    const std::size_t off = pageOffset(a);
    const std::size_t c0 = off >> chunk_shift_;
    const std::size_t c1 = (off + size - 1) >> chunk_shift_;

    // Merge chunks that newly trip the discipline during this one
    // access into a single diagnostic.
    std::size_t runBegin = 0, runEnd = 0;
    bool pending = false;
    auto flush = [&]() {
        if (!pending)
            return;
        Finding f;
        f.page = pn;
        f.beginOff = static_cast<std::uint32_t>(runBegin << chunk_shift_);
        f.endOff = static_cast<std::uint32_t>(runEnd << chunk_shift_);
        sink_.report(now, diagSite(pn, f.beginOff, f.endOff) +
                              " — discipline: " +
                              diagAccess(p, is_write, bf_.ctxOf(p)) +
                              " holding " + diagLockSet(held_[p]) +
                              "; no lock consistently protects these "
                              "bytes");
        findings_.push_back(f);
        pending = false;
    };

    for (std::size_t c = c0; c <= c1; ++c) {
        Chunk& ch = chunks[c];
        bool fire = false;

        if (ch.st == St::Virgin) {
            ch.st = St::Exclusive;
            ch.owner = static_cast<std::int16_t>(p);
            ch.lockset = heldSet_[p];
        } else if (ch.lastProc >= 0 &&
                   bf_.ordered(ch.lastProc, ch.lastClock, p)) {
            // The previous access period is closed by a barrier/flag
            // edge: phased data resets to a fresh exclusive period.
            ch.st = St::Exclusive;
            ch.owner = static_cast<std::int16_t>(p);
            ch.lockset = heldSet_[p];
        } else if (ch.st == St::Exclusive && ch.owner == p) {
            // Still initializing: remember the latest lockset, check
            // nothing (Eraser's initialization grace).
            ch.lockset = heldSet_[p];
        } else {
            ch.lockset = intersect(ch.lockset, heldSet_[p]);
            if (is_write)
                ch.st = St::SharedModified;
            else if (ch.st == St::Exclusive)
                ch.st = St::Shared;
            if (ch.st == St::SharedModified &&
                sets_[ch.lockset].empty() && !ch.reported) {
                ch.reported = true;
                fire = true;
            }
        }

        ch.lastProc = p;
        ch.lastClock = bf_.clockOf(p);

        if (fire && pending && runEnd == c) {
            runEnd = c + 1;
        } else {
            flush();
            if (fire) {
                pending = true;
                runBegin = c;
                runEnd = c + 1;
            }
        }
    }
    flush();
}

} // namespace mcdsm
