#include "check/report.h"

#include "common/log.h"

namespace mcdsm {

std::string
diagSite(PageNum page, std::uint32_t begin_off, std::uint32_t end_off)
{
    return strprintf("page %u bytes [%u,%u)", page, begin_off, end_off);
}

std::string
diagAccess(ProcId p, bool is_write, const std::string& sync)
{
    return strprintf("P%d %s (%s)", p, is_write ? "write" : "read",
                     sync.c_str());
}

std::string
diagLockSet(const std::vector<int>& locks)
{
    if (locks.empty())
        return "{}";
    std::string out = "{";
    for (std::size_t i = 0; i < locks.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += strprintf("%d", locks[i]);
    }
    out += "}";
    return out;
}

std::string
DiagSink::strdiag(const std::string& analysis, Time when,
                  const std::string& body)
{
    return strprintf("%s: %s at t=%lld", analysis.c_str(), body.c_str(),
                     static_cast<long long>(when));
}

std::string
DiagSink::summary() const
{
    std::string out;
    for (const auto& line : lines_) {
        out += line;
        out += "\n";
    }
    if (count_ > lines_.size()) {
        out += strprintf("... and %llu more %s finding(s)\n",
                         static_cast<unsigned long long>(count_ -
                                                         lines_.size()),
                         analysis_.c_str());
    }
    return out;
}

} // namespace mcdsm
