#include "check/check_config.h"

namespace mcdsm {

std::string
parseCheckList(const std::string& spec, CheckConfig* out)
{
    *out = CheckConfig{};
    if (spec.empty() || spec == "all") {
        *out = CheckConfig::all();
        return "";
    }
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string name =
            spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        if (name == "race")
            out->race = true;
        else if (name == "lockset")
            out->lockset = true;
        else if (name == "invariant")
            out->invariant = true;
        else if (name == "deadlock")
            out->deadlock = true;
        else if (name == "all")
            *out = CheckConfig::all();
        else if (name == "none" && spec == "none")
            ; // explicit off
        else
            return "unknown checker '" + name +
                   "' (expected race, lockset, invariant, deadlock, "
                   "all)";
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return "";
}

} // namespace mcdsm
