/**
 * @file
 * Coherence-invariant oracle: shadow-memory checking of the protocol
 * itself, independent of which variant is running.
 *
 * The oracle maintains a shadow copy of every application-written byte
 * plus, per 2^chunkShift-byte chunk, the vector-clock epoch of the
 * most recent write. Two invariants of release consistency are
 * checked at the runtime's protocol-independent access points, so any
 * protocol variant — including future ones (RDMA Cashmere, Tardis
 * timestamps) — is covered without per-protocol code:
 *
 *   SWMR        — single-writer/multiple-reader per chunk: two writes
 *                 to the same chunk must be happens-before ordered
 *                 (an unordered pair means either an application race
 *                 or a protocol that failed to serialize owners).
 *   data-value  — a read that happens-after the most recent write to
 *                 a chunk must return exactly the bytes of that
 *                 write. A violation is the protocol's fault by
 *                 construction: it means an invalidation, diff or
 *                 page update was lost, reordered or misapplied.
 *
 * Reads whose last writer is concurrent (not happens-before ordered)
 * are skipped — their value is undefined and the race/lockset
 * detectors own that report. Shadow pages are snapshotted lazily from
 * the first accessor's frame, so never-written bytes are checked
 * against the initial image too (catching diff-application slop on
 * clean bytes).
 *
 * Like the race detector, the oracle is simulator-side only: it
 * charges no virtual time and sends no messages, so enabling it does
 * not change schedules or modelled timings.
 */

#ifndef MCDSM_CHECK_INVARIANT_ORACLE_H
#define MCDSM_CHECK_INVARIANT_ORACLE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/report.h"
#include "check/sync_clock.h"
#include "common/types.h"

namespace mcdsm {

class InvariantOracle
{
  public:
    /**
     * @param nprocs compute processors tracked
     * @param page_count pages in the shared segment
     * @param chunk_shift log2 bytes per write-epoch chunk
     * @param max_reports detailed reports kept (counts are unbounded)
     */
    InvariantOracle(int nprocs, std::size_t page_count, int chunk_shift,
                    std::size_t max_reports);

    // ---- data-access hooks (frame = accessor's mapped page frame,
    // after the store landed / before the loaded bytes are stale) ----
    void onWrite(ProcId p, GAddr a, std::size_t size, Time now,
                 const std::uint8_t* frame);
    void onRead(ProcId p, GAddr a, std::size_t size, Time now,
                const std::uint8_t* frame);

    // ---- synchronization hooks (same placement as the race detector)
    void afterAcquire(ProcId p, int l) { clock_.afterAcquire(p, l); }
    void beforeRelease(ProcId p, int l) { clock_.beforeRelease(p, l); }
    void barrierEnter(ProcId p, int b) { clock_.barrierEnter(p, b); }
    void barrierLeave(ProcId p, int b) { clock_.barrierLeave(p, b); }
    void beforeFlagSet(ProcId p, int f) { clock_.beforeFlagSet(p, f); }
    void afterFlagWait(ProcId p, int f) { clock_.afterFlagWait(p, f); }

    /** Unordered write-write pairs observed (SWMR violations). */
    std::uint64_t swmrViolations() const { return swmr_; }
    /** Stale or corrupt reads observed (data-value violations). */
    std::uint64_t valueViolations() const { return value_; }
    std::uint64_t violations() const { return swmr_ + value_; }

    std::string summary() const { return sink_.summary(); }

  private:
    /** Per-chunk epoch of the most recent write. */
    struct ChunkMeta
    {
        std::int32_t wProc = -1; ///< last writer (-1: never written)
        SyncClock::Clock wClock = 0;
        std::uint32_t wCtx = 0; ///< writer's sync context (interned)
    };

    struct ShadowPage
    {
        std::unique_ptr<std::uint8_t[]> bytes;
        std::unique_ptr<ChunkMeta[]> meta;
    };

    ShadowPage& shadowFor(PageNum pn, const std::uint8_t* frame);

    SyncClock clock_;
    int chunk_shift_;
    std::size_t chunks_per_page_;
    std::vector<ShadowPage> pages_;

    std::uint64_t swmr_ = 0;
    std::uint64_t value_ = 0;
    DiagSink sink_;
};

} // namespace mcdsm

#endif // MCDSM_CHECK_INVARIANT_ORACLE_H
