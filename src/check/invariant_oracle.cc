#include "check/invariant_oracle.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace mcdsm {

namespace {

/** Up to the first 8 bytes of [b, b+n) as a hex literal. */
std::string
hexBytes(const std::uint8_t* b, std::size_t n)
{
    std::string out = "0x";
    const std::size_t show = std::min<std::size_t>(n, 8);
    for (std::size_t i = 0; i < show; ++i)
        out += strprintf("%02x", b[i]);
    if (show < n)
        out += "..";
    return out;
}

} // namespace

InvariantOracle::InvariantOracle(int nprocs, std::size_t page_count,
                                 int chunk_shift, std::size_t max_reports)
    : clock_(nprocs, /*lock_edges=*/true), chunk_shift_(chunk_shift),
      chunks_per_page_(kPageSize >> chunk_shift), pages_(page_count),
      sink_("invariant", max_reports)
{
    mcdsm_assert(chunk_shift >= 0 &&
                     (std::size_t{1} << chunk_shift) <= kPageSize,
                 "bad oracle chunk shift");
}

InvariantOracle::ShadowPage&
InvariantOracle::shadowFor(PageNum pn, const std::uint8_t* frame)
{
    mcdsm_assert(pn < pages_.size(), "oracle: page out of range");
    ShadowPage& sp = pages_[pn];
    if (!sp.bytes) {
        // First hooked access to this page anywhere: every processor
        // still sees the initial image, so the accessor's own frame is
        // a faithful baseline for all not-yet-written bytes.
        sp.bytes = std::make_unique<std::uint8_t[]>(kPageSize);
        std::memcpy(sp.bytes.get(), frame, kPageSize);
        sp.meta = std::make_unique<ChunkMeta[]>(chunks_per_page_);
    }
    return sp;
}

void
InvariantOracle::onWrite(ProcId p, GAddr a, std::size_t size, Time now,
                         const std::uint8_t* frame)
{
    if (p < 0 || p >= clock_.nprocs() || size == 0)
        return;
    const PageNum pn = pageOf(a);
    const std::size_t off = pageOffset(a);
    ShadowPage& sp = shadowFor(pn, frame);
    const std::size_t c0 = off >> chunk_shift_;
    const std::size_t c1 = (off + size - 1) >> chunk_shift_;

    // Report unordered write-write pairs, merging adjacent chunks that
    // share the same prior writer into one diagnostic.
    std::size_t runBegin = 0;
    std::int32_t runProc = -1;
    std::uint32_t runCtx = 0;
    auto flush = [&](std::size_t end_chunk) {
        if (runProc < 0)
            return;
        swmr_ += 1;
        sink_.report(
            now,
            diagSite(pn,
                     static_cast<std::uint32_t>(runBegin << chunk_shift_),
                     static_cast<std::uint32_t>(end_chunk
                                                << chunk_shift_)) +
                " — SWMR: " +
                diagAccess(runProc, true, clock_.ctxStr(runCtx)) +
                " unordered with " +
                diagAccess(p, true, clock_.ctxOf(p)));
        runProc = -1;
    };
    for (std::size_t c = c0; c <= c1; ++c) {
        ChunkMeta& m = sp.meta[c];
        const bool bad = m.wProc >= 0 && m.wProc != p &&
                         !clock_.ordered(m.wProc, m.wClock, p);
        if (bad && m.wProc == runProc) {
            // extend the current run
        } else {
            flush(c);
            if (bad) {
                runBegin = c;
                runProc = m.wProc;
                runCtx = m.wCtx;
            }
        }
        m.wProc = p;
        m.wClock = clock_.clockOf(p);
        m.wCtx = clock_.ctxId(p);
    }
    flush(c1 + 1);

    std::memcpy(sp.bytes.get() + off, frame + off, size);
}

void
InvariantOracle::onRead(ProcId p, GAddr a, std::size_t size, Time now,
                        const std::uint8_t* frame)
{
    if (p < 0 || p >= clock_.nprocs() || size == 0)
        return;
    const PageNum pn = pageOf(a);
    const std::size_t off = pageOffset(a);
    ShadowPage& sp = shadowFor(pn, frame);
    const std::size_t c0 = off >> chunk_shift_;
    const std::size_t c1 = (off + size - 1) >> chunk_shift_;

    // Compare frame against shadow per chunk; merge adjacent
    // mismatching chunks into one diagnostic. Chunks whose last write
    // is concurrent with this read are skipped: the value is
    // undefined and the race detector owns that report.
    std::size_t mismBegin = 0, mismEnd = 0; // byte range within page
    std::int32_t mismProc = -1;
    std::uint32_t mismCtx = 0;
    auto flush = [&]() {
        if (mismProc == -2)
            mismProc = kNoProc; // never-written baseline mismatch
        else if (mismProc == -1)
            return;
        value_ += 1;
        std::string body =
            diagSite(pn, static_cast<std::uint32_t>(mismBegin),
                     static_cast<std::uint32_t>(mismEnd)) +
            " — data-value: " +
            diagAccess(p, false, clock_.ctxOf(p)) + " saw " +
            hexBytes(frame + mismBegin, mismEnd - mismBegin) +
            " expected " +
            hexBytes(sp.bytes.get() + mismBegin, mismEnd - mismBegin);
        if (mismProc >= 0) {
            body += " (written by " +
                    diagAccess(mismProc, true, clock_.ctxStr(mismCtx)) +
                    ")";
        } else {
            body += " (initial image)";
        }
        sink_.report(now, body);
        mismProc = -1;
    };
    for (std::size_t c = c0; c <= c1; ++c) {
        const ChunkMeta& m = sp.meta[c];
        // -2 encodes "checkable, never written"; -1 "not checkable".
        std::int32_t who = -1;
        if (m.wProc < 0)
            who = -2;
        else if (clock_.ordered(m.wProc, m.wClock, p))
            who = m.wProc;
        const std::size_t b0 = std::max(off, c << chunk_shift_);
        const std::size_t b1 =
            std::min(off + size, (c + 1) << chunk_shift_);
        const bool mismatch =
            who != -1 &&
            std::memcmp(frame + b0, sp.bytes.get() + b0, b1 - b0) != 0;
        if (mismatch && mismProc != -1 && who == mismProc &&
            mismEnd == b0) {
            mismEnd = b1; // extend
        } else {
            flush();
            if (mismatch) {
                mismBegin = b0;
                mismEnd = b1;
                mismProc = who;
                mismCtx = m.wCtx;
            }
        }
    }
    flush();
}

} // namespace mcdsm
