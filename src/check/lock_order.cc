#include "check/lock_order.h"

#include <algorithm>

#include "common/log.h"

namespace mcdsm {

LockOrderChecker::LockOrderChecker(int nprocs, std::size_t max_reports)
    : nprocs_(nprocs), sink_("deadlock", max_reports)
{
    held_.resize(nprocs);
}

void
LockOrderChecker::onAcquire(ProcId p, int lock_id, Time now)
{
    if (p < 0 || p >= nprocs_)
        return;
    for (int h : held_[p]) {
        if (h == lock_id)
            continue;
        Edge& e = edges_[h].try_emplace(lock_id).first->second;
        if (e.proc == kNoProc) {
            e.proc = p;
            e.when = now;
        }
    }
}

void
LockOrderChecker::onAcquired(ProcId p, int lock_id)
{
    if (p < 0 || p >= nprocs_)
        return;
    auto& h = held_[p];
    h.insert(std::lower_bound(h.begin(), h.end(), lock_id), lock_id);
}

void
LockOrderChecker::onRelease(ProcId p, int lock_id)
{
    if (p < 0 || p >= nprocs_)
        return;
    auto& h = held_[p];
    auto it = std::lower_bound(h.begin(), h.end(), lock_id);
    if (it != h.end() && *it == lock_id)
        h.erase(it);
}

void
LockOrderChecker::barrierEnter(ProcId p, int barrier_id, Time now)
{
    if (p < 0 || p >= nprocs_)
        return;
    for (int h : held_[p]) {
        if (!barrierHazards_.emplace(h, barrier_id).second)
            continue;
        sink_.report(now,
                     strprintf("barrier-hold: P%d entered barrier(%d) "
                               "holding lock %d — a processor blocked "
                               "on that lock can never arrive",
                               p, barrier_id, h));
    }
}

void
LockOrderChecker::finish()
{
    if (finished_)
        return;
    finished_ = true;

    // Tarjan SCC over the lock-order graph. Non-trivial components are
    // exactly the lock sets an adversarial schedule can deadlock on.
    std::map<int, int> index, low, comp;
    std::vector<int> stack;
    std::set<int> onStack;
    int next = 0, ncomp = 0;

    // Iterative DFS (lock graphs are small, but avoid recursion).
    struct Frame
    {
        int v;
        std::map<int, Edge>::const_iterator it, end;
    };
    for (const auto& [root, _] : edges_) {
        if (index.count(root))
            continue;
        std::vector<Frame> dfs;
        auto push = [&](int v) {
            index[v] = low[v] = next++;
            stack.push_back(v);
            onStack.insert(v);
            static const std::map<int, Edge> kEmpty;
            const auto& adj =
                edges_.count(v) ? edges_.at(v) : kEmpty;
            dfs.push_back({v, adj.begin(), adj.end()});
        };
        push(root);
        while (!dfs.empty()) {
            Frame& f = dfs.back();
            if (f.it != f.end) {
                const int w = f.it->first;
                ++f.it;
                if (!index.count(w))
                    push(w);
                else if (onStack.count(w))
                    low[f.v] = std::min(low[f.v], index[w]);
            } else {
                if (low[f.v] == index[f.v]) {
                    const int c = ncomp++;
                    int w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        onStack.erase(w);
                        comp[w] = c;
                    } while (w != f.v);
                }
                const int v = f.v;
                dfs.pop_back();
                if (!dfs.empty())
                    low[dfs.back().v] =
                        std::min(low[dfs.back().v], low[v]);
            }
        }
    }

    // Group members per component; report each component with >1 lock.
    std::map<int, std::vector<int>> members;
    for (const auto& [v, c] : comp)
        members[c].push_back(v);
    for (auto& [c, locks] : members) {
        if (locks.size() < 2)
            continue;
        std::sort(locks.begin(), locks.end());
        std::string body = "lock-order cycle among " + diagLockSet(locks);
        Time latest = 0;
        std::set<int> inComp(locks.begin(), locks.end());
        for (int v : locks) {
            auto av = edges_.find(v);
            if (av == edges_.end())
                continue;
            for (const auto& [w, e] : av->second) {
                if (!inComp.count(w))
                    continue;
                body += strprintf("; lock %d -> lock %d (P%d at "
                                  "t=%llu)",
                                  v, w, e.proc,
                                  static_cast<unsigned long long>(
                                      e.when));
                latest = std::max(latest, e.when);
            }
        }
        sink_.report(latest, body);
    }
}

} // namespace mcdsm
