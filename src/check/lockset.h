/**
 * @file
 * Eraser-style lockset detector — the schedule-insensitive second
 * opinion next to the vector-clock race detector.
 *
 * The happens-before detector only reports races that the observed
 * schedule left unordered: a racy program can get lucky. The lockset
 * model instead checks a *discipline* — every chunk that is written
 * by more than one processor must be consistently protected by at
 * least one common lock — which flags the bug class regardless of how
 * this particular schedule interleaved (Savage et al.'s Eraser).
 *
 * Classic Eraser drowns barrier/flag-phased programs (all of SPLASH)
 * in false positives, so this detector runs a SyncClock restricted to
 * barrier and flag edges: when a chunk's previous access
 * happens-before the current one through barriers/flags alone, its
 * state resets to Exclusive — phased data is excused, while
 * lock-protected data must still satisfy the lockset discipline (lock
 * edges deliberately do NOT order accesses here; that independence
 * from the race detector's model is the point).
 *
 * Approximation: only the most recent access epoch is kept per chunk,
 * so a reset requires just the latest accessor to be ordered. Since
 * barriers are global this is exact for barrier phases; for flag
 * chains it can excuse a chunk whose older accesses are unordered
 * (missed report, never a false one... for the reset direction).
 * Cross-validation against the vector-clock detector
 * (CheckerSuite::crossValidation) reports where the two models
 * disagree.
 */

#ifndef MCDSM_CHECK_LOCKSET_H
#define MCDSM_CHECK_LOCKSET_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/report.h"
#include "check/sync_clock.h"
#include "common/types.h"

namespace mcdsm {

class LocksetChecker
{
  public:
    /** A chunk the discipline check flagged (for cross-validation). */
    struct Finding
    {
        PageNum page = 0;
        std::uint32_t beginOff = 0;
        std::uint32_t endOff = 0;
    };

    LocksetChecker(int nprocs, std::size_t page_count, int chunk_shift,
                   std::size_t max_reports);

    // ---- data-access hooks -------------------------------------------
    void onRead(ProcId p, GAddr a, std::size_t size, Time now);
    void onWrite(ProcId p, GAddr a, std::size_t size, Time now);

    // ---- synchronization hooks ---------------------------------------
    void afterAcquire(ProcId p, int lock_id);
    void beforeRelease(ProcId p, int lock_id);
    void barrierEnter(ProcId p, int b) { bf_.barrierEnter(p, b); }
    void barrierLeave(ProcId p, int b) { bf_.barrierLeave(p, b); }
    void beforeFlagSet(ProcId p, int f) { bf_.beforeFlagSet(p, f); }
    void afterFlagWait(ProcId p, int f) { bf_.afterFlagWait(p, f); }

    std::uint64_t violations() const { return sink_.count(); }
    const std::vector<Finding>& findings() const { return findings_; }
    std::string summary() const { return sink_.summary(); }

  private:
    /** Eraser state machine per chunk. */
    enum class St : std::uint8_t {
        Virgin,         ///< never accessed
        Exclusive,      ///< one owner so far (initialization)
        Shared,         ///< multiple readers, at most one writer
        SharedModified, ///< multiple writers: lockset must stay nonempty
    };

    struct Chunk
    {
        St st = St::Virgin;
        bool reported = false;
        std::int16_t owner = -1;
        std::uint32_t lockset = 0; ///< interned candidate set id
        std::int32_t lastProc = -1;
        SyncClock::Clock lastClock = 0;
    };

    Chunk* chunksFor(PageNum pn);
    void access(ProcId p, GAddr a, std::size_t size, Time now,
                bool is_write);
    std::uint32_t internSet(std::vector<int> locks);
    std::uint32_t intersect(std::uint32_t a, std::uint32_t b);

    SyncClock bf_; ///< barrier/flag edges only (no lock edges)
    int chunk_shift_;
    std::size_t chunks_per_page_;
    std::vector<std::unique_ptr<Chunk[]>> pages_;

    /** Per-proc held locks: sorted ids + interned set id. */
    std::vector<std::vector<int>> held_;
    std::vector<std::uint32_t> heldSet_;

    /** Interned lock sets; id 0 is the empty set. */
    std::vector<std::vector<int>> sets_;
    std::map<std::vector<int>, std::uint32_t> setIds_;

    std::vector<Finding> findings_;
    DiagSink sink_;
};

} // namespace mcdsm

#endif // MCDSM_CHECK_LOCKSET_H
