#include "check/race_detector.h"

#include <algorithm>

#include "check/report.h"
#include "common/log.h"

namespace mcdsm {

std::string
RaceReport::toString() const
{
    return DiagSink::strdiag(
        "race", when,
        diagSite(page, beginOff, endOff) + " — " +
            diagAccess(firstProc, firstIsWrite, firstSync) + " vs " +
            diagAccess(secondProc, secondIsWrite, secondSync));
}

RaceChecker::RaceChecker(int nprocs, std::size_t page_count,
                         int chunk_shift, std::size_t max_reports)
    : nprocs_(nprocs), chunk_shift_(chunk_shift),
      chunks_per_page_(kPageSize >> chunk_shift), max_reports_(max_reports),
      pages_(page_count)
{
    mcdsm_assert(chunk_shift >= 0 &&
                     (std::size_t{1} << chunk_shift) <= kPageSize,
                 "bad race-detector chunk shift");
    // Epochs start at 1 so a stored clock of 0 can mean "empty".
    vc_.resize(nprocs);
    for (int p = 0; p < nprocs; ++p) {
        vc_[p].assign(nprocs, 0);
        vc_[p][p] = 1;
    }
    syncCtx_.push_back("start");
    curCtx_.assign(nprocs, 0);
}

RaceChecker::Chunk*
RaceChecker::chunksFor(PageNum pn)
{
    mcdsm_assert(pn < pages_.size(), "race check: page out of range");
    if (!pages_[pn])
        pages_[pn] = std::make_unique<Chunk[]>(chunks_per_page_);
    return pages_[pn].get();
}

void
RaceChecker::joinInto(VC& dst, const VC& src)
{
    for (int q = 0; q < nprocs_; ++q)
        dst[q] = std::max(dst[q], src[q]);
}

void
RaceChecker::setSyncCtx(ProcId p, std::string desc)
{
    curCtx_[p] = static_cast<std::uint32_t>(syncCtx_.size());
    syncCtx_.push_back(std::move(desc));
}

void
RaceChecker::report(PageNum pn, std::uint32_t begin, std::uint32_t end,
                    ProcId first, bool first_w, std::uint32_t first_sync,
                    ProcId second, bool second_w, Time now)
{
    // Merge with the previous report when one multi-chunk access
    // races with the same prior accessor over adjacent bytes.
    if (!reports_.empty()) {
        RaceReport& r = reports_.back();
        if (r.page == pn && r.endOff >= begin && r.when == now &&
            r.firstProc == first && r.firstIsWrite == first_w &&
            r.secondProc == second && r.secondIsWrite == second_w) {
            r.endOff = std::max(r.endOff, end);
            return;
        }
    }
    race_count_ += 1;
    if (reports_.size() >= max_reports_)
        return;
    RaceReport r;
    r.page = pn;
    r.beginOff = begin;
    r.endOff = end;
    r.firstProc = first;
    r.firstIsWrite = first_w;
    r.firstSync = syncCtx_[first_sync];
    r.secondProc = second;
    r.secondIsWrite = second_w;
    r.secondSync = syncCtx_[curCtx_[second]];
    r.when = now;
    reports_.push_back(std::move(r));
}

void
RaceChecker::onWrite(ProcId p, GAddr a, std::size_t size, Time now)
{
    if (p < 0 || p >= nprocs_ || size == 0)
        return;
    const PageNum pn = pageOf(a);
    Chunk* chunks = chunksFor(pn);
    const std::size_t off = pageOffset(a);
    const std::size_t c0 = off >> chunk_shift_;
    const std::size_t c1 = (off + size - 1) >> chunk_shift_;
    const VC& vc = vc_[p];

    for (std::size_t c = c0; c <= c1; ++c) {
        Chunk& ch = chunks[c];
        const auto begin = static_cast<std::uint32_t>(c << chunk_shift_);
        const auto end =
            static_cast<std::uint32_t>((c + 1) << chunk_shift_);

        if (ch.wProc >= 0 && ch.wProc != p &&
            ch.wClock > vc[ch.wProc]) {
            report(pn, begin, end, ch.wProc, true, ch.wSync, p, true,
                   now);
        }
        if (ch.rShared >= 0) {
            const SharedRead& sr = sharedReads_[ch.rShared];
            for (int q = 0; q < nprocs_; ++q) {
                if (q != p && sr.clocks[q] > vc[q]) {
                    report(pn, begin, end, q, false, sr.sync[q], p,
                           true, now);
                    break; // one representative racing reader
                }
            }
        } else if (ch.rProc >= 0 && ch.rProc != p &&
                   ch.rClock > vc[ch.rProc]) {
            report(pn, begin, end, ch.rProc, false, ch.rSync, p, true,
                   now);
        }

        ch.wProc = p;
        ch.wClock = vc[p];
        ch.wSync = curCtx_[p];
        ch.rProc = -1;
        ch.rClock = 0;
        ch.rShared = -1;
    }
}

void
RaceChecker::onRead(ProcId p, GAddr a, std::size_t size, Time now)
{
    if (p < 0 || p >= nprocs_ || size == 0)
        return;
    const PageNum pn = pageOf(a);
    Chunk* chunks = chunksFor(pn);
    const std::size_t off = pageOffset(a);
    const std::size_t c0 = off >> chunk_shift_;
    const std::size_t c1 = (off + size - 1) >> chunk_shift_;
    const VC& vc = vc_[p];

    for (std::size_t c = c0; c <= c1; ++c) {
        Chunk& ch = chunks[c];

        if (ch.wProc >= 0 && ch.wProc != p &&
            ch.wClock > vc[ch.wProc]) {
            report(pn, static_cast<std::uint32_t>(c << chunk_shift_),
                   static_cast<std::uint32_t>((c + 1) << chunk_shift_),
                   ch.wProc, true, ch.wSync, p, false, now);
        }

        if (ch.rShared >= 0) {
            SharedRead& sr = sharedReads_[ch.rShared];
            sr.clocks[p] = vc[p];
            sr.sync[p] = curCtx_[p];
        } else if (ch.rProc < 0 || ch.rProc == p ||
                   ch.rClock <= vc[ch.rProc]) {
            // The previous read epoch happens-before this one: the
            // single-epoch slot can simply be replaced (FastTrack's
            // "read exclusive" fast path).
            ch.rProc = p;
            ch.rClock = vc[p];
            ch.rSync = curCtx_[p];
        } else {
            // Concurrent readers: promote to a full read vector.
            SharedRead sr;
            sr.clocks.assign(nprocs_, 0);
            sr.sync.assign(nprocs_, 0);
            sr.clocks[ch.rProc] = ch.rClock;
            sr.sync[ch.rProc] = ch.rSync;
            sr.clocks[p] = vc[p];
            sr.sync[p] = curCtx_[p];
            ch.rShared = static_cast<std::int32_t>(sharedReads_.size());
            sharedReads_.push_back(std::move(sr));
        }
    }
}

void
RaceChecker::afterAcquire(ProcId p, int lock_id)
{
    if (p < 0 || p >= nprocs_)
        return;
    if (const VC* lv = locks_.find(lock_id))
        joinInto(vc_[p], *lv);
    setSyncCtx(p, strprintf("acquire(lock %d)", lock_id));
}

void
RaceChecker::beforeRelease(ProcId p, int lock_id)
{
    if (p < 0 || p >= nprocs_)
        return;
    VC& lv = locks_[lock_id];
    if (lv.empty())
        lv.assign(nprocs_, 0);
    joinInto(lv, vc_[p]);
    vc_[p][p] += 1;
    setSyncCtx(p, strprintf("release(lock %d)", lock_id));
}

void
RaceChecker::barrierEnter(ProcId p, int barrier_id)
{
    if (p < 0 || p >= nprocs_)
        return;
    BarrierState& b = barriers_[barrier_id];
    if (b.pending.empty())
        b.pending.assign(nprocs_, 0);
    joinInto(b.pending, vc_[p]);
    b.arrived += 1;
    if (b.arrived == nprocs_) {
        // Episode complete: publish the joined clock. The protocol
        // guarantees no participant leaves before everyone entered,
        // and nobody re-enters before everyone of the previous
        // episode left, so a single published slot per barrier id is
        // enough.
        b.released = b.pending;
        b.pending.assign(nprocs_, 0);
        b.arrived = 0;
    }
}

void
RaceChecker::barrierLeave(ProcId p, int barrier_id)
{
    if (p < 0 || p >= nprocs_)
        return;
    BarrierState& b = barriers_[barrier_id];
    mcdsm_assert(!b.released.empty(),
                 "barrier leave before episode completion");
    joinInto(vc_[p], b.released);
    vc_[p][p] += 1;
    setSyncCtx(p, strprintf("barrier(%d)", barrier_id));
}

void
RaceChecker::beforeFlagSet(ProcId p, int flag_id)
{
    if (p < 0 || p >= nprocs_)
        return;
    VC& fv = flags_[flag_id];
    if (fv.empty())
        fv.assign(nprocs_, 0);
    joinInto(fv, vc_[p]);
    vc_[p][p] += 1;
    setSyncCtx(p, strprintf("setFlag(%d)", flag_id));
}

void
RaceChecker::afterFlagWait(ProcId p, int flag_id)
{
    if (p < 0 || p >= nprocs_)
        return;
    const VC* fv = flags_.find(flag_id);
    // The protocol only returns from waitFlag after some setFlag, so
    // the flag's clock must exist.
    mcdsm_assert(fv != nullptr, "flag wait without any set");
    joinInto(vc_[p], *fv);
    setSyncCtx(p, strprintf("waitFlag(%d)", flag_id));
}

std::string
RaceChecker::summary() const
{
    std::string out;
    for (const auto& r : reports_) {
        out += r.toString();
        out += "\n";
    }
    if (race_count_ > reports_.size()) {
        out += strprintf("... and %llu more race(s)\n",
                         static_cast<unsigned long long>(
                             race_count_ - reports_.size()));
    }
    return out;
}

} // namespace mcdsm
