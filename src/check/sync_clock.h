/**
 * @file
 * SyncClock — vector-clock tracking over the DSM's synchronization
 * events, shared by the verification analyses that need a
 * happens-before order (the coherence-invariant oracle and, in its
 * barrier/flag-only configuration, the lockset detector).
 *
 * The race detector keeps its own FastTrack-style epochs on purpose:
 * the point of the second-opinion analyses is to be *independent*
 * models over the same execution, so a bug in one clock implementation
 * does not blind every checker at once.
 *
 * `lock_edges` controls whether lock release→acquire pairs create
 * happens-before edges. The oracle wants the full release-consistency
 * order (locks, barriers, flags); the lockset detector deliberately
 * excludes lock edges — lock-protected data must satisfy the Eraser
 * discipline on its own, while barrier/flag-phased data is excused by
 * the clock.
 *
 * Hook placement matches the race detector's (see race_detector.h):
 * release-type operations publish *before* the protocol makes the
 * object observable; acquire-type operations join *after* the protocol
 * operation completed.
 */

#ifndef MCDSM_CHECK_SYNC_CLOCK_H
#define MCDSM_CHECK_SYNC_CLOCK_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/log.h"
#include "common/types.h"

namespace mcdsm {

class SyncClock
{
  public:
    using Clock = std::uint32_t;
    using VC = std::vector<Clock>;

    SyncClock(int nprocs, bool lock_edges)
        : nprocs_(nprocs), lock_edges_(lock_edges)
    {
        vc_.resize(nprocs);
        for (int p = 0; p < nprocs; ++p) {
            vc_[p].assign(nprocs, 0);
            vc_[p][p] = 1; // epoch 0 means "never"
        }
        ctx_.push_back("start");
        cur_ctx_.assign(nprocs, 0);
    }

    int nprocs() const { return nprocs_; }

    /** This processor's own component (its current epoch). */
    Clock
    clockOf(ProcId p) const
    {
        return vc_[p][p];
    }

    const VC& of(ProcId p) const { return vc_[p]; }

    /**
     * True if an event by @p src at epoch @p src_clock happens-before
     * @p dst's current point.
     */
    bool
    ordered(ProcId src, Clock src_clock, ProcId dst) const
    {
        return src == dst || src_clock <= vc_[dst][src];
    }

    /** Interned description of @p p's latest sync operation. */
    std::uint32_t ctxId(ProcId p) const { return cur_ctx_[p]; }
    const std::string& ctxStr(std::uint32_t id) const { return ctx_[id]; }
    const std::string& ctxOf(ProcId p) const { return ctx_[cur_ctx_[p]]; }

    // ---- synchronization events ---------------------------------------
    void
    afterAcquire(ProcId p, int lock_id)
    {
        if (lock_edges_) {
            if (const VC* lv = locks_.find(lock_id))
                join(vc_[p], *lv);
        }
        setCtx(p, strprintf("acquire(lock %d)", lock_id));
    }

    void
    beforeRelease(ProcId p, int lock_id)
    {
        if (lock_edges_) {
            VC& lv = locks_[lock_id];
            if (lv.empty())
                lv.assign(nprocs_, 0);
            join(lv, vc_[p]);
            vc_[p][p] += 1;
        }
        setCtx(p, strprintf("release(lock %d)", lock_id));
    }

    void
    barrierEnter(ProcId p, int barrier_id)
    {
        BarrierState& b = barriers_[barrier_id];
        if (b.pending.empty())
            b.pending.assign(nprocs_, 0);
        join(b.pending, vc_[p]);
        b.arrived += 1;
        if (b.arrived == nprocs_) {
            b.released = b.pending;
            b.pending.assign(nprocs_, 0);
            b.arrived = 0;
        }
    }

    void
    barrierLeave(ProcId p, int barrier_id)
    {
        BarrierState& b = barriers_[barrier_id];
        mcdsm_assert(!b.released.empty(),
                     "barrier leave before episode completion");
        join(vc_[p], b.released);
        vc_[p][p] += 1;
        setCtx(p, strprintf("barrier(%d)", barrier_id));
    }

    void
    beforeFlagSet(ProcId p, int flag_id)
    {
        VC& fv = flags_[flag_id];
        if (fv.empty())
            fv.assign(nprocs_, 0);
        join(fv, vc_[p]);
        vc_[p][p] += 1;
        setCtx(p, strprintf("setFlag(%d)", flag_id));
    }

    void
    afterFlagWait(ProcId p, int flag_id)
    {
        const VC* fv = flags_.find(flag_id);
        mcdsm_assert(fv != nullptr, "flag wait without any set");
        join(vc_[p], *fv);
        setCtx(p, strprintf("waitFlag(%d)", flag_id));
    }

  private:
    void
    join(VC& dst, const VC& src)
    {
        for (int q = 0; q < nprocs_; ++q)
            dst[q] = std::max(dst[q], src[q]);
    }

    void
    setCtx(ProcId p, std::string desc)
    {
        cur_ctx_[p] = static_cast<std::uint32_t>(ctx_.size());
        ctx_.push_back(std::move(desc));
    }

    struct BarrierState
    {
        VC pending;
        VC released;
        int arrived = 0;
    };

    int nprocs_;
    bool lock_edges_;
    std::vector<VC> vc_;
    FlatIntMap<VC> locks_;
    FlatIntMap<VC> flags_;
    FlatIntMap<BarrierState> barriers_;

    std::vector<std::string> ctx_;
    std::vector<std::uint32_t> cur_ctx_;
};

} // namespace mcdsm

#endif // MCDSM_CHECK_SYNC_CLOCK_H
