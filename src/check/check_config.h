/**
 * @file
 * Selection of dynamic verification analyses for a run.
 *
 * Four analyses are available (see DESIGN.md §11):
 *   race      — vector-clock happens-before race detector
 *   lockset   — Eraser-style lock-discipline detector (independent
 *               second opinion next to the vector-clock model)
 *   invariant — coherence-invariant oracle: shadow-memory
 *               single-writer/data-value checking of the protocol
 *   deadlock  — lock-order graph with cycle detection (deadlock
 *               prediction from acquisition history)
 *
 * Bench binaries parse `--check[=race,lockset,invariant,deadlock|all]`
 * into this struct; `--check` with no value means all.
 */

#ifndef MCDSM_CHECK_CHECK_CONFIG_H
#define MCDSM_CHECK_CHECK_CONFIG_H

#include <string>

namespace mcdsm {

struct CheckConfig
{
    bool race = false;
    bool lockset = false;
    bool invariant = false;
    bool deadlock = false;

    bool
    any() const
    {
        return race || lockset || invariant || deadlock;
    }

    static CheckConfig
    all()
    {
        return CheckConfig{true, true, true, true};
    }

    /** Canonical "race,lockset,..." spelling of the enabled set. */
    std::string
    describe() const
    {
        std::string out;
        auto add = [&](bool on, const char* name) {
            if (!on)
                return;
            if (!out.empty())
                out += ",";
            out += name;
        };
        add(race, "race");
        add(lockset, "lockset");
        add(invariant, "invariant");
        add(deadlock, "deadlock");
        return out.empty() ? "none" : out;
    }
};

/**
 * Parse a `--check` value: "", "all", or a comma list of analysis
 * names. @return an error message, or "" on success (with @p out
 * filled in).
 */
std::string parseCheckList(const std::string& spec, CheckConfig* out);

} // namespace mcdsm

#endif // MCDSM_CHECK_CHECK_CONFIG_H
