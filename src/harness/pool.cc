#include "harness/pool.h"

#include <cstdlib>

#include "common/log.h"

namespace mcdsm {

ThreadPool::ThreadPool(int threads)
{
    if (threads < 1)
        threads = 1;
    queues_.resize(static_cast<std::size_t>(threads));
    threads_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        mcdsm_assert(!stop_, "submit() on a stopped pool");
        queues_[next_].push_back(std::move(fn));
        next_ = (next_ + 1) % queues_.size();
        ++pending_;
    }
    work_cv_.notify_one();
}

bool
ThreadPool::takeLocked(int self, std::function<void()>& out)
{
    // Own deque from the back (most recently submitted: LIFO keeps a
    // worker on the cluster of tasks routed to it)...
    auto& own = queues_[self];
    if (!own.empty()) {
        out = std::move(own.back());
        own.pop_back();
        return true;
    }
    // ...then steal the oldest task from the fullest victim.
    std::size_t victim = queues_.size();
    std::size_t best = 0;
    for (std::size_t q = 0; q < queues_.size(); ++q) {
        if (queues_[q].size() > best) {
            best = queues_[q].size();
            victim = q;
        }
    }
    if (victim == queues_.size())
        return false;
    out = std::move(queues_[victim].front());
    queues_[victim].pop_front();
    return true;
}

void
ThreadPool::workerLoop(int self)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        std::function<void()> task;
        if (takeLocked(self, task)) {
            lock.unlock();
            task();
            lock.lock();
            if (--pending_ == 0)
                idle_cv_.notify_all();
            continue;
        }
        if (stop_)
            return;
        work_cv_.wait(lock);
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

int
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

int
jobsFromEnv(int fallback)
{
    if (const char* env = std::getenv("MCDSM_JOBS")) {
        const int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    return fallback;
}

void
parallelFor(std::size_t n, int jobs,
            const std::function<void(std::size_t)>& fn)
{
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    if (static_cast<std::size_t>(jobs) > n)
        jobs = static_cast<int>(n);
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

std::vector<ExpResult>
runExperiments(const std::vector<ExpSpec>& specs, int jobs)
{
    std::vector<ExpResult> results(specs.size());
    parallelFor(specs.size(), jobs, [&](std::size_t i) {
        const ExpSpec& s = specs[i];
        results[i] =
            runExperiment(s.app, s.protocol, s.nprocs, s.opts);
    });
    return results;
}

} // namespace mcdsm
