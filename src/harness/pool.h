/**
 * @file
 * Parallel experiment engine: a small work-stealing thread pool and a
 * batch API that runs independent experiments concurrently.
 *
 * Every table/figure in the paper is a grid of independent
 * (application × variant × nprocs) simulations. Each simulation is a
 * self-contained DsmRuntime — its Scheduler, MailboxSystem,
 * MemoryChannel, page frames and RaceChecker all hang off the
 * instance, and Fiber keeps the current-fiber pointer in a
 * thread_local — so one runtime per host thread is safe and the batch
 * parallelizes embarrassingly. Results are written into pre-sized
 * slots, so runExperiments() output is bit-identical to a sequential
 * loop regardless of the job count (see DESIGN.md §8 for the
 * isolation argument).
 */

#ifndef MCDSM_HARNESS_POOL_H
#define MCDSM_HARNESS_POOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "harness/runner.h"

namespace mcdsm {

/**
 * Work-stealing thread pool. Tasks are submitted round-robin to
 * per-worker deques; a worker pops from the back of its own deque
 * (LIFO, cache-warm) and steals from the front of another's (FIFO,
 * oldest first). Tasks here are whole simulations — milliseconds to
 * minutes each — so a single mutex guarding the deques is nowhere
 * near contended; the deque discipline is what keeps the workers
 * balanced when task runtimes are skewed (one 32-proc Water run vs a
 * handful of 1-proc SORs).
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to >= 1). */
    explicit ThreadPool(int threads);

    /** Joins workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a task. Thread-safe. */
    void submit(std::function<void()> fn);

    /** Block until every submitted task has finished. */
    void wait();

    int threads() const { return static_cast<int>(threads_.size()); }

  private:
    bool takeLocked(int self, std::function<void()>& out);
    void workerLoop(int self);

    std::mutex mu_;
    std::condition_variable work_cv_; ///< signalled on submit / stop
    std::condition_variable idle_cv_; ///< signalled when pending_ hits 0
    std::vector<std::deque<std::function<void()>>> queues_;
    std::vector<std::thread> threads_;
    std::size_t next_ = 0;  ///< round-robin submission cursor
    int pending_ = 0;       ///< queued + running tasks
    bool stop_ = false;
};

/** Default parallelism: hardware_concurrency, at least 1. */
int defaultJobs();

/**
 * Job count from the MCDSM_JOBS environment variable, or @p fallback
 * when unset/invalid. Lets CI and test binaries opt into parallelism
 * without plumbing a flag everywhere.
 */
int jobsFromEnv(int fallback);

/**
 * Run fn(0..n-1), each index exactly once. jobs <= 1 (or n <= 1) runs
 * inline on the calling thread in index order — the true sequential
 * baseline, no pool involved. Otherwise indices are distributed over
 * min(jobs, n) pool workers. @p fn must be safe to call concurrently
 * for distinct indices.
 */
void parallelFor(std::size_t n, int jobs,
                 const std::function<void(std::size_t)>& fn);

/** One cell of an experiment grid. */
struct ExpSpec
{
    std::string app;
    ProtocolKind protocol = ProtocolKind::None;
    int nprocs = 1;
    RunOpts opts;
};

/**
 * Run a batch of independent experiments with @p jobs worker threads.
 * results[i] corresponds to specs[i]; every ExpResult is bit-identical
 * to what a sequential runExperiment(specs[i]) loop would produce,
 * for any jobs value (each simulation is deterministic and
 * thread-confined; parallelism only changes host-time overlap).
 */
std::vector<ExpResult> runExperiments(const std::vector<ExpSpec>& specs,
                                      int jobs);

} // namespace mcdsm

#endif // MCDSM_HARNESS_POOL_H
