#include "harness/flags.h"

#include <cstdio>
#include <cstdlib>

#include "common/log.h"

namespace mcdsm {

namespace {

/** Name part of a `--name[=value]` token ("" if not flag-shaped). */
std::string
flagName(const std::string& a)
{
    if (a.rfind("--", 0) != 0)
        return "";
    return a.substr(2, a.find('=') - 2);
}

} // namespace

Flags::Flags(int argc, char** argv)
{
    if (argc > 0)
        prog_ = argv[0];
    for (int i = 1; i < argc; ++i)
        args_.emplace_back(argv[i]);
}

Flags::Flags(std::vector<std::string> args, std::string prog)
    : prog_(std::move(prog)), args_(std::move(args))
{}

std::string
Flags::normalize(const std::vector<FlagInfo>& known)
{
    static const FlagInfo kHelp{"help", "show this message",
                                FlagArg::None};
    auto lookup = [&](const std::string& name) -> const FlagInfo* {
        if (name == kHelp.name)
            return &kHelp;
        for (const FlagInfo& f : known) {
            if (name == f.name)
                return &f;
        }
        return nullptr;
    };

    std::vector<std::string> out;
    for (std::size_t i = 0; i < args_.size(); ++i) {
        const std::string& a = args_[i];
        const std::string name = flagName(a);
        if (name.empty()) {
            return strprintf("unexpected argument '%s' (flags are "
                             "--name or --name=value; --help lists "
                             "accepted flags)",
                             a.c_str());
        }
        const FlagInfo* info = lookup(name);
        if (info == nullptr) {
            return strprintf("unknown argument '--%s' (--help lists "
                             "accepted flags)",
                             name.c_str());
        }
        if (a.find('=') != std::string::npos) {
            out.push_back(a);
            continue;
        }
        // Separated-value form: `--flag value`. A following token
        // that is itself flag-shaped is never consumed as a value.
        const bool next_is_value =
            i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0;
        switch (info->arg) {
          case FlagArg::Required:
            if (!next_is_value) {
                return strprintf("missing value for '--%s' (expected "
                                 "--%s=VALUE or --%s VALUE)",
                                 name.c_str(), name.c_str(),
                                 name.c_str());
            }
            out.push_back("--" + name + "=" + args_[++i]);
            break;
          case FlagArg::Optional:
            if (next_is_value)
                out.push_back("--" + name + "=" + args_[++i]);
            else
                out.push_back(a);
            break;
          case FlagArg::None:
            out.push_back(a);
            break;
        }
    }
    args_ = std::move(out);
    return "";
}

std::string
Flags::get(const std::string& key, const std::string& def) const
{
    const std::string prefix = "--" + key + "=";
    for (const auto& a : args_) {
        if (a.rfind(prefix, 0) == 0)
            return a.substr(prefix.size());
    }
    return def;
}

bool
Flags::has(const std::string& key) const
{
    const std::string flag = "--" + key;
    for (const auto& a : args_) {
        if (a == flag || a.rfind(flag + "=", 0) == 0)
            return true;
    }
    return false;
}

void
handleUsage(Flags& flags, const char* summary,
            std::initializer_list<FlagInfo> known)
{
    if (flags.has("help")) {
        std::printf("%s: %s\n\nFlags:\n", flags.prog().c_str(), summary);
        for (const FlagInfo& f : known)
            std::printf("  --%-14s %s\n", f.name, f.help);
        std::printf("  --%-14s %s\n", "help", "show this message");
        std::exit(0);
    }
    const std::string err =
        flags.normalize(std::vector<FlagInfo>(known));
    if (!err.empty()) {
        std::fprintf(stderr, "%s: %s\n", flags.prog().c_str(),
                     err.c_str());
        std::exit(2);
    }
}

} // namespace mcdsm
