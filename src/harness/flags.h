/**
 * @file
 * Command-line flag parsing shared by every bench binary.
 *
 * Historically each binary accepted only the `--flag=value` spelling
 * while a few tolerated `--flag value`; the parser now normalizes
 * both forms against the binary's declared flag list, so every
 * spelling works everywhere and unknown flags, stray positionals and
 * missing values are rejected uniformly (tests/test_flags.cc).
 */

#ifndef MCDSM_HARNESS_FLAGS_H
#define MCDSM_HARNESS_FLAGS_H

#include <initializer_list>
#include <string>
#include <vector>

namespace mcdsm {

/** Whether a flag consumes a value. */
enum class FlagArg {
    None,     ///< boolean switch; never consumes the next token
    Required, ///< must have a value (inline or as the next token)
    Optional, ///< value taken when present (`--json` or `--json FILE`)
};

/** A flag a binary accepts, for --help and unknown-flag rejection. */
struct FlagInfo
{
    const char* name;
    const char* help;
    FlagArg arg = FlagArg::Required;
};

/**
 * Small flag parser. Construct from argv, then normalize() against
 * the binary's flag list (handleUsage does this); lookups accept both
 * `--key=value` and `--key value` spellings after normalization.
 */
class Flags
{
  public:
    Flags(int argc, char** argv);

    /** Test constructor: arguments without the program name. */
    explicit Flags(std::vector<std::string> args,
                   std::string prog = "test");

    /**
     * Validate the argument list against @p known and fold separated
     * values (`--key value`) into the canonical `--key=value` form.
     * `--help` is implicitly known. @return an error message, or ""
     * on success. On error the argument list is left unchanged.
     */
    std::string normalize(const std::vector<FlagInfo>& known);

    /** Value of --key (either spelling, post-normalize), or @p def. */
    std::string get(const std::string& key, const std::string& def) const;

    bool has(const std::string& key) const;

    const std::string& prog() const { return prog_; }
    const std::vector<std::string>& raw() const { return args_; }

  private:
    std::string prog_ = "bench";
    std::vector<std::string> args_;
};

/**
 * Uniform --help / unknown-flag handling: every bench binary calls
 * this right after constructing Flags, passing the flags it honors.
 * --help prints them and exits 0; normalization failure (unknown
 * flag, positional argument, missing value) prints a message and
 * exits 2.
 */
void handleUsage(Flags& flags, const char* summary,
                 std::initializer_list<FlagInfo> known);

} // namespace mcdsm

#endif // MCDSM_HARNESS_FLAGS_H
