/**
 * @file
 * Experiment runner: execute (application, protocol, processor count)
 * and collect timing, statistics and verification values. This is
 * what the per-table/figure benchmark binaries are built from.
 */

#ifndef MCDSM_HARNESS_RUNNER_H
#define MCDSM_HARNESS_RUNNER_H

#include <optional>
#include <string>
#include <vector>

#include "apps/app.h"
#include "apps/kv.h"
#include "dsm/system.h"
#include "dsm/trace.h"
#include "fault/fault_plan.h"

namespace mcdsm {

struct ExpResult
{
    std::string app;
    ProtocolKind protocol = ProtocolKind::None;
    int nprocs = 1;
    Time elapsed = 0;
    RunStats stats;
    AppResult appResult;

    /** Race-detector output (empty unless RunOpts::raceDetect). */
    std::uint64_t races = 0;
    std::string raceSummary;

    /** Verification suite output (empty unless RunOpts::checks). */
    std::uint64_t checkViolations = 0;
    std::string checkReport;

    /** Protocol events (empty unless RunOpts::traceCapacity > 0). */
    std::vector<TraceEvent> trace;
    /** Link brown-out windows active during the run (src/fault/). */
    std::vector<FaultWindow> faultWindows;

    double
    seconds() const
    {
        return static_cast<double>(elapsed) / kSecond;
    }
};

/** Options beyond the defaults. */
struct RunOpts
{
    AppScale scale = AppScale::Small;
    std::uint64_t seed = 1;
    /** Start from this config (protocol/topo overwritten). */
    std::optional<DsmConfig> base;

    /** Network backend: Memory Channel (default) or RDMA verbs. */
    NetKind net = NetKind::Mc;

    /** Run under the vector-clock race detector. */
    bool raceDetect = false;
    /** Verification analyses to enable (race/lockset/invariant/deadlock). */
    CheckConfig checks;
    /** Schedule-perturbation seed (0 = baseline schedule). */
    std::uint64_t schedSeed = 0;
    /** Jitter bound for perturbed schedules (ns). */
    Time schedMaxJitter = 200;

    /**
     * Host threads for one simulation (0 = legacy sequential loop,
     * N >= 1 = conservative-PDES engine; see DsmConfig::simThreads).
     */
    int simThreads = 0;

    /** Fault / perturbation plan (default: null plan, no injector). */
    FaultPlan fault{};
    /** Trace-ring capacity; > 0 fills ExpResult::trace. */
    std::size_t traceCapacity = 0;

    /**
     * Pooled memory subsystem on/off (see DsmConfig::memPool).
     * Host-side only: simulated results are identical either way.
     */
    bool memPool = BufferPool::enabledFromEnv();

    /**
     * Explicit KV workload shape; only consulted when the app is
     * "kv", where it replaces the KvConfig::preset for the scale.
     * Lets benchmarks sweep shard count / skew / phase mix without
     * widening the makeApp signature.
     */
    std::optional<KvConfig> kv;
};

/**
 * Run one experiment. @p nprocs must be one of the standard ladder
 * (1, 2, 4, 8, 12, 16, 24, 32, then 64..1024 in powers of two);
 * csm_pp at 32+ is rejected (no spare CPU for the protocol
 * processor), matching the paper's machine.
 */
ExpResult runExperiment(const std::string& app, ProtocolKind protocol,
                        int nprocs, const RunOpts& opts = {});

/** Sequential baseline (ProtocolKind::None, one processor). */
ExpResult runSequential(const std::string& app, const RunOpts& opts = {});

/** True if the variant supports this processor count. */
bool configSupported(ProtocolKind protocol, int nprocs);

/** Parse a protocol name ("csm_poll", ...). */
ProtocolKind protocolFromName(const std::string& name);

} // namespace mcdsm

#endif // MCDSM_HARNESS_RUNNER_H
