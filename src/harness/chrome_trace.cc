#include "harness/chrome_trace.h"

#include <cstdio>
#include <map>

#include "common/log.h"

namespace mcdsm {

namespace {

/// Virtual-time nanoseconds -> trace-format microseconds.
double
us(Time t)
{
    return static_cast<double>(t) / 1000.0;
}

/// Pseudo-thread id for fault windows of link n (real procs are tids
/// 0..nprocs-1, well below this).
constexpr int kFaultTidBase = 10000;

void
metaEvent(std::string& out, int pid, int tid, const char* what,
          const std::string& name)
{
    out += strprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                     "\"name\":\"%s\","
                     "\"args\":{\"name\":\"%s\"}},\n",
                     pid, tid, what, name.c_str());
}

void
emitRun(std::string& out, const ExpResult& r, int pid)
{
    metaEvent(out, pid, 0, "process_name",
              strprintf("%s/%s/p%d", r.app.c_str(),
                        protocolName(r.protocol), r.nprocs));

    // Host-side allocation profile (src/mem/) as per-site counter
    // samples, so the memory story rides along with the timeline.
    const MemStats& mem = r.stats.mem;
    auto counter = [&](const char* name, auto field) {
        std::string args;
        for (int s = 0; s < kMemSiteCount; ++s) {
            if (!args.empty())
                args += ",";
            args += strprintf(
                "\"%s\":%llu", memSiteName(static_cast<MemSite>(s)),
                (unsigned long long)field(mem.site[s]));
        }
        out += strprintf("{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":0,"
                         "\"name\":\"%s\",\"args\":{%s}},\n",
                         pid, name, args.c_str());
    };
    counter("heap allocs",
            [](const MemSiteStats& s) { return s.heapAllocs; });
    counter("heap bytes",
            [](const MemSiteStats& s) { return s.heapBytes; });
    counter("pool hits",
            [](const MemSiteStats& s) { return s.poolHits; });

    // Serving workloads: one percentile-summary counter per traffic
    // phase (p50/p90/p99/p999 in µs), so the tail story is visible
    // next to the timeline; individual completions stream as samples
    // below (TraceKind::KvRequest).
    int phase_idx = 0;
    for (const PhaseServiceStats& ph : r.stats.service.phases) {
        const LatencyHistogram& h = ph.latency;
        out += strprintf(
            "{\"ph\":\"C\",\"pid\":%d,\"tid\":0,\"ts\":%d,"
            "\"name\":\"kv phase %s latency us\","
            "\"args\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f,"
            "\"p999\":%.3f,\"max\":%.3f}},\n",
            pid, phase_idx++, ph.name.c_str(),
            static_cast<double>(h.p50()) / 1000.0,
            static_cast<double>(h.p90()) / 1000.0,
            static_cast<double>(h.p99()) / 1000.0,
            static_cast<double>(h.p999()) / 1000.0,
            static_cast<double>(h.max()) / 1000.0);
    }

    // Barrier episodes become duration slices; everything else is an
    // instant. A Leave whose Enter was overwritten in the ring is
    // downgraded to an instant so the B/E nesting stays balanced.
    // Ordered map: the close-out loop below writes into the trace
    // JSON, and its byte order must not depend on hash layout.
    std::map<int, int> barrier_depth;
    for (const TraceEvent& e : r.trace) {
        const int tid = e.proc;
        switch (e.kind) {
          case TraceKind::BarrierEnter:
            out += strprintf("{\"ph\":\"B\",\"pid\":%d,\"tid\":%d,"
                             "\"ts\":%.3f,\"name\":\"barrier %llu\"},\n",
                             pid, tid, us(e.time),
                             (unsigned long long)e.arg);
            barrier_depth[tid] += 1;
            break;
          case TraceKind::BarrierLeave:
            if (barrier_depth[tid] > 0) {
                barrier_depth[tid] -= 1;
                out += strprintf("{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,"
                                 "\"ts\":%.3f},\n",
                                 pid, tid, us(e.time));
                break;
            }
            [[fallthrough]];
          case TraceKind::KvRequest:
            if (e.kind == TraceKind::KvRequest) {
                // Completion sample: latency counter keyed by shard.
                out += strprintf(
                    "{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"name\":\"kv request latency us\","
                    "\"args\":{\"shard%d\":%.3f}},\n",
                    pid, tid, us(e.time), e.peer,
                    static_cast<double>(e.arg) / 1000.0);
                break;
            }
            [[fallthrough]];
          default:
            out += strprintf(
                "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                "\"ts\":%.3f,\"name\":\"%s\","
                "\"args\":{\"arg\":%llu,\"peer\":%d}},\n",
                pid, tid, us(e.time), traceKindName(e.kind),
                (unsigned long long)e.arg, e.peer);
        }
    }
    // Close slices left open at the end of the ring.
    for (const auto& [tid, depth] : barrier_depth) {
        for (int i = 0; i < depth; ++i)
            out += strprintf("{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,"
                             "\"ts\":%.3f},\n",
                             pid, tid, us(r.elapsed));
    }

    for (const FaultWindow& w : r.faultWindows) {
        const int tid = kFaultTidBase + w.link;
        metaEvent(out, pid, tid, "thread_name",
                  strprintf("faults link %d", w.link));
        out += strprintf(
            "{\"ph\":\"i\",\"s\":\"p\",\"pid\":%d,\"tid\":%d,"
            "\"ts\":%.3f,\"name\":\"brownout link %d\","
            "\"args\":{\"end_us\":%.3f}},\n",
            pid, tid, us(w.begin), w.link, us(w.end));
    }
}

} // namespace

std::string
chromeTraceJson(const std::vector<ExpResult>& runs)
{
    std::string out = "[\n";
    int pid = 0;
    for (const ExpResult& r : runs)
        emitRun(out, r, pid++);
    // The format tolerates a trailing comma, but not every consumer
    // does; drop it.
    if (out.size() >= 2 && out[out.size() - 2] == ',')
        out.erase(out.size() - 2, 1);
    out += "]\n";
    return out;
}

std::size_t
writeChromeTrace(const std::string& path,
                 const std::vector<ExpResult>& runs)
{
    const std::string json = chromeTraceJson(runs);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        mcdsm_fatal("cannot write trace file '%s'", path.c_str());
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return runs.size();
}

} // namespace mcdsm
