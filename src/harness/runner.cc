#include "harness/runner.h"

#include <cstring>

#include "common/log.h"

namespace mcdsm {

bool
configSupported(ProtocolKind protocol, int nprocs)
{
    switch (nprocs) {
      case 1:
      case 2:
      case 4:
      case 8:
      case 12:
      case 16:
      case 24:
        break;
      case 32:
      case 64:
      case 128:
      case 256:
      case 512:
      case 1024:
        // csm_pp needs a fourth CPU per node for the protocol
        // processor; at 32+ compute processors (all four CPUs of
        // every node populated) there is none.
        if (protocol == ProtocolKind::CsmPp)
            return false;
        break;
      default:
        return false;
    }
    return true;
}

ProtocolKind
protocolFromName(const std::string& name)
{
    static const ProtocolKind kinds[] = {
        ProtocolKind::None,      ProtocolKind::CsmPp,
        ProtocolKind::CsmInt,    ProtocolKind::CsmPoll,
        ProtocolKind::TmkUdpInt, ProtocolKind::TmkMcInt,
        ProtocolKind::TmkMcPoll,
    };
    for (ProtocolKind k : kinds) {
        if (name == protocolName(k))
            return k;
    }
    mcdsm_fatal("unknown protocol '%s'", name.c_str());
}

ExpResult
runExperiment(const std::string& app_name, ProtocolKind protocol,
              int nprocs, const RunOpts& opts)
{
    mcdsm_assert(configSupported(protocol, nprocs),
                 "unsupported configuration %s x %d",
                 protocolName(protocol), nprocs);

    std::unique_ptr<App> app;
    if (opts.kv && app_name == "kv")
        app = std::make_unique<KvApp>(*opts.kv, opts.seed);
    else
        app = makeApp(app_name, opts.scale, opts.seed);

    DsmConfig cfg = opts.base.value_or(DsmConfig{});
    cfg.protocol = protocol;
    cfg.topo = (protocol == ProtocolKind::None) ? Topology(1, 1)
                                                : Topology::standard(nprocs);
    cfg.seed = opts.seed;
    cfg.net = opts.net;
    cfg.raceDetect = opts.raceDetect;
    cfg.checks = opts.checks;
    cfg.schedSeed = opts.schedSeed;
    cfg.schedMaxJitter = opts.schedMaxJitter;
    cfg.simThreads = opts.simThreads;
    cfg.fault = opts.fault;
    cfg.memPool = opts.memPool;
    if (opts.traceCapacity > 0)
        cfg.traceCapacity = opts.traceCapacity;
    // Size the segment to the application, rounded up with headroom.
    std::size_t need = app->sharedBytes() + (1 << 20);
    std::size_t cap = 1 << 20;
    while (cap < need * 2)
        cap <<= 1;
    cfg.maxSharedBytes = cap;

    auto sys = DsmSystem::create(cfg);
    app->configure(*sys);
    sys->run([&](Proc& p) { app->worker(p); });

    ExpResult r;
    r.app = app_name;
    r.protocol = protocol;
    r.nprocs = nprocs;
    r.stats = sys->stats();
    r.elapsed = r.stats.elapsed;
    r.appResult = app->result();
    if (const RaceChecker* rc = sys->runtime().raceChecker()) {
        r.races = rc->raceCount();
        r.raceSummary = rc->summary();
    }
    if (const CheckerSuite* cs = sys->runtime().checks()) {
        r.checkViolations = cs->violations();
        r.checkReport = cs->report();
    }
    if (sys->runtime().trace().enabled())
        r.trace = sys->runtime().trace().events();
    r.faultWindows = sys->runtime().faultWindows(r.elapsed);
    return r;
}

ExpResult
runSequential(const std::string& app_name, const RunOpts& opts)
{
    return runExperiment(app_name, ProtocolKind::None, 1, opts);
}

} // namespace mcdsm
