/**
 * @file
 * Chrome-trace (Perfetto "trace event") export of protocol traces.
 *
 * Renders the TraceRing of one or more runs as the JSON array format
 * understood by chrome://tracing, Perfetto UI and speedscope: one
 * process per run, one thread per simulated processor, barrier
 * episodes as duration (B/E) pairs, every other protocol event as an
 * instant event, and fault brown-out windows (src/fault/) as instant
 * events on a per-link pseudo-thread. Virtual-time nanoseconds map to
 * the format's microsecond timestamps.
 *
 * Bench binaries hook this up behind `--trace-out=FILE`.
 */

#ifndef MCDSM_HARNESS_CHROME_TRACE_H
#define MCDSM_HARNESS_CHROME_TRACE_H

#include <string>
#include <vector>

#include "harness/runner.h"

namespace mcdsm {

/**
 * Render runs as a Chrome-trace JSON string. Runs with an empty
 * trace contribute only their metadata (and any fault windows), so a
 * mixed batch stays valid.
 */
std::string chromeTraceJson(const std::vector<ExpResult>& runs);

/**
 * Write chromeTraceJson() to @p path. Dies (mcdsm_fatal) if the file
 * cannot be written; returns the number of runs exported.
 */
std::size_t writeChromeTrace(const std::string& path,
                             const std::vector<ExpResult>& runs);

} // namespace mcdsm

#endif // MCDSM_HARNESS_CHROME_TRACE_H
