#include "harness/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "common/log.h"

namespace mcdsm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    mcdsm_assert(cells.size() == headers_.size(),
                 "row width %zu != header width %zu", cells.size(),
                 headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

std::string
TextTable::count(std::uint64_t v)
{
    return strprintf("%llu", static_cast<unsigned long long>(v));
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    std::string out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += row[c];
            if (c + 1 < row.size())
                out += std::string(width[c] - row[c].size() + 2, ' ');
        }
        out += "\n";
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + 2;
    out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
    for (const auto& row : rows_)
        emit(row);
    return out;
}

void
TextTable::print() const
{
    std::fputs(toString().c_str(), stdout);
}

} // namespace mcdsm
