/**
 * @file
 * Plain-text table formatting for the benchmark binaries, which print
 * the same rows/series the paper's tables and figures report.
 */

#ifndef MCDSM_HARNESS_TABLE_H
#define MCDSM_HARNESS_TABLE_H

#include <string>
#include <vector>

namespace mcdsm {

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with column alignment. */
    std::string toString() const;

    /** Print to stdout. */
    void print() const;

    static std::string num(double v, int precision = 2);
    static std::string count(std::uint64_t v);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mcdsm

#endif // MCDSM_HARNESS_TABLE_H
