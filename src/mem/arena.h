/**
 * @file
 * Chunked bump allocator. Allocations are never individually freed;
 * the whole arena is released at once when the owning simulation is
 * torn down. Backs the BufferPool slabs and any other per-simulation
 * storage whose lifetime matches the run.
 */

#ifndef MCDSM_MEM_ARENA_H
#define MCDSM_MEM_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "mem/alloc_profiler.h"

namespace mcdsm {

class Arena
{
  public:
    static constexpr std::size_t kDefaultChunkBytes = std::size_t(1) << 20;

    explicit Arena(AllocProfiler* prof = nullptr,
                   std::size_t chunkBytes = kDefaultChunkBytes);

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /**
     * Return `n` bytes aligned to `align` (a power of two). Requests
     * larger than the chunk size get a dedicated chunk.
     */
    void* alloc(std::size_t n, std::size_t align = alignof(std::max_align_t));

    std::size_t chunkCount() const { return chunks_.size(); }
    std::size_t allocatedBytes() const { return allocated_; }

  private:
    struct Chunk
    {
        std::unique_ptr<std::uint8_t[]> data;
        std::size_t cap = 0;
        std::size_t used = 0;
    };

    Chunk& grow(std::size_t atLeast);

    AllocProfiler* prof_;
    std::size_t chunkBytes_;
    std::size_t allocated_ = 0;
    std::vector<Chunk> chunks_;
};

} // namespace mcdsm

#endif // MCDSM_MEM_ARENA_H
