#include "mem/buffer_pool.h"

#include <cstdlib>
#include <cstring>

#include "common/log.h"

namespace mcdsm {

bool
BufferPool::enabledFromEnv()
{
    const char* e = std::getenv("MCDSM_NO_POOL");
    return !(e != nullptr && *e != '\0' && *e != '0');
}

BufferPool::BufferPool(AllocProfiler* prof, bool pooled)
    : prof_(prof), pooled_(pooled),
      arena_(prof, kSlabBlocks * kPageSize)
{
}

BufferPool::~BufferPool()
{
    // Unpooled blocks parked in protocol state (twins, frames) are
    // never individually released; reclaim them so both modes are
    // leak-free. Pooled blocks die with the arena. Destruction order
    // has no observable effect. detlint: allow(unordered-iter)
    for (std::uint8_t* p : heap_live_)
        delete[] p;
}

void
BufferPool::refill()
{
    auto* slab = static_cast<std::uint8_t*>(
        arena_.alloc(kSlabBlocks * kPageSize));
    // LIFO freelist: push in reverse so the first acquire returns the
    // slab's first block (keeps addresses cache-warm and predictable).
    for (std::size_t i = kSlabBlocks; i-- > 0;)
        free_.push_back(slab + i * kPageSize);
    created_ += kSlabBlocks;
}

std::uint8_t*
BufferPool::acquire(MemSite site)
{
    if (serialized_) {
        std::lock_guard<std::mutex> lk(mu_);
        return acquireLocked(site);
    }
    return acquireLocked(site);
}

void
BufferPool::release(std::uint8_t* p, MemSite site)
{
    if (serialized_) {
        std::lock_guard<std::mutex> lk(mu_);
        releaseLocked(p, site);
        return;
    }
    releaseLocked(p, site);
}

void
BufferPool::countLargeHeap(MemSite site, std::size_t n)
{
    if (prof_ == nullptr)
        return;
    if (serialized_) {
        std::lock_guard<std::mutex> lk(mu_);
        prof_->countHeap(site, n);
        return;
    }
    prof_->countHeap(site, n);
}

std::uint8_t*
BufferPool::acquireLocked(MemSite site)
{
    outstanding_ += 1;
    if (!pooled_) {
        auto* p = new std::uint8_t[kPageSize];
        heap_live_.insert(p);
        created_ += 1;
        if (prof_)
            prof_->countHeap(site, kPageSize);
        return p;
    }
    if (free_.empty())
        refill();
    std::uint8_t* p = free_.back();
    free_.pop_back();
    if (prof_)
        prof_->countPoolHit(site);
    return p;
}

void
BufferPool::releaseLocked(std::uint8_t* p, MemSite site)
{
    mcdsm_assert(p != nullptr, "release of null block");
    mcdsm_assert(outstanding_ > 0, "release without acquire");
    outstanding_ -= 1;
    if (prof_)
        prof_->countPoolReturn(site);
    if (!pooled_) {
        heap_live_.erase(p);
        delete[] p;
        return;
    }
    if (poison_)
        std::memset(p, kPoisonByte, kPageSize);
    free_.push_back(p);
}

void
PoolBuf::assign(BufferPool& pool, MemSite site, const std::uint8_t* src,
                std::size_t n)
{
    reset();
    if (n == 0)
        return;
    site_ = site;
    if (n <= kPageSize) {
        pool_ = &pool;
        data_ = pool.acquire(site);
    } else {
        data_ = new std::uint8_t[n];
        pool.countLargeHeap(site, n);
    }
    std::memcpy(data_, src, n);
    size_ = n;
}

void
PoolBuf::reset()
{
    if (data_ != nullptr) {
        if (pool_ != nullptr)
            pool_->release(data_, site_);
        else
            delete[] data_;
    }
    pool_ = nullptr;
    data_ = nullptr;
    size_ = 0;
}

} // namespace mcdsm
