/**
 * @file
 * Host-side allocation accounting for the simulator's memory
 * subsystem (src/mem/).
 *
 * Every Arena chunk, BufferPool block and pooled payload acquisition
 * is attributed to a MemSite and counted here. The counters are
 * *host* observables: they never influence simulated time or protocol
 * behaviour, and a pooled and an unpooled run of the same experiment
 * produce bit-identical RunStats in every field except these.
 *
 * The quantity the perf-smoke CI gate watches is heap allocations per
 * simulated page fault: the twin/diff/page-fetch hot paths each cost
 * a bounded number of pool hits, so once the pools are warm the ratio
 * is small and any regression means fresh heap traffic crept back
 * into a per-fault path.
 */

#ifndef MCDSM_MEM_ALLOC_PROFILER_H
#define MCDSM_MEM_ALLOC_PROFILER_H

#include <cstdint>

namespace mcdsm {

/** Subsystem an allocation is attributed to. */
enum class MemSite : int {
    Frame = 0, ///< page frames: twins, local copies, init/home images
    Message,   ///< mailbox message payloads and queue storage
    Diff,      ///< flat diff buffers
    Other,     ///< arena chunks and everything uncategorised
};
constexpr int kMemSiteCount = 4;

const char* memSiteName(MemSite s);

/** Counters for one MemSite. */
struct MemSiteStats
{
    std::uint64_t heapAllocs = 0; ///< allocations that hit the heap
    std::uint64_t heapBytes = 0;  ///< bytes of those allocations
    std::uint64_t poolHits = 0;   ///< acquisitions served from a freelist
    std::uint64_t poolReturns = 0;///< blocks handed back to a freelist
};

/**
 * Per-run allocation statistics (snapshot of an AllocProfiler).
 * Carried in RunStats; excluded from bit-identity comparisons.
 */
struct MemStats
{
    MemSiteStats site[kMemSiteCount];

    std::uint64_t
    heapAllocs() const
    {
        std::uint64_t n = 0;
        for (const auto& s : site)
            n += s.heapAllocs;
        return n;
    }

    std::uint64_t
    heapBytes() const
    {
        std::uint64_t n = 0;
        for (const auto& s : site)
            n += s.heapBytes;
        return n;
    }

    std::uint64_t
    poolHits() const
    {
        std::uint64_t n = 0;
        for (const auto& s : site)
            n += s.poolHits;
        return n;
    }
};

/**
 * The live counter set. One instance per DsmRuntime (simulations are
 * thread-confined, so plain integers suffice even under --jobs).
 */
class AllocProfiler
{
  public:
    void
    countHeap(MemSite s, std::uint64_t bytes)
    {
        auto& c = stats_.site[static_cast<int>(s)];
        c.heapAllocs += 1;
        c.heapBytes += bytes;
    }

    void
    countPoolHit(MemSite s)
    {
        stats_.site[static_cast<int>(s)].poolHits += 1;
    }

    void
    countPoolReturn(MemSite s)
    {
        stats_.site[static_cast<int>(s)].poolReturns += 1;
    }

    const MemStats& stats() const { return stats_; }

  private:
    MemStats stats_;
};

} // namespace mcdsm

#endif // MCDSM_MEM_ALLOC_PROFILER_H
