/**
 * @file
 * Page-sized buffer pool and the RAII handle protocol code holds
 * pooled buffers through.
 *
 * Ownership rules (DESIGN.md §10):
 *  - The pool (and the Arena backing it) belongs to one DsmRuntime
 *    and is confined to the thread running that simulation; no
 *    locking anywhere.
 *  - Pooled blocks are carved from arena slabs and never returned to
 *    the heap individually; release() pushes them on a freelist for
 *    reuse. Whole-arena teardown reclaims everything, so raw block
 *    pointers parked in protocol state (twins, mapped frames) need
 *    not be individually freed at end of run.
 *  - With pooling disabled (MCDSM_NO_POOL=1, or DsmConfig::memPool =
 *    false) every acquire is a fresh heap allocation and release
 *    frees it — the general-purpose-heap control the pooled-vs-heap
 *    bit-equality matrix and the AllocProfiler comparison run
 *    against. Blocks still outstanding at teardown are reclaimed so
 *    leak checkers stay clean in either mode.
 *  - Released blocks are poisoned (0xDB) in debug builds; every
 *    consumer fully initialises a block before reading it, so poison
 *    never reaches simulated state.
 */

#ifndef MCDSM_MEM_BUFFER_POOL_H
#define MCDSM_MEM_BUFFER_POOL_H

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "mem/alloc_profiler.h"
#include "mem/arena.h"

namespace mcdsm {

class BufferPool
{
  public:
    static constexpr std::uint8_t kPoisonByte = 0xDB;
    /** Blocks carved per arena slab refill. */
    static constexpr std::size_t kSlabBlocks = 16;

    explicit BufferPool(AllocProfiler* prof = nullptr, bool pooled = true);
    ~BufferPool();

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /** A kPageSize block, uninitialised (possibly poisoned). */
    std::uint8_t* acquire(MemSite site);
    /** Return a block obtained from acquire(). */
    void release(std::uint8_t* p, MemSite site);

    bool pooled() const { return pooled_; }
    AllocProfiler* profiler() const { return prof_; }

    /** False when MCDSM_NO_POOL is set to a non-zero value. */
    static bool enabledFromEnv();

    // Test / profiler observables.
    std::size_t freeBlocks() const { return free_.size(); }
    std::uint64_t blocksCreated() const { return created_; }
    std::uint64_t outstanding() const { return outstanding_; }

    void setPoison(bool on) { poison_ = on; }
    bool poisonEnabled() const { return poison_; }

    /**
     * Serialize acquire/release (and profiler counting) behind a
     * mutex. The parallel engine (--sim-threads) shares one runtime —
     * and thus one pool — across host threads; everything else keeps
     * the lock-free thread-confined contract above. Counter updates
     * are commutative, so totals stay deterministic either way.
     */
    void setSerialized(bool on) { serialized_ = on; }

    /** Profiler heap-count for the > kPageSize PoolBuf path, under
     *  the same serialization regime as acquire/release. */
    void countLargeHeap(MemSite site, std::size_t n);

  private:
    void refill();
    std::uint8_t* acquireLocked(MemSite site);
    void releaseLocked(std::uint8_t* p, MemSite site);

    AllocProfiler* prof_;
    bool pooled_;
    bool serialized_ = false;
    std::mutex mu_;
#ifdef NDEBUG
    bool poison_ = false;
#else
    bool poison_ = true;
#endif
    Arena arena_;
    std::vector<std::uint8_t*> free_;
    /** Heap blocks currently outstanding (unpooled mode only). */
    std::unordered_set<std::uint8_t*> heap_live_;
    std::uint64_t created_ = 0;
    std::uint64_t outstanding_ = 0;
};

/**
 * Move-only owner of a pooled (or, past kPageSize, heap) byte buffer;
 * replaces std::vector<uint8_t> for message payloads. Default
 * constructed it is empty and unbound; assign() binds it to a pool.
 */
class PoolBuf
{
  public:
    PoolBuf() = default;

    PoolBuf(PoolBuf&& o) noexcept
        : pool_(o.pool_), data_(o.data_), size_(o.size_), site_(o.site_)
    {
        o.pool_ = nullptr;
        o.data_ = nullptr;
        o.size_ = 0;
    }

    PoolBuf&
    operator=(PoolBuf&& o) noexcept
    {
        if (this != &o) {
            reset();
            pool_ = o.pool_;
            data_ = o.data_;
            size_ = o.size_;
            site_ = o.site_;
            o.pool_ = nullptr;
            o.data_ = nullptr;
            o.size_ = 0;
        }
        return *this;
    }

    PoolBuf(const PoolBuf&) = delete;
    PoolBuf& operator=(const PoolBuf&) = delete;

    ~PoolBuf() { reset(); }

    /** Fill with a copy of [src, src+n); n == 0 just empties. */
    void assign(BufferPool& pool, MemSite site, const std::uint8_t* src,
                std::size_t n);

    const std::uint8_t* data() const { return data_; }
    std::uint8_t* data() { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Release the buffer (back to the pool, or to the heap). */
    void reset();

  private:
    BufferPool* pool_ = nullptr; ///< null + data_: heap-owned (> page)
    std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
    MemSite site_ = MemSite::Message;
};

} // namespace mcdsm

#endif // MCDSM_MEM_BUFFER_POOL_H
