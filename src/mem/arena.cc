#include "mem/arena.h"

#include "common/log.h"

namespace mcdsm {

const char*
memSiteName(MemSite s)
{
    switch (s) {
    case MemSite::Frame:
        return "frame";
    case MemSite::Message:
        return "message";
    case MemSite::Diff:
        return "diff";
    case MemSite::Other:
        return "other";
    }
    return "?";
}

Arena::Arena(AllocProfiler* prof, std::size_t chunkBytes)
    : prof_(prof), chunkBytes_(chunkBytes)
{
    mcdsm_assert(chunkBytes_ > 0, "arena chunk size must be positive");
}

Arena::Chunk&
Arena::grow(std::size_t atLeast)
{
    std::size_t cap = chunkBytes_;
    if (atLeast > cap)
        cap = atLeast;
    Chunk c;
    c.data = std::make_unique<std::uint8_t[]>(cap);
    c.cap = cap;
    allocated_ += cap;
    if (prof_)
        prof_->countHeap(MemSite::Other, cap);
    chunks_.push_back(std::move(c));
    return chunks_.back();
}

void*
Arena::alloc(std::size_t n, std::size_t align)
{
    mcdsm_assert(align != 0 && (align & (align - 1)) == 0 &&
                     align <= alignof(std::max_align_t),
                 "arena alignment must be a power of two <= max_align_t");
    if (n == 0)
        n = 1;
    if (!chunks_.empty()) {
        Chunk& c = chunks_.back();
        std::size_t off = (c.used + align - 1) & ~(align - 1);
        if (off + n <= c.cap) {
            c.used = off + n;
            return c.data.get() + off;
        }
    }
    // new[] returns max_align_t-aligned storage, so a fresh chunk
    // satisfies any supported `align` at offset 0.
    Chunk& c = grow(n);
    c.used = n;
    return c.data.get();
}

} // namespace mcdsm
