#include "cache/cache_model.h"

#include <bit>

#include "common/log.h"

namespace mcdsm {

namespace {

constexpr std::uint64_t kInvalidLine = ~std::uint64_t{0};

bool
isPow2(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheModel::CacheModel(const CacheConfig& cfg, const CostModel& costs)
    : costs_(costs)
{
    mcdsm_assert(isPow2(cfg.lineSize) && isPow2(cfg.l1Bytes) &&
                     isPow2(cfg.l2Bytes),
                 "cache geometry must be power of two");
    mcdsm_assert(cfg.l1Bytes >= cfg.lineSize && cfg.l2Bytes >= cfg.l1Bytes,
                 "bad cache geometry");
    line_shift_ = std::countr_zero(cfg.lineSize);
    const std::size_t l1_sets = cfg.l1Bytes / cfg.lineSize;
    const std::size_t l2_sets = cfg.l2Bytes / cfg.lineSize;
    l1_mask_ = l1_sets - 1;
    l2_mask_ = l2_sets - 1;
    l1_.assign(l1_sets, kInvalidLine);
    l2_.assign(l2_sets, kInvalidLine);
}

Time
CacheModel::touchRange(std::uint64_t addr, std::size_t bytes)
{
    Time total = 0;
    const std::size_t line = std::size_t{1} << line_shift_;
    const std::uint64_t end = addr + bytes;
    for (std::uint64_t a = addr & ~std::uint64_t(line - 1); a < end;
         a += line) {
        total += access(a);
    }
    return total;
}

void
CacheModel::invalidateRange(std::uint64_t addr, std::size_t bytes)
{
    const std::size_t line = std::size_t{1} << line_shift_;
    const std::uint64_t end = addr + bytes;
    for (std::uint64_t a = addr & ~std::uint64_t(line - 1); a < end;
         a += line) {
        const std::uint64_t ln = a >> line_shift_;
        if (l1_[ln & l1_mask_] == ln)
            l1_[ln & l1_mask_] = kInvalidLine;
        if (l2_[ln & l2_mask_] == ln)
            l2_[ln & l2_mask_] = kInvalidLine;
    }
}

} // namespace mcdsm
