/**
 * @file
 * Two-level functional cache timing model for the 21064A.
 *
 * The 21064A has a 16 KB direct-mapped first-level data cache; the
 * AlphaServer 2100 adds a 1 MB direct-mapped board cache per CPU.
 * These sizes matter for the reproduction: the paper traces the large
 * Cashmere losses on LU and Gauss to write doubling pushing the
 * primary working set out of the 16 KB L1 (doubled writes land at an
 * address offset chosen to map to a *different* L1 line), and the
 * Gauss performance jump at 32 processors to the 32 MB/P secondary
 * working set finally fitting in the board cache.
 *
 * The model is a plain direct-mapped tag array per level; an access
 * returns the extra time beyond a first-level hit (which is folded
 * into the per-operation compute cost).
 */

#ifndef MCDSM_CACHE_CACHE_MODEL_H
#define MCDSM_CACHE_CACHE_MODEL_H

#include <cstdint>
#include <vector>

#include "common/costs.h"
#include "common/types.h"

namespace mcdsm {

struct CacheConfig
{
    std::size_t l1Bytes = 16 * 1024;       ///< 21064A L1 D-cache
    std::size_t l2Bytes = 1024 * 1024;     ///< AlphaServer board cache
    std::size_t lineSize = kCacheLineSize; ///< 64 bytes
};

class CacheModel
{
  public:
    CacheModel(const CacheConfig& cfg, const CostModel& costs);

    /**
     * Access one datum at @p addr.
     * @return extra latency (0 on an L1 hit).
     */
    Time
    access(std::uint64_t addr)
    {
        ++accesses_;
        const std::uint64_t line = addr >> line_shift_;
        const std::size_t s1 = line & l1_mask_;
        if (l1_[s1] == line)
            return 0;
        l1_[s1] = line;
        ++l1_misses_;
        const std::size_t s2 = line & l2_mask_;
        if (l2_[s2] == line)
            return costs_.l2HitTime;
        l2_[s2] = line;
        ++l2_misses_;
        return costs_.memTime;
    }

    /**
     * Touch every line in [addr, addr+bytes) — used for page copies,
     * twins and diffs, which stream whole pages through the cache.
     * @return summed extra latency.
     */
    Time touchRange(std::uint64_t addr, std::size_t bytes);

    /** Drop every line of the given range (remote write invalidation). */
    void invalidateRange(std::uint64_t addr, std::size_t bytes);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t l1Misses() const { return l1_misses_; }
    std::uint64_t l2Misses() const { return l2_misses_; }

  private:
    const CostModel& costs_;
    unsigned line_shift_;
    std::size_t l1_mask_;
    std::size_t l2_mask_;
    std::vector<std::uint64_t> l1_;
    std::vector<std::uint64_t> l2_;
    std::uint64_t accesses_ = 0;
    std::uint64_t l1_misses_ = 0;
    std::uint64_t l2_misses_ = 0;
};

} // namespace mcdsm

#endif // MCDSM_CACHE_CACHE_MODEL_H
