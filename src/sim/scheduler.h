/**
 * @file
 * Conservative discrete-event scheduler for fiber tasks.
 *
 * Every task carries its own virtual clock. The scheduler always
 * resumes the runnable task with the smallest clock (ties broken by
 * task id), which gives the conservative-PDES guarantee the DSM
 * protocols rely on: when a task observes shared simulator state at
 * time T, every message that could arrive at or before T has already
 * been delivered, because any not-yet-sent message will be stamped
 * with a sender clock >= T.
 *
 * Blocking is structured as condition-polling:
 *
 *     while (!cond())
 *         sched.block();
 *
 * and wakers call wake(task, t). A wake targeted at a task that is not
 * currently blocked is remembered and consumed by the next block()
 * call, so the wake/block race is benign.
 *
 * Schedule perturbation (perturb()): by default ties between
 * equal-clock runnable tasks are broken FIFO, so every run explores
 * exactly one interleaving. In perturbed mode the tie-break is
 * randomized and a bounded amount of virtual-time jitter is injected
 * at block/wake points. Both draws come from a single seeded Rng, so
 * a schedule is fully reproducible from its seed, and because clocks
 * only ever move forward the conservative-PDES delivery guarantee is
 * preserved: a perturbed run is simply a different legal interleaving.
 */

#ifndef MCDSM_SIM_SCHEDULER_H
#define MCDSM_SIM_SCHEDULER_H

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/types.h"
#include "sim/fiber.h"
#include "sim/rng.h"

namespace mcdsm {

/** Handle identifying a scheduled task. */
using TaskId = int;

class Engine;

class Scheduler
{
  public:
    Scheduler() = default;

    /**
     * Create a task. All tasks must be spawned before run().
     * @param name used in deadlock diagnostics
     * @param fn task body; receives its TaskId
     * @param start initial virtual time
     */
    TaskId spawn(std::string name, std::function<void(TaskId)> fn,
                 Time start = 0);

    /**
     * Run tasks to completion.
     * @return true if every task finished; false on deadlock (some
     *         tasks blocked forever). Deadlocked task names are
     *         available via blockedTasks().
     */
    bool run();

    /** Virtual clock of the current task. Only valid inside a task. */
    Time
    now() const
    {
        return tasks_[cur()]->now;
    }

    /** Virtual clock of any task. */
    Time timeOf(TaskId id) const { return tasks_[id]->now; }

    /** Advance the current task's clock by @p dt (>= 0). */
    void
    advance(Time dt)
    {
        tasks_[cur()]->now += dt;
    }

    /**
     * Yield so that lower-clock runnable tasks can run first. On
     * return the current task is the minimum-clock runnable task.
     */
    void yield();

    /**
     * Block the current task until some wake() arrives. If a wake is
     * already pending, consumes it and returns immediately. The
     * current clock becomes max(now, wake time).
     */
    void block();

    /**
     * Make @p id runnable no earlier than time @p t. Harmless if the
     * task is running or already runnable (the wake is buffered).
     */
    void wake(TaskId id, Time t);

    /**
     * Like wake(), but a no-op unless the task is currently blocked.
     * Use for hints that the woken task re-derives from shared state
     * before blocking again (e.g. mailbox arrivals: every wait loop
     * re-examines its queue and self-arms before blocking).
     */
    void
    wakeIfBlocked(TaskId id, Time t)
    {
        if (tasks_[id]->state == State::Blocked)
            wake(id, t);
    }

    /** TaskId of the currently executing task. */
    TaskId currentTask() const { return cur(); }

    /** Number of spawned tasks. */
    int taskCount() const { return static_cast<int>(tasks_.size()); }

    /** Largest finish time across all finished tasks. */
    Time maxFinishTime() const { return max_finish_; }

    /** Names of tasks still blocked after run() returned false. */
    std::vector<std::string> blockedTasks() const;

    /**
     * One-line deadlock diagnostic naming every still-blocked task.
     * Meaningful after run() returned false.
     */
    std::string deadlockReport() const;

    /**
     * Enable seeded schedule perturbation. Must be called before
     * run(). @p max_jitter bounds the virtual-time jitter (ns)
     * injected at each block/wake point; ties between equal-clock
     * runnable tasks are broken pseudo-randomly. The whole schedule
     * is a deterministic function of @p seed.
     */
    void
    perturb(std::uint64_t seed, Time max_jitter)
    {
        mcdsm_assert(!running_, "perturb() during run()");
        perturb_ = true;
        prng_ = Rng(seed);
        max_jitter_ = max_jitter;
    }

    /** True if perturb() was called. */
    bool perturbed() const { return perturb_; }

    /**
     * Number of yield() calls that took the slow path (switched out
     * through the ready queue). Regression observable for the
     * strictly-earliest fast path: it must be bypassed whenever the
     * schedule is perturbed (each queue pass is a PRNG draw that must
     * stay in the schedule) or an engine is attached (a worker cannot
     * decide "earliest" from its local heap alone).
     */
    std::uint64_t
    yieldSwitches() const
    {
        return yield_switches_.load(std::memory_order_relaxed);
    }

  private:
    friend class Engine;

    enum class State { Runnable, Running, Blocked, Finished };

    struct Task
    {
        std::string name;
        std::unique_ptr<Fiber> fiber;
        Time now = 0;
        State state = State::Runnable;
        /// Buffered wake times (unsorted; usually 0-2 entries).
        std::vector<Time> pendingWakes;
    };

    void makeRunnable(TaskId id);
    void switchOut(State next_state);

    struct ReadyKey
    {
        Time time;
        std::uint64_t seq; ///< FIFO among equal clocks
        TaskId id;

        bool
        operator<(const ReadyKey& o) const
        {
            if (time != o.time)
                return time < o.time;
            if (seq != o.seq)
                return seq < o.seq;
            return id < o.id;
        }
    };

    /**
     * 4-ary min-heap of ReadyKeys backed by one flat vector. The run
     * loop only ever pops the minimum, and (seq, id) makes the key
     * order total, so the pop sequence is identical to iterating the
     * std::set this replaces — with no per-node allocation and a
     * cache-friendly layout (a 4-ary heap keeps siblings in one or
     * two cache lines, halving the depth of the binary version).
     */
    class ReadyHeap
    {
      public:
        bool empty() const { return v_.empty(); }
        std::size_t size() const { return v_.size(); }
        const ReadyKey& minKey() const { return v_.front(); }

        void
        push(const ReadyKey& k)
        {
            v_.push_back(k);
            std::size_t i = v_.size() - 1;
            while (i > 0) {
                const std::size_t parent = (i - 1) / kArity;
                if (!(v_[i] < v_[parent]))
                    break;
                std::swap(v_[i], v_[parent]);
                i = parent;
            }
        }

        ReadyKey
        popMin()
        {
            ReadyKey min = v_.front();
            v_.front() = v_.back();
            v_.pop_back();
            std::size_t i = 0;
            const std::size_t n = v_.size();
            for (;;) {
                const std::size_t first = i * kArity + 1;
                if (first >= n)
                    break;
                std::size_t best = first;
                const std::size_t last = std::min(first + kArity, n);
                for (std::size_t c = first + 1; c < last; ++c) {
                    if (v_[c] < v_[best])
                        best = c;
                }
                if (!(v_[best] < v_[i]))
                    break;
                std::swap(v_[i], v_[best]);
                i = best;
            }
            return min;
        }

      private:
        static constexpr std::size_t kArity = 4;
        std::vector<ReadyKey> v_;
    };

    /** Tie-break rank: FIFO normally, pseudo-random when perturbed. */
    std::uint64_t
    nextSeq()
    {
        return perturb_ ? prng_.next() : ready_seq_++;
    }

    /** Bounded virtual-time jitter (0 unless perturbed). */
    Time
    jitter()
    {
        if (!perturb_ || max_jitter_ <= 0)
            return 0;
        return static_cast<Time>(
            prng_.nextBounded(static_cast<std::uint64_t>(max_jitter_) + 1));
    }

    /**
     * Current task id. In engine mode several host threads each run a
     * task at once, so "current" is thread-local; the legacy run loop
     * keeps the plain member (fibers may migrate between spawning
     * thread and resuming thread, but within the legacy loop both are
     * the same thread).
     */
    TaskId
    cur() const
    {
        return engine_ != nullptr ? tl_current_ : current_;
    }

    std::vector<std::unique_ptr<Task>> tasks_;
    /// Runnable tasks ordered by (clock, insertion order).
    ReadyHeap ready_;
    std::uint64_t ready_seq_ = 0;
    TaskId current_ = -1;
    Time max_finish_ = 0;
    bool running_ = false;

    /// Non-null while Engine::run() executes this scheduler's tasks.
    Engine* engine_ = nullptr;
    static thread_local TaskId tl_current_;

    bool perturb_ = false;
    Rng prng_{0};
    Time max_jitter_ = 0;

    /// Atomic: engine workers yield concurrently (relaxed; a count).
    std::atomic<std::uint64_t> yield_switches_{0};
};

} // namespace mcdsm

#endif // MCDSM_SIM_SCHEDULER_H
