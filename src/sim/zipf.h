/**
 * @file
 * Deterministic Zipfian rank generator.
 *
 * Serving benchmarks draw keys from a Zipf(theta) distribution over n
 * ranks: P(rank k) ∝ 1/(k+1)^theta, rank 0 hottest. Sampling is by
 * inversion of the exact cumulative distribution (precomputed prefix
 * sums, binary search), so the generator is driven by one uniform
 * draw per sample from the simulation Rng — reproducible from the
 * seed, and seed-splittable into per-processor streams with
 * Rng::split like every other random input in the simulator.
 */

#ifndef MCDSM_SIM_ZIPF_H
#define MCDSM_SIM_ZIPF_H

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/log.h"
#include "sim/rng.h"

namespace mcdsm {

class ZipfGenerator
{
  public:
    /**
     * Distribution over ranks [0, n) with skew @p theta >= 0
     * (theta = 0 is uniform; ~0.99 is the classic YCSB hot-spot).
     */
    ZipfGenerator(std::size_t n, double theta, Rng rng)
        : rng_(rng), cdf_(n)
    {
        mcdsm_assert(n > 0, "ZipfGenerator needs at least one rank");
        double sum = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
            cdf_[k] = sum;
        }
        for (std::size_t k = 0; k < n; ++k)
            cdf_[k] /= sum;
        cdf_.back() = 1.0; // guard against rounding
    }

    /** Next rank in [0, n). Advances the embedded Rng by one draw. */
    std::size_t
    next()
    {
        const double u = rng_.nextDouble();
        return static_cast<std::size_t>(
            std::upper_bound(cdf_.begin(), cdf_.end(), u) -
            cdf_.begin());
    }

    std::size_t ranks() const { return cdf_.size(); }

    /** Analytic P(rank <= k), for property tests. */
    double
    cdf(std::size_t k) const
    {
        return k < cdf_.size() ? cdf_[k] : 1.0;
    }

    /** Analytic P(rank == k). */
    double
    probability(std::size_t k) const
    {
        return cdf(k) - (k == 0 ? 0.0 : cdf(k - 1));
    }

  private:
    Rng rng_;
    std::vector<double> cdf_;
};

} // namespace mcdsm

#endif // MCDSM_SIM_ZIPF_H
