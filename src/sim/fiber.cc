#include "sim/fiber.h"

#include <atomic>

#include "common/log.h"

#if MCDSM_TSAN
// Declared here instead of including <sanitizer/tsan_interface.h> so
// the header set does not change between sanitized and plain builds.
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

#if MCDSM_FAST_FIBER
// Switch stacks: save the callee-saved registers on the current
// stack, store the resulting stack pointer through `save`, install
// `restore` as the stack pointer and pop the registers it holds. The
// final ret consumes the return address found on the restored stack —
// either the point where that fiber last called this function, or the
// entry thunk a fresh fiber's stack was primed with.
asm(R"(
    .text
    .align 16
    .globl mcdsm_fiber_switch
    .hidden mcdsm_fiber_switch
    .type mcdsm_fiber_switch, @function
mcdsm_fiber_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    retq
    .size mcdsm_fiber_switch, .-mcdsm_fiber_switch
)");

extern "C" void mcdsm_fiber_switch(void** save, void* restore);
#endif

namespace mcdsm {

namespace {
thread_local Fiber* current_fiber = nullptr;

// Per-thread stack cache. A simulation runs wholly on one thread
// (harness/pool.h confines each experiment to a worker), so stacks
// recycled here are reused by the next simulation on the same thread
// with no synchronisation. Counters are global so benches can report
// reuse across the whole pool.
constexpr std::size_t kMaxCachedStacks = 64;
thread_local std::vector<std::vector<char>> stack_cache;

std::atomic<std::uint64_t> g_stacks_allocated{0};
std::atomic<std::uint64_t> g_stacks_reused{0};

std::vector<char>
takeStack(std::size_t bytes)
{
    for (std::size_t i = stack_cache.size(); i-- > 0;) {
        if (stack_cache[i].size() == bytes) {
            std::vector<char> s = std::move(stack_cache[i]);
            stack_cache.erase(stack_cache.begin() +
                              static_cast<std::ptrdiff_t>(i));
            g_stacks_reused.fetch_add(1, std::memory_order_relaxed);
            return s;
        }
    }
    g_stacks_allocated.fetch_add(1, std::memory_order_relaxed);
    return std::vector<char>(bytes);
}

void
recycleStack(std::vector<char>&& s)
{
    if (stack_cache.size() < kMaxCachedStacks)
        stack_cache.push_back(std::move(s));
}

} // namespace

std::uint64_t
Fiber::stacksAllocated()
{
    return g_stacks_allocated.load(std::memory_order_relaxed);
}

std::uint64_t
Fiber::stacksReused()
{
    return g_stacks_reused.load(std::memory_order_relaxed);
}

Fiber::Fiber(Entry entry, std::size_t stack_bytes)
    : stack_(takeStack(stack_bytes)), entry_(std::move(entry))
{
}

Fiber::~Fiber()
{
#if MCDSM_TSAN
    if (tsan_fiber_)
        __tsan_destroy_fiber(tsan_fiber_);
#endif
    // Destroying an unfinished fiber simply abandons its stack; the
    // scheduler only does this when tearing down a deadlocked run.
    // Either way the stack goes back to this thread's cache.
    recycleStack(std::move(stack_));
}

Fiber*
Fiber::current()
{
    return current_fiber;
}

#if MCDSM_FAST_FIBER

void
Fiber::trampoline()
{
    Fiber* self = current_fiber;
    self->entry_();
    self->finished_ = true;
    mcdsm_fiber_switch(&self->sp_, self->link_sp_);
    mcdsm_panic("resumed a finished fiber");
}

void
Fiber::resume()
{
    mcdsm_assert(!finished_, "resume() on finished fiber");
    mcdsm_assert(current_fiber == nullptr,
                 "nested fiber resume is not supported");

    if (!started_) {
        started_ = true;
        // Prime the stack so the first switch "returns" into the
        // trampoline. Layout from the 16-aligned top: one dummy slot
        // (the trampoline's never-used return address, kept so the
        // trampoline starts with rsp % 16 == 8, exactly the post-call
        // alignment the ABI promises), the trampoline address (the
        // switch's ret target), then six zeroed register slots.
        auto top = reinterpret_cast<std::uintptr_t>(stack_.data() +
                                                    stack_.size());
        top &= ~std::uintptr_t{15};
        auto sp = reinterpret_cast<void**>(top);
        *--sp = nullptr;
        *--sp = reinterpret_cast<void*>(&Fiber::trampoline);
        for (int i = 0; i < 6; ++i)
            *--sp = nullptr;
        sp_ = sp;
    }

    current_fiber = this;
    mcdsm_fiber_switch(&link_sp_, sp_);
    current_fiber = nullptr;
}

void
Fiber::yield()
{
    Fiber* self = current_fiber;
    mcdsm_assert(self != nullptr, "yield() outside any fiber");
    current_fiber = nullptr;
    mcdsm_fiber_switch(&self->sp_, self->link_sp_);
    current_fiber = self;
}

#else // !MCDSM_FAST_FIBER

void
Fiber::trampoline()
{
    Fiber* self = current_fiber;
    self->entry_();
    self->finished_ = true;
    // Return to the resumer; uc_link would also do this, but being
    // explicit keeps the control flow obvious.
#if MCDSM_TSAN
    __tsan_switch_to_fiber(self->tsan_link_, 0);
#endif
    swapcontext(&self->ctx_, &self->link_);
    mcdsm_panic("resumed a finished fiber");
}

void
Fiber::resume()
{
    mcdsm_assert(!finished_, "resume() on finished fiber");
    mcdsm_assert(current_fiber == nullptr,
                 "nested fiber resume is not supported");

    if (!started_) {
        started_ = true;
        if (getcontext(&ctx_) != 0)
            mcdsm_panic("getcontext failed");
        ctx_.uc_stack.ss_sp = stack_.data();
        ctx_.uc_stack.ss_size = stack_.size();
        ctx_.uc_link = &link_;
        makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                    0);
#if MCDSM_TSAN
        tsan_fiber_ = __tsan_create_fiber(0);
#endif
    }

    current_fiber = this;
#if MCDSM_TSAN
    tsan_link_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
    if (swapcontext(&link_, &ctx_) != 0)
        mcdsm_panic("swapcontext into fiber failed");
    current_fiber = nullptr;
}

void
Fiber::yield()
{
    Fiber* self = current_fiber;
    mcdsm_assert(self != nullptr, "yield() outside any fiber");
    current_fiber = nullptr;
#if MCDSM_TSAN
    __tsan_switch_to_fiber(self->tsan_link_, 0);
#endif
    if (swapcontext(&self->ctx_, &self->link_) != 0)
        mcdsm_panic("swapcontext out of fiber failed");
    current_fiber = self;
}

#endif // MCDSM_FAST_FIBER

} // namespace mcdsm
