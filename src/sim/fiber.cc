#include "sim/fiber.h"

#include "common/log.h"

namespace mcdsm {

namespace {
thread_local Fiber* current_fiber = nullptr;
} // namespace

Fiber::Fiber(Entry entry, std::size_t stack_bytes)
    : stack_(stack_bytes), entry_(std::move(entry))
{
}

Fiber::~Fiber()
{
    // Destroying an unfinished fiber simply abandons its stack; the
    // scheduler only does this when tearing down a deadlocked run.
}

Fiber*
Fiber::current()
{
    return current_fiber;
}

void
Fiber::trampoline()
{
    Fiber* self = current_fiber;
    self->entry_();
    self->finished_ = true;
    // Return to the resumer; uc_link would also do this, but being
    // explicit keeps the control flow obvious.
    swapcontext(&self->ctx_, &self->link_);
    mcdsm_panic("resumed a finished fiber");
}

void
Fiber::resume()
{
    mcdsm_assert(!finished_, "resume() on finished fiber");
    mcdsm_assert(current_fiber == nullptr,
                 "nested fiber resume is not supported");

    if (!started_) {
        started_ = true;
        if (getcontext(&ctx_) != 0)
            mcdsm_panic("getcontext failed");
        ctx_.uc_stack.ss_sp = stack_.data();
        ctx_.uc_stack.ss_size = stack_.size();
        ctx_.uc_link = &link_;
        makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline),
                    0);
    }

    current_fiber = this;
    if (swapcontext(&link_, &ctx_) != 0)
        mcdsm_panic("swapcontext into fiber failed");
    current_fiber = nullptr;
}

void
Fiber::yield()
{
    Fiber* self = current_fiber;
    mcdsm_assert(self != nullptr, "yield() outside any fiber");
    current_fiber = nullptr;
    if (swapcontext(&self->ctx_, &self->link_) != 0)
        mcdsm_panic("swapcontext out of fiber failed");
    current_fiber = self;
}

} // namespace mcdsm
