#include "sim/engine.h"

#include <algorithm>
#include <functional>

#include "common/log.h"

namespace mcdsm {

thread_local int Engine::tl_worker_ = -1;

namespace {
constexpr std::uint64_t kNoKey = ~std::uint64_t{0};
} // namespace

Engine::Engine(Scheduler& sched, int workers, Time lookahead)
    : sched_(sched), lookahead_(lookahead),
      workers_(static_cast<std::size_t>(workers))
{
    mcdsm_assert(workers >= 1, "engine needs at least one worker");
    mcdsm_assert(lookahead > 0,
                 "conservative engine needs positive lookahead");
    mcdsm_assert(!sched.perturbed(),
                 "parallel engine excludes schedule perturbation");
}

Engine::~Engine()
{
    mcdsm_assert(threads_.empty(), "engine destroyed mid-run");
}

void
Engine::assignTask(TaskId id, int worker)
{
    mcdsm_assert(worker >= 0 && worker < workerCount(),
                 "bad engine worker index");
    if (static_cast<std::size_t>(id) >= task_worker_.size())
        task_worker_.resize(static_cast<std::size_t>(id) + 1, -1);
    task_worker_[id] = worker;
}

void
Engine::setDrainHook(std::function<void()> drain)
{
    drain_ = std::move(drain);
}

void
Engine::setInitialActive(int n)
{
    active_ = n;
    storm_done_ = false;
}

std::uint64_t
Engine::currentSliceKey() const
{
    mcdsm_assert(tl_worker_ >= 0, "slice key requested off-engine");
    return workers_[tl_worker_].curKey;
}

void
Engine::noteFinish()
{
    mcdsm_assert(tl_worker_ >= 0, "noteFinish off-engine");
    workers_[tl_worker_].pendingFinish += 1;
}

void
Engine::pushReady(TaskId id, Time t)
{
    mcdsm_assert(static_cast<std::size_t>(id) < task_worker_.size() &&
                     task_worker_[id] >= 0,
                 "ready task has no engine worker");
    const int w = task_worker_[id];
    // During an epoch only the owner may touch a worker's heap; a
    // cross-worker wake here would mean some protocol path signals a
    // remote task without going through the (staged) mailbox.
    mcdsm_assert(!in_epoch_ || w == tl_worker_,
                 "cross-worker wake during an engine epoch");
    auto& heap = workers_[w].heap;
    heap.push_back(packKey(t, id));
    std::push_heap(heap.begin(), heap.end(),
                   std::greater<std::uint64_t>());
}

void
Engine::runEpoch(int w, Time horizon)
{
    Worker& wk = workers_[w];
    auto& heap = wk.heap;
    while (!heap.empty() && keyTime(heap.front()) < horizon) {
        std::pop_heap(heap.begin(), heap.end(),
                      std::greater<std::uint64_t>());
        const std::uint64_t key = heap.back();
        heap.pop_back();
        const TaskId id = keyTask(key);
        wk.curKey = key;

        Scheduler::Task& t = *sched_.tasks_[id];
        mcdsm_assert(t.state == Scheduler::State::Runnable,
                     "ready task not runnable");
        mcdsm_assert(t.now == keyTime(key),
                     "task clock moved while queued");
        t.state = Scheduler::State::Running;
        Scheduler::tl_current_ = id;
        t.fiber->resume();
        Scheduler::tl_current_ = -1;

        if (t.fiber->finished())
            t.state = Scheduler::State::Finished;
        // Otherwise switchOut() already re-queued or parked the task.
    }
}

void
Engine::workerMain(int w)
{
    tl_worker_ = w;
    std::uint64_t seen = 0;
    for (;;) {
        Time horizon;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_start_.wait(lk,
                           [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
            horizon = horizon_;
        }
        runEpoch(w, horizon);
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--running_ == 0)
                cv_done_.notify_one();
        }
    }
}

bool
Engine::run()
{
    mcdsm_assert(sched_.engine_ == nullptr && !sched_.running_,
                 "recursive engine run()");
    sched_.engine_ = this;
    sched_.running_ = true;

    // Adopt the tasks spawned through the legacy ready heap. The
    // spawn-time FIFO seq is discarded: the engine's total order is
    // (clock, task id).
    while (!sched_.ready_.empty()) {
        const auto k = sched_.ready_.popMin();
        pushReady(k.id, k.time);
    }

    const int nw = workerCount();
    if (nw > 1) {
        threads_.reserve(static_cast<std::size_t>(nw) - 1);
        for (int w = 1; w < nw; ++w)
            threads_.emplace_back([this, w] { workerMain(w); });
    }
    tl_worker_ = 0;

    for (;;) {
        // Barrier section: workers parked, the coordinator alone may
        // touch any heap, task or mailbox queue.
        if (drain_)
            drain_();

        int finished_now = 0;
        for (Worker& wk : workers_) {
            finished_now += wk.pendingFinish;
            wk.pendingFinish = 0;
        }
        if (finished_now > 0) {
            active_ -= finished_now;
            mcdsm_assert(active_ >= 0, "finish count underflow");
            if (active_ == 0 && !storm_done_) {
                // Shutdown storm: unblock lingering workers (the
                // legacy loop's last finisher does this inline).
                storm_done_ = true;
                for (TaskId id = 0; id < sched_.taskCount(); ++id) {
                    Scheduler::Task& t = *sched_.tasks_[id];
                    if (t.state != Scheduler::State::Finished)
                        sched_.wake(id, t.now);
                }
            }
        }

        std::uint64_t m = kNoKey;
        for (const Worker& wk : workers_) {
            if (!wk.heap.empty())
                m = std::min(m, wk.heap.front());
        }
        if (m == kNoKey)
            break; // no runnable task anywhere; staged is drained

        const Time horizon = keyTime(m) + lookahead_;
        in_epoch_ = true;
        if (nw > 1) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                horizon_ = horizon;
                epoch_ += 1;
                running_ = nw - 1;
            }
            cv_start_.notify_all();
        }
        runEpoch(0, horizon);
        if (nw > 1) {
            std::unique_lock<std::mutex> lk(mu_);
            cv_done_.wait(lk, [&] { return running_ == 0; });
        }
        in_epoch_ = false;
    }

    if (nw > 1) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        cv_start_.notify_all();
        for (std::thread& th : threads_)
            th.join();
        threads_.clear();
    }
    tl_worker_ = -1;

    bool all_finished = true;
    for (const auto& t : sched_.tasks_) {
        if (t->state == Scheduler::State::Finished)
            sched_.max_finish_ = std::max(sched_.max_finish_, t->now);
        else
            all_finished = false;
    }
    sched_.running_ = false;
    sched_.engine_ = nullptr;
    return all_finished;
}

} // namespace mcdsm
