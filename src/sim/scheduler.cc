#include "sim/scheduler.h"

#include <algorithm>

#include "common/log.h"
#include "sim/engine.h"

namespace mcdsm {

thread_local TaskId Scheduler::tl_current_ = -1;

TaskId
Scheduler::spawn(std::string name, std::function<void(TaskId)> fn,
                 Time start)
{
    mcdsm_assert(!running_, "spawn() during run() is not supported");
    TaskId id = static_cast<TaskId>(tasks_.size());
    auto task = std::make_unique<Task>();
    task->name = std::move(name);
    task->now = start;
    task->state = State::Runnable;
    task->fiber = std::make_unique<Fiber>([this, fn, id] { fn(id); });
    tasks_.push_back(std::move(task));
    ready_.push({start, nextSeq(), id});
    return id;
}

bool
Scheduler::run()
{
    mcdsm_assert(!running_, "recursive run()");
    running_ = true;

    while (!ready_.empty()) {
        TaskId id = ready_.popMin().id;

        Task& t = *tasks_[id];
        mcdsm_assert(t.state == State::Runnable, "ready task not runnable");
        t.state = State::Running;
        current_ = id;
        t.fiber->resume();
        current_ = -1;

        if (t.fiber->finished()) {
            t.state = State::Finished;
            max_finish_ = std::max(max_finish_, t.now);
        }
        // Otherwise switchOut() already queued or parked the task.
    }

    running_ = false;
    return std::all_of(tasks_.begin(), tasks_.end(), [](const auto& t) {
        return t->state == State::Finished;
    });
}

void
Scheduler::switchOut(State next_state)
{
    const TaskId me = cur();
    Task& t = *tasks_[me];
    t.state = next_state;
    if (next_state == State::Runnable) {
        if (engine_ != nullptr)
            engine_->pushReady(me, t.now);
        else
            ready_.push({t.now, nextSeq(), me});
    }
    Fiber::yield();
}

void
Scheduler::yield()
{
    mcdsm_assert(cur() >= 0, "yield() outside any task");
    // Fast path: if the current task's clock is strictly below every
    // runnable task's, the run loop would pop it right back — a heap
    // push+pop and two fiber switches for nothing. A fresh push would
    // carry the largest seq, so on a clock tie the queued task runs
    // first and the slow path is required; strictly-below is exact.
    // Perturbed mode always takes the slow path (each queue pass is a
    // jitter/tie-break draw that must stay in the schedule). Engine
    // mode also always takes the slow path: a worker's heap holds only
    // its own tasks, so "strictly below every runnable task" cannot be
    // decided locally — skipping the switch based on the local heap
    // would change slice boundaries with the worker count.
    if (!perturb_ && engine_ == nullptr &&
        (ready_.empty() || tasks_[current_]->now < ready_.minKey().time))
        return;
    yield_switches_.fetch_add(1, std::memory_order_relaxed);
    switchOut(State::Runnable);
}

void
Scheduler::block()
{
    mcdsm_assert(cur() >= 0, "block() outside any task");
    Task& t = *tasks_[cur()];

    // Perturbation point: nudging the blocking task's clock forward
    // reshuffles which task is the minimum when it re-enters the
    // ready queue. Clocks only move forward, so this is always a
    // legal interleaving.
    t.now += jitter();

    if (!t.pendingWakes.empty()) {
        auto it = std::min_element(t.pendingWakes.begin(),
                                   t.pendingWakes.end());
        Time w = *it;
        *it = t.pendingWakes.back();
        t.pendingWakes.pop_back();
        t.now = std::max(t.now, w);
        // Re-enter the ready queue so lower-clock tasks run first.
        switchOut(State::Runnable);
        return;
    }

    switchOut(State::Blocked);
}

void
Scheduler::makeRunnable(TaskId id)
{
    Task& t = *tasks_[id];
    // A finished task must never re-enter the ready queue: resuming
    // its fiber would run past the end of its entry function. wake()
    // filters Finished tasks; this catches any other path.
    mcdsm_assert(t.state != State::Finished && t.state != State::Running,
                 "makeRunnable on %s task '%s'",
                 t.state == State::Finished ? "finished" : "running",
                 t.name.c_str());
    t.state = State::Runnable;
    if (engine_ != nullptr)
        engine_->pushReady(id, t.now);
    else
        ready_.push({t.now, nextSeq(), id});
}

void
Scheduler::wake(TaskId id, Time time)
{
    mcdsm_assert(id >= 0 && id < taskCount(), "wake() on bad task id");
    Task& t = *tasks_[id];

    // Perturbation point: delaying a wake is conservative — the woken
    // task only ever observes state at or after the requested time.
    time += jitter();

    switch (t.state) {
      case State::Finished:
        return;
      case State::Blocked:
        t.now = std::max(t.now, time);
        makeRunnable(id);
        return;
      case State::Running:
      case State::Runnable:
        t.pendingWakes.push_back(time);
        return;
    }
}

std::vector<std::string>
Scheduler::blockedTasks() const
{
    std::vector<std::string> out;
    for (const auto& t : tasks_) {
        if (t->state == State::Blocked)
            out.push_back(t->name);
    }
    return out;
}

std::string
Scheduler::deadlockReport() const
{
    std::string out = "deadlock: blocked tasks:";
    for (const auto& name : blockedTasks())
        out += " " + name;
    return out;
}

} // namespace mcdsm
