/**
 * @file
 * Stackful cooperative fibers.
 *
 * Each simulated processor runs application + protocol code on its own
 * fiber. Fibers are resumed only by the Scheduler, one at a time, so no
 * locking is required anywhere in the simulator.
 *
 * Two switch implementations share one API:
 *
 *  - On x86-64 Linux without sanitizers, a hand-rolled switch saves
 *    the six callee-saved registers plus the stack pointer (the SysV
 *    ABI makes everything else caller-saved across the call). glibc's
 *    swapcontext also saves the signal mask — an rt_sigprocmask
 *    syscall per switch, ~1-2 us — which made context switching the
 *    single largest host cost at 256+ simulated processors (tens of
 *    thousands of switches per run). The simulator never changes the
 *    signal mask or FP control state between fibers, so skipping them
 *    is safe.
 *  - Everywhere else (and under TSan/ASan, whose runtimes understand
 *    ucontext but cannot follow a raw assembly stack swap), the
 *    original ucontext implementation is used.
 */

#ifndef MCDSM_SIM_FIBER_H
#define MCDSM_SIM_FIBER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

// ThreadSanitizer cannot follow ucontext switches on its own: without
// help it sees one OS thread whose stack pointer teleports between
// fiber stacks, and reports false races between fibers that the
// scheduler in fact serialised. When TSan is enabled we tell it about
// every fiber create/switch/destroy through its fiber API, so
// `-fsanitize=thread` builds (the tsan CI job) check the host-level
// ThreadPool paths while fibers stay invisible to the race analysis.
#if defined(__SANITIZE_THREAD__)
#define MCDSM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MCDSM_TSAN 1
#endif
#endif
#ifndef MCDSM_TSAN
#define MCDSM_TSAN 0
#endif

// AddressSanitizer needs the same treatment: its fake-stack and
// stack-poisoning logic is wired into the intercepted ucontext
// functions, so ASan builds keep the ucontext switch path.
#if defined(__SANITIZE_ADDRESS__)
#define MCDSM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MCDSM_ASAN 1
#endif
#endif
#ifndef MCDSM_ASAN
#define MCDSM_ASAN 0
#endif

#if defined(__x86_64__) && defined(__linux__) && !MCDSM_TSAN && !MCDSM_ASAN
#define MCDSM_FAST_FIBER 1
#else
#define MCDSM_FAST_FIBER 0
#include <ucontext.h>
#endif

namespace mcdsm {

/**
 * A stackful coroutine. resume() runs the fiber until it calls yield()
 * or its entry function returns; control then returns to the resumer.
 */
class Fiber
{
  public:
    using Entry = std::function<void()>;

    /**
     * @param entry function executed on the fiber's own stack
     * @param stack_bytes stack size (default 1 MB; Barnes-Hut recursion
     *        is the deepest user)
     */
    explicit Fiber(Entry entry, std::size_t stack_bytes = 1 << 20);
    ~Fiber();

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /** Run the fiber until it yields or finishes. Not reentrant. */
    void resume();

    /** Called from inside a fiber: return control to the resumer. */
    static void yield();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

    /** The fiber currently executing, or nullptr in scheduler context. */
    static Fiber* current();

    /**
     * Host-side stack-cache counters (aggregated across threads).
     * Stacks are recycled through a per-thread cache — simulations
     * are thread-confined, so after the first simulation on a worker
     * thread every spawn reuses a warm stack instead of paying a
     * fresh multi-hundred-KB allocation + first-touch faults.
     */
    static std::uint64_t stacksAllocated();
    static std::uint64_t stacksReused();

  private:
    static void trampoline();

#if MCDSM_FAST_FIBER
    void* sp_ = nullptr;      ///< fiber's saved stack pointer
    void* link_sp_ = nullptr; ///< resumer's saved stack pointer
#else
    ucontext_t ctx_{};
    ucontext_t link_{};
#endif
    std::vector<char> stack_;
    Entry entry_;
    bool started_ = false;
    bool finished_ = false;
#if MCDSM_TSAN
    void* tsan_fiber_ = nullptr; ///< TSan's handle for this fiber
    void* tsan_link_ = nullptr;  ///< TSan fiber of the last resumer
#endif
};

} // namespace mcdsm

#endif // MCDSM_SIM_FIBER_H
