#include "sim/stats.h"

#include <sstream>

namespace mcdsm {

double
StatSet::get(const std::string& name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return values_.find(name) != values_.end();
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [k, v] : other.values_)
        values_[k] += v;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto& [k, v] : values_)
        os << k << " = " << v << "\n";
    return os.str();
}

} // namespace mcdsm
