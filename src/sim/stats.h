/**
 * @file
 * Lightweight named statistics for benches and protocol diagnostics.
 */

#ifndef MCDSM_SIM_STATS_H
#define MCDSM_SIM_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace mcdsm {

/**
 * A set of named scalar counters. Not performance critical; the hot
 * per-processor statistics live in fixed structs (see dsm/stats.h).
 */
class StatSet
{
  public:
    void add(const std::string& name, double v) { values_[name] += v; }
    void set(const std::string& name, double v) { values_[name] = v; }
    double get(const std::string& name) const;
    bool has(const std::string& name) const;

    const std::map<std::string, double>& all() const { return values_; }

    /** Merge another set into this one (summing values). */
    void merge(const StatSet& other);

    /** Render as "name = value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, double> values_;
};

} // namespace mcdsm

#endif // MCDSM_SIM_STATS_H
