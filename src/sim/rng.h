/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64 based).
 *
 * Simulated applications must be reproducible run-to-run, so they use
 * this RNG seeded from their configuration instead of std::random_device.
 */

#ifndef MCDSM_SIM_RNG_H
#define MCDSM_SIM_RNG_H

#include <cstdint>

namespace mcdsm {

/** Small, fast, deterministic PRNG (SplitMix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    nextDouble(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /**
     * Derive an independent stream. The child is seeded from the next
     * parent output remixed with a distinct odd constant, so parent and
     * child sequences do not overlap even for adjacent seeds; repeated
     * split() calls yield mutually independent streams. Advances the
     * parent by one draw.
     */
    Rng
    split()
    {
        std::uint64_t z = next() ^ 0xd6e8feb86659fd93ULL;
        z = (z ^ (z >> 32)) * 0xd6e8feb86659fd93ULL;
        z = z ^ (z >> 32);
        return Rng(z);
    }

  private:
    std::uint64_t state_;
};

} // namespace mcdsm

#endif // MCDSM_SIM_RNG_H
