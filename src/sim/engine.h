/**
 * @file
 * Conservative parallel-discrete-event engine: executes ONE simulation
 * across several host worker threads, bit-identically for every worker
 * count >= 1.
 *
 * The legacy Scheduler::run() loop pops the global minimum (clock,
 * seq, id) and resumes that fiber — one slice at a time. The engine
 * exploits the lookahead the network model guarantees: every
 * cross-node message sent at time T arrives no earlier than T + L,
 * where L = NetworkBackend::minCrossNodeLatency(). Execution proceeds
 * in horizon epochs:
 *
 *   1. Drain: staged cross-node messages from the previous epoch are
 *      delivered in a deterministic global order (sender slice key,
 *      per-sender send index), computing arrivals through the backend
 *      in that same order so its internal state (hub occupancy, fault
 *      jitter draws) evolves identically for every worker count.
 *   2. Horizon: M = min ready key across all workers; H = M.time + L.
 *   3. Epoch: in parallel, every worker runs each of its ready slices
 *      with clock < H, in (clock, task) order. Slices may send:
 *      same-node messages are delivered immediately (sender and
 *      receiver share a worker, because tasks are partitioned by
 *      node), cross-node messages are staged for the next drain.
 *
 * Why this is bit-identical for every N >= 1: within an epoch a slice
 * interacts only with state owned by its own worker (its fiber, its
 * mailbox queue, same-node peers — all functions of the node
 * partition, not of N), plus staging buffers that are merged in a
 * global deterministic order at the barrier. A cross-node message
 * staged during the epoch is stamped >= H (sender clock >= M, arrival
 * >= clock + L >= M + L = H), so delivering it at the next barrier
 * delays no slice that was entitled to observe it — slices below the
 * horizon could not see it in any serial order either. The engine
 * with one worker therefore executes the exact same slice sequence,
 * message order and arrival times as the engine with eight.
 *
 * The engine's canonical order (clock, task id) differs from the
 * legacy loop's (clock, FIFO seq, id) tie-break and from its
 * send-time delivery, so --sim-threads=0 (the legacy loop) is its own
 * mode and all recorded goldens are untouched; invariance is defined
 * and tested as engine-N == engine-1.
 */

#ifndef MCDSM_SIM_ENGINE_H
#define MCDSM_SIM_ENGINE_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "sim/scheduler.h"

namespace mcdsm {

class Engine
{
  public:
    /**
     * @param sched the scheduler owning the task fibers
     * @param workers host threads (>= 1); worker 0 is the calling
     *        thread, workers 1..N-1 are spawned for the run
     * @param lookahead minimum cross-node delivery latency (> 0);
     *        sets the horizon width of every epoch
     */
    Engine(Scheduler& sched, int workers, Time lookahead);
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /** Owner worker of @p id; must be set for every spawned task. */
    void assignTask(TaskId id, int worker);

    /**
     * Hook called at every epoch barrier, before the horizon is
     * recomputed: deliver staged cross-node messages (the mailbox
     * owns the staging buffers; see MailboxSystem::drainStaged).
     */
    void setDrainHook(std::function<void()> drain);

    /** Initial count for the active-worker counter (see noteFinish). */
    void setInitialActive(int n);

    /**
     * Run all tasks to completion (replaces Scheduler::run()).
     * @return true if every task finished; false on deadlock.
     */
    bool run();

    int workerCount() const { return static_cast<int>(workers_.size()); }

    /**
     * Slice key of the slice executing on this thread: the (clock,
     * task) pair under which it was popped, packed. Identifies the
     * slice's position in the engine's canonical total order; the
     * mailbox stamps staged messages with it.
     */
    std::uint64_t currentSliceKey() const;

    /** Worker index of the calling thread (-1 off-engine). */
    static int currentWorker() { return tl_worker_; }

    /**
     * Called by a finishing proc fiber. The decrement is applied at
     * the next barrier, so activeCount() is stable for a whole epoch
     * — every worker observes the same value regardless of how slices
     * interleave across threads in wall-clock time. When the count
     * reaches zero the engine wakes every unfinished task (the
     * shutdown storm the legacy run loop performs inline).
     */
    void noteFinish();

    /** Unfinished proc workers; constant within an epoch. */
    int activeCount() const { return active_; }

    /**
     * Pack a slice key. Task clocks are nanoseconds — 2^47 ns is more
     * than a simulated day — and ids fit 16 bits (<= 1024 procs plus
     * per-node protocol processors).
     */
    static std::uint64_t
    packKey(Time t, TaskId id)
    {
        mcdsm_assert(t >= 0 && t < (Time{1} << 47),
                     "slice clock overflows packed key");
        mcdsm_assert(id >= 0 && id < (1 << 16),
                     "task id overflows packed key");
        return (static_cast<std::uint64_t>(t) << 16) |
               static_cast<std::uint64_t>(id);
    }

    static Time keyTime(std::uint64_t k) { return static_cast<Time>(k >> 16); }
    static TaskId keyTask(std::uint64_t k)
    {
        return static_cast<TaskId>(k & 0xffff);
    }

  private:
    friend class Scheduler;

    struct Worker
    {
        /** Min-heap of packed (clock, task) keys (std::greater). */
        std::vector<std::uint64_t> heap;
        /** Key of the slice this worker is currently executing. */
        std::uint64_t curKey = 0;
        /** Finishes observed this epoch; applied at the barrier. */
        int pendingFinish = 0;
    };

    /** Called via Scheduler (switchOut / makeRunnable) in engine mode. */
    void pushReady(TaskId id, Time t);

    void runEpoch(int w, Time horizon);
    void workerMain(int w);

    Scheduler& sched_;
    Time lookahead_;
    std::vector<Worker> workers_;
    std::vector<int> task_worker_;
    std::function<void()> drain_;

    int active_ = 0;
    bool storm_done_ = false;

    // Epoch barrier for workers 1..N-1 (worker 0 is the coordinator).
    std::mutex mu_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    std::vector<std::thread> threads_;
    std::uint64_t epoch_ = 0;
    Time horizon_ = 0;
    int running_ = 0;
    bool stop_ = false;
    /// True while workers execute an epoch (coordinator-written at
    /// the barrier; guards the cross-worker-wake assertion).
    bool in_epoch_ = false;

    static thread_local int tl_worker_;
};

} // namespace mcdsm

#endif // MCDSM_SIM_ENGINE_H
