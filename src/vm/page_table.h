/**
 * @file
 * Simulated per-processor virtual-memory page table.
 *
 * Both protocols in the paper are "VM-based": they keep coherence by
 * manipulating page protections and catching the resulting faults.
 * This class models exactly that interface: a protection word per
 * shared page, with the DSM runtime dispatching read/write faults into
 * the active protocol and charging the paper's mprotect / fault costs.
 */

#ifndef MCDSM_VM_PAGE_TABLE_H
#define MCDSM_VM_PAGE_TABLE_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mcdsm {

/** Page protection bits. */
enum PageProt : std::uint8_t {
    ProtNone = 0,
    ProtRead = 1,
    ProtWrite = 2,
    ProtRw = ProtRead | ProtWrite,
};

class PageTable
{
  public:
    /** @param pages number of pages in the shared segment. */
    explicit PageTable(std::size_t pages);

    std::size_t pageCount() const { return prot_.size(); }

    bool
    canRead(PageNum pn) const
    {
        return (prot_[pn] & ProtRead) != 0;
    }

    bool
    canWrite(PageNum pn) const
    {
        return (prot_[pn] & ProtWrite) != 0;
    }

    PageProt
    protection(PageNum pn) const
    {
        return static_cast<PageProt>(prot_[pn]);
    }

    /**
     * Change a page's protection. Purely functional — the caller (the
     * protocol) charges the mprotect cost.
     */
    void setProtection(PageNum pn, PageProt p);

    /** Number of setProtection calls (one VM operation each). */
    std::uint64_t protectOps() const { return protect_ops_; }

    /** Pages currently mapped with at least read permission. */
    std::size_t mappedPages() const { return mapped_; }

  private:
    std::vector<std::uint8_t> prot_;
    std::uint64_t protect_ops_ = 0;
    std::size_t mapped_ = 0;
};

} // namespace mcdsm

#endif // MCDSM_VM_PAGE_TABLE_H
