#include "vm/page_table.h"

#include "common/log.h"

namespace mcdsm {

PageTable::PageTable(std::size_t pages)
    : prot_(pages, ProtNone)
{
}

void
PageTable::setProtection(PageNum pn, PageProt p)
{
    mcdsm_assert(pn < prot_.size(), "page number out of range");
    const bool was_mapped = prot_[pn] != ProtNone;
    const bool now_mapped = p != ProtNone;
    if (was_mapped && !now_mapped)
        --mapped_;
    else if (!was_mapped && now_mapped)
        ++mapped_;
    prot_[pn] = static_cast<std::uint8_t>(p);
    ++protect_ops_;
}

} // namespace mcdsm
