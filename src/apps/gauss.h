/**
 * @file
 * Gauss: solver for A X = B by Gaussian elimination and
 * back-substitution (paper §4.2).
 *
 * Rows are distributed cyclically over processors for load balance;
 * a synchronization flag per row announces its availability as a
 * pivot. The secondary working set (the processor's share of the
 * matrix, ~matrixBytes/P) determines when a processor's rows start
 * fitting in the board cache — the source of Cashmere's performance
 * jump at large processor counts in the paper.
 */

#ifndef MCDSM_APPS_GAUSS_H
#define MCDSM_APPS_GAUSS_H

#include "apps/app.h"

namespace mcdsm {

class GaussApp final : public App
{
  public:
    GaussApp(int n, std::uint64_t seed);

    const char* name() const override { return "gauss"; }
    std::string problemDesc() const override;
    std::size_t sharedBytes() const override;

    void configure(DsmSystem& sys) override;
    void worker(Proc& p) override;

  private:
    int n_;
    std::size_t stride_; ///< row stride in doubles (page multiple)
    int np_ = 1;         ///< processors (fixed at configure time)
    std::uint64_t seed_;
    GAddr a_ = 0; ///< n x (n+1) augmented matrix, padded rows
    SharedArray<double> x_;

    /**
     * Physical row of logical row @p i: rows are stored owner-major
     * (each processor's cyclically-assigned rows are contiguous), the
     * usual DSM-friendly layout — first touch then homes each row at
     * its owner and Cashmere's write-through stays node-local.
     */
    std::size_t
    physRow(int i) const
    {
        const int rows_per = (n_ + np_ - 1) / np_;
        return static_cast<std::size_t>(i % np_) * rows_per + i / np_;
    }
};

} // namespace mcdsm

#endif // MCDSM_APPS_GAUSS_H
