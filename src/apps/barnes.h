/**
 * @file
 * Barnes: hierarchical Barnes-Hut N-body simulation (SPLASH-1 style,
 * paper §4.2).
 *
 * The tree is built sequentially (by processor 0) each step; the
 * force phase is parallelized with dynamic load balancing (a shared
 * work counter under a lock). The shared body and cell arrays exhibit
 * fine-grain multi-writer false sharing — the pattern on which the
 * paper finds Cashmere ahead of TreadMarks.
 */

#ifndef MCDSM_APPS_BARNES_H
#define MCDSM_APPS_BARNES_H

#include "apps/app.h"

namespace mcdsm {

class BarnesApp final : public App
{
  public:
    BarnesApp(int bodies, int steps, std::uint64_t seed);

    const char* name() const override { return "barnes"; }
    std::string problemDesc() const override;
    std::size_t sharedBytes() const override;

    void configure(DsmSystem& sys) override;
    void worker(Proc& p) override;

  private:
    void buildTree(Proc& p);
    void computeForce(Proc& p, int body, double theta2);

    int n_;
    int steps_;
    std::uint64_t seed_;
    int cellCap_;

    // Bodies (structure of arrays).
    SharedArray<double> mass_, px_, py_, pz_, vx_, vy_, vz_, ax_, ay_,
        az_;
    // Cells. Leaves hold up to 8 bodies (SPLASH-style leaf capacity);
    // internal cells hold child cells by octant.
    SharedArray<double> cmass_, cmx_, cmy_, cmz_; ///< center of mass
    SharedArray<double> cx_, cy_, cz_, csize_;    ///< spatial bounds
    SharedArray<std::int32_t> child_;             ///< 8 per cell
    SharedArray<std::int32_t> leaf_;              ///< 1 = leaf cell
    SharedArray<std::int32_t> ctl_; ///< [0]=cellCount, [16]=workIndex
    SharedArray<double> sums_;
};

} // namespace mcdsm

#endif // MCDSM_APPS_BARNES_H
