#include "apps/kv.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "sim/rng.h"
#include "sim/zipf.h"

namespace mcdsm {

namespace {

/// SplitMix64 finalizer: the payload-word hash for self-verification.
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Knuth multiplicative hash, used as a rank -> key bijection modulo
/// the key space so the Zipf-hot ranks spread across shards instead of
/// all landing in shard 0.
constexpr std::uint64_t kRankSpread = 2654435761ULL;

/// Exponential inter-arrival gap (ns), at least one tick so the
/// open-loop schedule strictly advances.
Time
expGap(Rng& rng, Time mean)
{
    const double u = rng.nextDouble(); // in [0, 1)
    const double g = -static_cast<double>(mean) * std::log1p(-u);
    return std::max<Time>(1, static_cast<Time>(g));
}

} // namespace

KvConfig
KvConfig::preset(AppScale scale)
{
    KvConfig cfg;
    switch (scale) {
      case AppScale::Tiny:
        cfg.shards = 4;
        cfg.keysPerShard = 64;
        cfg.valueWords = 4;
        cfg.clientStreams = 8;
        cfg.opsPerStream = 30;
        cfg.meanInterArrival = 100 * kMicrosecond;
        break;
      case AppScale::Small:
        cfg.shards = 16;
        cfg.keysPerShard = 512;
        cfg.valueWords = 8;
        cfg.clientStreams = 32;
        cfg.opsPerStream = 200;
        cfg.meanInterArrival = 80 * kMicrosecond;
        break;
      case AppScale::Large:
        cfg.shards = 64;
        cfg.keysPerShard = 2048;
        cfg.valueWords = 8;
        cfg.clientStreams = 64;
        cfg.opsPerStream = 800;
        cfg.meanInterArrival = 60 * kMicrosecond;
        break;
    }
    return cfg;
}

KvApp::KvApp(const KvConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed)
{
    mcdsm_assert(cfg_.shards > 0, "kv: need at least one shard");
    mcdsm_assert(cfg_.keysPerShard > 0, "kv: need at least one key");
    mcdsm_assert(cfg_.valueWords >= 2 &&
                     cfg_.valueWords <= kMaxValueWords,
                 "kv: valueWords must be in [2, %d]", kMaxValueWords);
    mcdsm_assert(cfg_.clientStreams > 0, "kv: need a client stream");
    mcdsm_assert(cfg_.opsPerStream > 0, "kv: need ops per stream");
    mcdsm_assert(!cfg_.phases.empty(), "kv: need a traffic phase");
    for (const KvPhaseSpec& ph : cfg_.phases)
        mcdsm_assert(ph.readPercent >= 0 && ph.readPercent <= 100,
                     "kv: readPercent out of range in phase '%s'",
                     ph.name.c_str());
}

std::uint64_t
KvApp::expectedWord(std::uint32_t gkey, int j, std::int64_t c)
{
    return mix64(static_cast<std::uint64_t>(gkey) * kMaxValueWords +
                 static_cast<std::uint64_t>(j)) ^
           static_cast<std::uint64_t>(c);
}

std::string
KvApp::problemDesc() const
{
    return strprintf("%dx%u keys, %d streams, theta=%.2f", cfg_.shards,
                     cfg_.keysPerShard, cfg_.clientStreams,
                     cfg_.zipfTheta);
}

std::size_t
KvApp::sharedBytes() const
{
    const std::size_t per_shard =
        (static_cast<std::size_t>(cfg_.keysPerShard) * cfg_.valueWords *
             sizeof(std::int64_t) +
         kPageSize - 1) &
        ~(kPageSize - 1);
    return static_cast<std::size_t>(cfg_.shards) * per_shard + kPageSize;
}

void
KvApp::configure(DsmSystem& sys)
{
    const int np = sys.cfg().topo.nprocs;
    mcdsm_assert(cfg_.shards <= sys.cfg().numLocks,
                 "kv: %d shards need %d locks (have %d)", cfg_.shards,
                 cfg_.shards, sys.cfg().numLocks);
    mcdsm_assert(static_cast<int>(cfg_.phases.size()) + 3 <=
                     sys.cfg().numBarriers,
                 "kv: too many phases for %d barriers",
                 sys.cfg().numBarriers);

    const std::size_t words =
        static_cast<std::size_t>(cfg_.keysPerShard) * cfg_.valueWords;
    shardData_.clear();
    shardData_.reserve(cfg_.shards);
    for (int s = 0; s < cfg_.shards; ++s) {
        // One page-aligned region per shard: cross-shard traffic never
        // false-shares a page.
        auto arr = SharedArray<std::int64_t>::allocate(sys, words);
        for (std::uint32_t k = 0; k < cfg_.keysPerShard; ++k) {
            const std::uint32_t gkey = s * cfg_.keysPerShard + k;
            const std::size_t o =
                static_cast<std::size_t>(k) * cfg_.valueWords;
            arr.init(sys, o, 0); // version count starts at 0
            for (int j = 1; j < cfg_.valueWords; ++j)
                arr.init(sys, o + j,
                         static_cast<std::int64_t>(
                             expectedWord(gkey, j, 0)));
        }
        shardData_.push_back(arr);
    }
    errs_ = SharedArray<std::int64_t>::allocate(sys, np);
    for (int i = 0; i < np; ++i)
        errs_.init(sys, i, 0);

    std::vector<std::string> names;
    names.reserve(cfg_.phases.size());
    for (const KvPhaseSpec& ph : cfg_.phases)
        names.push_back(ph.name);
    sys.declareServicePhases(names, cfg_.shards, cfg_.keysPerShard);
}

void
KvApp::worker(Proc& p)
{
    const int np = p.nprocs();
    const int id = p.id();
    const int nphases = static_cast<int>(cfg_.phases.size());
    const std::uint32_t total = cfg_.totalKeys();
    const int W = cfg_.valueWords;

    // Streams are dealt round-robin; every processor derives the full
    // split sequence so stream s gets the same generator no matter
    // which processor serves it.
    Rng root(seed_ ^ 0x6b765f73746f7265ULL); // "kv_store"
    struct Stream
    {
        int sid = 0;
        Rng rng{0};
        // Per-phase generators, rebuilt at each phase entry.
        Rng arrival{0};
        Rng op{0};
        std::unique_ptr<ZipfGenerator> zipf;
        Time next = 0;
        int done = 0;
    };
    std::vector<Stream> mine;
    for (int s = 0; s < cfg_.clientStreams; ++s) {
        Rng r = root.split();
        if (s % np == id) {
            Stream st;
            st.sid = s;
            st.rng = r;
            mine.push_back(std::move(st));
        }
    }

    std::int64_t buf[kMaxValueWords];
    std::int64_t violations = 0;

    for (int ph = 0; ph < nphases; ++ph) {
        const KvPhaseSpec& spec = cfg_.phases[ph];
        p.barrier(ph);

        // Working-set churn: rotate the hot ranks every block of ops.
        const int churn_every =
            std::max(1, cfg_.opsPerStream / 8);

        const Time start = p.now();
        for (Stream& st : mine) {
            st.arrival = st.rng.split();
            Rng zipf_rng = st.rng.split();
            st.op = st.rng.split();
            st.zipf = std::make_unique<ZipfGenerator>(
                total, cfg_.zipfTheta, zipf_rng);
            st.next = start + expGap(st.arrival, cfg_.meanInterArrival);
            st.done = 0;
        }

        int remaining =
            static_cast<int>(mine.size()) * cfg_.opsPerStream;
        while (remaining > 0) {
            p.pollPoint();
            // Serve the owned stream whose next request arrives first
            // (ties broken by stream id, so the order is well defined).
            Stream* st = nullptr;
            for (Stream& c : mine) {
                if (c.done < cfg_.opsPerStream &&
                    (st == nullptr || c.next < st->next))
                    st = &c;
            }
            if (p.now() < st->next)
                p.compute(st->next - p.now());

            const std::uint64_t rank = st->zipf->next();
            std::uint32_t gkey = static_cast<std::uint32_t>(
                (rank * kRankSpread) % total);
            if (spec.churn)
                gkey = static_cast<std::uint32_t>(
                    (gkey + static_cast<std::uint32_t>(
                                st->done / churn_every) *
                                97u) %
                    total);
            const int shard = gkey / cfg_.keysPerShard;
            const std::uint32_t key = gkey % cfg_.keysPerShard;
            const std::size_t off =
                static_cast<std::size_t>(key) * W;
            const bool is_put =
                static_cast<int>(st->op.nextBounded(100)) >=
                spec.readPercent;

            const Time t0 = p.now();
            p.acquire(shard);
            const Time lock_wait = p.now() - t0;

            if (is_put) {
                const std::int64_t c =
                    shardData_[shard].get(p, off) + 1;
                buf[0] = c;
                for (int j = 1; j < W; ++j)
                    buf[j] = static_cast<std::int64_t>(
                        expectedWord(gkey, j, c));
                shardData_[shard].setRange(p, off, buf, W);
            } else {
                shardData_[shard].getRange(p, off, buf, W);
                const std::int64_t c = buf[0];
                for (int j = 1; j < W; ++j) {
                    if (static_cast<std::uint64_t>(buf[j]) !=
                        expectedWord(gkey, j, c))
                        ++violations;
                }
            }
            p.computeOps(150 + 12 * W);
            p.release(shard);

            p.recordRequest(ph, shard, key, is_put,
                            p.now() - st->next, lock_wait,
                            lock_wait > cfg_.contendedWait);
            st->next += expGap(st->arrival, cfg_.meanInterArrival);
            st->done += 1;
            remaining -= 1;
        }
    }

    p.barrier(nphases);
    errs_.set(p, id, violations);
    p.barrier(nphases + 1);

    if (id == 0) {
        // Protocol-invariant checksum: PUT counts are fixed by the
        // client streams, so sum(version * weight(key)) must match
        // across protocols, processor counts and schedules.
        double sum = 0;
        for (int s = 0; s < cfg_.shards; ++s) {
            for (std::uint32_t k = 0; k < cfg_.keysPerShard; ++k) {
                p.pollPoint();
                const std::uint32_t gkey = s * cfg_.keysPerShard + k;
                const std::int64_t c = shardData_[s].get(
                    p, static_cast<std::size_t>(k) * W);
                const double weight =
                    static_cast<double>(mix64(gkey) % 4096 + 1);
                sum += static_cast<double>(c) * weight;
            }
        }
        double errsum = 0;
        for (int i = 0; i < np; ++i)
            errsum += static_cast<double>(errs_.get(p, i));
        result_.checksum = sum;
        result_.aux = errsum; // GET verification failures; must be 0
    }
    p.barrier(nphases + 2);
}

} // namespace mcdsm
