/**
 * @file
 * Application framework: the eight benchmarks of the paper's §4.2,
 * each with a DSM-parallel body that is also the sequential reference
 * when run with ProtocolKind::None on one processor.
 */

#ifndef MCDSM_APPS_APP_H
#define MCDSM_APPS_APP_H

#include <memory>
#include <string>
#include <vector>

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"

namespace mcdsm {

/** Problem-size presets. */
enum class AppScale {
    Tiny,  ///< integration tests: seconds of simulated time
    Small, ///< default benchmark scale (documented in EXPERIMENTS.md)
    Large, ///< closer to the paper's inputs; slow to simulate
};

/** Verification value produced by a run. */
struct AppResult
{
    /** Algorithm-specific checksum; equal across protocols/configs. */
    double checksum = 0.0;
    /** Secondary value (e.g. TSP tour cost, solver residual). */
    double aux = 0.0;
};

/**
 * A benchmark application. Lifecycle:
 *   1. configure(sys) — allocate + initialize shared memory (host side)
 *   2. sys.run([&](Proc& p){ app.worker(p); })
 *   3. result() — verification values (filled in by worker 0)
 */
class App
{
  public:
    virtual ~App() = default;

    virtual const char* name() const = 0;

    /** Human-readable problem size, for Table 2. */
    virtual std::string problemDesc() const = 0;

    /** Shared-memory footprint in bytes, for Table 2. */
    virtual std::size_t sharedBytes() const = 0;

    virtual void configure(DsmSystem& sys) = 0;
    virtual void worker(Proc& p) = 0;

    const AppResult& result() const { return result_; }

  protected:
    AppResult result_;
};

/** The eight applications, in the paper's order. */
extern const char* const kAppNames[8];

/**
 * Factory. @p name is one of kAppNames ("sor", "lu", "water", "tsp",
 * "gauss", "ilink", "em3d", "barnes").
 */
std::unique_ptr<App> makeApp(const std::string& name, AppScale scale,
                             std::uint64_t seed = 1);

} // namespace mcdsm

#endif // MCDSM_APPS_APP_H
