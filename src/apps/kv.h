/**
 * @file
 * KvApp — a sharded key-value / parameter-server workload over the
 * DSM primitives: the repo's ninth application class and its first
 * serving-shaped (rather than SPLASH-shaped) benchmark.
 *
 * N shards each own a page-aligned SharedArray region and a protocol
 * lock. Traffic comes from a fixed population of logical client
 * streams — each a private, seeded sequence of Zipf-skewed requests
 * with exponential open-loop arrivals — dealt round-robin to the
 * processors, which serve their streams in arrival order through
 * read-heavy, write-heavy and mixed-churn phases. Request latency
 * (completion minus scheduled arrival, so queueing delay counts) and
 * per-shard hot-key contention flow into RunStats::service via
 * Proc::recordRequest.
 *
 * PUTs are commutative (a per-key version counter plus words derived
 * from it), so the final store state — and therefore the verification
 * checksum — depends only on *how many* PUTs hit each key, which the
 * client streams fix up front: the checksum is bit-identical across
 * protocol variants, processor counts, schedules and job counts,
 * while GETs verify coherence on every read (any lost update or torn
 * value shows up in AppResult::aux, which must be 0).
 */

#ifndef MCDSM_APPS_KV_H
#define MCDSM_APPS_KV_H

#include <cstdint>
#include <vector>

#include "apps/app.h"

namespace mcdsm {

/** One traffic phase of the serving workload. */
struct KvPhaseSpec
{
    std::string name;
    /** Percentage of requests that are GETs (rest are PUTs). */
    int readPercent = 95;
    /** Rotate the hot key set through the phase (working-set churn). */
    bool churn = false;
};

/** Workload shape; KvConfig::preset gives the standard scales. */
struct KvConfig
{
    int shards = 8;
    std::uint32_t keysPerShard = 256;
    /** 8-byte words per value (>= 2: one version word + payload). */
    int valueWords = 8;
    /**
     * Logical client streams. The request population is a function of
     * (streams, opsPerStream, seed) alone — streams are dealt to
     * processors round-robin, so the stream contents (and hence the
     * checksum) do not change with the processor count.
     */
    int clientStreams = 32;
    /** Requests per client stream per phase. */
    int opsPerStream = 200;
    /** Zipf skew over the key space (0 = uniform). */
    double zipfTheta = 0.9;
    /** Mean open-loop inter-arrival time per client processor. */
    Time meanInterArrival = 100 * kMicrosecond;
    /** Shard-lock waits above this count as contended acquires. */
    Time contendedWait = 100 * kMicrosecond;
    std::vector<KvPhaseSpec> phases = {
        {"read_heavy", 95, false},
        {"write_heavy", 10, false},
        {"mixed_churn", 50, true},
    };

    std::uint32_t
    totalKeys() const
    {
        return static_cast<std::uint32_t>(shards) * keysPerShard;
    }

    static KvConfig preset(AppScale scale);
};

class KvApp : public App
{
  public:
    static constexpr int kMaxValueWords = 64;

    KvApp(const KvConfig& cfg, std::uint64_t seed);

    const char* name() const override { return "kv"; }
    std::string problemDesc() const override;
    std::size_t sharedBytes() const override;
    void configure(DsmSystem& sys) override;
    void worker(Proc& p) override;

    const KvConfig& config() const { return cfg_; }

  private:
    /** Expected payload word @p j of a key whose version count is c. */
    static std::uint64_t expectedWord(std::uint32_t gkey, int j,
                                      std::int64_t c);

    KvConfig cfg_;
    std::uint64_t seed_;

    /** One page-aligned value region per shard (keys x valueWords). */
    std::vector<SharedArray<std::int64_t>> shardData_;
    /** Per-processor GET-verification failure counts. */
    SharedArray<std::int64_t> errs_;
};

} // namespace mcdsm

#endif // MCDSM_APPS_KV_H
