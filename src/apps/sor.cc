#include "apps/sor.h"

#include <algorithm>
#include <vector>

namespace mcdsm {

SorApp::SorApp(int rows, int cols, int iters)
    : rows_(rows), cols_(cols), iters_(iters)
{
}

std::string
SorApp::problemDesc() const
{
    return strprintf("%dx%d, %d iters", rows_, cols_, iters_);
}

std::size_t
SorApp::sharedBytes() const
{
    return static_cast<std::size_t>(rows_) * cols_ * sizeof(double);
}

void
SorApp::configure(DsmSystem& sys)
{
    grid_ = SharedArray<double>::allocate(
        sys, static_cast<std::size_t>(rows_) * cols_);
    sums_ = SharedArray<double>::allocate(
        sys, 64 * static_cast<std::size_t>(
                      std::max(64, sys.cfg().topo.nprocs)));

    // Boundary conditions: hot top edge, cold elsewhere.
    for (int j = 0; j < cols_; ++j)
        grid_.init(sys, j, 1.0);
}

void
SorApp::worker(Proc& p)
{
    const int id = p.id();
    const int np = p.nprocs();
    // Interior rows [1, rows-1) in bands.
    const int interior = rows_ - 2;
    const int lo = 1 + static_cast<int>(
                           static_cast<std::int64_t>(interior) * id / np);
    const int hi = 1 + static_cast<int>(static_cast<std::int64_t>(interior) *
                                        (id + 1) / np);

    auto at = [&](int i, int j) {
        return static_cast<std::size_t>(i) * cols_ + j;
    };

    // Row buffers for the bulk-access fast path. A whole-row read is
    // only safe when no *other* processor is writing cells of that
    // row this phase: our own band rows (any same-proc overlap is
    // program-ordered) and the fixed boundary rows (never written).
    // The rows just outside the band belong to a neighbour that is
    // updating its color cells concurrently, so those stay at element
    // granularity to read exactly the cells the stencil needs.
    std::vector<double> up_row(cols_), mid_row(cols_), down_row(cols_);
    auto wholeRowSafe = [&](int r) {
        return (lo <= r && r < hi) || r < 1 || r >= rows_ - 1;
    };
    auto loadRow = [&](int r, std::vector<double>& buf, int start) {
        if (wholeRowSafe(r)) {
            grid_.getRange(p, at(r, 0), buf.data(),
                           static_cast<std::size_t>(cols_));
        } else {
            for (int j = start; j < cols_ - 1; j += 2)
                buf[static_cast<std::size_t>(j)] = grid_.get(p, at(r, j));
        }
    };

    for (int iter = 0; iter < iters_; ++iter) {
        for (int phase = 0; phase < 2; ++phase) {
            for (int i = lo; i < hi; ++i) {
                p.pollPoint();
                const int start = 1 + ((i + phase) & 1);
                loadRow(i - 1, up_row, start);
                loadRow(i + 1, down_row, start);
                grid_.getRange(p, at(i, 0), mid_row.data(),
                               static_cast<std::size_t>(cols_));
                for (int j = start; j < cols_ - 1; j += 2) {
                    const double up = up_row[j];
                    const double down = down_row[j];
                    const double left = mid_row[j - 1];
                    const double right = mid_row[j + 1];
                    grid_.set(p, at(i, j),
                              0.25 * (up + down + left + right));
                    p.computeOps(6);
                }
            }
            p.barrier(0);
        }
    }

    // Verification: per-proc partial sums, combined by proc 0. The
    // phases are over (barrier-ordered), so whole-row reads are safe.
    double sum = 0;
    for (int i = lo; i < hi; ++i) {
        p.pollPoint();
        grid_.getRange(p, at(i, 0), mid_row.data(),
                       static_cast<std::size_t>(cols_));
        for (int j = 0; j < cols_; ++j)
            sum += mid_row[j];
        p.computeOps(cols_);
    }
    sums_.set(p, static_cast<std::size_t>(id) * 64, sum);
    p.barrier(1);
    if (id == 0) {
        double total = 0;
        for (int q = 0; q < np; ++q)
            total += sums_.get(p, static_cast<std::size_t>(q) * 64);
        result_.checksum = total;
    }
    p.barrier(2);
}

} // namespace mcdsm
