#include "apps/sor.h"

namespace mcdsm {

SorApp::SorApp(int rows, int cols, int iters)
    : rows_(rows), cols_(cols), iters_(iters)
{
}

std::string
SorApp::problemDesc() const
{
    return strprintf("%dx%d, %d iters", rows_, cols_, iters_);
}

std::size_t
SorApp::sharedBytes() const
{
    return static_cast<std::size_t>(rows_) * cols_ * sizeof(double);
}

void
SorApp::configure(DsmSystem& sys)
{
    grid_ = SharedArray<double>::allocate(
        sys, static_cast<std::size_t>(rows_) * cols_);
    sums_ = SharedArray<double>::allocate(sys, 64 * 64);

    // Boundary conditions: hot top edge, cold elsewhere.
    for (int j = 0; j < cols_; ++j)
        grid_.init(sys, j, 1.0);
}

void
SorApp::worker(Proc& p)
{
    const int id = p.id();
    const int np = p.nprocs();
    // Interior rows [1, rows-1) in bands.
    const int interior = rows_ - 2;
    const int lo = 1 + static_cast<int>(
                           static_cast<std::int64_t>(interior) * id / np);
    const int hi = 1 + static_cast<int>(static_cast<std::int64_t>(interior) *
                                        (id + 1) / np);

    auto at = [&](int i, int j) {
        return static_cast<std::size_t>(i) * cols_ + j;
    };

    for (int iter = 0; iter < iters_; ++iter) {
        for (int phase = 0; phase < 2; ++phase) {
            for (int i = lo; i < hi; ++i) {
                p.pollPoint();
                const int start = 1 + ((i + phase) & 1);
                for (int j = start; j < cols_ - 1; j += 2) {
                    const double up = grid_.get(p, at(i - 1, j));
                    const double down = grid_.get(p, at(i + 1, j));
                    const double left = grid_.get(p, at(i, j - 1));
                    const double right = grid_.get(p, at(i, j + 1));
                    grid_.set(p, at(i, j),
                              0.25 * (up + down + left + right));
                    p.computeOps(6);
                }
            }
            p.barrier(0);
        }
    }

    // Verification: per-proc partial sums, combined by proc 0.
    double sum = 0;
    for (int i = lo; i < hi; ++i) {
        p.pollPoint();
        for (int j = 0; j < cols_; ++j)
            sum += grid_.get(p, at(i, j));
        p.computeOps(cols_);
    }
    sums_.set(p, static_cast<std::size_t>(id) * 64, sum);
    p.barrier(1);
    if (id == 0) {
        double total = 0;
        for (int q = 0; q < np; ++q)
            total += sums_.get(p, static_cast<std::size_t>(q) * 64);
        result_.checksum = total;
    }
    p.barrier(2);
}

} // namespace mcdsm
