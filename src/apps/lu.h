/**
 * @file
 * LU: blocked dense LU factorization (SPLASH-2 kernel, paper §4.2).
 *
 * The matrix is stored block-contiguous: each 32x32 block of doubles
 * is exactly one 8 KB page, owned by one processor (2D scatter
 * assignment), which performs all computation on it. The inner loops
 * work on one pivot block plus one target block — a 16 KB primary
 * working set that exactly fits the 21064A's L1 and is blown out by
 * Cashmere's write doubling (the paper's headline LU finding).
 */

#ifndef MCDSM_APPS_LU_H
#define MCDSM_APPS_LU_H

#include "apps/app.h"

namespace mcdsm {

class LuApp final : public App
{
  public:
    LuApp(int n, int block, std::uint64_t seed);

    const char* name() const override { return "lu"; }
    std::string problemDesc() const override;
    std::size_t sharedBytes() const override;

    void configure(DsmSystem& sys) override;
    void worker(Proc& p) override;

  private:
    int owner(int bi, int bj, int nprocs) const;
    GAddr blockAddr(int bi, int bj) const;

    int n_;
    int block_;
    int nb_; ///< blocks per dimension
    std::uint64_t seed_;
    GAddr base_ = 0;
    SharedArray<double> sums_;
};

} // namespace mcdsm

#endif // MCDSM_APPS_LU_H
