#include "apps/gauss.h"

#include <algorithm>
#include <cmath>

namespace mcdsm {

GaussApp::GaussApp(int n, std::uint64_t seed) : n_(n), seed_(seed)
{
    // Rows are padded to a whole number of pages, as with the paper's
    // 2048-double rows (16 KB = two pages): rows never share a page,
    // so row ownership does not create false sharing.
    const std::size_t row_bytes =
        ((n_ + 1) * sizeof(double) + kPageSize - 1) & ~(kPageSize - 1);
    stride_ = row_bytes / sizeof(double);
}

std::string
GaussApp::problemDesc() const
{
    return strprintf("%dx%d", n_, n_);
}

std::size_t
GaussApp::sharedBytes() const
{
    // Owner-major padding can add up to one row per processor.
    return static_cast<std::size_t>(n_ + 32) * stride_ * sizeof(double);
}

void
GaussApp::configure(DsmSystem& sys)
{
    const std::size_t w = stride_;
    np_ = sys.cfg().topo.nprocs;
    a_ = sys.allocPageAligned(sharedBytes());
    x_ = SharedArray<double>::allocate(sys, n_);

    // Diagonally dominant system with known solution x* = 1..n scaled.
    for (int i = 0; i < n_; ++i) {
        const std::size_t pr = physRow(i);
        double rowsum = 0;
        for (int j = 0; j < n_; ++j) {
            double v = ((i * 131 + j * 37) % 1000) / 1000.0;
            if (i == j)
                v += n_;
            rowsum += v * (1.0 + j * 0.001);
            sys.hostStore<double>(
                a_ + (pr * w + j) * sizeof(double), v);
        }
        // b chosen so the exact solution is x_j = 1 + 0.001 j.
        sys.hostStore<double>(a_ + (pr * w + n_) * sizeof(double),
                              rowsum);
    }
}

void
GaussApp::worker(Proc& p)
{
    const int n = n_;
    const std::size_t w = stride_;
    const int np = p.nprocs();
    const int id = p.id();

    auto at = [&](int i, int j) {
        return a_ + (physRow(i) * w + j) * sizeof(double);
    };
    const int ncols = n_ + 1;

    // Elimination: row k's owner normalizes it and raises its flag;
    // everyone then eliminates column k from their own later rows.
    for (int k = 0; k < n; ++k) {
        if (k % np == id) {
            const double pivot = p.read<double>(at(k, k));
            for (int j = k; j < ncols; ++j) {
                p.write<double>(at(k, j),
                                p.read<double>(at(k, j)) / pivot);
            }
            p.computeOps(6 * (ncols - k));
            p.setFlag(k);
        } else {
            p.waitFlag(k);
        }
        for (int i = k + 1; i < n; ++i) {
            if (i % np != id)
                continue;
            p.pollPoint();
            const double f = p.read<double>(at(i, k));
            if (f == 0.0)
                continue;
            for (int j = k; j < ncols; ++j) {
                const double v = p.read<double>(at(i, j)) -
                                 f * p.read<double>(at(k, j));
                p.write<double>(at(i, j), v);
            }
            p.computeOps(6 * (ncols - k));
        }
    }
    p.barrier(0);

    // Back-substitution on processor 0 (serial, as in the paper's
    // description of the algorithm's inherently serial tail).
    if (id == 0) {
        for (int i = n - 1; i >= 0; --i) {
            p.pollPoint();
            double v = p.read<double>(at(i, n));
            for (int j = i + 1; j < n; ++j)
                v -= p.read<double>(at(i, j)) * x_.get(p, j);
            x_.set(p, i, v); // row i is normalized: a[i][i] == 1
            p.computeOps(2 * (n - i));
        }
        double sum = 0;
        double err = 0;
        for (int j = 0; j < n; ++j) {
            const double xj = x_.get(p, j);
            sum += xj;
            const double want = 1.0 + 0.001 * j;
            err = std::max(err, std::abs(xj - want));
        }
        result_.checksum = sum;
        result_.aux = err; // max deviation from the known solution
    }
    p.barrier(1);
}

} // namespace mcdsm
