#include "apps/gauss.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mcdsm {

GaussApp::GaussApp(int n, std::uint64_t seed) : n_(n), seed_(seed)
{
    // Rows are padded to a whole number of pages, as with the paper's
    // 2048-double rows (16 KB = two pages): rows never share a page,
    // so row ownership does not create false sharing.
    const std::size_t row_bytes =
        ((n_ + 1) * sizeof(double) + kPageSize - 1) & ~(kPageSize - 1);
    stride_ = row_bytes / sizeof(double);
}

std::string
GaussApp::problemDesc() const
{
    return strprintf("%dx%d", n_, n_);
}

std::size_t
GaussApp::sharedBytes() const
{
    // Owner-major padding can add up to one row per processor.
    return static_cast<std::size_t>(n_ + 32) * stride_ * sizeof(double);
}

void
GaussApp::configure(DsmSystem& sys)
{
    const std::size_t w = stride_;
    np_ = sys.cfg().topo.nprocs;
    a_ = sys.allocPageAligned(sharedBytes());
    x_ = SharedArray<double>::allocate(sys, n_);

    // Diagonally dominant system with known solution x* = 1..n scaled.
    for (int i = 0; i < n_; ++i) {
        const std::size_t pr = physRow(i);
        double rowsum = 0;
        for (int j = 0; j < n_; ++j) {
            double v = ((i * 131 + j * 37) % 1000) / 1000.0;
            if (i == j)
                v += n_;
            rowsum += v * (1.0 + j * 0.001);
            sys.hostStore<double>(
                a_ + (pr * w + j) * sizeof(double), v);
        }
        // b chosen so the exact solution is x_j = 1 + 0.001 j.
        sys.hostStore<double>(a_ + (pr * w + n_) * sizeof(double),
                              rowsum);
    }
}

void
GaussApp::worker(Proc& p)
{
    const int n = n_;
    const std::size_t w = stride_;
    const int np = p.nprocs();
    const int id = p.id();

    auto at = [&](int i, int j) {
        return a_ + (physRow(i) * w + j) * sizeof(double);
    };
    const int ncols = n_ + 1;

    // Row sweeps are fully contiguous, so they run through the bulk
    // fast path (Proc::readBlock/writeBlock): the active [k, ncols)
    // segments of the pivot row and the target row are read once,
    // updated locally in the same element order, and written back
    // once. Only elements the scalar loop touched are covered, so
    // protocol and race-detector behaviour is unchanged.
    std::vector<double> krow(static_cast<std::size_t>(ncols));
    std::vector<double> irow(static_cast<std::size_t>(ncols));

    // Elimination: row k's owner normalizes it and raises its flag;
    // everyone then eliminates column k from their own later rows.
    for (int k = 0; k < n; ++k) {
        const std::size_t seg = static_cast<std::size_t>(ncols - k);
        if (k % np == id) {
            p.readBlock<double>(at(k, k), krow.data(), seg);
            const double pivot = krow[0];
            for (std::size_t j = 0; j < seg; ++j)
                krow[j] /= pivot;
            p.writeBlock<double>(at(k, k), krow.data(), seg);
            p.computeOps(6 * (ncols - k));
            p.setFlag(k);
        } else {
            p.waitFlag(k);
        }
        for (int i = k + 1; i < n; ++i) {
            if (i % np != id)
                continue;
            p.pollPoint();
            const double f = p.read<double>(at(i, k));
            if (f == 0.0)
                continue;
            p.readBlock<double>(at(i, k), irow.data(), seg);
            p.readBlock<double>(at(k, k), krow.data(), seg);
            for (std::size_t j = 0; j < seg; ++j)
                irow[j] -= f * krow[j];
            p.writeBlock<double>(at(i, k), irow.data(), seg);
            p.computeOps(6 * (ncols - k));
        }
    }
    p.barrier(0);

    // Back-substitution on processor 0 (serial, as in the paper's
    // description of the algorithm's inherently serial tail).
    if (id == 0) {
        for (int i = n - 1; i >= 0; --i) {
            p.pollPoint();
            const std::size_t tail = static_cast<std::size_t>(n - i);
            // irow holds a[i][i+1 .. n]: the solved coefficients plus
            // the right-hand side as its last element.
            p.readBlock<double>(at(i, i + 1), irow.data(), tail);
            double v = irow[tail - 1];
            for (int j = i + 1; j < n; ++j)
                v -= irow[j - (i + 1)] * x_.get(p, j);
            x_.set(p, i, v); // row i is normalized: a[i][i] == 1
            p.computeOps(2 * (n - i));
        }
        double sum = 0;
        double err = 0;
        for (int j = 0; j < n; ++j) {
            const double xj = x_.get(p, j);
            sum += xj;
            const double want = 1.0 + 0.001 * j;
            err = std::max(err, std::abs(xj - want));
        }
        result_.checksum = sum;
        result_.aux = err; // max deviation from the known solution
    }
    p.barrier(1);
}

} // namespace mcdsm
