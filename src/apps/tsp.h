/**
 * @file
 * TSP: branch-and-bound traveling salesman (paper §4.2).
 *
 * Unsolved partial tours live in a shared priority queue protected by
 * a lock; updates to the best tour are protected by a second lock.
 * Tours within dfsTail cities of completion are solved by local
 * depth-first search, which keeps queue tasks coarse. The search is
 * nondeterministic in schedule but the optimal cost is unique, so the
 * checksum (best cost) is exact across protocols and processor counts.
 */

#ifndef MCDSM_APPS_TSP_H
#define MCDSM_APPS_TSP_H

#include "apps/app.h"

namespace mcdsm {

class TspApp final : public App
{
  public:
    TspApp(int cities, int dfs_tail, std::uint64_t seed);

    const char* name() const override { return "tsp"; }
    std::string problemDesc() const override;
    std::size_t sharedBytes() const override;

    void configure(DsmSystem& sys) override;
    void worker(Proc& p) override;

    static constexpr int kMaxCities = 16;
    static constexpr int kPoolCap = 1 << 15;

  private:
    struct Ctl; // shared-control field offsets

    int n_;
    int dfsTail_; ///< solve the last dfsTail_ cities by local DFS
    std::uint64_t seed_;
    std::vector<int> dist_host_; ///< host copy for init

    SharedArray<std::int32_t> dist_;
    SharedArray<std::int32_t> minEdge_;
    SharedArray<std::int32_t> nodeCost_;   ///< per pool node
    SharedArray<std::int32_t> nodeBound_;
    SharedArray<std::int32_t> nodeLen_;
    SharedArray<std::int32_t> nodeNext_;   ///< freelist link
    SharedArray<std::int8_t> nodePath_;    ///< kMaxCities per node
    SharedArray<std::int32_t> heap_;       ///< node ids, min-heap
    SharedArray<std::int32_t> ctl_;        ///< heapSize, freeHead, ...
};

} // namespace mcdsm

#endif // MCDSM_APPS_TSP_H
