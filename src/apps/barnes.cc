#include "apps/barnes.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace mcdsm {

namespace {
// child_ slot encoding: 0 = empty, b+1 = body b, -(c+1) = cell c.
inline std::int32_t
encodeBody(int b)
{
    return b + 1;
}

inline std::int32_t
encodeCell(int c)
{
    return -(c + 1);
}

constexpr int kWorkLock = 0;
constexpr std::size_t kCellCount = 0;
constexpr std::size_t kWorkIndex = 16;
constexpr int kChunk = 128;
constexpr double kTheta = 0.6;
constexpr double kDt = 0.005;
constexpr double kSoft2 = 0.05;
} // namespace

BarnesApp::BarnesApp(int bodies, int steps, std::uint64_t seed)
    : n_(bodies), steps_(steps), seed_(seed), cellCap_(4 * bodies)
{
}

std::string
BarnesApp::problemDesc() const
{
    return strprintf("%d bodies, %d steps", n_, steps_);
}

std::size_t
BarnesApp::sharedBytes() const
{
    return static_cast<std::size_t>(n_) * 10 * sizeof(double) +
           static_cast<std::size_t>(cellCap_) *
               (8 * sizeof(double) + 8 * 4);
}

void
BarnesApp::configure(DsmSystem& sys)
{
    auto allocBodies = [&](SharedArray<double>& a) {
        a = SharedArray<double>::allocate(sys, n_);
    };
    allocBodies(mass_);
    allocBodies(px_);
    allocBodies(py_);
    allocBodies(pz_);
    allocBodies(vx_);
    allocBodies(vy_);
    allocBodies(vz_);
    allocBodies(ax_);
    allocBodies(ay_);
    allocBodies(az_);

    auto allocCells = [&](SharedArray<double>& a) {
        a = SharedArray<double>::allocate(sys, cellCap_);
    };
    allocCells(cmass_);
    allocCells(cmx_);
    allocCells(cmy_);
    allocCells(cmz_);
    allocCells(cx_);
    allocCells(cy_);
    allocCells(cz_);
    allocCells(csize_);
    child_ = SharedArray<std::int32_t>::allocate(
        sys, static_cast<std::size_t>(cellCap_) * 8);
    leaf_ = SharedArray<std::int32_t>::allocate(sys, cellCap_);
    ctl_ = SharedArray<std::int32_t>::allocate(sys, 64);
    sums_ = SharedArray<double>::allocate(
        sys, 64 * static_cast<std::size_t>(
                      std::max(64, sys.cfg().topo.nprocs)));

    // Plummer-ish sphere of bodies.
    Rng rng(seed_);
    for (int i = 0; i < n_; ++i) {
        mass_.init(sys, i, 1.0 / n_);
        double x, y, z;
        do {
            x = rng.nextDouble(-1, 1);
            y = rng.nextDouble(-1, 1);
            z = rng.nextDouble(-1, 1);
        } while (x * x + y * y + z * z > 1.0);
        px_.init(sys, i, x);
        py_.init(sys, i, y);
        pz_.init(sys, i, z);
        vx_.init(sys, i, 0.1 * y);
        vy_.init(sys, i, -0.1 * x);
        vz_.init(sys, i, 0.01 * z);
    }
}

void
BarnesApp::buildTree(Proc& p)
{
    // Bounding cube.
    double maxc = 0;
    for (int i = 0; i < n_; ++i) {
        p.pollPoint();
        maxc = std::max({maxc, std::abs(px_.get(p, i)),
                         std::abs(py_.get(p, i)),
                         std::abs(pz_.get(p, i))});
    }
    p.computeOps(4 * n_);
    const double half = maxc * 1.01 + 1e-9;

    // Root cell (leaf until it overflows).
    auto clearCell = [&](int c) {
        for (int k = 0; k < 8; ++k)
            child_.set(p, static_cast<std::size_t>(c) * 8 + k, 0);
    };
    cx_.set(p, 0, 0.0);
    cy_.set(p, 0, 0.0);
    cz_.set(p, 0, 0.0);
    csize_.set(p, 0, half);
    leaf_.set(p, 0, 1);
    clearCell(0);
    int cell_count = 1;

    auto octant = [&](int c, double x, double y, double z) {
        int o = 0;
        if (x >= cx_.get(p, c))
            o |= 1;
        if (y >= cy_.get(p, c))
            o |= 2;
        if (z >= cz_.get(p, c))
            o |= 4;
        return o;
    };
    auto newLeafChild = [&](int c, int o) {
        mcdsm_assert(cell_count < cellCap_, "cell pool exhausted");
        const int nc = cell_count++;
        const double h = csize_.get(p, c) / 2;
        cx_.set(p, nc, cx_.get(p, c) + ((o & 1) ? h : -h));
        cy_.set(p, nc, cy_.get(p, c) + ((o & 2) ? h : -h));
        cz_.set(p, nc, cz_.get(p, c) + ((o & 4) ? h : -h));
        csize_.set(p, nc, h);
        leaf_.set(p, nc, 1);
        clearCell(nc);
        child_.set(p, static_cast<std::size_t>(c) * 8 + o,
                   encodeCell(nc));
        p.computeOps(20);
        return nc;
    };

    // Insert each body; leaves hold up to 8 bodies before splitting.
    for (int b = 0; b < n_; ++b) {
        p.pollPoint();
        const double x = px_.get(p, b);
        const double y = py_.get(p, b);
        const double z = pz_.get(p, b);
        int c = 0;
        for (;;) {
            p.computeOps(12);
            if (leaf_.get(p, c) == 0) {
                const int o = octant(c, x, y, z);
                const std::int32_t v =
                    child_.get(p, static_cast<std::size_t>(c) * 8 + o);
                if (v == 0) {
                    const int nc = newLeafChild(c, o);
                    child_.set(p, static_cast<std::size_t>(nc) * 8,
                               encodeBody(b));
                    break;
                }
                c = -v - 1;
                continue;
            }
            // Leaf: place in a free slot if any.
            int free_slot = -1;
            std::int32_t occupants[8];
            for (int k = 0; k < 8; ++k) {
                occupants[k] =
                    child_.get(p, static_cast<std::size_t>(c) * 8 + k);
                if (occupants[k] == 0 && free_slot < 0)
                    free_slot = k;
            }
            if (free_slot >= 0) {
                child_.set(p,
                           static_cast<std::size_t>(c) * 8 + free_slot,
                           encodeBody(b));
                break;
            }
            // Overflow: convert to internal and redistribute.
            leaf_.set(p, c, 0);
            clearCell(c);
            for (int k = 0; k < 8; ++k) {
                const int ob = occupants[k] - 1;
                const int o = octant(c, px_.get(p, ob), py_.get(p, ob),
                                     pz_.get(p, ob));
                const std::int32_t w =
                    child_.get(p, static_cast<std::size_t>(c) * 8 + o);
                int lc = (w == 0) ? newLeafChild(c, o) : (-w - 1);
                for (int s = 0; s < 8; ++s) {
                    const std::size_t slot =
                        static_cast<std::size_t>(lc) * 8 + s;
                    if (child_.get(p, slot) == 0) {
                        child_.set(p, slot, encodeBody(ob));
                        break;
                    }
                }
                p.computeOps(20);
            }
            // Retry the insertion from this (now internal) cell.
        }
    }
    ctl_.set(p, kCellCount, cell_count);

    // Centers of mass, bottom-up (cells are created parents-first, so
    // a reverse sweep sees children before parents).
    for (int c = cell_count - 1; c >= 0; --c) {
        p.pollPoint();
        double m = 0, sx = 0, sy = 0, sz = 0;
        for (int k = 0; k < 8; ++k) {
            const std::int32_t v =
                child_.get(p, static_cast<std::size_t>(c) * 8 + k);
            if (v == 0)
                continue;
            double bm, bx, by, bz;
            if (v > 0) {
                const int b = v - 1;
                bm = mass_.get(p, b);
                bx = px_.get(p, b);
                by = py_.get(p, b);
                bz = pz_.get(p, b);
            } else {
                const int cc = -v - 1;
                bm = cmass_.get(p, cc);
                bx = cmx_.get(p, cc);
                by = cmy_.get(p, cc);
                bz = cmz_.get(p, cc);
            }
            m += bm;
            sx += bm * bx;
            sy += bm * by;
            sz += bm * bz;
        }
        cmass_.set(p, c, m);
        cmx_.set(p, c, m > 0 ? sx / m : 0.0);
        cmy_.set(p, c, m > 0 ? sy / m : 0.0);
        cmz_.set(p, c, m > 0 ? sz / m : 0.0);
        p.computeOps(40);
    }
}

void
BarnesApp::computeForce(Proc& p, int body, double theta2)
{
    const double x = px_.get(p, body);
    const double y = py_.get(p, body);
    const double z = pz_.get(p, body);
    double fx = 0, fy = 0, fz = 0;

    std::vector<std::int32_t> stack;
    stack.push_back(encodeCell(0));
    while (!stack.empty()) {
        const std::int32_t v = stack.back();
        stack.pop_back();
        double m, bx, by, bz;
        bool open = false;
        int cell = -1;
        if (v > 0) {
            const int b = v - 1;
            if (b == body)
                continue;
            m = mass_.get(p, b);
            bx = px_.get(p, b);
            by = py_.get(p, b);
            bz = pz_.get(p, b);
        } else {
            cell = -v - 1;
            m = cmass_.get(p, cell);
            bx = cmx_.get(p, cell);
            by = cmy_.get(p, cell);
            bz = cmz_.get(p, cell);
        }
        const double dx = bx - x;
        const double dy = by - y;
        const double dz = bz - z;
        const double r2 = dx * dx + dy * dy + dz * dz + kSoft2;
        if (cell >= 0) {
            const double s = csize_.get(p, cell) * 2;
            open = (s * s) > theta2 * r2;
        }
        p.computeOps(15);
        if (open) {
            for (int k = 0; k < 8; ++k) {
                const std::int32_t w = child_.get(
                    p, static_cast<std::size_t>(cell) * 8 + k);
                if (w != 0)
                    stack.push_back(w);
            }
        } else {
            const double inv = m / (r2 * std::sqrt(r2));
            fx += inv * dx;
            fy += inv * dy;
            fz += inv * dz;
            p.computeOps(80);
        }
    }
    ax_.set(p, body, fx);
    ay_.set(p, body, fy);
    az_.set(p, body, fz);
}

void
BarnesApp::worker(Proc& p)
{
    const int np = p.nprocs();
    const int id = p.id();
    const double theta2 = kTheta * kTheta;

    for (int step = 0; step < steps_; ++step) {
        if (id == 0) {
            buildTree(p);
            ctl_.set(p, kWorkIndex, 0);
        }
        p.barrier(0);

        // Force phase: dynamic chunks off a shared counter.
        for (;;) {
            p.pollPoint();
            p.acquire(kWorkLock);
            const int start = ctl_.get(p, kWorkIndex);
            ctl_.set(p, kWorkIndex, start + kChunk);
            p.release(kWorkLock);
            if (start >= n_)
                break;
            const int end = std::min(n_, start + kChunk);
            for (int b = start; b < end; ++b) {
                p.pollPoint();
                computeForce(p, b, theta2);
            }
        }
        p.barrier(1);

        // Integration: static bands.
        const int lo =
            static_cast<int>(static_cast<std::int64_t>(n_) * id / np);
        const int hi = static_cast<int>(
            static_cast<std::int64_t>(n_) * (id + 1) / np);
        for (int b = lo; b < hi; ++b) {
            p.pollPoint();
            const double nvx = vx_.get(p, b) + ax_.get(p, b) * kDt;
            const double nvy = vy_.get(p, b) + ay_.get(p, b) * kDt;
            const double nvz = vz_.get(p, b) + az_.get(p, b) * kDt;
            vx_.set(p, b, nvx);
            vy_.set(p, b, nvy);
            vz_.set(p, b, nvz);
            px_.set(p, b, px_.get(p, b) + nvx * kDt);
            py_.set(p, b, py_.get(p, b) + nvy * kDt);
            pz_.set(p, b, pz_.get(p, b) + nvz * kDt);
            p.computeOps(12);
        }
        p.barrier(2);
    }

    // Verification checksum over positions.
    const int lo = static_cast<int>(static_cast<std::int64_t>(n_) * id / np);
    const int hi =
        static_cast<int>(static_cast<std::int64_t>(n_) * (id + 1) / np);
    double sum = 0;
    for (int b = lo; b < hi; ++b) {
        p.pollPoint();
        sum += px_.get(p, b) + py_.get(p, b) + pz_.get(p, b);
    }
    sums_.set(p, static_cast<std::size_t>(id) * 64, sum);
    p.barrier(3);
    if (id == 0) {
        double total = 0;
        for (int q = 0; q < np; ++q)
            total += sums_.get(p, static_cast<std::size_t>(q) * 64);
        result_.checksum = total;
    }
    p.barrier(4);
}

} // namespace mcdsm
