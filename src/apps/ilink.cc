#include "apps/ilink.h"

#include <vector>

#include "sim/rng.h"

namespace mcdsm {

IlinkApp::IlinkApp(int arrays, int array_len, int nonzeros, int iters,
                   std::uint64_t seed)
    : arrays_(arrays), len_(array_len), nonzeros_(nonzeros),
      iters_(iters), seed_(seed)
{
    mcdsm_assert(nonzeros <= array_len, "sparsity exceeds array length");
}

std::string
IlinkApp::problemDesc() const
{
    return strprintf("%d arrays x %d (%d nonzero), %d iters", arrays_,
                     len_, nonzeros_, iters_);
}

std::size_t
IlinkApp::sharedBytes() const
{
    return static_cast<std::size_t>(arrays_) * len_ * sizeof(double) +
           static_cast<std::size_t>(arrays_) * nonzeros_ * 4;
}

void
IlinkApp::configure(DsmSystem& sys)
{
    pool_ = SharedArray<double>::allocate(
        sys, static_cast<std::size_t>(arrays_) * len_);
    idx_ = SharedArray<std::int32_t>::allocate(
        sys, static_cast<std::size_t>(arrays_) * nonzeros_);
    total_ = SharedArray<double>::allocate(sys, 64);

    Rng rng(seed_);
    for (int a = 0; a < arrays_; ++a) {
        // Distinct sparse support per array: one position per stride
        // window, so no two nonzeros collide (each element has
        // exactly one writer).
        std::vector<std::int32_t> support;
        const std::uint32_t stride = len_ / nonzeros_;
        for (int k = 0; k < nonzeros_; ++k) {
            support.push_back(static_cast<std::int32_t>(
                k * stride + rng.nextBounded(stride)));
        }
        for (int k = 0; k < nonzeros_; ++k) {
            idx_.init(sys, static_cast<std::size_t>(a) * nonzeros_ + k,
                      support[k]);
            pool_.init(sys,
                       static_cast<std::size_t>(a) * len_ + support[k],
                       rng.nextDouble(0.1, 1.0));
        }
    }
}

void
IlinkApp::worker(Proc& p)
{
    const int np = p.nprocs();
    const int id = p.id();

    double genescale = 1.0;
    for (int iter = 0; iter < iters_; ++iter) {
        // Parallel phase: the master assigns each array's nonzero
        // entries to processors in equal contiguous runs (balanced,
        // and each page ends up with only one or two writers — the
        // sparse-page pattern the paper attributes Ilink's behavior
        // to).
        const int chunk = (nonzeros_ + np - 1) / np;
        for (int a = 0; a < arrays_; ++a) {
            p.pollPoint();
            for (int k = 0; k < nonzeros_; ++k) {
                if (k / chunk != id)
                    continue;
                const std::int32_t pos = idx_.get(
                    p, static_cast<std::size_t>(a) * nonzeros_ + k);
                const std::size_t e =
                    static_cast<std::size_t>(a) * len_ + pos;
                const double v = pool_.get(p, e);
                // A recombination-likelihood kernel is thousands of
                // floating-point operations per genotype entry.
                const double nv =
                    0.5 * v + 0.25 * v * v + 0.1 * genescale;
                pool_.set(p, e, nv);
                p.computeOps(6000);
            }
        }
        p.barrier(0);

        // Serial component: the master sums all contributions and
        // publishes a normalization factor for the next round.
        if (id == 0) {
            double sum = 0;
            for (int a = 0; a < arrays_; ++a) {
                p.pollPoint();
                for (int k = 0; k < nonzeros_; ++k) {
                    const std::int32_t pos = idx_.get(
                        p, static_cast<std::size_t>(a) * nonzeros_ + k);
                    sum += pool_.get(
                        p, static_cast<std::size_t>(a) * len_ + pos);
                }
                p.computeOps(2 * nonzeros_);
            }
            total_.set(p, 0, sum);
        }
        p.barrier(1);
        genescale = 1.0 / (1.0 + total_.get(p, 0) /
                                     (arrays_ * nonzeros_));
    }

    if (id == 0)
        result_.checksum = total_.get(p, 0);
    p.barrier(2);
}

} // namespace mcdsm
