#include "apps/water.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace mcdsm {

WaterApp::WaterApp(int molecules, int steps, std::uint64_t seed)
    : n_(molecules), steps_(steps), seed_(seed)
{
}

std::string
WaterApp::problemDesc() const
{
    return strprintf("%d molecules, %d steps", n_, steps_);
}

std::size_t
WaterApp::sharedBytes() const
{
    return static_cast<std::size_t>(n_) * 9 * sizeof(double);
}

void
WaterApp::configure(DsmSystem& sys)
{
    pos_ = SharedArray<double>::allocate(sys, 3 * n_);
    vel_ = SharedArray<double>::allocate(sys, 3 * n_);
    force_ = SharedArray<double>::allocate(sys, 3 * n_);
    sums_ = SharedArray<double>::allocate(
        sys, 64 * static_cast<std::size_t>(
                      std::max(64, sys.cfg().topo.nprocs)));

    Rng rng(seed_);
    const double box = std::cbrt(static_cast<double>(n_)) * 3.0;
    for (int i = 0; i < 3 * n_; ++i) {
        pos_.init(sys, i, rng.nextDouble(0.0, box));
        vel_.init(sys, i, rng.nextDouble(-0.1, 0.1));
        force_.init(sys, i, 0.0);
    }
}

void
WaterApp::worker(Proc& p)
{
    const int np = p.nprocs();
    const int id = p.id();
    const int lo = static_cast<int>(static_cast<std::int64_t>(n_) * id / np);
    const int hi =
        static_cast<int>(static_cast<std::int64_t>(n_) * (id + 1) / np);

    const double dt = 1e-3;
    std::vector<double> local(3 * n_);

    for (int step = 0; step < steps_; ++step) {
        // Phase 1: pairwise forces, accumulated locally. Processor q
        // handles pairs (i, j) with i in its chunk, j > i.
        std::fill(local.begin(), local.end(), 0.0);
        for (int i = lo; i < hi; ++i) {
            p.pollPoint();
            const double xi = pos_.get(p, 3 * i);
            const double yi = pos_.get(p, 3 * i + 1);
            const double zi = pos_.get(p, 3 * i + 2);
            for (int j = i + 1; j < n_; ++j) {
                const double dx = pos_.get(p, 3 * j) - xi;
                const double dy = pos_.get(p, 3 * j + 1) - yi;
                const double dz = pos_.get(p, 3 * j + 2) - zi;
                const double r2 = dx * dx + dy * dy + dz * dz + 0.01;
                const double f = 1.0 / (r2 * r2); // short-range repulsion
                local[3 * i] -= f * dx;
                local[3 * i + 1] -= f * dy;
                local[3 * i + 2] -= f * dz;
                local[3 * j] += f * dx;
                local[3 * j + 1] += f * dy;
                local[3 * j + 2] += f * dz;
            }
            p.computeOps(300 * (n_ - i - 1));
        }

        // Phase 2: merge local contributions into the shared force
        // vectors under per-processor-chunk locks (migratory data).
        // Pairs (i, j) with i in our chunk and j > i only touch
        // molecules in chunks >= ours; visit those in ascending order
        // (a natural pipeline across processors).
        for (int q = id; q < np; ++q) {
            const int qlo =
                static_cast<int>(static_cast<std::int64_t>(n_) * q / np);
            const int qhi = static_cast<int>(
                static_cast<std::int64_t>(n_) * (q + 1) / np);
            p.pollPoint();
            p.acquire(q);
            for (int i = 3 * qlo; i < 3 * qhi; ++i) {
                if (local[i] != 0.0) {
                    force_.set(p, i, force_.get(p, i) + local[i]);
                    p.computeOps(2);
                }
            }
            p.release(q);
        }
        p.barrier(0);

        // Phase 3: integrate our own chunk; zero forces for next step.
        for (int i = 3 * lo; i < 3 * hi; ++i) {
            p.pollPoint();
            const double f = force_.get(p, i);
            const double v = vel_.get(p, i) + f * dt;
            vel_.set(p, i, v);
            pos_.set(p, i, pos_.get(p, i) + v * dt);
            force_.set(p, i, 0.0);
            p.computeOps(6);
        }
        p.barrier(1);
    }

    // Verification: position checksum.
    double sum = 0;
    for (int i = 3 * lo; i < 3 * hi; ++i)
        sum += pos_.get(p, i);
    sums_.set(p, static_cast<std::size_t>(id) * 64, sum);
    p.barrier(2);
    if (id == 0) {
        double total = 0;
        for (int q = 0; q < np; ++q)
            total += sums_.get(p, static_cast<std::size_t>(q) * 64);
        result_.checksum = total;
    }
    p.barrier(3);
}

} // namespace mcdsm
