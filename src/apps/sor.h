/**
 * @file
 * SOR: Red-Black Successive Over-Relaxation for PDEs (paper §4.2).
 *
 * The grid is divided into roughly equal bands of rows per processor;
 * communication occurs across band boundaries; processors synchronize
 * with barriers after each half-sweep.
 */

#ifndef MCDSM_APPS_SOR_H
#define MCDSM_APPS_SOR_H

#include "apps/app.h"

namespace mcdsm {

class SorApp final : public App
{
  public:
    SorApp(int rows, int cols, int iters);

    const char* name() const override { return "sor"; }
    std::string problemDesc() const override;
    std::size_t sharedBytes() const override;

    void configure(DsmSystem& sys) override;
    void worker(Proc& p) override;

  private:
    int rows_;
    int cols_;
    int iters_;
    SharedArray<double> grid_;
    SharedArray<double> sums_; ///< one partial sum per proc (page apart)
};

} // namespace mcdsm

#endif // MCDSM_APPS_SOR_H
