/**
 * @file
 * Em3d: electromagnetic wave propagation through 3D objects
 * (paper §4.2, after Culler et al.).
 *
 * A bipartite graph of electric and magnetic field nodes; each node's
 * potential is updated from its dependents' potentials in alternating
 * half-steps separated by barriers. With the standard input, a node's
 * dependencies fall on its own or neighboring processors only.
 */

#ifndef MCDSM_APPS_EM3D_H
#define MCDSM_APPS_EM3D_H

#include "apps/app.h"

namespace mcdsm {

class Em3dApp final : public App
{
  public:
    /**
     * @param nodes field nodes per class (E and H)
     * @param degree dependencies per node
     * @param remote_pct percentage of edges crossing to a neighbor
     *        processor's region
     */
    Em3dApp(int nodes, int degree, int remote_pct, int iters,
            std::uint64_t seed);

    const char* name() const override { return "em3d"; }
    std::string problemDesc() const override;
    std::size_t sharedBytes() const override;

    void configure(DsmSystem& sys) override;
    void worker(Proc& p) override;

  private:
    int n_;
    int degree_;
    int remotePct_;
    int iters_;
    std::uint64_t seed_;
    SharedArray<double> eval_;
    SharedArray<double> hval_;
    SharedArray<std::int32_t> edep_; ///< degree_ H-indices per E node
    SharedArray<std::int32_t> hdep_; ///< degree_ E-indices per H node
    SharedArray<double> weights_;
    SharedArray<double> sums_;
};

} // namespace mcdsm

#endif // MCDSM_APPS_EM3D_H
