#include "apps/tsp.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace mcdsm {

namespace {
// ctl_ slots (kept a cache line apart to limit false sharing churn).
constexpr std::size_t kHeapSize = 0;
constexpr std::size_t kFreeHead = 16;
constexpr std::size_t kInFlight = 32;
constexpr std::size_t kBestCost = 48;
// Locks.
constexpr int kQueueLock = 0;
constexpr int kBestLock = 1;
} // namespace

TspApp::TspApp(int cities, int dfs_tail, std::uint64_t seed)
    : n_(cities), dfsTail_(dfs_tail), seed_(seed)
{
    mcdsm_assert(cities <= kMaxCities, "too many cities");
}

std::string
TspApp::problemDesc() const
{
    return strprintf("%d cities", n_);
}

std::size_t
TspApp::sharedBytes() const
{
    return kPoolCap * (4 * sizeof(std::int32_t) + kMaxCities) +
           kPoolCap * sizeof(std::int32_t) +
           n_ * n_ * sizeof(std::int32_t);
}

void
TspApp::configure(DsmSystem& sys)
{
    dist_ = SharedArray<std::int32_t>::allocate(sys, n_ * n_);
    minEdge_ = SharedArray<std::int32_t>::allocate(sys, n_);
    nodeCost_ = SharedArray<std::int32_t>::allocate(sys, kPoolCap);
    nodeBound_ = SharedArray<std::int32_t>::allocate(sys, kPoolCap);
    nodeLen_ = SharedArray<std::int32_t>::allocate(sys, kPoolCap);
    nodeNext_ = SharedArray<std::int32_t>::allocate(sys, kPoolCap);
    nodePath_ = SharedArray<std::int8_t>::allocate(
        sys, static_cast<std::size_t>(kPoolCap) * kMaxCities);
    heap_ = SharedArray<std::int32_t>::allocate(sys, kPoolCap);
    ctl_ = SharedArray<std::int32_t>::allocate(sys, 64);

    // Random euclidean-ish instance (integer distances, symmetric).
    Rng rng(seed_);
    std::vector<int> x(n_), y(n_);
    for (int i = 0; i < n_; ++i) {
        x[i] = static_cast<int>(rng.nextBounded(1000));
        y[i] = static_cast<int>(rng.nextBounded(1000));
    }
    dist_host_.assign(n_ * n_, 0);
    for (int i = 0; i < n_; ++i) {
        for (int j = 0; j < n_; ++j) {
            const double dx = x[i] - x[j];
            const double dy = y[i] - y[j];
            const int d = static_cast<int>(std::sqrt(dx * dx + dy * dy));
            dist_host_[i * n_ + j] = d;
            dist_.init(sys, i * n_ + j, d);
        }
    }
    for (int i = 0; i < n_; ++i) {
        int best = 1 << 28;
        for (int j = 0; j < n_; ++j) {
            if (j != i)
                best = std::min(best, dist_host_[i * n_ + j]);
        }
        minEdge_.init(sys, i, best);
    }

    // Freelist: node i -> i+1; root tour (city 0) at node 0.
    for (int i = 0; i < kPoolCap; ++i)
        nodeNext_.init(sys, i, i + 1 < kPoolCap ? i + 1 : -1);
    nodeCost_.init(sys, 0, 0);
    nodeLen_.init(sys, 0, 1);
    nodePath_.init(sys, 0, 0); // path[0] = city 0
    nodeBound_.init(sys, 0, 0);
    heap_.init(sys, 0, 0);
    ctl_.init(sys, kHeapSize, 1);
    ctl_.init(sys, kFreeHead, 1);
    ctl_.init(sys, kInFlight, 0);

    // Seed the incumbent with a greedy nearest-neighbour tour so
    // pruning is effective from the start (standard branch-and-bound
    // practice; without it the parallel search wastes its first
    // moments expanding hopeless subtrees).
    {
        std::uint32_t visited = 1;
        int last = 0, greedy = 0;
        for (int step = 1; step < n_; ++step) {
            int best_c = -1, best_d = 1 << 28;
            for (int c = 1; c < n_; ++c) {
                if ((visited & (1u << c)) == 0 &&
                    dist_host_[last * n_ + c] < best_d) {
                    best_d = dist_host_[last * n_ + c];
                    best_c = c;
                }
            }
            greedy += best_d;
            visited |= 1u << best_c;
            last = best_c;
        }
        greedy += dist_host_[last * n_];
        ctl_.init(sys, kBestCost, greedy + 1);
    }
}

void
TspApp::worker(Proc& p)
{
    const int n = n_;

    // The distance matrix and min-edge vector are read-only shared
    // data: read them once (the pages replicate to this processor)
    // and keep private copies for the hot search loops, as the real
    // application's cached reads would.
    std::vector<int> dist(n * n), min_edge(n);
    for (int i = 0; i < n * n; ++i)
        dist[i] = dist_.get(p, i * 1);
    for (int i = 0; i < n; ++i)
        min_edge[i] = minEdge_.get(p, i);
    auto d = [&](int i, int j) { return dist[i * n + j]; };

    // --- shared min-heap helpers (caller holds kQueueLock) -------------
    auto heap_less = [&](int a, int b) {
        const int ba = nodeBound_.get(p, a);
        const int bb = nodeBound_.get(p, b);
        if (ba != bb)
            return ba < bb;
        return a < b;
    };
    auto heap_push = [&](int node) {
        int sz = ctl_.get(p, kHeapSize);
        heap_.set(p, sz, node);
        int i = sz;
        while (i > 0) {
            const int parent = (i - 1) / 2;
            const int hi = heap_.get(p, i);
            const int hp = heap_.get(p, parent);
            if (!heap_less(hi, hp))
                break;
            heap_.set(p, i, hp);
            heap_.set(p, parent, hi);
            i = parent;
        }
        ctl_.set(p, kHeapSize, sz + 1);
        p.computeOps(50);
    };
    auto heap_pop = [&]() {
        int sz = ctl_.get(p, kHeapSize);
        const int top = heap_.get(p, 0);
        --sz;
        heap_.set(p, 0, heap_.get(p, sz));
        ctl_.set(p, kHeapSize, sz);
        int i = 0;
        for (;;) {
            const int l = 2 * i + 1;
            const int r = 2 * i + 2;
            int m = i;
            if (l < sz && heap_less(heap_.get(p, l), heap_.get(p, m)))
                m = l;
            if (r < sz && heap_less(heap_.get(p, r), heap_.get(p, m)))
                m = r;
            if (m == i)
                break;
            const int tmp = heap_.get(p, i);
            heap_.set(p, i, heap_.get(p, m));
            heap_.set(p, m, tmp);
            i = m;
        }
        p.computeOps(50);
        return top;
    };
    auto pool_alloc = [&]() {
        const int head = ctl_.get(p, kFreeHead);
        if (head < 0)
            return -1; // pool exhausted: caller solves the child inline
        ctl_.set(p, kFreeHead, nodeNext_.get(p, head));
        return head;
    };
    auto pool_free = [&](int node) {
        nodeNext_.set(p, node, ctl_.get(p, kFreeHead));
        ctl_.set(p, kFreeHead, node);
    };

    // --- bound: cost so far + min outgoing edge per remaining city.
    // Charged as an O(n^2) computation: production branch-and-bound
    // codes use reduced-cost-matrix bounds of that strength.
    auto lower_bound = [&](int cost, std::uint32_t visited, int last) {
        int b = cost + min_edge[last];
        for (int c = 0; c < n; ++c) {
            if (!(visited & (1u << c)))
                b += min_edge[c];
        }
        p.computeOps(2 * n * n);
        return b;
    };

    // --- exhaustive DFS over the last kDfsTail cities -------------------
    // The incumbent bound is refreshed with deliberately racy reads
    // throughout: a stale bound only weakens pruning, and the final
    // update is re-checked under kBestLock.
    int best_seen = ctl_.getRacy(p, kBestCost);
    std::int64_t dfs_nodes = 0;
    std::int8_t path[kMaxCities];
    auto dfs = [&](auto&& self, int cost, std::uint32_t visited, int last,
                   int len) -> void {
        if (((++dfs_nodes) & 0xfff) == 0) {
            p.pollPoint();
            best_seen = ctl_.getRacy(p, kBestCost); // racy refresh: prune only
        }
        if (cost >= best_seen)
            return;
        if (len == n) {
            const int total = cost + d(last, 0);
            if (total < best_seen) {
                p.acquire(kBestLock);
                if (total < ctl_.get(p, kBestCost))
                    ctl_.set(p, kBestCost, total);
                best_seen = ctl_.get(p, kBestCost);
                p.release(kBestLock);
            }
            return;
        }
        for (int c = 1; c < n; ++c) {
            if (visited & (1u << c))
                continue;
            const int step = d(last, c);
            if (cost + step >= best_seen)
                continue;
            self(self, cost + step, visited | (1u << c), c, len + 1);
        }
        p.computeOps(2 * n * n);
    };

    // --- main branch-and-bound loop --------------------------------------
    for (;;) {
        p.pollPoint();
        p.acquire(kQueueLock);
        const int sz = ctl_.get(p, kHeapSize);
        if (sz == 0) {
            const int in_flight = ctl_.get(p, kInFlight);
            p.release(kQueueLock);
            if (in_flight == 0)
                break;
            p.compute(2 * kMillisecond); // back off before retrying
            continue;
        }
        const int node = heap_pop();
        ctl_.set(p, kInFlight, ctl_.get(p, kInFlight) + 1);
        // Copy the task out of the pool while holding the lock.
        const int cost = nodeCost_.get(p, node);
        const int len = nodeLen_.get(p, node);
        for (int i = 0; i < len; ++i)
            path[i] = nodePath_.get(p, node * kMaxCities + i);
        pool_free(node);
        p.release(kQueueLock);

        best_seen = ctl_.getRacy(p, kBestCost);
        std::uint32_t visited = 0;
        for (int i = 0; i < len; ++i)
            visited |= 1u << path[i];
        const int last = path[len - 1];

        if (n - len <= dfsTail_) {
            dfs(dfs, cost, visited, last, len);
        } else {
            // Expand one level; queue all surviving children under a
            // single lock tenure.
            int child_city[kMaxCities];
            int child_cost[kMaxCities];
            int child_bound[kMaxCities];
            int nchildren = 0;
            for (int c = 1; c < n; ++c) {
                if (visited & (1u << c))
                    continue;
                const int ncost = cost + d(last, c);
                const int nbound =
                    lower_bound(ncost, visited | (1u << c), c);
                if (nbound >= best_seen)
                    continue;
                child_city[nchildren] = c;
                child_cost[nchildren] = ncost;
                child_bound[nchildren] = nbound;
                ++nchildren;
            }
            if (nchildren > 0) {
                p.acquire(kQueueLock);
                for (int k = 0; k < nchildren; ++k) {
                    const int child = pool_alloc();
                    if (child < 0) {
                        p.release(kQueueLock);
                        dfs(dfs, child_cost[k],
                            visited | (1u << child_city[k]),
                            child_city[k], len + 1);
                        p.acquire(kQueueLock);
                        continue;
                    }
                    nodeCost_.set(p, child, child_cost[k]);
                    nodeBound_.set(p, child, child_bound[k]);
                    nodeLen_.set(p, child, len + 1);
                    for (int i = 0; i < len; ++i)
                        nodePath_.set(p, child * kMaxCities + i, path[i]);
                    nodePath_.set(p, child * kMaxCities + len,
                                  static_cast<std::int8_t>(child_city[k]));
                    heap_push(child);
                }
                p.release(kQueueLock);
            }
        }

        p.acquire(kQueueLock);
        ctl_.set(p, kInFlight, ctl_.get(p, kInFlight) - 1);
        p.release(kQueueLock);
    }

    p.barrier(0);
    if (p.id() == 0)
        result_.checksum = ctl_.get(p, kBestCost);
    p.barrier(1);
}

} // namespace mcdsm
