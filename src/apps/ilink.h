/**
 * @file
 * Ilink: genetic linkage analysis (FASTLINK kernel, paper §4.2).
 *
 * We do not have the proprietary CLP pedigree input, so this is a
 * synthetic workload with the same structure (documented in
 * DESIGN.md): the main shared data is a pool of *sparse* arrays of
 * genotype probabilities; a master processor assigns individual array
 * elements to processors round-robin for load balance; after each
 * parallel update phase the master sums the contributions (the
 * inherent serial component). Only a small part of each page is
 * modified between synchronizations, which is exactly the pattern
 * that favors TreadMarks diffs over Cashmere whole-page fetches.
 */

#ifndef MCDSM_APPS_ILINK_H
#define MCDSM_APPS_ILINK_H

#include "apps/app.h"

namespace mcdsm {

class IlinkApp final : public App
{
  public:
    IlinkApp(int arrays, int array_len, int nonzeros, int iters,
             std::uint64_t seed);

    const char* name() const override { return "ilink"; }
    std::string problemDesc() const override;
    std::size_t sharedBytes() const override;

    void configure(DsmSystem& sys) override;
    void worker(Proc& p) override;

  private:
    int arrays_;
    int len_;
    int nonzeros_;
    int iters_;
    std::uint64_t seed_;
    SharedArray<double> pool_;       ///< arrays_ x len_ probabilities
    SharedArray<std::int32_t> idx_;  ///< nonzero positions per array
    SharedArray<double> total_;
};

} // namespace mcdsm

#endif // MCDSM_APPS_ILINK_H
