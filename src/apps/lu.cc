#include "apps/lu.h"

#include <algorithm>
#include <vector>

#include "sim/rng.h"

namespace mcdsm {

LuApp::LuApp(int n, int block, std::uint64_t seed)
    : n_(n), block_(block), nb_(n / block), seed_(seed)
{
    mcdsm_assert(n % block == 0, "matrix size must be a block multiple");
}

std::string
LuApp::problemDesc() const
{
    return strprintf("%dx%d, %dx%d blocks", n_, n_, block_, block_);
}

std::size_t
LuApp::sharedBytes() const
{
    return static_cast<std::size_t>(n_) * n_ * sizeof(double);
}

GAddr
LuApp::blockAddr(int bi, int bj) const
{
    const std::size_t block_bytes =
        static_cast<std::size_t>(block_) * block_ * sizeof(double);
    return base_ +
           (static_cast<std::size_t>(bi) * nb_ + bj) * block_bytes;
}

int
LuApp::owner(int bi, int bj, int nprocs) const
{
    // 2D scatter: factor nprocs into a near-square grid.
    int pr = 1;
    while (pr * pr < nprocs)
        ++pr;
    while (nprocs % pr != 0)
        --pr;
    const int pc = nprocs / pr;
    return (bi % pr) * pc + (bj % pc);
}

void
LuApp::configure(DsmSystem& sys)
{
    base_ = sys.allocPageAligned(sharedBytes());
    sums_ = SharedArray<double>::allocate(
        sys, 64 * static_cast<std::size_t>(
                      std::max(64, sys.cfg().topo.nprocs)));

    // Diagonally dominant matrix so factorization without pivoting is
    // stable; values depend only on (i, j), not on layout.
    Rng rng(seed_);
    for (int bi = 0; bi < nb_; ++bi) {
        for (int bj = 0; bj < nb_; ++bj) {
            const GAddr b = blockAddr(bi, bj);
            for (int i = 0; i < block_; ++i) {
                for (int j = 0; j < block_; ++j) {
                    const int gi = bi * block_ + i;
                    const int gj = bj * block_ + j;
                    double v = ((gi * 1103515245u + gj * 12345u) % 1000) /
                               1000.0;
                    if (gi == gj)
                        v += n_;
                    sys.hostStore<double>(
                        b + (static_cast<std::size_t>(i) * block_ + j) *
                                sizeof(double),
                        v);
                }
            }
        }
    }
}

void
LuApp::worker(Proc& p)
{
    const int np = p.nprocs();
    const int id = p.id();
    const std::size_t stride = sizeof(double);

    auto elem = [&](GAddr blk, int i, int j) {
        return blk + (static_cast<std::size_t>(i) * block_ + j) * stride;
    };

    // Row-segment buffers for the bulk fast path. The kernels below
    // keep the original element order and per-(i,k) access volume —
    // the pivot row is still re-read on every target row, and the
    // target row is still stored on every k (the doubled-store
    // structure the Cashmere analysis depends on); only the charging
    // granularity changes (per line instead of per element).
    std::vector<double> srow(static_cast<std::size_t>(block_));
    std::vector<double> trow(static_cast<std::size_t>(block_));

    // Factor the diagonal block (no pivoting).
    auto factor_diag = [&](GAddr d) {
        for (int k = 0; k < block_; ++k) {
            p.pollPoint();
            const std::size_t seg = static_cast<std::size_t>(
                block_ - (k + 1));
            const double pivot = p.read<double>(elem(d, k, k));
            for (int i = k + 1; i < block_; ++i) {
                const double l = p.read<double>(elem(d, i, k)) / pivot;
                p.write<double>(elem(d, i, k), l);
                p.readBlock<double>(elem(d, k, k + 1), srow.data(), seg);
                p.readBlock<double>(elem(d, i, k + 1), trow.data(), seg);
                for (std::size_t j = 0; j < seg; ++j)
                    trow[j] -= l * srow[j];
                p.writeBlock<double>(elem(d, i, k + 1), trow.data(),
                                     seg);
                p.computeOps(2 * (block_ - k));
            }
        }
    };

    // The update kernels follow the SPLASH-2 daxpy structure: the
    // target element is stored on every k iteration. Under Cashmere
    // each of those stores is doubled — the instrumentation overhead
    // and L1 working-set blowup the paper traces LU's (and Gauss's)
    // Cashmere losses to. The stores stay node-local (blocks are
    // homed at their owner by first touch), so no Memory Channel
    // bandwidth is consumed.

    // Solve X * U = B in place (column block right-multiplied).
    auto update_col = [&](GAddr d, GAddr b) { // b := b * U^-1
        for (int k = 0; k < block_; ++k) {
            p.pollPoint();
            const std::size_t seg = static_cast<std::size_t>(
                block_ - (k + 1));
            const double pivot = p.read<double>(elem(d, k, k));
            for (int i = 0; i < block_; ++i) {
                const double l = p.read<double>(elem(b, i, k)) / pivot;
                p.write<double>(elem(b, i, k), l);
                p.readBlock<double>(elem(d, k, k + 1), srow.data(), seg);
                p.readBlock<double>(elem(b, i, k + 1), trow.data(), seg);
                for (std::size_t j = 0; j < seg; ++j)
                    trow[j] -= l * srow[j];
                p.writeBlock<double>(elem(b, i, k + 1), trow.data(),
                                     seg);
            }
            p.computeOps(2 * block_);
        }
    };

    auto update_row = [&](GAddr d, GAddr b) { // b := L^-1 * b
        const std::size_t seg = static_cast<std::size_t>(block_);
        for (int k = 0; k < block_; ++k) {
            p.pollPoint();
            for (int i = k + 1; i < block_; ++i) {
                const double l = p.read<double>(elem(d, i, k));
                p.readBlock<double>(elem(b, k, 0), srow.data(), seg);
                p.readBlock<double>(elem(b, i, 0), trow.data(), seg);
                for (std::size_t j = 0; j < seg; ++j)
                    trow[j] -= l * srow[j];
                p.writeBlock<double>(elem(b, i, 0), trow.data(), seg);
                p.computeOps(2 * block_);
            }
        }
    };

    // Interior update: c -= a * b (daxpy, store per k).
    auto update_interior = [&](GAddr a, GAddr b, GAddr c) {
        const std::size_t seg = static_cast<std::size_t>(block_);
        for (int i = 0; i < block_; ++i) {
            p.pollPoint();
            for (int k = 0; k < block_; ++k) {
                const double l = p.read<double>(elem(a, i, k));
                p.readBlock<double>(elem(b, k, 0), srow.data(), seg);
                p.readBlock<double>(elem(c, i, 0), trow.data(), seg);
                for (std::size_t j = 0; j < seg; ++j)
                    trow[j] -= l * srow[j];
                p.writeBlock<double>(elem(c, i, 0), trow.data(), seg);
                p.computeOps(2 * block_);
            }
        }
    };

    for (int k = 0; k < nb_; ++k) {
        const GAddr diag = blockAddr(k, k);
        if (owner(k, k, np) == id)
            factor_diag(diag);
        p.barrier(0);

        for (int i = k + 1; i < nb_; ++i) {
            if (owner(i, k, np) == id)
                update_col(diag, blockAddr(i, k));
            if (owner(k, i, np) == id)
                update_row(diag, blockAddr(k, i));
        }
        p.barrier(1);

        for (int i = k + 1; i < nb_; ++i) {
            for (int j = k + 1; j < nb_; ++j) {
                if (owner(i, j, np) == id) {
                    update_interior(blockAddr(i, k), blockAddr(k, j),
                                    blockAddr(i, j));
                }
            }
        }
        p.barrier(2);
    }

    // Verification: checksum of the factored matrix, block-ordered.
    double sum = 0;
    std::int64_t count = 0;
    for (int bi = 0; bi < nb_; ++bi) {
        for (int bj = 0; bj < nb_; ++bj) {
            if (owner(bi, bj, np) != id)
                continue;
            p.pollPoint();
            const GAddr b = blockAddr(bi, bj);
            for (int i = 0; i < block_; ++i) {
                p.readBlock<double>(elem(b, i, 0), trow.data(),
                                    static_cast<std::size_t>(block_));
                for (int j = 0; j < block_; ++j)
                    sum += trow[j] *
                           ((bi * 31 + bj * 17 + i * 7 + j) % 13 + 1);
            }
            ++count;
        }
    }
    p.computeOps(count * block_ * block_ * 2);
    sums_.set(p, static_cast<std::size_t>(id) * 64, sum);
    p.barrier(3);
    if (id == 0) {
        double total = 0;
        for (int q = 0; q < np; ++q)
            total += sums_.get(p, static_cast<std::size_t>(q) * 64);
        result_.checksum = total;
    }
    p.barrier(4);
}

} // namespace mcdsm
