#include "apps/app.h"

#include "apps/barnes.h"
#include "apps/em3d.h"
#include "apps/gauss.h"
#include "apps/ilink.h"
#include "apps/kv.h"
#include "apps/lu.h"
#include "apps/sor.h"
#include "apps/tsp.h"
#include "apps/water.h"
#include "common/log.h"

namespace mcdsm {

const char* const kAppNames[8] = {"sor",   "lu",    "water", "tsp",
                                  "gauss", "ilink", "em3d",  "barnes"};

std::unique_ptr<App>
makeApp(const std::string& name, AppScale scale, std::uint64_t seed)
{
    const bool tiny = scale == AppScale::Tiny;
    const bool large = scale == AppScale::Large;

    if (name == "sor") {
        // Paper: 3072x4096. Small keeps band >> page at 32 procs.
        if (tiny)
            return std::make_unique<SorApp>(66, 64, 3);
        if (large)
            return std::make_unique<SorApp>(2050, 2048, 8);
        return std::make_unique<SorApp>(1538, 1536, 8);
    }
    if (name == "lu") {
        // Paper: 2048x2048 with 32x32 blocks (one 8 KB page each).
        if (tiny)
            return std::make_unique<LuApp>(64, 32, seed);
        if (large)
            return std::make_unique<LuApp>(768, 32, seed);
        return std::make_unique<LuApp>(512, 32, seed);
    }
    if (name == "water") {
        // Paper: 4096 molecules.
        if (tiny)
            return std::make_unique<WaterApp>(32, 2, seed);
        if (large)
            return std::make_unique<WaterApp>(3072, 3, seed);
        return std::make_unique<WaterApp>(2048, 3, seed);
    }
    if (name == "tsp") {
        // Paper: 17 cities.
        if (tiny)
            return std::make_unique<TspApp>(9, 6, seed);
        if (large)
            return std::make_unique<TspApp>(15, 10, seed);
        return std::make_unique<TspApp>(14, 10, seed);
    }
    if (name == "gauss") {
        // Paper: 2048x2048.
        if (tiny)
            return std::make_unique<GaussApp>(64, seed);
        if (large)
            return std::make_unique<GaussApp>(768, seed);
        return std::make_unique<GaussApp>(512, seed);
    }
    if (name == "ilink") {
        // Paper: CLP pedigree (~15 MB of sparse arrays).
        if (tiny)
            return std::make_unique<IlinkApp>(8, 1024, 128, 2, seed);
        if (large)
            return std::make_unique<IlinkApp>(128, 8192, 2048, 4, seed);
        return std::make_unique<IlinkApp>(64, 8192, 2048, 4, seed);
    }
    if (name == "em3d") {
        // Paper: 61440 nodes.
        if (tiny)
            return std::make_unique<Em3dApp>(1024, 4, 10, 3, seed);
        if (large)
            return std::make_unique<Em3dApp>(131072, 5, 10, 12, seed);
        return std::make_unique<Em3dApp>(65536, 5, 10, 10, seed);
    }
    if (name == "barnes") {
        // Paper: 128K bodies.
        if (tiny)
            return std::make_unique<BarnesApp>(128, 2, seed);
        if (large)
            return std::make_unique<BarnesApp>(16384, 3, seed);
        return std::make_unique<BarnesApp>(8192, 3, seed);
    }
    if (name == "kv") {
        // Serving workload (not from the paper): sharded KV store
        // with Zipfian open-loop traffic; see apps/kv.h.
        return std::make_unique<KvApp>(KvConfig::preset(scale), seed);
    }
    mcdsm_fatal("unknown application '%s'", name.c_str());
}

} // namespace mcdsm
