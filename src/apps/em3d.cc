#include "apps/em3d.h"

#include <algorithm>
#include <vector>

#include "sim/rng.h"

namespace mcdsm {

Em3dApp::Em3dApp(int nodes, int degree, int remote_pct, int iters,
                 std::uint64_t seed)
    : n_(nodes), degree_(degree), remotePct_(remote_pct), iters_(iters),
      seed_(seed)
{
}

std::string
Em3dApp::problemDesc() const
{
    return strprintf("%d nodes, degree %d, %d%% remote, %d iters",
                     2 * n_, degree_, remotePct_, iters_);
}

std::size_t
Em3dApp::sharedBytes() const
{
    return static_cast<std::size_t>(n_) *
           (2 * sizeof(double) + 2 * degree_ * 4 + sizeof(double));
}

void
Em3dApp::configure(DsmSystem& sys)
{
    eval_ = SharedArray<double>::allocate(sys, n_);
    hval_ = SharedArray<double>::allocate(sys, n_);
    edep_ = SharedArray<std::int32_t>::allocate(
        sys, static_cast<std::size_t>(n_) * degree_);
    hdep_ = SharedArray<std::int32_t>::allocate(
        sys, static_cast<std::size_t>(n_) * degree_);
    weights_ = SharedArray<double>::allocate(sys, degree_ + 1);
    sums_ = SharedArray<double>::allocate(
        sys, 64 * static_cast<std::size_t>(
                      std::max(64, sys.cfg().topo.nprocs)));

    Rng rng(seed_);
    for (int d = 0; d <= degree_; ++d)
        weights_.init(sys, d, rng.nextDouble(0.05, 0.15));

    // Dependencies: mostly near the node (same region), a fraction in
    // a window one region away. Regions are defined at *generation*
    // time for the largest processor count (32) so the same graph is
    // used at every P.
    constexpr int kGenRegions = 32;
    const int region = std::max(1, n_ / kGenRegions);
    for (int i = 0; i < n_; ++i) {
        eval_.init(sys, i, rng.nextDouble(-1, 1));
        hval_.init(sys, i, rng.nextDouble(-1, 1));
        for (int d = 0; d < degree_; ++d) {
            const bool remote =
                static_cast<int>(rng.nextBounded(100)) < remotePct_;
            int target;
            if (remote) {
                const int dir = (rng.nextBounded(2) == 0) ? -1 : 1;
                target = i + dir * region +
                         static_cast<int>(rng.nextBounded(region));
            } else {
                target = i - region / 2 +
                         static_cast<int>(rng.nextBounded(region));
            }
            target = ((target % n_) + n_) % n_;
            edep_.init(sys, static_cast<std::size_t>(i) * degree_ + d,
                       target);
            const bool hremote =
                static_cast<int>(rng.nextBounded(100)) < remotePct_;
            int htarget;
            if (hremote) {
                const int dir = (rng.nextBounded(2) == 0) ? -1 : 1;
                htarget = i + dir * region +
                          static_cast<int>(rng.nextBounded(region));
            } else {
                htarget = i - region / 2 +
                          static_cast<int>(rng.nextBounded(region));
            }
            htarget = ((htarget % n_) + n_) % n_;
            hdep_.init(sys, static_cast<std::size_t>(i) * degree_ + d,
                       htarget);
        }
    }
}

void
Em3dApp::worker(Proc& p)
{
    const int np = p.nprocs();
    const int id = p.id();
    const int lo = static_cast<int>(static_cast<std::int64_t>(n_) * id / np);
    const int hi =
        static_cast<int>(static_cast<std::int64_t>(n_) * (id + 1) / np);

    std::vector<double> w(degree_ + 1);
    for (int d = 0; d <= degree_; ++d)
        w[d] = weights_.get(p, d);

    for (int iter = 0; iter < iters_; ++iter) {
        // E from H.
        for (int i = lo; i < hi; ++i) {
            p.pollPoint();
            double v = eval_.get(p, i) * w[degree_];
            for (int d = 0; d < degree_; ++d) {
                const std::int32_t dep = edep_.get(
                    p, static_cast<std::size_t>(i) * degree_ + d);
                v -= w[d] * hval_.get(p, dep);
            }
            eval_.set(p, i, v);
            p.computeOps(25 * degree_ + 12);
        }
        p.barrier(0);
        // H from E.
        for (int i = lo; i < hi; ++i) {
            p.pollPoint();
            double v = hval_.get(p, i) * w[degree_];
            for (int d = 0; d < degree_; ++d) {
                const std::int32_t dep = hdep_.get(
                    p, static_cast<std::size_t>(i) * degree_ + d);
                v -= w[d] * eval_.get(p, dep);
            }
            hval_.set(p, i, v);
            p.computeOps(25 * degree_ + 12);
        }
        p.barrier(1);
    }

    double sum = 0;
    for (int i = lo; i < hi; ++i) {
        p.pollPoint();
        sum += eval_.get(p, i) + hval_.get(p, i);
    }
    p.computeOps(2 * (hi - lo));
    sums_.set(p, static_cast<std::size_t>(id) * 64, sum);
    p.barrier(2);
    if (id == 0) {
        double total = 0;
        for (int q = 0; q < np; ++q)
            total += sums_.get(p, static_cast<std::size_t>(q) * 64);
        result_.checksum = total;
    }
    p.barrier(3);
}

} // namespace mcdsm
