/**
 * @file
 * Water: n-squared molecular dynamics (SPLASH-1 style, paper §4.2).
 *
 * The shared molecule array is divided into contiguous chunks, one
 * per processor. During the force phase each processor accumulates
 * intermolecular forces locally, then acquires per-processor locks to
 * add its contributions into the globally shared force vectors — the
 * migratory sharing pattern the paper calls out.
 */

#ifndef MCDSM_APPS_WATER_H
#define MCDSM_APPS_WATER_H

#include "apps/app.h"

namespace mcdsm {

class WaterApp final : public App
{
  public:
    WaterApp(int molecules, int steps, std::uint64_t seed);

    const char* name() const override { return "water"; }
    std::string problemDesc() const override;
    std::size_t sharedBytes() const override;

    void configure(DsmSystem& sys) override;
    void worker(Proc& p) override;

  private:
    int n_;
    int steps_;
    std::uint64_t seed_;
    SharedArray<double> pos_;   ///< 3 doubles per molecule
    SharedArray<double> vel_;   ///< 3 doubles per molecule
    SharedArray<double> force_; ///< 3 doubles per molecule
    SharedArray<double> sums_;
};

} // namespace mcdsm

#endif // MCDSM_APPS_WATER_H
