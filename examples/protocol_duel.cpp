/**
 * @file
 * Protocol duel: runs the same sharing pattern under Cashmere and
 * TreadMarks and prints a side-by-side comparison of what each
 * protocol did — the fastest way to build intuition for the paper's
 * "fine-grain vs. coarse-grain" argument.
 *
 * Three patterns are shown:
 *   sparse    — one writer touches 64 bytes per page (diffs tiny,
 *               whole-page fetches wasteful: TreadMarks' best case)
 *   falseshare— 16 writers interleave within every page (one home to
 *               merge into vs. 16 diffs to collect: Cashmere's case)
 *   private   — each processor works on its own pages (exclusive mode
 *               vs. twin-less quiescence: both should be cheap)
 *
 *     ./examples/protocol_duel [pattern]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"
#include "harness/runner.h"

namespace {

using namespace mcdsm;

constexpr int kProcs = 16;
constexpr int kPages = 64;
constexpr std::size_t kInts =
    kPages * (kPageSize / sizeof(std::int64_t));

void
runPattern(const std::string& pattern, ProtocolKind kind,
           RunStats& out_stats, Time& out_elapsed)
{
    DsmConfig cfg;
    cfg.protocol = kind;
    cfg.topo = Topology::standard(kProcs);
    auto sys = DsmSystem::create(cfg);
    auto arr = SharedArray<std::int64_t>::allocate(*sys, kInts);

    sys->run([&](Proc& p) {
        const std::size_t per_page = kPageSize / sizeof(std::int64_t);
        for (int round = 0; round < 4; ++round) {
            if (pattern == "sparse") {
                // Processor 0 writes 8 words per page; all read.
                if (p.id() == 0) {
                    for (int pg = 0; pg < kPages; ++pg)
                        for (int k = 0; k < 8; ++k)
                            arr.set(p, pg * per_page + k * 16, round);
                }
                p.barrier(0);
                std::int64_t sum = 0;
                for (int pg = 0; pg < kPages; ++pg)
                    sum += arr.get(p, pg * per_page);
                p.barrier(1);
            } else if (pattern == "falseshare") {
                // All processors write interleaved words everywhere.
                for (std::size_t i = p.id(); i < kInts;
                     i += kProcs * 16) {
                    p.pollPoint();
                    arr.set(p, i, round + p.id());
                }
                p.barrier(0);
                std::int64_t sum = 0;
                for (std::size_t i = 0; i < kInts; i += 64)
                    sum += arr.get(p, i);
                p.barrier(1);
            } else { // private
                const std::size_t chunk = kInts / kProcs;
                for (std::size_t i = p.id() * chunk;
                     i < (p.id() + 1) * chunk; ++i) {
                    p.pollPoint();
                    arr.set(p, i, arr.get(p, i) + 1);
                }
                p.barrier(0);
            }
        }
    });
    out_stats = sys->stats();
    out_elapsed = sys->stats().elapsed;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    const std::string pattern = argc > 1 ? argv[1] : "sparse";

    std::printf("pattern: %s (%d processors, %d shared pages)\n\n",
                pattern.c_str(), kProcs, kPages);
    std::printf("%-22s %12s %12s\n", "", "csm_poll", "tmk_mc_poll");

    RunStats cs, ts;
    Time ct, tt;
    runPattern(pattern, ProtocolKind::CsmPoll, cs, ct);
    runPattern(pattern, ProtocolKind::TmkMcPoll, ts, tt);

    auto row = [&](const char* name, std::uint64_t a, std::uint64_t b) {
        std::printf("%-22s %12llu %12llu\n", name,
                    (unsigned long long)a, (unsigned long long)b);
    };
    std::printf("%-22s %9.3f ms %9.3f ms\n", "elapsed", ct / 1e6,
                tt / 1e6);
    row("read faults",
        cs.total([](const ProcStats& p) { return p.readFaults; }),
        ts.total([](const ProcStats& p) { return p.readFaults; }));
    row("write faults",
        cs.total([](const ProcStats& p) { return p.writeFaults; }),
        ts.total([](const ProcStats& p) { return p.writeFaults; }));
    row("page transfers",
        cs.total([](const ProcStats& p) { return p.pageTransfers; }), 0);
    row("write notices",
        cs.total([](const ProcStats& p) { return p.writeNoticesSent; }),
        0);
    row("twins", 0,
        ts.total([](const ProcStats& p) { return p.twins; }));
    row("diffs created", 0,
        ts.total([](const ProcStats& p) { return p.diffsCreated; }));
    row("messages", cs.messages, ts.messages);
    row("network KB", cs.mcBytes / 1024, [&] {
        std::uint64_t b = 0;
        for (const auto& p : ts.procs)
            b += p.bytesSent;
        return b / 1024;
    }());
    std::printf("\nTry: sparse | falseshare | private\n");
    return 0;
}
