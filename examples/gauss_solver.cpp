/**
 * @file
 * Domain example: a distributed linear-system solver on the DSM,
 * written directly against the public API (not the benchmark app).
 *
 * Solves A x = b by Gaussian elimination with cyclic row ownership
 * and per-row availability flags — the sharing pattern the paper's
 * Gauss application uses — then reports the residual and how the run
 * spent its time.
 *
 *     ./examples/gauss_solver [protocol] [nprocs] [n]
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"
#include "harness/runner.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;

    const std::string proto = argc > 1 ? argv[1] : "tmk_mc_poll";
    const int nprocs = argc > 2 ? std::atoi(argv[2]) : 8;
    const int n = argc > 3 ? std::atoi(argv[3]) : 128;

    DsmConfig cfg;
    cfg.protocol = protocolFromName(proto);
    cfg.topo = Topology::standard(nprocs);
    cfg.maxSharedBytes = 64 << 20;
    auto sys = DsmSystem::create(cfg);

    // Augmented matrix, one padded row per page so rows do not share
    // pages across owners.
    const std::size_t stride =
        ((n + 1) * sizeof(double) + kPageSize - 1) / kPageSize *
        kPageSize / sizeof(double);
    GAddr a = sys->allocPageAligned(n * stride * sizeof(double));
    auto x = SharedArray<double>::allocate(*sys, n);

    auto at = [&](int i, int j) {
        return a + (i * stride + j) * sizeof(double);
    };

    // A diagonally dominant random-ish system with known solution 1.
    for (int i = 0; i < n; ++i) {
        double sum = 0;
        for (int j = 0; j < n; ++j) {
            double v = ((i * 7 + j * 13) % 100) / 100.0;
            if (i == j)
                v += n;
            sum += v;
            sys->hostStore<double>(at(i, j), v);
        }
        sys->hostStore<double>(at(i, n), sum); // b = A * [1,...,1]
    }

    sys->run([&](Proc& p) {
        for (int k = 0; k < n; ++k) {
            if (k % p.nprocs() == p.id()) {
                const double pivot = p.read<double>(at(k, k));
                for (int j = k; j <= n; ++j)
                    p.write<double>(at(k, j),
                                    p.read<double>(at(k, j)) / pivot);
                p.computeOps(2 * (n - k));
                p.setFlag(k);
            } else {
                p.waitFlag(k);
            }
            for (int i = k + 1; i < n; ++i) {
                if (i % p.nprocs() != p.id())
                    continue;
                p.pollPoint();
                const double f = p.read<double>(at(i, k));
                for (int j = k; j <= n; ++j) {
                    p.write<double>(at(i, j),
                                    p.read<double>(at(i, j)) -
                                        f * p.read<double>(at(k, j)));
                }
                p.computeOps(2 * (n - k));
            }
        }
        p.barrier(0);
        if (p.id() == 0) {
            for (int i = n - 1; i >= 0; --i) {
                double v = p.read<double>(at(i, n));
                for (int j = i + 1; j < n; ++j)
                    v -= p.read<double>(at(i, j)) * x.get(p, j);
                x.set(p, i, v);
            }
            double err = 0;
            for (int j = 0; j < n; ++j)
                err = std::max(err, std::abs(x.get(p, j) - 1.0));
            std::printf("max |x_j - 1| = %.2e\n", err);
        }
        p.barrier(1);
    });

    const RunStats& st = sys->stats();
    std::printf("\n%s x %d, n=%d: %.3f ms simulated\n", proto.c_str(),
                nprocs, n, st.elapsed / 1e6);
    std::printf("%-16s %10s\n", "category", "time (ms)");
    for (int c = 0; c < kTimeCatCount; ++c) {
        std::printf("%-16s %10.3f\n",
                    timeCatName(static_cast<TimeCat>(c)),
                    st.totalTime(static_cast<TimeCat>(c)) / 1e6);
    }
    std::printf("flag operations : %llu\n",
                (unsigned long long)st.total(
                    [](const ProcStats& s) { return s.flagOps; }));
    return 0;
}
