/**
 * @file
 * Quickstart: the smallest complete mcdsm program.
 *
 * Builds a 8-processor cluster running the Cashmere protocol with
 * polling, allocates a shared array, runs a parallel sum with a
 * lock-protected accumulator, and prints the run statistics.
 *
 *     ./examples/quickstart [protocol] [nprocs]
 */

#include <cstdio>
#include <string>

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"
#include "harness/runner.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;

    const std::string proto = argc > 1 ? argv[1] : "csm_poll";
    const int nprocs = argc > 2 ? std::atoi(argv[2]) : 8;

    // 1. Configure the simulated cluster.
    DsmConfig cfg;
    cfg.protocol = protocolFromName(proto);
    cfg.topo = Topology::standard(nprocs);
    auto sys = DsmSystem::create(cfg);

    // 2. Allocate and initialize shared memory (host side).
    constexpr int kN = 100000;
    auto data = SharedArray<std::int64_t>::allocate(*sys, kN);
    GAddr total = sys->alloc(sizeof(std::int64_t));
    for (int i = 0; i < kN; ++i)
        data.init(*sys, i, i);
    sys->hostStore<std::int64_t>(total, 0);

    // 3. Run the parallel section: every processor sums a band, then
    //    adds its partial sum under a lock.
    sys->run([&](Proc& p) {
        const int lo = kN * p.id() / p.nprocs();
        const int hi = kN * (p.id() + 1) / p.nprocs();
        std::int64_t sum = 0;
        for (int i = lo; i < hi; ++i) {
            p.pollPoint(); // loop-top poll instrumentation
            sum += data.get(p, i);
            p.computeOps(2);
        }
        p.acquire(0);
        p.write<std::int64_t>(total,
                              p.read<std::int64_t>(total) + sum);
        p.release(0);
        p.barrier(0);

        if (p.id() == 0) {
            std::printf("sum = %lld (expected %lld)\n",
                        (long long)p.read<std::int64_t>(total),
                        (long long)kN * (kN - 1) / 2);
        }
    });

    // 4. Inspect statistics.
    const RunStats& st = sys->stats();
    std::printf("protocol      : %s x %d processors\n", proto.c_str(),
                nprocs);
    std::printf("elapsed       : %.3f ms simulated\n",
                st.elapsed / 1e6);
    std::printf("read faults   : %llu\n",
                (unsigned long long)st.total(
                    [](const ProcStats& s) { return s.readFaults; }));
    std::printf("messages      : %llu\n",
                (unsigned long long)st.messages);
    std::printf("MC traffic    : %.1f KB\n", st.mcBytes / 1024.0);
    return 0;
}
