/**
 * @file
 * Serving-workload bench: the sharded KV store (src/apps/kv.*) swept
 * over protocol variant x shard count x Zipf skew, reporting per-phase
 * tail-latency percentiles (p50/p90/p99/p999) and per-shard hot-key
 * contention. The whole sweep runs as one batch through the parallel
 * experiment engine, so --jobs=N changes wall time only — latencies,
 * percentiles and checksums are bit-identical for any value.
 *
 * --check-det is the CI determinism gate: it reruns a small grid with
 * --jobs=1 and --jobs=4 and requires bit-identical results, including
 * the service histograms, for all six protocol variants.
 */

#include "bench_common.h"

#include <cmath>
#include <cstring>
#include <iterator>

#include "common/log.h"

namespace mcdsm::bench {
namespace {

constexpr ProtocolKind kVariants[] = {
    ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
    ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
    ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
};

/** One cell of the sweep: a protocol plus a KV workload shape. */
struct KvCell
{
    ProtocolKind protocol = ProtocolKind::CsmPoll;
    int shards = 16;
    double theta = 0.9;
};

KvConfig
cellConfig(const KvConfig& base, const KvCell& cell)
{
    KvConfig cfg = base;
    cfg.shards = cell.shards;
    cfg.zipfTheta = cell.theta;
    return cfg;
}

double
usOf(Time t)
{
    return static_cast<double>(t) / 1000.0;
}

/** Bit-exact comparison of two runs of the same spec (see --check-det). */
bool
sameResult(const ExpResult& a, const ExpResult& b, std::string* why)
{
    if (a.elapsed != b.elapsed) {
        *why = "elapsed differs";
        return false;
    }
    if (std::memcmp(&a.appResult.checksum, &b.appResult.checksum,
                    sizeof(a.appResult.checksum)) != 0 ||
        std::memcmp(&a.appResult.aux, &b.appResult.aux,
                    sizeof(a.appResult.aux)) != 0) {
        *why = "app checksum/aux differs";
        return false;
    }
    if (a.stats.messages != b.stats.messages ||
        a.stats.mcBytes != b.stats.mcBytes) {
        *why = "communication totals differ";
        return false;
    }
    if (a.stats.service != b.stats.service) {
        *why = "service stats (histograms/shards) differ";
        return false;
    }
    for (std::size_t p = 0; p < a.stats.procs.size(); ++p) {
        if (a.stats.procs[p].endTime != b.stats.procs[p].endTime) {
            *why = strprintf("proc %zu end time differs", p);
            return false;
        }
    }
    return true;
}

int
checkDeterminism(const Flags& flags)
{
    RunOpts opts = optsFrom(flags);
    opts.scale = scaleFromName(flags.get("scale", "tiny"));
    const int np = std::stoi(flags.get("procs", "8"));
    const KvConfig base = KvConfig::preset(opts.scale);

    std::vector<ExpSpec> specs;
    std::vector<KvCell> cells;
    for (ProtocolKind k : kVariants) {
        if (!configSupported(k, np))
            continue;
        for (const KvCell cell : {KvCell{k, 4, 0.9}, KvCell{k, 8, 0.0}}) {
            RunOpts o = opts;
            o.kv = cellConfig(base, cell);
            specs.push_back({"kv", k, np, o});
            cells.push_back(cell);
        }
    }

    const auto seq = runExperiments(specs, 1);
    const auto par = runExperiments(specs, 4);

    int bad = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        std::string why;
        if (!sameResult(seq[i], par[i], &why)) {
            std::fprintf(stderr,
                         "FAIL: kv/%s shards=%d theta=%.2f differs "
                         "between --jobs=1 and --jobs=4: %s\n",
                         protocolName(specs[i].protocol),
                         cells[i].shards, cells[i].theta, why.c_str());
            ++bad;
        }
        if (seq[i].appResult.aux != 0.0) {
            std::fprintf(stderr,
                         "FAIL: kv/%s shards=%d theta=%.2f reports %g "
                         "GET verification failures\n",
                         protocolName(specs[i].protocol),
                         cells[i].shards, cells[i].theta,
                         seq[i].appResult.aux);
            ++bad;
        }
    }
    std::printf("kv determinism gate: %zu configs, %d failures\n",
                specs.size(), bad);
    return bad == 0 ? 0 : 1;
}

void
writeJson(std::FILE* f, const Flags& flags, int np, int jobs,
          const std::vector<KvCell>& cells,
          const std::vector<ExpResult>& results)
{
    std::fprintf(f, "{\n  \"bench\": \"bench_kv\",\n");
    std::fprintf(f, "  \"scale\": \"%s\",\n",
                 flags.get("scale", "small").c_str());
    std::fprintf(f, "  \"procs\": %d,\n  \"jobs\": %d,\n", np, jobs);
    std::fprintf(f, "  \"configs\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ExpResult& r = results[i];
        std::uint64_t cks_bits = 0;
        static_assert(sizeof(cks_bits) == sizeof(r.appResult.checksum));
        std::memcpy(&cks_bits, &r.appResult.checksum, sizeof(cks_bits));
        std::fprintf(f,
                     "    {\"protocol\": \"%s\", \"shards\": %d, "
                     "\"zipfTheta\": %g, \"nprocs\": %d, "
                     "\"simSeconds\": %.9f, "
                     "\"checksumBits\": \"0x%016llx\", "
                     "\"getVerifyFailures\": %g,\n",
                     protocolName(r.protocol), cells[i].shards,
                     cells[i].theta, r.nprocs, r.seconds(),
                     static_cast<unsigned long long>(cks_bits),
                     r.appResult.aux);
        std::fprintf(f, "     \"phases\": [\n");
        const auto& phases = r.stats.service.phases;
        for (std::size_t p = 0; p < phases.size(); ++p) {
            const PhaseServiceStats& ph = phases[p];
            const LatencyHistogram& h = ph.latency;
            std::uint64_t contended = 0, puts = 0;
            for (const ShardStats& s : ph.shards) {
                contended += s.contendedAcquires;
                puts += s.writes;
            }
            std::fprintf(
                f,
                "      {\"name\": \"%s\", \"requests\": %llu, "
                "\"puts\": %llu, "
                "\"p50Us\": %.3f, \"p90Us\": %.3f, \"p99Us\": %.3f, "
                "\"p999Us\": %.3f, \"maxUs\": %.3f, \"meanUs\": %.3f, "
                "\"contendedAcquires\": %llu,\n",
                ph.name.c_str(),
                static_cast<unsigned long long>(ph.requests()),
                static_cast<unsigned long long>(puts),
                usOf(h.p50()), usOf(h.p90()), usOf(h.p99()),
                usOf(h.p999()), usOf(static_cast<Time>(h.max())),
                h.mean() / 1000.0,
                static_cast<unsigned long long>(contended));
            std::fprintf(f, "       \"shards\": [");
            for (std::size_t s = 0; s < ph.shards.size(); ++s) {
                const ShardStats& sh = ph.shards[s];
                std::fprintf(
                    f,
                    "%s\n        {\"shard\": %zu, \"requests\": %llu, "
                    "\"reads\": %llu, \"writes\": %llu, "
                    "\"contended\": %llu, \"lockWaitUs\": %.3f, "
                    "\"hotKey\": %u, \"hotKeyRequests\": %llu}",
                    s == 0 ? "" : ",", s,
                    static_cast<unsigned long long>(sh.requests),
                    static_cast<unsigned long long>(sh.reads),
                    static_cast<unsigned long long>(sh.writes),
                    static_cast<unsigned long long>(
                        sh.contendedAcquires),
                    usOf(sh.lockWait), sh.hotKey,
                    static_cast<unsigned long long>(
                        sh.hotKeyRequests));
            }
            std::fprintf(f, "]}%s\n",
                         p + 1 < phases.size() ? "," : "");
        }
        std::fprintf(f, "     ]}%s\n",
                     i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
}

} // namespace
} // namespace mcdsm::bench

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(
        flags,
        "sharded KV serving workload: Zipfian open-loop traffic over "
        "protocol x shard count x skew, reporting per-phase latency "
        "percentiles and per-shard hot-key contention",
        {{"shards", "comma-separated shard counts (default 16)"},
         {"skews", "comma-separated Zipf thetas (default 0.9)"},
         {"streams", "logical client streams (default: scale preset)"},
         {"ops", "requests per stream per phase (default: preset)"},
         {"grid",
          "preset sweep: shards 4,16 x skews 0,0.9,1.2 over all "
          "variants", FlagArg::None},
         {"json",
          "write a machine-readable report to FILE (stdout if no "
          "value)", FlagArg::Optional},
         {"check-det",
          "determinism gate: rerun a tiny grid with --jobs=1 and "
          "--jobs=4 and require bit-identical results, then exit",
          FlagArg::None},
         kFlagProtocols, {"procs", "processor count (one value)"},
         kFlagScale, kFlagSeed, kFlagJobs, kFlagNet, kFlagScenario,
         kFlagFaultSeed, kFlagTraceOut, kFlagCheck, kFlagSimThreads});

    if (flags.has("check-det"))
        return checkDeterminism(flags);

    RunOpts opts = optsFrom(flags);
    const int np = std::stoi(flags.get("procs", "8"));
    const int jobs = jobsFrom(flags);
    KvConfig base = KvConfig::preset(opts.scale);
    if (flags.has("streams"))
        base.clientStreams = std::stoi(flags.get("streams", "32"));
    if (flags.has("ops"))
        base.opsPerStream = std::stoi(flags.get("ops", "200"));

    std::vector<int> shard_counts;
    std::vector<double> thetas;
    if (flags.has("grid")) {
        shard_counts = {4, 16};
        thetas = {0.0, 0.9, 1.2};
    } else {
        for (const auto& s : splitList(flags.get("shards", "16")))
            shard_counts.push_back(std::stoi(s));
        for (const auto& t : splitList(flags.get("skews", "0.9")))
            thetas.push_back(std::strtod(t.c_str(), nullptr));
    }

    std::vector<ExpSpec> specs;
    std::vector<KvCell> cells;
    for (ProtocolKind k : protocolList(flags)) {
        if (!configSupported(k, np)) {
            std::printf("skipping %s at %d procs (unsupported)\n",
                        protocolName(k), np);
            continue;
        }
        for (int shards : shard_counts) {
            for (double theta : thetas) {
                const KvCell cell{k, shards, theta};
                RunOpts o = opts;
                o.kv = cellConfig(base, cell);
                specs.push_back({"kv", k, np, o});
                cells.push_back(cell);
            }
        }
    }
    const auto results = runExperiments(specs, jobs);

    std::printf("KV serving: %d procs, %d streams x %d ops/phase, "
                "scale=%s, jobs=%d\n\n",
                np, base.clientStreams, base.opsPerStream,
                flags.get("scale", "small").c_str(), jobs);
    TextTable t({"protocol", "shards", "theta", "phase", "requests",
                 "puts", "p50(us)", "p90(us)", "p99(us)", "p999(us)",
                 "max(us)", "contended", "hot shard"});
    int bad_aux = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ExpResult& r = results[i];
        if (r.appResult.aux != 0.0) {
            std::fprintf(stderr,
                         "WARNING: %s shards=%d theta=%.2f: %g GET "
                         "verification failures\n",
                         protocolName(r.protocol), cells[i].shards,
                         cells[i].theta, r.appResult.aux);
            ++bad_aux;
        }
        for (const PhaseServiceStats& ph : r.stats.service.phases) {
            const LatencyHistogram& h = ph.latency;
            std::uint64_t contended = 0, puts = 0;
            std::size_t hot = 0;
            for (std::size_t s = 0; s < ph.shards.size(); ++s) {
                contended += ph.shards[s].contendedAcquires;
                puts += ph.shards[s].writes;
                if (ph.shards[s].requests > ph.shards[hot].requests)
                    hot = s;
            }
            const double hot_share =
                ph.requests() > 0
                    ? 100.0 *
                          static_cast<double>(ph.shards[hot].requests) /
                          static_cast<double>(ph.requests())
                    : 0.0;
            t.addRow({protocolName(r.protocol),
                      std::to_string(cells[i].shards),
                      TextTable::num(cells[i].theta, 2), ph.name,
                      TextTable::count(ph.requests()),
                      TextTable::count(puts),
                      TextTable::num(usOf(h.p50()), 1),
                      TextTable::num(usOf(h.p90()), 1),
                      TextTable::num(usOf(h.p99()), 1),
                      TextTable::num(usOf(h.p999()), 1),
                      TextTable::num(usOf(static_cast<Time>(h.max())), 1),
                      TextTable::count(contended),
                      strprintf("s%zu (%.0f%%)", hot, hot_share)});
        }
    }
    t.print();

    if (flags.has("json")) {
        const std::string path = flags.get("json", "");
        std::FILE* f =
            path.empty() ? stdout : std::fopen(path.c_str(), "w");
        if (f == nullptr)
            mcdsm_fatal("cannot write '%s'", path.c_str());
        writeJson(f, flags, np, jobs, cells, results);
        if (f != stdout) {
            std::fclose(f);
            std::printf("wrote %s\n", path.c_str());
        }
    }
    maybeWriteTrace(flags, results);
    if (reportCheckFindings(results))
        return 1;
    return bad_aux == 0 ? 0 : 1;
}
