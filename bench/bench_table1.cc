/**
 * @file
 * Regenerates Table 1: minimum cost of basic operations — lock
 * acquire, lock release, barrier (2 and 16 processors) and page
 * transfer — for all six protocol variants.
 */

#include "bench_common.h"

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"

namespace mcdsm::bench {
namespace {

/** Network backend for every measurement (--net, default mc). */
NetKind g_net = NetKind::Mc;
/** Fault plan applied to every measurement (default: null plan). */
FaultPlan g_fault;
/** Verification analyses applied to every measurement (--check). */
CheckConfig g_checks;
/** Host threads per simulation (--sim-threads, default legacy). */
int g_simThreads = 0;
std::uint64_t g_violations = 0;
std::string g_checkReport;

DsmConfig
cfgFor(ProtocolKind k, int nprocs)
{
    DsmConfig cfg;
    cfg.protocol = k;
    cfg.topo = Topology::standard(nprocs);
    cfg.maxSharedBytes = 8 << 20;
    cfg.net = g_net;
    cfg.fault = g_fault;
    cfg.checks = g_checks;
    cfg.simThreads = g_simThreads;
    return cfg;
}

/** Accumulate checker findings of a finished measurement system. */
void
noteChecks(DsmSystem& sys)
{
    if (const CheckerSuite* cs = sys.runtime().checks()) {
        g_violations += cs->violations();
        g_checkReport += cs->report();
    }
}

/** Average uncontended lock acquire + release cost on one processor. */
std::pair<Time, Time>
lockCost(ProtocolKind k)
{
    constexpr int kIters = 50;
    auto sys = DsmSystem::create(cfgFor(k, 2));
    Time acq = 0, rel = 0;
    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            for (int i = 0; i < kIters; ++i) {
                const Time t0 = p.now();
                p.acquire(7);
                const Time t1 = p.now();
                p.release(7);
                acq += t1 - t0;
                rel += p.now() - t1;
            }
        }
        p.barrier(0);
    });
    noteChecks(*sys);
    return {acq / kIters, rel / kIters};
}

/** Average barrier episode cost with all processors arriving together. */
Time
barrierCost(ProtocolKind k, int nprocs)
{
    constexpr int kIters = 20;
    auto sys = DsmSystem::create(cfgFor(k, nprocs));
    Time total = 0;
    sys->run([&](Proc& p) {
        p.barrier(0); // warm up
        const Time t0 = p.now();
        for (int i = 0; i < kIters; ++i) {
            p.pollPoint();
            p.barrier(1);
        }
        if (p.id() == 0)
            total = p.now() - t0;
    });
    noteChecks(*sys);
    return total / kIters;
}

/** Average cost for a processor to obtain a page dirtied remotely. */
Time
pageTransferCost(ProtocolKind k)
{
    constexpr int kPages = 24;
    auto sys = DsmSystem::create(cfgFor(k, 2));
    auto arr = SharedArray<std::int64_t>::allocate(
        *sys, kPages * (kPageSize / sizeof(std::int64_t)));
    Time total = 0;
    int timed = 0;
    sys->run([&](Proc& p) {
        const std::size_t per = kPageSize / sizeof(std::int64_t);
        if (p.id() == 0) {
            // Dirty every word of every page.
            for (std::size_t i = 0; i < kPages * per; ++i)
                arr.set(p, i, static_cast<std::int64_t>(i));
        }
        p.barrier(0);
        if (p.id() == 1) {
            for (int pg = 0; pg < kPages; ++pg) {
                const Time t0 = p.now();
                (void)arr.get(p, static_cast<std::size_t>(pg) * per);
                total += p.now() - t0;
                ++timed;
            }
        }
        p.barrier(1);
    });
    noteChecks(*sys);
    return total / timed;
}

} // namespace
} // namespace mcdsm::bench

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(flags,
                "Table 1: minimum cost of basic operations for all six "
                "protocol variants",
                {kFlagNet, kFlagScenario, kFlagFaultSeed, kFlagCheck,
                 kFlagSimThreads});
    g_net = netFrom(flags);
    g_fault = faultFrom(flags);
    g_checks = checksFrom(flags);
    g_simThreads = simThreadsFrom(flags);

    std::printf("Table 1: cost of basic operations (microseconds)\n");
    std::printf("(paper: Table 1; barrier column shows 2-proc with "
                "16-proc in parentheses)\n\n");

    TextTable table({"Operation", "csm_pp", "csm_int", "csm_poll",
                     "tmk_udp_int", "tmk_mc_int", "tmk_mc_poll"});

    const ProtocolKind kinds[] = {
        ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
        ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
        ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
    };

    std::vector<std::string> acq_row = {"Lock Acquire"};
    std::vector<std::string> rel_row = {"Lock Release"};
    std::vector<std::string> bar_row = {"Barrier"};
    std::vector<std::string> pt_row = {"Page Transfer"};

    for (ProtocolKind k : kinds) {
        auto [acq, rel] = lockCost(k);
        acq_row.push_back(TextTable::num(acq / 1000.0, 1));
        rel_row.push_back(TextTable::num(rel / 1000.0, 1));
        const Time b2 = barrierCost(k, 2);
        const Time b16 = barrierCost(k, 16);
        bar_row.push_back(TextTable::num(b2 / 1000.0, 0) + " (" +
                          TextTable::num(b16 / 1000.0, 0) + ")");
        pt_row.push_back(TextTable::num(pageTransferCost(k) / 1000.0, 0));
    }

    table.addRow(acq_row);
    table.addRow(rel_row);
    table.addRow(bar_row);
    table.addRow(pt_row);
    table.print();
    if (g_violations > 0) {
        std::printf("CHECK FAILED: %llu finding(s)\n%s",
                    static_cast<unsigned long long>(g_violations),
                    g_checkReport.c_str());
        return 1;
    }
    return 0;
}
