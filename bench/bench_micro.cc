/**
 * @file
 * Microbenchmarks of the simulator substrates (google-benchmark):
 * cache model, diff engine, Memory Channel accounting, scheduler
 * context switching, vector-timestamp algebra and page-table ops.
 * These measure *host* performance of the simulator itself — useful
 * for keeping large sweeps affordable.
 *
 * With --grid or --json=FILE the binary instead runs a small
 * experiment grid through the parallel engine and reports host
 * wall-clock seconds, simulated seconds and simulator events/sec per
 * configuration — the machine-readable perf trajectory future PRs
 * diff against (schema suitable for BENCH_*.json). Simulated times
 * and checksums are bit-identical for any --jobs value; only host
 * timing changes.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench_common.h"
#include "cache/cache_model.h"
#include "net/memory_channel.h"
#include "sim/scheduler.h"
#include "treadmarks/types.h"
#include "vm/page_table.h"

namespace mcdsm {
namespace {

void
BM_CacheAccessHit(benchmark::State& state)
{
    CostModel costs;
    CacheModel cache(CacheConfig{}, costs);
    cache.access(0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(0x1000));
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessMissStream(benchmark::State& state)
{
    CostModel costs;
    CacheModel cache(CacheConfig{}, costs);
    std::uint64_t a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a));
        a += 64;
    }
}
BENCHMARK(BM_CacheAccessMissStream);

void
BM_CacheTouchPage(benchmark::State& state)
{
    CostModel costs;
    CacheModel cache(CacheConfig{}, costs);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.touchRange(0, kPageSize));
}
BENCHMARK(BM_CacheTouchPage);

void
BM_DiffCreate(benchmark::State& state)
{
    std::vector<std::uint8_t> page(kPageSize, 0), twin(kPageSize, 0);
    // Dirty the fraction requested by the benchmark argument (in %).
    const std::size_t dirty =
        kPageSize * static_cast<std::size_t>(state.range(0)) / 100;
    for (std::size_t i = 0; i < dirty; ++i)
        page[(i * 37) % kPageSize] ^= 0xff;
    FlatRuns runs;
    for (auto _ : state) {
        computeRuns(page.data(), twin.data(), runs);
        benchmark::DoNotOptimize(runs.dataBytes());
    }
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(5)->Arg(50)->Arg(100);

void
BM_DiffApply(benchmark::State& state)
{
    std::vector<std::uint8_t> page(kPageSize, 0), twin(kPageSize, 0);
    for (std::size_t i = 0; i < kPageSize; i += 16)
        page[i] = 1;
    FlatRuns runs;
    computeRuns(page.data(), twin.data(), runs);
    std::vector<std::uint8_t> target(kPageSize, 0);
    for (auto _ : state) {
        applyRuns(target.data(), runs);
        benchmark::DoNotOptimize(target.data());
    }
}
BENCHMARK(BM_DiffApply);

void
BM_McTransfer(benchmark::State& state)
{
    CostModel costs;
    MemoryChannel mc(costs, 8);
    Time t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mc.transfer(0, 1, 8192, t));
        t += 1000;
    }
}
BENCHMARK(BM_McTransfer);

void
BM_SchedulerPingPong(benchmark::State& state)
{
    // Cost of a full task switch round-trip, amortized.
    const int kSwitches = 1000;
    for (auto _ : state) {
        Scheduler s;
        s.spawn("a", [&](TaskId) {
            for (int i = 0; i < kSwitches; ++i) {
                s.advance(1);
                s.yield();
            }
        });
        s.spawn("b", [&](TaskId) {
            for (int i = 0; i < kSwitches; ++i) {
                s.advance(1);
                s.yield();
            }
        });
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * 2 * kSwitches);
}
BENCHMARK(BM_SchedulerPingPong);

void
BM_VtMerge(benchmark::State& state)
{
    VTime a(32, 1), b(32, 2);
    for (auto _ : state) {
        vtMax(a, b);
        benchmark::DoNotOptimize(a.data());
    }
}
BENCHMARK(BM_VtMerge);

void
BM_PageTableProtect(benchmark::State& state)
{
    PageTable pt(8192);
    PageNum pn = 0;
    for (auto _ : state) {
        pt.setProtection(pn & 8191, ProtRw);
        pn += 7;
    }
}
BENCHMARK(BM_PageTableProtect);

// ---------------------------------------------------------------------------
// Grid mode: host-performance trajectory of whole simulations.
// ---------------------------------------------------------------------------

/** Simulator work proxy: events processed during one run. */
std::uint64_t
simEvents(const RunStats& s)
{
    std::uint64_t n = s.messages;
    for (const auto& p : s.procs) {
        n += p.cacheAccesses + p.readFaults + p.writeFaults +
             p.requestsServiced + p.lockAcquires + p.barriers +
             p.flagOps;
    }
    return n;
}

/** Simulated page faults (read + write) across processors. */
std::uint64_t
pageFaults(const RunStats& s)
{
    std::uint64_t n = 0;
    for (const auto& p : s.procs)
        n += p.readFaults + p.writeFaults;
    return n;
}

double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t mid = v.size() / 2;
    return v.size() % 2 != 0 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

/**
 * Extract the totals allocs-per-fault figure from a grid JSON written
 * by this binary (naive key scan — the schema is ours, flat, and the
 * key appears exactly once).
 */
bool
readGateBaseline(const std::string& path, const char* name, double* out)
{
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    const std::string key = std::string{"\""} + name + "\":";
    const std::size_t at = text.find(key);
    if (at == std::string::npos)
        return false;
    *out = std::strtod(text.c_str() + at + key.size(), nullptr);
    return true;
}

int
runGrid(const bench::Flags& flags)
{
    using clock = std::chrono::steady_clock;
    RunOpts opts;
    opts.scale = bench::scaleFromName(flags.get("scale", "tiny"));
    opts.seed = std::stoull(flags.get("seed", "1"));
    opts.net = bench::netFrom(flags);
    opts.fault = bench::faultFrom(flags);
    opts.simThreads = bench::simThreadsFrom(flags);
    if (flags.has("trace-out"))
        opts.traceCapacity = std::size_t{1} << 18;
    if (flags.has("no-pool"))
        opts.memPool = false;
    const CheckConfig checks = bench::checksFrom(flags);
    const int jobs = bench::jobsFrom(flags);
    const int repeat =
        std::max(1, std::stoi(flags.get("repeat", "1")));

    std::vector<ExpSpec> specs;
    for (const auto& app :
         bench::splitList(flags.get("apps", "sor,gauss,lu"))) {
        for (const auto& proto : bench::splitList(
                 flags.get("protocols", "csm_poll,tmk_mc_poll"))) {
            for (const auto& np :
                 bench::splitList(flags.get("procs", "4,8"))) {
                specs.push_back({app, protocolFromName(proto),
                                 std::stoi(np), opts});
            }
        }
    }

    // Run the whole grid --repeat times, timing each experiment on
    // its worker; per-config host time is the min across repetitions
    // (the standard noise-robust estimator), with the median kept for
    // the JSON report. Simulated results are identical every round.
    std::vector<ExpResult> results(specs.size());
    std::vector<std::vector<double>> rep_secs(specs.size());
    double wall = 0.0;
    for (int rep = 0; rep < repeat; ++rep) {
        const auto wall0 = clock::now();
        parallelFor(specs.size(), jobs, [&](std::size_t i) {
            const auto t0 = clock::now();
            const ExpSpec& s = specs[i];
            results[i] =
                runExperiment(s.app, s.protocol, s.nprocs, s.opts);
            rep_secs[i].push_back(
                std::chrono::duration<double>(clock::now() - t0)
                    .count());
        });
        const double w =
            std::chrono::duration<double>(clock::now() - wall0).count();
        wall = rep == 0 ? w : std::min(wall, w);
    }
    std::vector<double> host_secs(specs.size()), med_secs(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        host_secs[i] =
            *std::min_element(rep_secs[i].begin(), rep_secs[i].end());
        med_secs[i] = median(rep_secs[i]);
    }

    // With --check, run the grid again under the verification suite
    // and report the host-time overhead of checking per config. The
    // simulated results must be identical — the checkers charge no
    // virtual time — so only host seconds differ.
    std::vector<ExpResult> cresults(specs.size());
    std::vector<double> check_secs(specs.size(), 0.0);
    if (checks.any()) {
        std::vector<ExpSpec> cspecs = specs;
        for (auto& s : cspecs)
            s.opts.checks = checks;
        std::vector<std::vector<double>> crep(specs.size());
        for (int rep = 0; rep < repeat; ++rep) {
            parallelFor(cspecs.size(), jobs, [&](std::size_t i) {
                const auto t0 = clock::now();
                const ExpSpec& s = cspecs[i];
                cresults[i] =
                    runExperiment(s.app, s.protocol, s.nprocs, s.opts);
                crep[i].push_back(
                    std::chrono::duration<double>(clock::now() - t0)
                        .count());
            });
        }
        for (std::size_t i = 0; i < specs.size(); ++i) {
            check_secs[i] =
                *std::min_element(crep[i].begin(), crep[i].end());
            if (cresults[i].elapsed != results[i].elapsed) {
                std::fprintf(stderr,
                             "checkers perturbed simulated time of "
                             "%s x %s x %d\n",
                             cresults[i].app.c_str(),
                             protocolName(cresults[i].protocol),
                             cresults[i].nprocs);
                return 2;
            }
        }
    }

    double host_total = 0, sim_total = 0;
    std::uint64_t events_total = 0, faults_total = 0;
    std::uint64_t allocs_total = 0, pool_hits_total = 0;
    std::printf("%-8s %-12s %6s %10s %10s %14s %14s %12s %12s\n", "app",
                "protocol", "procs", "host(s)", "sim(s)", "events",
                "events/host-s", "heap-allocs", "allocs/fault");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const ExpResult& r = results[i];
        const std::uint64_t ev = simEvents(r.stats);
        const std::uint64_t faults = pageFaults(r.stats);
        const std::uint64_t allocs = r.stats.mem.heapAllocs();
        host_total += host_secs[i];
        sim_total += r.seconds();
        events_total += ev;
        faults_total += faults;
        allocs_total += allocs;
        pool_hits_total += r.stats.mem.poolHits();
        std::printf(
            "%-8s %-12s %6d %10.3f %10.3f %14llu %14.0f %12llu %12.2f\n",
            r.app.c_str(), protocolName(r.protocol), r.nprocs,
            host_secs[i], r.seconds(),
            static_cast<unsigned long long>(ev),
            host_secs[i] > 0 ? ev / host_secs[i] : 0.0,
            static_cast<unsigned long long>(allocs),
            faults > 0 ? static_cast<double>(allocs) / faults : 0.0);
    }
    if (checks.any()) {
        double check_total = 0;
        for (double s : check_secs)
            check_total += s;
        std::printf("checkers (--check=%s): host-cpu %.3f s vs %.3f s "
                    "unchecked, overhead %.2fx\n",
                    checks.describe().c_str(), check_total, host_total,
                    host_total > 0 ? check_total / host_total : 0.0);
    }
    std::printf("total: wall %.3f s, host-cpu %.3f s, sim %.3f s, "
                "jobs %d, repeat %d, speedup-vs-serial %.2fx, "
                "pool %s, allocs/fault %.2f\n",
                wall, host_total, sim_total, jobs, repeat,
                wall > 0 ? host_total / wall : 0.0,
                opts.memPool ? "on" : "off",
                faults_total > 0
                    ? static_cast<double>(allocs_total) / faults_total
                    : 0.0);

    const std::string json = flags.get("json", "");
    if (!json.empty()) {
        std::FILE* f = std::fopen(json.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"bench_micro_grid\",\n");
        std::fprintf(f, "  \"scale\": \"%s\",\n",
                     flags.get("scale", "tiny").c_str());
        std::fprintf(f, "  \"jobs\": %d,\n", jobs);
        std::fprintf(f, "  \"repeat\": %d,\n", repeat);
        std::fprintf(f, "  \"memPool\": %s,\n",
                     opts.memPool ? "true" : "false");
        std::fprintf(f, "  \"wallSeconds\": %.6f,\n", wall);
        std::fprintf(f, "  \"configs\": [\n");
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const ExpResult& r = results[i];
            const std::uint64_t ev = simEvents(r.stats);
            const std::uint64_t faults = pageFaults(r.stats);
            const MemStats& m = r.stats.mem;
            std::uint64_t cks_bits = 0;
            static_assert(sizeof(cks_bits) ==
                          sizeof(r.appResult.checksum));
            std::memcpy(&cks_bits, &r.appResult.checksum,
                        sizeof(cks_bits));
            std::string check_fields;
            if (checks.any()) {
                check_fields = strprintf(
                    "\"checkHostSeconds\": %.6f, "
                    "\"checkOverhead\": %.4f, "
                    "\"checkViolations\": %llu, ",
                    check_secs[i],
                    host_secs[i] > 0 ? check_secs[i] / host_secs[i]
                                     : 0.0,
                    static_cast<unsigned long long>(
                        cresults[i].checkViolations));
            }
            std::fprintf(
                f,
                "    {\"app\": \"%s\", \"protocol\": \"%s\", "
                "\"nprocs\": %d, \"hostSeconds\": %.6f, "
                "\"hostSecondsMedian\": %.6f, "
                "\"simSeconds\": %.9f, \"simEvents\": %llu, "
                "\"eventsPerHostSec\": %.1f, "
                "\"pageFaults\": %llu, \"heapAllocs\": %llu, "
                "\"heapBytes\": %llu, \"poolHits\": %llu, "
                "\"allocsPerFault\": %.4f, %s"
                "\"checksumBits\": \"0x%016llx\"}%s\n",
                r.app.c_str(), protocolName(r.protocol), r.nprocs,
                host_secs[i], med_secs[i], r.seconds(),
                static_cast<unsigned long long>(ev),
                host_secs[i] > 0 ? ev / host_secs[i] : 0.0,
                static_cast<unsigned long long>(faults),
                static_cast<unsigned long long>(m.heapAllocs()),
                static_cast<unsigned long long>(m.heapBytes()),
                static_cast<unsigned long long>(m.poolHits()),
                faults > 0 ? static_cast<double>(m.heapAllocs()) / faults
                           : 0.0,
                check_fields.c_str(),
                static_cast<unsigned long long>(cks_bits),
                i + 1 < specs.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        std::fprintf(f,
                     "  \"totals\": {\"hostSeconds\": %.6f, "
                     "\"simSeconds\": %.9f, \"simEvents\": %llu, "
                     "\"eventsPerWallSec\": %.1f, "
                     "\"pageFaults\": %llu, \"heapAllocs\": %llu, "
                     "\"poolHits\": %llu, "
                     "\"allocsPerFaultTotal\": %.4f}\n}\n",
                     host_total, sim_total,
                     static_cast<unsigned long long>(events_total),
                     wall > 0 ? events_total / wall : 0.0,
                     static_cast<unsigned long long>(faults_total),
                     static_cast<unsigned long long>(allocs_total),
                     static_cast<unsigned long long>(pool_hits_total),
                     faults_total > 0 ? static_cast<double>(allocs_total) /
                                            faults_total
                                      : 0.0);
        std::fclose(f);
        std::printf("wrote %s\n", json.c_str());
    }
    bench::maybeWriteTrace(flags, results);

    // --alloc-gate=FILE: regression gate against a committed baseline
    // grid report. Fails (exit 1) if steady-state allocations per
    // simulated page fault regressed more than 10% past the baseline.
    const std::string gate = flags.get("alloc-gate", "");
    if (!gate.empty()) {
        // --check=all grids gate against their own baseline row: the
        // checkers' shadow state (flat maps sized to the footprint)
        // allocates on a different schedule than the bare simulator,
        // and folding it into the plain floor would hide regressions
        // in whichever mode has the lower ratio.
        const char* key = checks.any() ? "allocsPerFaultTotalChecks"
                                       : "allocsPerFaultTotal";
        double base = 0.0;
        if (!readGateBaseline(gate, key, &base)) {
            std::fprintf(stderr, "alloc-gate: cannot read %s from %s\n",
                         key, gate.c_str());
            return 2;
        }
        const double cur =
            faults_total > 0
                ? static_cast<double>(allocs_total) / faults_total
                : 0.0;
        const double limit = base * 1.10;
        if (cur > limit) {
            std::fprintf(stderr,
                         "alloc-gate FAIL: allocs/fault %.4f exceeds "
                         "baseline %.4f (+10%% limit %.4f) from %s\n",
                         cur, base, limit, gate.c_str());
            return 1;
        }
        std::printf("alloc-gate OK: allocs/fault %.4f vs baseline %.4f "
                    "(limit %.4f)\n",
                    cur, base, limit);
    }
    if (checks.any() && bench::reportCheckFindings(cresults))
        return 1;
    return 0;
}

} // namespace
} // namespace mcdsm

int
main(int argc, char** argv)
{
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    // Grid mode: whole-simulation throughput via the parallel engine.
    // Other arguments (e.g. --benchmark_filter) pass through to the
    // google-benchmark suite, so unknown flags are rejected only here.
    if (flags.has("grid") || flags.has("json") || flags.has("check") ||
        flags.has("help")) {
        handleUsage(
            flags,
            "simulator micro/throughput benchmarks; --grid runs whole "
            "simulations through the parallel engine, otherwise "
            "arguments go to the google-benchmark suite",
            {{"grid", "run the whole-simulation throughput grid",
              FlagArg::None},
             {"json", "write the grid report to FILE (implies --grid)",
              FlagArg::Optional},
             {"repeat",
              "run the grid N times; report min (and median) host "
              "seconds per config"},
             {"no-pool",
              "disable the pooled memory subsystem (src/mem/) for "
              "this run; simulated results are unchanged",
              FlagArg::None},
             {"alloc-gate",
              "compare allocs-per-fault against the baseline grid "
              "JSON at FILE; exit 1 on >10% regression"},
             kFlagApps, kFlagProtocols, kFlagProcs, kFlagScale, kFlagSeed,
             kFlagJobs, kFlagNet, kFlagScenario, kFlagFaultSeed,
             kFlagTraceOut, kFlagCheck, kFlagSimThreads});
        return mcdsm::runGrid(flags);
    }
    // Otherwise: the google-benchmark micro suite.
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
