/**
 * @file
 * Microbenchmarks of the simulator substrates (google-benchmark):
 * cache model, diff engine, Memory Channel accounting, scheduler
 * context switching, vector-timestamp algebra and page-table ops.
 * These measure *host* performance of the simulator itself — useful
 * for keeping large sweeps affordable.
 */

#include <benchmark/benchmark.h>

#include <cstring>

#include "cache/cache_model.h"
#include "net/memory_channel.h"
#include "sim/scheduler.h"
#include "treadmarks/types.h"
#include "vm/page_table.h"

namespace mcdsm {
namespace {

void
BM_CacheAccessHit(benchmark::State& state)
{
    CostModel costs;
    CacheModel cache(CacheConfig{}, costs);
    cache.access(0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(0x1000));
}
BENCHMARK(BM_CacheAccessHit);

void
BM_CacheAccessMissStream(benchmark::State& state)
{
    CostModel costs;
    CacheModel cache(CacheConfig{}, costs);
    std::uint64_t a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(a));
        a += 64;
    }
}
BENCHMARK(BM_CacheAccessMissStream);

void
BM_CacheTouchPage(benchmark::State& state)
{
    CostModel costs;
    CacheModel cache(CacheConfig{}, costs);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.touchRange(0, kPageSize));
}
BENCHMARK(BM_CacheTouchPage);

void
BM_DiffCreate(benchmark::State& state)
{
    std::vector<std::uint8_t> page(kPageSize, 0), twin(kPageSize, 0);
    // Dirty the fraction requested by the benchmark argument (in %).
    const std::size_t dirty =
        kPageSize * static_cast<std::size_t>(state.range(0)) / 100;
    for (std::size_t i = 0; i < dirty; ++i)
        page[(i * 37) % kPageSize] ^= 0xff;
    for (auto _ : state)
        benchmark::DoNotOptimize(computeRuns(page.data(), twin.data()));
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(5)->Arg(50)->Arg(100);

void
BM_DiffApply(benchmark::State& state)
{
    std::vector<std::uint8_t> page(kPageSize, 0), twin(kPageSize, 0);
    for (std::size_t i = 0; i < kPageSize; i += 16)
        page[i] = 1;
    auto runs = computeRuns(page.data(), twin.data());
    std::vector<std::uint8_t> target(kPageSize, 0);
    for (auto _ : state) {
        applyRuns(target.data(), runs);
        benchmark::DoNotOptimize(target.data());
    }
}
BENCHMARK(BM_DiffApply);

void
BM_McTransfer(benchmark::State& state)
{
    CostModel costs;
    MemoryChannel mc(costs, 8);
    Time t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mc.transfer(0, 1, 8192, t));
        t += 1000;
    }
}
BENCHMARK(BM_McTransfer);

void
BM_SchedulerPingPong(benchmark::State& state)
{
    // Cost of a full task switch round-trip, amortized.
    const int kSwitches = 1000;
    for (auto _ : state) {
        Scheduler s;
        s.spawn("a", [&](TaskId) {
            for (int i = 0; i < kSwitches; ++i) {
                s.advance(1);
                s.yield();
            }
        });
        s.spawn("b", [&](TaskId) {
            for (int i = 0; i < kSwitches; ++i) {
                s.advance(1);
                s.yield();
            }
        });
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * 2 * kSwitches);
}
BENCHMARK(BM_SchedulerPingPong);

void
BM_VtMerge(benchmark::State& state)
{
    VTime a(32, 1), b(32, 2);
    for (auto _ : state) {
        vtMax(a, b);
        benchmark::DoNotOptimize(a.data());
    }
}
BENCHMARK(BM_VtMerge);

void
BM_PageTableProtect(benchmark::State& state)
{
    PageTable pt(8192);
    PageNum pn = 0;
    for (auto _ : state) {
        pt.setProtection(pn & 8191, ProtRw);
        pn += 7;
    }
}
BENCHMARK(BM_PageTableProtect);

} // namespace
} // namespace mcdsm

BENCHMARK_MAIN();
