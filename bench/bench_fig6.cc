/**
 * @file
 * Regenerates Figure 6: breakdown of execution time for the polling
 * versions of Cashmere and TreadMarks (Barnes at 16 processors, the
 * others at 32), normalized to total Cashmere execution time.
 *
 * Categories: User, Polling, Write doubling (Cashmere only),
 * Protocol, Comm & Wait. Unlike the paper (which extrapolates the
 * first three from single-processor runs), the simulator measures
 * every category directly.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(flags,
                "Figure 6: execution-time breakdown for the polling "
                "variants",
                {kFlagApps, kFlagProcs, kFlagScale, kFlagSeed, kFlagJobs,
                 kFlagNet, kFlagScenario, kFlagFaultSeed, kFlagTraceOut,
                 kFlagCheck, kFlagSimThreads});
    RunOpts opts = optsFrom(flags);
    const int procs = std::stoi(flags.get("procs", "32"));

    std::printf("Figure 6: normalized execution-time breakdown "
                "(%% of Cashmere total)\n\n");

    TextTable table({"App", "System", "User", "Polling", "Doubling",
                     "Protocol", "Comm&Wait", "Total"});

    const auto apps = appList(flags);
    std::vector<ExpSpec> specs;
    for (const auto& app : apps) {
        const int np = (app == "barnes") ? procs / 2 : procs;
        specs.push_back({app, ProtocolKind::CsmPoll, np, opts});
        specs.push_back({app, ProtocolKind::TmkMcPoll, np, opts});
    }
    const auto results = runExperiments(specs, jobsFrom(flags));

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto& app = apps[a];
        const ExpResult& csm = results[2 * a];
        const ExpResult& tmk = results[2 * a + 1];

        // Normalize by summed per-processor Cashmere time.
        double csm_total = 0;
        for (int c = 0; c < kTimeCatCount; ++c)
            csm_total += static_cast<double>(
                csm.stats.totalTime(static_cast<TimeCat>(c)));

        auto add = [&](const char* sys_name, const RunStats& s) {
            double total = 0;
            std::vector<std::string> row = {app, sys_name};
            for (int c = 0; c < kTimeCatCount; ++c) {
                const double frac =
                    100.0 *
                    static_cast<double>(
                        s.totalTime(static_cast<TimeCat>(c))) /
                    csm_total;
                total += frac;
                row.push_back(TextTable::num(frac, 1));
            }
            row.push_back(TextTable::num(total, 1));
            table.addRow(std::move(row));
        };
        add("CSM", csm.stats);
        add("TMK", tmk.stats);
    }
    table.print();
    maybeWriteTrace(flags, results);
    return reportCheckFindings(results) ? 1 : 0;
}
