/**
 * @file
 * Ablation studies called out in DESIGN.md:
 *
 *  1. Cashmere's exclusive-mode optimisation (paper §2.1 replaced the
 *     simulated protocol's "weak state" with exclusive mode + explicit
 *     write notices to handle private pages and producer-consumer
 *     sharing): run with the optimisation disabled.
 *
 *  2. Interrupt-latency sensitivity (the paper blames Digital Unix's
 *     ~1 ms signals for the interrupt variants' collapse): sweep the
 *     end-to-end signal latency.
 *
 *  3. Second-generation Memory Channel (the paper's conclusion: half
 *     the latency, an order of magnitude more bandwidth): rerun the
 *     Cashmere variants with those parameters.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(flags,
                "Ablations: exclusive mode, interrupt latency, "
                "second-generation Memory Channel",
                {kFlagApps, kFlagProcs, kFlagScale, kFlagSeed, kFlagJobs,
                 kFlagNet, kFlagScenario, kFlagFaultSeed, kFlagTraceOut,
                 kFlagCheck, kFlagSimThreads});
    RunOpts opts = optsFrom(flags);
    const int np = std::stoi(flags.get("procs", "16"));
    const auto apps =
        splitList(flags.get("apps", "sor,em3d,gauss"));

    // All three ablations as one batch for the parallel engine;
    // per-section index bookkeeping recovers the original layout.
    const Time kIntLats[] = {Time(10), Time(100), Time(1000)};
    const ProtocolKind kMc2Kinds[] = {ProtocolKind::CsmPoll,
                                      ProtocolKind::TmkMcPoll};
    std::vector<ExpSpec> specs;
    const std::size_t excl_at = specs.size(); // app -> {on, off}
    for (const auto& app : apps) {
        specs.push_back({app, ProtocolKind::CsmPoll, np, opts});
        RunOpts off = opts;
        DsmConfig cfg;
        cfg.cashmereExclusiveMode = false;
        off.base = cfg;
        specs.push_back({app, ProtocolKind::CsmPoll, np, off});
    }
    const std::size_t int_at = specs.size(); // (app, lat) -> {ci, ti}
    for (const auto& app : apps) {
        for (Time lat : kIntLats) {
            RunOpts o = opts;
            DsmConfig cfg;
            cfg.costs.remoteSignalLatency = lat * kMicrosecond;
            o.base = cfg;
            specs.push_back({app, ProtocolKind::CsmInt, np, o});
            specs.push_back({app, ProtocolKind::TmkMcInt, np, o});
        }
    }
    const std::size_t mc2_at = specs.size(); // (app, kind) -> {g1, g2}
    for (const auto& app : apps) {
        for (ProtocolKind k : kMc2Kinds) {
            specs.push_back({app, k, np, opts});
            RunOpts o = opts;
            DsmConfig cfg;
            cfg.costs.mcLatency /= 2;
            cfg.costs.mcLinkBw *= 10;
            cfg.costs.mcAggBw *= 10;
            o.base = cfg;
            specs.push_back({app, k, np, o});
        }
    }
    const auto results = runExperiments(specs, jobsFrom(flags));

    // ---- 1. exclusive mode ------------------------------------------------
    std::printf("Ablation 1: Cashmere exclusive mode (csm_poll, %d "
                "procs)\n\n", np);
    {
        TextTable t({"App", "on: time(s)", "off: time(s)",
                     "on: notices", "off: notices", "slowdown"});
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const auto& app = apps[a];
            const ExpResult& with = results[excl_at + 2 * a];
            const ExpResult& without = results[excl_at + 2 * a + 1];
            auto notices = [](const RunStats& s) {
                return s.total([](const ProcStats& p) {
                    return p.writeNoticesSent;
                });
            };
            t.addRow({app, TextTable::num(with.seconds(), 2),
                      TextTable::num(without.seconds(), 2),
                      TextTable::count(notices(with.stats)),
                      TextTable::count(notices(without.stats)),
                      TextTable::num(without.seconds() / with.seconds(),
                                     2)});
        }
        t.print();
    }

    // ---- 2. interrupt latency ------------------------------------------------
    std::printf("\nAblation 2: end-to-end interrupt latency "
                "(csm_int / tmk_mc_int, %d procs)\n\n", np);
    {
        TextTable t({"App", "latency", "csm_int (s)", "tmk_mc_int (s)"});
        std::size_t idx = int_at;
        for (const auto& app : apps) {
            for (Time lat : kIntLats) {
                const ExpResult& ci = results[idx++];
                const ExpResult& ti = results[idx++];
                t.addRow({app, strprintf("%lld us", (long long)lat),
                          TextTable::num(ci.seconds(), 2),
                          TextTable::num(ti.seconds(), 2)});
            }
        }
        t.print();
    }

    // ---- 3. second-generation Memory Channel ---------------------------------
    std::printf("\nAblation 3: second-generation Memory Channel "
                "(half latency, 10x bandwidth; %d procs)\n\n", np);
    {
        TextTable t({"App", "System", "MC1 (s)", "MC2 (s)", "gain"});
        std::size_t idx = mc2_at;
        for (const auto& app : apps) {
            for (ProtocolKind k : kMc2Kinds) {
                const ExpResult& gen1 = results[idx++];
                const ExpResult& gen2 = results[idx++];
                t.addRow({app, protocolName(k),
                          TextTable::num(gen1.seconds(), 2),
                          TextTable::num(gen2.seconds(), 2),
                          TextTable::num(gen1.seconds() / gen2.seconds(),
                                         2)});
            }
        }
        t.print();
    }
    maybeWriteTrace(flags, results);
    return reportCheckFindings(results) ? 1 : 0;
}
