/**
 * @file
 * Ablation studies called out in DESIGN.md:
 *
 *  1. Cashmere's exclusive-mode optimisation (paper §2.1 replaced the
 *     simulated protocol's "weak state" with exclusive mode + explicit
 *     write notices to handle private pages and producer-consumer
 *     sharing): run with the optimisation disabled.
 *
 *  2. Interrupt-latency sensitivity (the paper blames Digital Unix's
 *     ~1 ms signals for the interrupt variants' collapse): sweep the
 *     end-to-end signal latency.
 *
 *  3. Second-generation Memory Channel (the paper's conclusion: half
 *     the latency, an order of magnitude more bandwidth): rerun the
 *     Cashmere variants with those parameters.
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    RunOpts opts = optsFrom(flags);
    const int np = std::stoi(flags.get("procs", "16"));
    const auto apps =
        splitList(flags.get("apps", "sor,em3d,gauss"));

    // ---- 1. exclusive mode ------------------------------------------------
    std::printf("Ablation 1: Cashmere exclusive mode (csm_poll, %d "
                "procs)\n\n", np);
    {
        TextTable t({"App", "on: time(s)", "off: time(s)",
                     "on: notices", "off: notices", "slowdown"});
        for (const auto& app : apps) {
            RunOpts on = opts;
            ExpResult with = runExperiment(app, ProtocolKind::CsmPoll,
                                           np, on);
            RunOpts off = opts;
            DsmConfig cfg;
            cfg.cashmereExclusiveMode = false;
            off.base = cfg;
            ExpResult without = runExperiment(
                app, ProtocolKind::CsmPoll, np, off);
            auto notices = [](const RunStats& s) {
                return s.total([](const ProcStats& p) {
                    return p.writeNoticesSent;
                });
            };
            t.addRow({app, TextTable::num(with.seconds(), 2),
                      TextTable::num(without.seconds(), 2),
                      TextTable::count(notices(with.stats)),
                      TextTable::count(notices(without.stats)),
                      TextTable::num(without.seconds() / with.seconds(),
                                     2)});
        }
        t.print();
    }

    // ---- 2. interrupt latency ------------------------------------------------
    std::printf("\nAblation 2: end-to-end interrupt latency "
                "(csm_int / tmk_mc_int, %d procs)\n\n", np);
    {
        TextTable t({"App", "latency", "csm_int (s)", "tmk_mc_int (s)"});
        for (const auto& app : apps) {
            for (Time lat : {Time(10), Time(100), Time(1000)}) {
                RunOpts o = opts;
                DsmConfig cfg;
                cfg.costs.remoteSignalLatency = lat * kMicrosecond;
                o.base = cfg;
                ExpResult ci =
                    runExperiment(app, ProtocolKind::CsmInt, np, o);
                ExpResult ti =
                    runExperiment(app, ProtocolKind::TmkMcInt, np, o);
                t.addRow({app, strprintf("%lld us", (long long)lat),
                          TextTable::num(ci.seconds(), 2),
                          TextTable::num(ti.seconds(), 2)});
            }
        }
        t.print();
    }

    // ---- 3. second-generation Memory Channel ---------------------------------
    std::printf("\nAblation 3: second-generation Memory Channel "
                "(half latency, 10x bandwidth; %d procs)\n\n", np);
    {
        TextTable t({"App", "System", "MC1 (s)", "MC2 (s)", "gain"});
        for (const auto& app : apps) {
            for (ProtocolKind k :
                 {ProtocolKind::CsmPoll, ProtocolKind::TmkMcPoll}) {
                ExpResult gen1 = runExperiment(app, k, np, opts);
                RunOpts o = opts;
                DsmConfig cfg;
                cfg.costs.mcLatency /= 2;
                cfg.costs.mcLinkBw *= 10;
                cfg.costs.mcAggBw *= 10;
                o.base = cfg;
                ExpResult gen2 = runExperiment(app, k, np, o);
                t.addRow({app, protocolName(k),
                          TextTable::num(gen1.seconds(), 2),
                          TextTable::num(gen2.seconds(), 2),
                          TextTable::num(gen1.seconds() / gen2.seconds(),
                                         2)});
            }
        }
        t.print();
    }
    return 0;
}
