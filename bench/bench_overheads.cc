/**
 * @file
 * Regenerates the section 4.1 instrumentation-overhead measurements:
 * the single-processor cost of polling (0-36% in the paper) and of
 * write doubling (0-39%), per application, plus the fixed basic
 * operation costs of the cost model.
 */

#include "bench_common.h"

#include "common/costs.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(flags,
                "Section 4.1 instrumentation overheads: polling and "
                "write doubling on one processor",
                {kFlagApps, kFlagScale, kFlagSeed, kFlagJobs, kFlagNet,
                 kFlagScenario, kFlagFaultSeed, kFlagTraceOut,
                 kFlagCheck, kFlagSimThreads});
    RunOpts opts = optsFrom(flags);

    CostModel costs;
    std::printf("Section 4.1 basic operation costs (model constants):\n");
    std::printf("  memory protection           %5.0f us\n",
                costs.mprotect / 1000.0);
    std::printf("  page fault                  %5.0f us\n",
                costs.pageFault / 1000.0);
    std::printf("  local signal delivery       %5.0f us\n",
                costs.localSignal / 1000.0);
    std::printf("  remote signal send          %5.0f us\n",
                costs.remoteSignalSend / 1000.0);
    std::printf("  remote signal end-to-end    %5.0f us\n",
                costs.remoteSignalLatency / 1000.0);
    std::printf("  MC write latency            %5.1f us\n",
                costs.mcLatency / 1000.0);
    std::printf("  directory modify            %5.0f us (locked: %.0f)\n",
                costs.dirModify / 1000.0, costs.dirModifyLocked / 1000.0);
    std::printf("  lock acquire+release (MC)   %5.0f us\n",
                costs.mcLockUncontended / 1000.0);
    std::printf("  twin (8K page)              %5.0f us\n",
                costs.twinCost / 1000.0);
    std::printf("  diff creation               %5.0f - %.0f us\n",
                costs.diffCreateMin / 1000.0, costs.diffCreateMax / 1000.0);
    std::printf("\n");

    std::printf("Single-processor instrumentation overhead "
                "(paper: polling 0-36%%, doubling 0-39%%):\n\n");

    TextTable table({"App", "Polling %", "Write doubling %"});
    const auto apps = appList(flags);
    std::vector<ExpSpec> specs;
    for (const auto& app : apps) {
        specs.push_back({app, ProtocolKind::TmkMcPoll, 1, opts});
        specs.push_back({app, ProtocolKind::CsmPoll, 1, opts});
    }
    const auto results = runExperiments(specs, jobsFrom(flags));

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto& app = apps[a];
        // Polling overhead: 1-processor run of the polling TreadMarks
        // variant; the Poll category is pure instrumentation.
        const ExpResult& tmk = results[2 * a];
        const double user =
            static_cast<double>(tmk.stats.totalTime(TimeCat::User));
        const double poll =
            static_cast<double>(tmk.stats.totalTime(TimeCat::Poll));

        // Doubling overhead: 1-processor Cashmere run; the Doubling
        // category covers the extra stores plus the cache pollution
        // they cause is reflected in User (compare totals).
        const ExpResult& csm = results[2 * a + 1];
        const double dbl =
            static_cast<double>(csm.stats.totalTime(TimeCat::Doubling)) +
            static_cast<double>(csm.stats.totalTime(TimeCat::User)) -
            user;

        table.addRow({app, TextTable::num(100.0 * poll / user, 1),
                      TextTable::num(100.0 * dbl / user, 1)});
    }
    table.print();
    maybeWriteTrace(flags, results);
    return reportCheckFindings(results) ? 1 : 0;
}
