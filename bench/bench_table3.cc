/**
 * @file
 * Regenerates Table 3: detailed communication statistics for the
 * polling versions of Cashmere and TreadMarks at 32 processors
 * (Barnes at 16, as in the paper).
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(flags,
                "Table 3: communication statistics for the polling "
                "variants",
                {kFlagApps, kFlagProcs, kFlagScale, kFlagSeed, kFlagJobs,
                 kFlagNet, kFlagScenario, kFlagFaultSeed, kFlagTraceOut,
                 kFlagCheck, kFlagSimThreads});
    RunOpts opts = optsFrom(flags);
    const int procs = std::stoi(flags.get("procs", "32"));

    std::printf("Table 3: detailed statistics for the polling versions\n");
    std::printf("(paper: Table 3; Barnes at %d, others at %d "
                "processors; counts aggregated over processors)\n\n",
                procs / 2, procs);

    const auto apps = appList(flags);

    // Both blocks as one batch for the parallel engine.
    std::vector<ExpSpec> specs;
    for (const auto& app : apps) {
        const int np = (app == "barnes") ? procs / 2 : procs;
        specs.push_back({app, ProtocolKind::CsmPoll, np, opts});
    }
    for (const auto& app : apps) {
        const int np = (app == "barnes") ? procs / 2 : procs;
        specs.push_back({app, ProtocolKind::TmkMcPoll, np, opts});
    }
    const auto results = runExperiments(specs, jobsFrom(flags));

    // Cashmere block.
    {
        TextTable t({"CSM", "Exec(s)", "Barriers", "Locks", "Read flt",
                     "Write flt", "Page transfers", "Data KB"});
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const auto& app = apps[a];
            const ExpResult& r = results[a];
            const RunStats& s = r.stats;
            t.addRow({app, TextTable::num(r.seconds(), 2),
                      TextTable::count(s.total([](const ProcStats& p) {
                          return p.barriers;
                      })),
                      TextTable::count(s.total([](const ProcStats& p) {
                          return p.lockAcquires;
                      })),
                      TextTable::count(s.total([](const ProcStats& p) {
                          return p.readFaults;
                      })),
                      TextTable::count(s.total([](const ProcStats& p) {
                          return p.writeFaults;
                      })),
                      TextTable::count(s.total([](const ProcStats& p) {
                          return p.pageTransfers;
                      })),
                      TextTable::count(s.mcBytes / 1024)});
        }
        t.print();
    }

    std::printf("\n");

    // TreadMarks block.
    {
        TextTable t({"TMK", "Exec(s)", "Barriers", "Locks", "Read flt",
                     "Write flt", "Messages", "Data KB"});
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const auto& app = apps[a];
            const ExpResult& r = results[apps.size() + a];
            const RunStats& s = r.stats;
            std::uint64_t bytes = 0;
            for (const auto& p : s.procs)
                bytes += p.bytesSent;
            t.addRow({app, TextTable::num(r.seconds(), 2),
                      TextTable::count(s.total([](const ProcStats& p) {
                          return p.barriers;
                      })),
                      TextTable::count(s.total([](const ProcStats& p) {
                          return p.lockAcquires;
                      })),
                      TextTable::count(s.total([](const ProcStats& p) {
                          return p.readFaults;
                      })),
                      TextTable::count(s.total([](const ProcStats& p) {
                          return p.writeFaults;
                      })),
                      TextTable::count(s.messages),
                      TextTable::count(bytes / 1024)});
        }
        t.print();
    }

    // RDMA verb block: one-sided traffic vs what remains on the
    // message path. All-zero (and omitted) on --net=mc.
    if (opts.net == NetKind::Rdma) {
        std::printf("\n");
        TextTable t({"RDMA", "System", "1-sided KB", "Msg KB", "Reads",
                     "Writes", "CAS", "FAA", "Doorbells"});
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& app = apps[i % apps.size()];
            const bool csm = i < apps.size();
            const RunStats& s = results[i].stats;
            const std::uint64_t msg_bytes =
                s.mcBytes - std::min(s.mcBytes, s.netOneSidedBytes);
            t.addRow({app, csm ? "CSM" : "TMK",
                      TextTable::count(s.netOneSidedBytes / 1024),
                      TextTable::count(msg_bytes / 1024),
                      TextTable::count(s.rdmaReads),
                      TextTable::count(s.rdmaWrites),
                      TextTable::count(s.rdmaCasOps),
                      TextTable::count(s.rdmaFaaOps),
                      TextTable::count(s.rdmaDoorbells)});
        }
        t.print();
    }
    maybeWriteTrace(flags, results);
    return reportCheckFindings(results) ? 1 : 0;
}
