/**
 * @file
 * Regenerates Table 2: data-set sizes and sequential execution time
 * of the eight applications (run unlinked: ProtocolKind::None).
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(flags,
                "Table 2: data-set sizes and sequential execution time",
                {kFlagApps, kFlagScale, kFlagSeed, kFlagJobs, kFlagNet,
                 kFlagScenario, kFlagFaultSeed, kFlagTraceOut,
                 kFlagCheck, kFlagSimThreads});
    RunOpts opts = optsFrom(flags);

    std::printf("Table 2: data set sizes and sequential execution time\n");
    std::printf("(paper: Table 2; simulated 233 MHz 21064A; scale=%s)\n\n",
                flags.get("scale", "small").c_str());

    TextTable table(
        {"Program", "Problem Size", "Shared MB", "Time (sec.)"});

    const auto apps = appList(flags);
    std::vector<ExpSpec> specs;
    for (const auto& app_name : apps)
        specs.push_back({app_name, ProtocolKind::None, 1, opts});
    const auto results = runExperiments(specs, jobsFrom(flags));

    for (std::size_t a = 0; a < apps.size(); ++a) {
        auto app = makeApp(apps[a], opts.scale, opts.seed);
        const std::string desc = app->problemDesc();
        const double mb =
            static_cast<double>(app->sharedBytes()) / (1 << 20);
        table.addRow({apps[a], desc, TextTable::num(mb, 1),
                      TextTable::num(results[a].seconds(), 2)});
    }
    table.print();
    maybeWriteTrace(flags, results);
    return reportCheckFindings(results) ? 1 : 0;
}
