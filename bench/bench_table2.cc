/**
 * @file
 * Regenerates Table 2: data-set sizes and sequential execution time
 * of the eight applications (run unlinked: ProtocolKind::None).
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    RunOpts opts = optsFrom(flags);

    std::printf("Table 2: data set sizes and sequential execution time\n");
    std::printf("(paper: Table 2; simulated 233 MHz 21064A; scale=%s)\n\n",
                flags.get("scale", "small").c_str());

    TextTable table(
        {"Program", "Problem Size", "Shared MB", "Time (sec.)"});

    for (const auto& app_name : appList(flags)) {
        auto app = makeApp(app_name, opts.scale, opts.seed);
        const std::string desc = app->problemDesc();
        const double mb =
            static_cast<double>(app->sharedBytes()) / (1 << 20);
        ExpResult r = runSequential(app_name, opts);
        table.addRow({app_name, desc, TextTable::num(mb, 1),
                      TextTable::num(r.seconds(), 2)});
    }
    table.print();
    return 0;
}
