/**
 * @file
 * Ranking-stability (sensitivity) bench for the paper's central
 * comparison: how hard must the machine be perturbed before the
 * Cashmere-vs-TreadMarks ordering flips?
 *
 * For every fault scenario (src/fault/) the bench sweeps the scenario
 * magnitude over all six protocol variants and reports, per
 * application, the *flip point*: the smallest magnitude at which the
 * faster system at magnitude 1 (the healthy machine) loses to the
 * other. The whole grid runs as one batch through the parallel
 * experiment engine, so --jobs=N changes wall time only — every
 * result is bit-deterministic.
 *
 * --check-null verifies the fault subsystem's no-op guarantee: an
 * explicit "null" scenario must produce bit-identical RunStats to a
 * run that never mentions faults, for all six variants, and results
 * must not depend on the job count.
 */

#include "bench_common.h"

#include <cmath>
#include <iterator>

#include "common/log.h"

namespace mcdsm::bench {
namespace {

constexpr ProtocolKind kVariants[] = {
    ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
    ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
    ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
};
constexpr std::size_t kNumVariants = std::size(kVariants);

/** Bit-exact RunStats comparison (the determinism contract). */
bool
sameStats(const ExpResult& a, const ExpResult& b)
{
    if (a.elapsed != b.elapsed || a.stats.mcBytes != b.stats.mcBytes ||
        a.stats.mcStreamBytes != b.stats.mcStreamBytes ||
        a.stats.messages != b.stats.messages ||
        a.stats.procs.size() != b.stats.procs.size())
        return false;
    if (std::memcmp(&a.appResult.checksum, &b.appResult.checksum,
                    sizeof(a.appResult.checksum)) != 0)
        return false;
    for (std::size_t p = 0; p < a.stats.procs.size(); ++p) {
        const ProcStats& x = a.stats.procs[p];
        const ProcStats& y = b.stats.procs[p];
        if (x.endTime != y.endTime || x.readFaults != y.readFaults ||
            x.writeFaults != y.writeFaults ||
            x.messagesSent != y.messagesSent ||
            x.bytesSent != y.bytesSent)
            return false;
        for (int c = 0; c < kTimeCatCount; ++c)
            if (x.timeIn[c] != y.timeIn[c])
                return false;
    }
    return true;
}

int
checkNull(const Flags& flags)
{
    RunOpts plain = optsFrom(flags);
    plain.fault = FaultPlan{}; // never heard of faults
    RunOpts nulled = plain;
    nulled.fault = makeScenario("null", 1.0, 7);

    const std::vector<std::string> apps = {"sor", "water"};
    std::vector<ExpSpec> specs;
    for (const auto& app : apps) {
        for (ProtocolKind k : kVariants) {
            specs.push_back({app, k, 8, plain});
            specs.push_back({app, k, 8, nulled});
        }
    }
    const auto seq = runExperiments(specs, 1);
    const auto par = runExperiments(specs, 3);

    int bad = 0;
    for (std::size_t i = 0; i < specs.size(); i += 2) {
        const char* app = specs[i].app.c_str();
        const char* proto = protocolName(specs[i].protocol);
        if (!sameStats(seq[i], seq[i + 1])) {
            std::fprintf(stderr,
                         "FAIL: %s/%s differs under an explicit null "
                         "fault plan\n",
                         app, proto);
            ++bad;
        }
        if (!sameStats(seq[i], par[i])) {
            std::fprintf(stderr,
                         "FAIL: %s/%s differs between --jobs=1 and "
                         "--jobs=3\n",
                         app, proto);
            ++bad;
        }
    }
    std::printf("null-plan bit-equality: %zu configs, %d failures\n",
                specs.size() / 2, bad);
    return bad == 0 ? 0 : 1;
}

struct Point
{
    double magnitude = 1.0;
    /** elapsed per variant; -1 = configuration unsupported. */
    Time elapsed[kNumVariants];
    NodeId slowestNode = 0;
    Time bestCsm = 0, bestTmk = 0;

    bool csmWins() const { return bestCsm <= bestTmk; }
};

void
bestOfPoint(Point& pt)
{
    pt.bestCsm = pt.bestTmk = -1;
    for (std::size_t v = 0; v < kNumVariants; ++v) {
        const Time t = pt.elapsed[v];
        if (t < 0)
            continue;
        Time& best = isCashmere(kVariants[v]) ? pt.bestCsm : pt.bestTmk;
        if (best < 0 || t < best)
            best = t;
    }
}

} // namespace
} // namespace mcdsm::bench

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(
        flags,
        "fault-scenario sensitivity of the Cashmere-vs-TreadMarks "
        "ranking: sweeps scenario magnitude over all six variants and "
        "reports the flip point per scenario and application",
        {{"scenarios",
          "comma-separated fault scenarios to sweep (src/fault/)"},
         {"magnitudes", "comma-separated scenario magnitudes"},
         {"json", "write a machine-readable report to FILE",
          FlagArg::Optional},
         {"check-null",
          "verify null-plan bit-equality and --jobs invariance, then "
          "exit", FlagArg::None},
         kFlagApps, {"procs", "processor count (one value)"}, kFlagScale,
         kFlagSeed, kFlagJobs, kFlagNet, kFlagFaultSeed, kFlagTraceOut,
         kFlagCheck, kFlagSimThreads});

    if (flags.has("check-null"))
        return checkNull(flags);

    RunOpts opts = optsFrom(flags);
    const std::uint64_t fault_seed =
        std::stoull(flags.get("fault-seed", "1"));
    const int np = std::stoi(flags.get("procs", "16"));
    const int jobs = jobsFrom(flags);
    const auto apps = splitList(flags.get("apps", "sor,water"));
    const auto scenarios = splitList(flags.get(
        "scenarios",
        "link_degrade,one_slow_link,hub_load,jitter,brownout,straggler,"
        "slow_interrupts"));
    std::vector<double> mags;
    for (const auto& m : splitList(flags.get("magnitudes", "1,2,4,8,16")))
        mags.push_back(std::strtod(m.c_str(), nullptr));
    // The flip point is relative to the healthy machine; make sure the
    // sweep starts there.
    if (mags.empty() || mags.front() != 1.0)
        mags.insert(mags.begin(), 1.0);

    // One batch: scenario x magnitude x app x variant.
    std::vector<ExpSpec> specs;
    for (const auto& sc : scenarios) {
        for (double mag : mags) {
            RunOpts o = opts;
            o.fault = makeScenario(sc, mag, fault_seed);
            for (const auto& app : apps) {
                for (ProtocolKind k : kVariants) {
                    if (!configSupported(k, np))
                        continue;
                    specs.push_back({app, k, np, o});
                }
            }
        }
    }
    const auto results = runExperiments(specs, jobs);

    // grid[scenario][app][mag] -> Point
    std::vector<std::vector<std::vector<Point>>> grid(
        scenarios.size(),
        std::vector<std::vector<Point>>(
            apps.size(), std::vector<Point>(mags.size())));
    {
        std::size_t idx = 0;
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            for (std::size_t m = 0; m < mags.size(); ++m) {
                for (std::size_t a = 0; a < apps.size(); ++a) {
                    Point& pt = grid[s][a][m];
                    pt.magnitude = mags[m];
                    Time best_any = -1;
                    for (std::size_t v = 0; v < kNumVariants; ++v) {
                        if (!configSupported(kVariants[v], np)) {
                            pt.elapsed[v] = -1;
                            continue;
                        }
                        const ExpResult& r = results[idx++];
                        pt.elapsed[v] = r.elapsed;
                        // Report which node bound the overall winner
                        // (interesting under straggler scenarios).
                        if (best_any < 0 || r.elapsed < best_any) {
                            best_any = r.elapsed;
                            pt.slowestNode = r.stats.slowestNode();
                        }
                    }
                    bestOfPoint(pt);
                }
            }
        }
    }

    // Flip points. flip[s][a] = smallest magnitude where the healthy
    // winner loses, or -1 if the ranking never flips in the sweep.
    std::vector<std::vector<double>> flip(
        scenarios.size(), std::vector<double>(apps.size(), -1.0));
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const bool base_csm = grid[s][a][0].csmWins();
            for (std::size_t m = 1; m < mags.size(); ++m) {
                if (grid[s][a][m].csmWins() != base_csm) {
                    flip[s][a] = mags[m];
                    break;
                }
            }
        }
    }

    std::printf("Sensitivity: CSM-vs-TMK ranking stability "
                "(%d procs, scale=%s, fault seed %llu)\n\n",
                np, flags.get("scale", "small").c_str(),
                (unsigned long long)fault_seed);
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        std::printf("scenario %s\n", scenarios[s].c_str());
        TextTable t({"app", "magnitude", "best CSM (s)", "best TMK (s)",
                     "CSM/TMK", "winner"});
        for (std::size_t a = 0; a < apps.size(); ++a) {
            for (std::size_t m = 0; m < mags.size(); ++m) {
                const Point& pt = grid[s][a][m];
                const double ratio =
                    static_cast<double>(pt.bestCsm) /
                    static_cast<double>(pt.bestTmk);
                t.addRow({apps[a], TextTable::num(pt.magnitude, 1),
                          TextTable::num(pt.bestCsm / double(kSecond), 3),
                          TextTable::num(pt.bestTmk / double(kSecond), 3),
                          TextTable::num(ratio, 3),
                          pt.csmWins() ? "CSM" : "TMK"});
            }
        }
        t.print();
        for (std::size_t a = 0; a < apps.size(); ++a) {
            if (flip[s][a] > 0)
                std::printf("  %s: ranking flips at magnitude %g\n",
                            apps[a].c_str(), flip[s][a]);
            else
                std::printf("  %s: ranking stable across the sweep\n",
                            apps[a].c_str());
        }
        std::printf("\n");
    }

    const std::string json_path = flags.get("json", "");
    if (flags.has("json")) {
        std::FILE* f = json_path.empty()
                           ? stdout
                           : std::fopen(json_path.c_str(), "w");
        if (f == nullptr)
            mcdsm_fatal("cannot write '%s'", json_path.c_str());
        std::fprintf(f, "{\n  \"bench\": \"bench_sensitivity\",\n");
        std::fprintf(f, "  \"procs\": %d,\n", np);
        std::fprintf(f, "  \"scale\": \"%s\",\n",
                     flags.get("scale", "small").c_str());
        std::fprintf(f, "  \"faultSeed\": %llu,\n",
                     (unsigned long long)fault_seed);
        std::fprintf(f, "  \"scenarios\": [\n");
        for (std::size_t s = 0; s < scenarios.size(); ++s) {
            std::fprintf(f, "    {\"scenario\": \"%s\", \"apps\": [\n",
                         scenarios[s].c_str());
            for (std::size_t a = 0; a < apps.size(); ++a) {
                std::fprintf(f,
                             "      {\"app\": \"%s\", "
                             "\"baselineWinner\": \"%s\", ",
                             apps[a].c_str(),
                             grid[s][a][0].csmWins() ? "csm" : "tmk");
                if (flip[s][a] > 0)
                    std::fprintf(f, "\"flipMagnitude\": %g,\n",
                                 flip[s][a]);
                else
                    std::fprintf(f, "\"flipMagnitude\": null,\n");
                std::fprintf(f, "       \"points\": [\n");
                for (std::size_t m = 0; m < mags.size(); ++m) {
                    const Point& pt = grid[s][a][m];
                    std::fprintf(
                        f,
                        "        {\"magnitude\": %g, "
                        "\"bestCsmSeconds\": %.9f, "
                        "\"bestTmkSeconds\": %.9f, "
                        "\"winner\": \"%s\", \"slowestNode\": %d, "
                        "\"elapsedSeconds\": {",
                        pt.magnitude, pt.bestCsm / double(kSecond),
                        pt.bestTmk / double(kSecond),
                        pt.csmWins() ? "csm" : "tmk", pt.slowestNode);
                    bool first = true;
                    for (std::size_t v = 0; v < kNumVariants; ++v) {
                        if (pt.elapsed[v] < 0)
                            continue;
                        std::fprintf(f, "%s\"%s\": %.9f",
                                     first ? "" : ", ",
                                     protocolName(kVariants[v]),
                                     pt.elapsed[v] / double(kSecond));
                        first = false;
                    }
                    std::fprintf(f, "}}%s\n",
                                 m + 1 < mags.size() ? "," : "");
                }
                std::fprintf(f, "       ]}%s\n",
                             a + 1 < apps.size() ? "," : "");
            }
            std::fprintf(f, "    ]}%s\n",
                         s + 1 < scenarios.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        if (f != stdout) {
            std::fclose(f);
            std::printf("wrote %s\n", json_path.c_str());
        }
    }

    maybeWriteTrace(flags, results);
    return reportCheckFindings(results) ? 1 : 0;
}
