/**
 * @file
 * Shared helpers for the table/figure regeneration binaries: a small
 * flag parser and the default experiment grids.
 */

#ifndef MCDSM_BENCH_BENCH_COMMON_H
#define MCDSM_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/chrome_trace.h"
#include "harness/flags.h"
#include "harness/pool.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace mcdsm::bench {

// The flag parser lives in src/harness/flags.h so tests can exercise
// it; re-exported here for the bench binaries.
using ::mcdsm::FlagArg;
using ::mcdsm::FlagInfo;
using ::mcdsm::Flags;
using ::mcdsm::handleUsage;

// Stock descriptions for the flags shared across binaries; each main
// lists exactly the subset it honors.
inline constexpr FlagInfo kFlagApps{
    "apps", "comma-separated applications"};
inline constexpr FlagInfo kFlagProtocols{
    "protocols", "comma-separated protocol variants"};
inline constexpr FlagInfo kFlagProcs{
    "procs", "comma-separated processor counts"};
inline constexpr FlagInfo kFlagScale{
    "scale", "problem scale: tiny, small or large"};
inline constexpr FlagInfo kFlagSeed{
    "seed", "application RNG seed (default 1)"};
inline constexpr FlagInfo kFlagJobs{
    "jobs",
    "experiment-engine worker threads (default: MCDSM_JOBS or "
    "hardware threads); results are identical for any value"};
inline constexpr FlagInfo kFlagScenario{
    "scenario",
    "fault scenario name[:magnitude], e.g. straggler:4 "
    "(src/fault/; default null)"};
inline constexpr FlagInfo kFlagFaultSeed{
    "fault-seed", "fault-injection seed (default 1)"};
inline constexpr FlagInfo kFlagTraceOut{
    "trace-out", "write a Chrome-trace JSON of every run to FILE"};
inline constexpr FlagInfo kFlagCheck{
    "check",
    "run verification analyses: comma list of race, lockset, "
    "invariant, deadlock, or all (bare --check = all); any finding "
    "makes the binary exit 1",
    FlagArg::Optional};
inline constexpr FlagInfo kFlagSimThreads{
    "sim-threads",
    "host threads per simulation (conservative-PDES engine; default "
    "0 = legacy sequential loop; any N >= 1 is bit-identical to "
    "N = 1)"};
inline constexpr FlagInfo kFlagNet{
    "net",
    "network backend: mc (the paper's Memory Channel, default) or "
    "rdma (one-sided verbs + NIC atomics + doorbell batching)"};

/** Parse --net into a NetKind (exits 2 on an unknown backend). */
inline NetKind
netFrom(const Flags& flags)
{
    const std::string name = flags.get("net", "mc");
    NetKind kind;
    if (!netFromName(name, &kind)) {
        std::fprintf(stderr,
                     "--net: unknown backend '%s' (expected mc or "
                     "rdma)\n",
                     name.c_str());
        std::exit(2);
    }
    return kind;
}

/** Parse --check into a CheckConfig (exits 2 on a bad list). */
inline CheckConfig
checksFrom(const Flags& flags)
{
    CheckConfig cc;
    if (!flags.has("check"))
        return cc;
    const std::string err = parseCheckList(flags.get("check", ""), &cc);
    if (!err.empty()) {
        std::fprintf(stderr, "--check: %s\n", err.c_str());
        std::exit(2);
    }
    return cc;
}

/**
 * Print the verification report of every run that had findings.
 * @return true if any did — the binary should then exit nonzero.
 */
inline bool
reportCheckFindings(const std::vector<ExpResult>& results)
{
    bool any = false;
    for (const auto& r : results) {
        if (r.checkViolations == 0)
            continue;
        any = true;
        std::printf("CHECK FAILED: %s x %s x %d procs: %llu "
                    "finding(s)\n%s",
                    r.app.c_str(), protocolName(r.protocol), r.nprocs,
                    static_cast<unsigned long long>(r.checkViolations),
                    r.checkReport.c_str());
    }
    if (any)
        std::fflush(stdout);
    return any;
}

/** Parse --scenario / --fault-seed into a FaultPlan. */
inline FaultPlan
faultFrom(const Flags& flags)
{
    return faultPlanFromSpec(flags.get("scenario", "null"),
                             std::stoull(flags.get("fault-seed", "1")));
}

/** Write the Chrome trace of a finished batch if --trace-out=FILE. */
inline void
maybeWriteTrace(const Flags& flags, const std::vector<ExpResult>& results)
{
    const std::string path = flags.get("trace-out", "");
    if (path.empty())
        return;
    writeChromeTrace(path, results);
    std::printf("wrote Chrome trace of %zu runs to %s\n", results.size(),
                path.c_str());
}

inline std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

inline AppScale
scaleFromName(const std::string& name)
{
    if (name == "tiny")
        return AppScale::Tiny;
    if (name == "large")
        return AppScale::Large;
    return AppScale::Small;
}

inline std::vector<std::string>
appList(const Flags& flags)
{
    std::string def;
    for (const char* a : kAppNames) {
        if (!def.empty())
            def += ",";
        def += a;
    }
    return splitList(flags.get("apps", def));
}

inline std::vector<ProtocolKind>
protocolList(const Flags& flags)
{
    std::vector<ProtocolKind> out;
    for (const auto& name : splitList(flags.get(
             "protocols",
             "csm_pp,csm_int,csm_poll,tmk_udp_int,tmk_mc_int,tmk_mc_poll")))
        out.push_back(protocolFromName(name));
    return out;
}

inline std::vector<int>
procList(const Flags& flags, const char* def = "1,2,4,8,16,24,32")
{
    std::vector<int> out;
    for (const auto& s : splitList(flags.get("procs", def)))
        out.push_back(std::stoi(s));
    return out;
}

/** Parse --sim-threads (0 = legacy sequential loop). */
inline int
simThreadsFrom(const Flags& flags)
{
    return std::max(0, std::stoi(flags.get("sim-threads", "0")));
}

inline RunOpts
optsFrom(const Flags& flags)
{
    RunOpts opts;
    opts.scale = scaleFromName(flags.get("scale", "small"));
    opts.seed = std::stoull(flags.get("seed", "1"));
    opts.net = netFrom(flags);
    opts.fault = faultFrom(flags);
    opts.checks = checksFrom(flags);
    opts.simThreads = simThreadsFrom(flags);
    if (flags.has("trace-out"))
        opts.traceCapacity = std::size_t{1} << 18;
    return opts;
}

/**
 * Worker threads for the parallel experiment engine: --jobs=N, else
 * the MCDSM_JOBS environment variable, else hardware_concurrency.
 * Results are identical for any value (see harness/pool.h); jobs only
 * changes how many independent simulations run at once.
 */
inline int
jobsFrom(const Flags& flags)
{
    const std::string v = flags.get("jobs", "");
    if (!v.empty())
        return std::max(1, std::stoi(v));
    int jobs = jobsFromEnv(defaultJobs());
    // Compose --jobs x --sim-threads without oversubscribing the
    // host: each experiment already uses sim-threads workers, so the
    // default batch width shrinks to keep jobs * sim-threads within
    // the hardware budget. An explicit --jobs always wins.
    const int st = simThreadsFrom(flags);
    if (st > 1)
        jobs = std::max(1, jobs / st);
    return jobs;
}

} // namespace mcdsm::bench

#endif // MCDSM_BENCH_BENCH_COMMON_H
