/**
 * @file
 * Shared helpers for the table/figure regeneration binaries: a small
 * flag parser and the default experiment grids.
 */

#ifndef MCDSM_BENCH_BENCH_COMMON_H
#define MCDSM_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/pool.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace mcdsm::bench {

/** Very small --key=value flag parser. */
class Flags
{
  public:
    Flags(int argc, char** argv)
    {
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
    }

    std::string
    get(const std::string& key, const std::string& def) const
    {
        const std::string prefix = "--" + key + "=";
        for (const auto& a : args_) {
            if (a.rfind(prefix, 0) == 0)
                return a.substr(prefix.size());
        }
        return def;
    }

    bool
    has(const std::string& key) const
    {
        const std::string flag = "--" + key;
        for (const auto& a : args_) {
            if (a == flag || a.rfind(flag + "=", 0) == 0)
                return true;
        }
        return false;
    }

  private:
    std::vector<std::string> args_;
};

inline std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

inline AppScale
scaleFromName(const std::string& name)
{
    if (name == "tiny")
        return AppScale::Tiny;
    if (name == "large")
        return AppScale::Large;
    return AppScale::Small;
}

inline std::vector<std::string>
appList(const Flags& flags)
{
    std::string def;
    for (const char* a : kAppNames) {
        if (!def.empty())
            def += ",";
        def += a;
    }
    return splitList(flags.get("apps", def));
}

inline std::vector<ProtocolKind>
protocolList(const Flags& flags)
{
    std::vector<ProtocolKind> out;
    for (const auto& name : splitList(flags.get(
             "protocols",
             "csm_pp,csm_int,csm_poll,tmk_udp_int,tmk_mc_int,tmk_mc_poll")))
        out.push_back(protocolFromName(name));
    return out;
}

inline std::vector<int>
procList(const Flags& flags, const char* def = "1,2,4,8,16,24,32")
{
    std::vector<int> out;
    for (const auto& s : splitList(flags.get("procs", def)))
        out.push_back(std::stoi(s));
    return out;
}

inline RunOpts
optsFrom(const Flags& flags)
{
    RunOpts opts;
    opts.scale = scaleFromName(flags.get("scale", "small"));
    opts.seed = std::stoull(flags.get("seed", "1"));
    return opts;
}

/**
 * Worker threads for the parallel experiment engine: --jobs=N, else
 * the MCDSM_JOBS environment variable, else hardware_concurrency.
 * Results are identical for any value (see harness/pool.h); jobs only
 * changes how many independent simulations run at once.
 */
inline int
jobsFrom(const Flags& flags)
{
    const std::string v = flags.get("jobs", "");
    if (!v.empty())
        return std::max(1, std::stoi(v));
    return jobsFromEnv(defaultJobs());
}

} // namespace mcdsm::bench

#endif // MCDSM_BENCH_BENCH_COMMON_H
