/**
 * @file
 * Shared helpers for the table/figure regeneration binaries: a small
 * flag parser and the default experiment grids.
 */

#ifndef MCDSM_BENCH_BENCH_COMMON_H
#define MCDSM_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "harness/chrome_trace.h"
#include "harness/pool.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace mcdsm::bench {

/** A flag a binary accepts, for --help and unknown-flag rejection. */
struct FlagInfo
{
    const char* name;
    const char* help;
};

// Stock descriptions for the flags shared across binaries; each main
// lists exactly the subset it honors.
inline constexpr FlagInfo kFlagApps{
    "apps", "comma-separated applications"};
inline constexpr FlagInfo kFlagProtocols{
    "protocols", "comma-separated protocol variants"};
inline constexpr FlagInfo kFlagProcs{
    "procs", "comma-separated processor counts"};
inline constexpr FlagInfo kFlagScale{
    "scale", "problem scale: tiny, small or large"};
inline constexpr FlagInfo kFlagSeed{
    "seed", "application RNG seed (default 1)"};
inline constexpr FlagInfo kFlagJobs{
    "jobs",
    "experiment-engine worker threads (default: MCDSM_JOBS or "
    "hardware threads); results are identical for any value"};
inline constexpr FlagInfo kFlagScenario{
    "scenario",
    "fault scenario name[:magnitude], e.g. straggler:4 "
    "(src/fault/; default null)"};
inline constexpr FlagInfo kFlagFaultSeed{
    "fault-seed", "fault-injection seed (default 1)"};
inline constexpr FlagInfo kFlagTraceOut{
    "trace-out", "write a Chrome-trace JSON of every run to FILE"};

/** Very small --key=value flag parser. */
class Flags
{
  public:
    Flags(int argc, char** argv)
    {
        if (argc > 0)
            prog_ = argv[0];
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
    }

    std::string
    get(const std::string& key, const std::string& def) const
    {
        const std::string prefix = "--" + key + "=";
        for (const auto& a : args_) {
            if (a.rfind(prefix, 0) == 0)
                return a.substr(prefix.size());
        }
        return def;
    }

    bool
    has(const std::string& key) const
    {
        const std::string flag = "--" + key;
        for (const auto& a : args_) {
            if (a == flag || a.rfind(flag + "=", 0) == 0)
                return true;
        }
        return false;
    }

    const std::string& prog() const { return prog_; }
    const std::vector<std::string>& raw() const { return args_; }

  private:
    std::string prog_ = "bench";
    std::vector<std::string> args_;
};

/**
 * Uniform --help / unknown-flag handling: every bench binary calls
 * this right after constructing Flags, passing the flags it honors.
 * --help prints them and exits 0; an argument that is not one of them
 * (or not --key[=value] shaped at all) exits 2.
 */
inline void
handleUsage(const Flags& flags, const char* summary,
            std::initializer_list<FlagInfo> known)
{
    if (flags.has("help")) {
        std::printf("%s: %s\n\nFlags:\n", flags.prog().c_str(), summary);
        for (const FlagInfo& f : known)
            std::printf("  --%-14s %s\n", f.name, f.help);
        std::printf("  --%-14s %s\n", "help", "show this message");
        std::exit(0);
    }
    for (const std::string& a : flags.raw()) {
        std::string name;
        if (a.rfind("--", 0) == 0)
            name = a.substr(2, a.find('=') - 2);
        const bool ok =
            !name.empty() &&
            std::any_of(known.begin(), known.end(),
                        [&](const FlagInfo& f) { return name == f.name; });
        if (!ok) {
            std::fprintf(stderr,
                         "%s: unknown argument '%s' (--help lists "
                         "accepted flags)\n",
                         flags.prog().c_str(), a.c_str());
            std::exit(2);
        }
    }
}

/** Parse --scenario / --fault-seed into a FaultPlan. */
inline FaultPlan
faultFrom(const Flags& flags)
{
    return faultPlanFromSpec(flags.get("scenario", "null"),
                             std::stoull(flags.get("fault-seed", "1")));
}

/** Write the Chrome trace of a finished batch if --trace-out=FILE. */
inline void
maybeWriteTrace(const Flags& flags, const std::vector<ExpResult>& results)
{
    const std::string path = flags.get("trace-out", "");
    if (path.empty())
        return;
    writeChromeTrace(path, results);
    std::printf("wrote Chrome trace of %zu runs to %s\n", results.size(),
                path.c_str());
}

inline std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

inline AppScale
scaleFromName(const std::string& name)
{
    if (name == "tiny")
        return AppScale::Tiny;
    if (name == "large")
        return AppScale::Large;
    return AppScale::Small;
}

inline std::vector<std::string>
appList(const Flags& flags)
{
    std::string def;
    for (const char* a : kAppNames) {
        if (!def.empty())
            def += ",";
        def += a;
    }
    return splitList(flags.get("apps", def));
}

inline std::vector<ProtocolKind>
protocolList(const Flags& flags)
{
    std::vector<ProtocolKind> out;
    for (const auto& name : splitList(flags.get(
             "protocols",
             "csm_pp,csm_int,csm_poll,tmk_udp_int,tmk_mc_int,tmk_mc_poll")))
        out.push_back(protocolFromName(name));
    return out;
}

inline std::vector<int>
procList(const Flags& flags, const char* def = "1,2,4,8,16,24,32")
{
    std::vector<int> out;
    for (const auto& s : splitList(flags.get("procs", def)))
        out.push_back(std::stoi(s));
    return out;
}

inline RunOpts
optsFrom(const Flags& flags)
{
    RunOpts opts;
    opts.scale = scaleFromName(flags.get("scale", "small"));
    opts.seed = std::stoull(flags.get("seed", "1"));
    opts.fault = faultFrom(flags);
    if (flags.has("trace-out"))
        opts.traceCapacity = std::size_t{1} << 18;
    return opts;
}

/**
 * Worker threads for the parallel experiment engine: --jobs=N, else
 * the MCDSM_JOBS environment variable, else hardware_concurrency.
 * Results are identical for any value (see harness/pool.h); jobs only
 * changes how many independent simulations run at once.
 */
inline int
jobsFrom(const Flags& flags)
{
    const std::string v = flags.get("jobs", "");
    if (!v.empty())
        return std::max(1, std::stoi(v));
    return jobsFromEnv(defaultJobs());
}

} // namespace mcdsm::bench

#endif // MCDSM_BENCH_BENCH_COMMON_H
