/**
 * @file
 * Regenerates Figure 5: speedups of the eight applications on up to
 * 32 processors for all six protocol variants. Speedups are relative
 * to the unlinked sequential run (Table 2), as in the paper.
 *
 * Flags: --apps=..., --protocols=..., --procs=..., --scale=...,
 * --jobs=N (parallel experiment engine; default hardware threads).
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(flags,
                "Figure 5: speedups of the eight applications for all "
                "six protocol variants",
                {kFlagApps, kFlagProtocols, kFlagProcs, kFlagScale,
                 kFlagSeed, kFlagJobs, kFlagNet, kFlagScenario,
                 kFlagFaultSeed, kFlagTraceOut, kFlagCheck, kFlagSimThreads});
    RunOpts opts = optsFrom(flags);

    const auto apps = appList(flags);
    const auto kinds = protocolList(flags);
    const auto procs = procList(flags);
    const int jobs = jobsFrom(flags);

    // Build the whole grid as one batch — the engine overlaps every
    // cell (and the sequential baselines) across worker threads; the
    // printout below then walks results in the original order.
    std::vector<ExpSpec> specs;
    std::vector<std::size_t> seq_at(apps.size());
    // cell_at[app][proc][kind] = index into specs, or npos.
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::vector<std::vector<std::size_t>>> cell_at(
        apps.size(),
        std::vector<std::vector<std::size_t>>(
            procs.size(), std::vector<std::size_t>(kinds.size(), npos)));

    for (std::size_t a = 0; a < apps.size(); ++a) {
        seq_at[a] = specs.size();
        specs.push_back({apps[a], ProtocolKind::None, 1, opts});
        for (std::size_t pi = 0; pi < procs.size(); ++pi) {
            for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
                if (!configSupported(kinds[ki], procs[pi]))
                    continue;
                cell_at[a][pi][ki] = specs.size();
                specs.push_back({apps[a], kinds[ki], procs[pi], opts});
            }
        }
    }

    const std::vector<ExpResult> results = runExperiments(specs, jobs);

    std::printf("Figure 5: speedups (scale=%s, jobs=%d)\n\n",
                flags.get("scale", "small").c_str(), jobs);

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const ExpResult& seq = results[seq_at[a]];
        std::printf("%s  (sequential: %.2f s)\n", apps[a].c_str(),
                    seq.seconds());

        std::vector<std::string> headers = {"procs"};
        for (ProtocolKind k : kinds)
            headers.push_back(protocolName(k));
        TextTable table(std::move(headers));

        for (std::size_t pi = 0; pi < procs.size(); ++pi) {
            std::vector<std::string> row = {std::to_string(procs[pi])};
            for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
                const std::size_t idx = cell_at[a][pi][ki];
                if (idx == npos) {
                    row.push_back("n/a");
                    continue;
                }
                const ExpResult& r = results[idx];
                row.push_back(
                    TextTable::num(seq.seconds() / r.seconds(), 2));
            }
            table.addRow(std::move(row));
        }
        table.print();
        std::printf("\n");
        std::fflush(stdout);
    }
    maybeWriteTrace(flags, results);
    return reportCheckFindings(results) ? 1 : 0;
}
