/**
 * @file
 * Regenerates Figure 5: speedups of the eight applications on up to
 * 32 processors for all six protocol variants. Speedups are relative
 * to the unlinked sequential run (Table 2), as in the paper.
 *
 * Flags: --apps=..., --protocols=..., --procs=..., --scale=...
 */

#include "bench_common.h"

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    RunOpts opts = optsFrom(flags);

    const auto apps = appList(flags);
    const auto kinds = protocolList(flags);
    const auto procs = procList(flags);

    std::printf("Figure 5: speedups (scale=%s)\n\n",
                flags.get("scale", "small").c_str());

    for (const auto& app : apps) {
        ExpResult seq = runSequential(app, opts);
        std::printf("%s  (sequential: %.2f s)\n", app.c_str(),
                    seq.seconds());

        std::vector<std::string> headers = {"procs"};
        for (ProtocolKind k : kinds)
            headers.push_back(protocolName(k));
        TextTable table(std::move(headers));

        for (int np : procs) {
            std::vector<std::string> row = {std::to_string(np)};
            for (ProtocolKind k : kinds) {
                if (!configSupported(k, np)) {
                    row.push_back("n/a");
                    continue;
                }
                ExpResult r = runExperiment(app, k, np, opts);
                row.push_back(
                    TextTable::num(seq.seconds() / r.seconds(), 2));
            }
            table.addRow(std::move(row));
        }
        table.print();
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
