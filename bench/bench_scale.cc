/**
 * @file
 * Scale-cliff report: sweeps processor counts far past the paper's 32
 * (default 32..1024) for one app per protocol family plus the KV
 * serving workload, and reports where simulated speedup flattens and
 * what the simulator itself costs to get there.
 *
 * Two axes per configuration:
 *  - simulated speedup: sequential simulated time / parallel
 *    simulated time, the paper's figure of merit, extended past the
 *    32-processor SC machine;
 *  - host events/sec: simulator throughput, the figure the scaling
 *    work in this repo is gated on (directory bitsets, combining-tree
 *    barriers, sparse timestamp deltas, O(P)-free per-event paths).
 *
 * Results are bit-identical for any --jobs value (--check-det proves
 * it in CI), and --perf-gate compares host throughput against the
 * committed floor in ci/perf_baseline.json so raw-speed regressions
 * fail the build. --json and --trace-out match the other benches.
 */

#include <chrono>
#include <cstring>
#include <map>

#include "bench_common.h"

namespace mcdsm::bench {
namespace {

/** Simulator work proxy: events processed during one run. */
std::uint64_t
simEvents(const RunStats& s)
{
    std::uint64_t n = s.messages;
    for (const auto& p : s.procs) {
        n += p.cacheAccesses + p.readFaults + p.writeFaults +
             p.requestsServiced + p.lockAcquires + p.barriers +
             p.flagOps;
    }
    return n;
}

/**
 * Extract a named top-level number from a JSON report written by this
 * binary (naive key scan — the schema is ours and flat).
 */
bool
readJsonNumber(const std::string& path, const char* key, double* out)
{
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    const std::string needle = std::string{"\""} + key + "\":";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos)
        return false;
    *out = std::strtod(text.c_str() + at + needle.size(), nullptr);
    return true;
}

/** Bit-exact comparison of two runs of the same spec. */
bool
sameResult(const ExpResult& a, const ExpResult& b, std::string* why)
{
    if (a.elapsed != b.elapsed) {
        *why = "simulated time differs";
        return false;
    }
    if (std::memcmp(&a.appResult.checksum, &b.appResult.checksum,
                    sizeof(a.appResult.checksum)) != 0) {
        *why = "application checksum differs";
        return false;
    }
    if (a.stats.messages != b.stats.messages) {
        *why = "message count differs";
        return false;
    }
    return true;
}

std::vector<ExpSpec>
buildSpecs(const Flags& flags, const RunOpts& opts)
{
    std::vector<ExpSpec> specs;
    for (const auto& app :
         splitList(flags.get("apps", "sor,gauss,kv"))) {
        for (const auto& proto : splitList(
                 flags.get("protocols", "csm_poll,tmk_mc_poll"))) {
            const ProtocolKind k = protocolFromName(proto);
            for (const auto& np : splitList(
                     flags.get("procs", "32,64,128,256,512,1024"))) {
                const int nprocs = std::stoi(np);
                if (!configSupported(k, nprocs)) {
                    std::printf("skipping %s at %d procs "
                                "(unsupported)\n",
                                protocolName(k), nprocs);
                    continue;
                }
                specs.push_back({app, k, nprocs, opts});
            }
        }
    }
    return specs;
}

/**
 * --check-det: rerun the sweep with --jobs=1 and --jobs=2 and require
 * bit-identical results. CI drives this at P=128. With --sim-threads=N
 * (N > 1) the sweep is additionally rerun on the serial engine
 * (--sim-threads=1) and must match bit for bit: worker count, like the
 * job count, must be invisible in every simulated observable.
 */
int
checkDeterminism(const Flags& flags, const RunOpts& opts)
{
    const std::vector<ExpSpec> specs = buildSpecs(flags, opts);
    const auto r1 = runExperiments(specs, 1);
    const auto r2 = runExperiments(specs, 2);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        std::string why;
        if (!sameResult(r1[i], r2[i], &why)) {
            std::printf("DETERMINISM FAILED: %s x %s x %d procs: %s\n",
                        specs[i].app.c_str(),
                        protocolName(specs[i].protocol),
                        specs[i].nprocs, why.c_str());
            return 1;
        }
    }
    std::printf("determinism OK: %zu configs bit-identical for "
                "--jobs=1 and --jobs=2\n",
                specs.size());
    if (opts.simThreads > 1) {
        RunOpts serial = opts;
        serial.simThreads = 1;
        const auto r0 = runExperiments(buildSpecs(flags, serial), 1);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            std::string why;
            if (!sameResult(r0[i], r1[i], &why)) {
                std::printf("SIM-THREADS INVARIANCE FAILED: %s x %s x "
                            "%d procs: %s (sim-threads %d vs 1)\n",
                            specs[i].app.c_str(),
                            protocolName(specs[i].protocol),
                            specs[i].nprocs, why.c_str(),
                            opts.simThreads);
                return 1;
            }
        }
        std::printf("sim-threads invariance OK: %zu configs "
                    "bit-identical for --sim-threads=%d and 1\n",
                    specs.size(), opts.simThreads);
    }
    return 0;
}

int
run(const Flags& flags)
{
    using clock = std::chrono::steady_clock;

    RunOpts opts;
    opts.scale = scaleFromName(flags.get("scale", "tiny"));
    opts.seed = std::stoull(flags.get("seed", "1"));
    opts.net = netFrom(flags);
    opts.fault = faultFrom(flags);
    opts.simThreads = simThreadsFrom(flags);
    if (flags.has("trace-out"))
        opts.traceCapacity = std::size_t{1} << 18;
    if (flags.has("sparse-vt")) {
        DsmConfig base;
        base.tmkSparseVt = true;
        opts.base = base;
    }

    if (flags.has("check-det"))
        return checkDeterminism(flags, opts);

    const int jobs = jobsFrom(flags);
    const int repeat = std::max(1, std::stoi(flags.get("repeat", "1")));
    const std::vector<ExpSpec> specs = buildSpecs(flags, opts);

    // Sequential baselines (one per app) for the speedup column.
    std::map<std::string, double> seq_secs;
    for (const auto& s : specs) {
        if (seq_secs.count(s.app) != 0)
            continue;
        seq_secs[s.app] = runSequential(s.app, opts).seconds();
    }

    // Host time per config is the min across repetitions (the
    // standard noise-robust estimator); simulated results are
    // identical every round.
    std::vector<ExpResult> results(specs.size());
    std::vector<double> host_secs(specs.size(), 0.0);
    for (int rep = 0; rep < repeat; ++rep) {
        parallelFor(specs.size(), jobs, [&](std::size_t i) {
            const auto t0 = clock::now();
            const ExpSpec& s = specs[i];
            results[i] =
                runExperiment(s.app, s.protocol, s.nprocs, s.opts);
            const double secs =
                std::chrono::duration<double>(clock::now() - t0)
                    .count();
            host_secs[i] = rep == 0 ? secs
                                    : std::min(host_secs[i], secs);
        });
    }

    double host_total = 0, sim_total = 0;
    std::uint64_t events_total = 0;
    std::printf("%-8s %-12s %6s %10s %10s %14s %14s %9s\n", "app",
                "protocol", "procs", "host(s)", "sim(s)", "events",
                "events/host-s", "speedup");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const ExpResult& r = results[i];
        const std::uint64_t ev = simEvents(r.stats);
        const double seq = seq_secs[r.app];
        host_total += host_secs[i];
        sim_total += r.seconds();
        events_total += ev;
        std::printf("%-8s %-12s %6d %10.3f %10.3f %14llu %14.0f "
                    "%9.2f\n",
                    r.app.c_str(), protocolName(r.protocol), r.nprocs,
                    host_secs[i], r.seconds(),
                    static_cast<unsigned long long>(ev),
                    host_secs[i] > 0 ? ev / host_secs[i] : 0.0,
                    r.seconds() > 0 ? seq / r.seconds() : 0.0);
    }
    const double total_rate =
        host_total > 0 ? events_total / host_total : 0.0;
    std::printf("total: host-cpu %.3f s, sim %.3f s, %llu events, "
                "%.0f events/host-cpu-s, jobs %d, repeat %d\n",
                host_total, sim_total,
                static_cast<unsigned long long>(events_total),
                total_rate, jobs, repeat);

    const std::string json = flags.get("json", "");
    if (!json.empty()) {
        std::FILE* f = std::fopen(json.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json.c_str());
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"bench_scale\",\n");
        std::fprintf(f, "  \"scale\": \"%s\",\n",
                     flags.get("scale", "tiny").c_str());
        std::fprintf(f, "  \"jobs\": %d,\n  \"repeat\": %d,\n", jobs,
                     repeat);
        std::fprintf(f, "  \"simThreads\": %d,\n", opts.simThreads);
        std::fprintf(f, "  \"sparseVt\": %s,\n",
                     flags.has("sparse-vt") ? "true" : "false");
        std::fprintf(f, "  \"net\": \"%s\",\n", netName(opts.net));
        std::fprintf(f, "  \"configs\": [\n");
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const ExpResult& r = results[i];
            const std::uint64_t ev = simEvents(r.stats);
            std::uint64_t cks_bits = 0;
            static_assert(sizeof(cks_bits) ==
                          sizeof(r.appResult.checksum));
            std::memcpy(&cks_bits, &r.appResult.checksum,
                        sizeof(cks_bits));
            const double seq = seq_secs[r.app];
            std::fprintf(
                f,
                "    {\"app\": \"%s\", \"protocol\": \"%s\", "
                "\"nprocs\": %d, \"hostSeconds\": %.6f, "
                "\"simSeconds\": %.9f, \"seqSimSeconds\": %.9f, "
                "\"speedup\": %.4f, \"simEvents\": %llu, "
                "\"eventsPerHostSec\": %.1f, "
                "\"netBytes\": %llu, \"oneSidedBytes\": %llu, "
                "\"checksumBits\": \"0x%016llx\"}%s\n",
                r.app.c_str(), protocolName(r.protocol), r.nprocs,
                host_secs[i], r.seconds(), seq,
                r.seconds() > 0 ? seq / r.seconds() : 0.0,
                static_cast<unsigned long long>(ev),
                host_secs[i] > 0 ? ev / host_secs[i] : 0.0,
                static_cast<unsigned long long>(r.stats.mcBytes),
                static_cast<unsigned long long>(
                    r.stats.netOneSidedBytes),
                static_cast<unsigned long long>(cks_bits),
                i + 1 < specs.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n  \"totals\": {\"hostSeconds\": %.6f, "
                     "\"simSeconds\": %.9f, \"simEvents\": %llu, "
                     "\"eventsPerHostSecTotal\": %.1f}\n}\n",
                     host_total, sim_total,
                     static_cast<unsigned long long>(events_total),
                     total_rate);
        std::fclose(f);
        std::printf("wrote %s\n", json.c_str());
    }
    maybeWriteTrace(flags, results);

    // --perf-gate=FILE: host-throughput floor. The committed baseline
    // carries gateEventsPerHostSec, already derated well below a
    // developer-machine measurement (CI machines are slow and noisy;
    // like the alloc gate, this catches step-function regressions,
    // not percent-level drift).
    const std::string gate = flags.get("perf-gate", "");
    if (!gate.empty()) {
        // Engine sweeps gate against their own floor: epoch barriers
        // and staged delivery have a different (lower) per-event cost
        // profile than the sequential loop, so sharing one floor would
        // either mask engine regressions or flake the serial gate.
        const char* key = opts.simThreads > 1
                              ? "gateEventsPerHostSecSimThreads"
                              : "gateEventsPerHostSec";
        double floor = 0.0;
        if (!readJsonNumber(gate, key, &floor)) {
            std::fprintf(stderr, "perf-gate: cannot read %s from %s\n",
                         key, gate.c_str());
            return 2;
        }
        if (total_rate < floor) {
            std::fprintf(stderr,
                         "PERF GATE FAILED: %.0f events/host-cpu-s < "
                         "floor %.0f (%s)\n",
                         total_rate, floor, gate.c_str());
            return 1;
        }
        std::printf("perf gate OK: %.0f events/host-cpu-s >= floor "
                    "%.0f\n",
                    total_rate, floor);
    }
    return 0;
}

} // namespace
} // namespace mcdsm::bench

int
main(int argc, char** argv)
{
    using namespace mcdsm;
    using namespace mcdsm::bench;
    Flags flags(argc, argv);
    handleUsage(
        flags,
        "scale-cliff report: processor counts past the paper "
        "(default 32..1024) for one app per protocol family plus KV, "
        "reporting host events/sec and simulated speedup",
        {{"apps", "comma-separated applications (default sor,gauss,kv)"},
         {"protocols",
          "comma-separated protocol variants (default "
          "csm_poll,tmk_mc_poll)"},
         {"procs",
          "comma-separated processor counts (default "
          "32,64,128,256,512,1024)"},
         {"repeat",
          "rounds per config; host time is the min (default 1)"},
         {"sparse-vt",
          "ship run-length-compressed vector-timestamp deltas "
          "(DsmConfig::tmkSparseVt)", FlagArg::None},
         {"json", "write a machine-readable report to FILE"},
         {"check-det",
          "determinism gate: run the sweep with --jobs=1 and "
          "--jobs=2 and require bit-identical results, then exit",
          FlagArg::None},
         {"perf-gate",
          "fail if total events/host-cpu-s drops below the floor "
          "committed in FILE (ci/perf_baseline.json)"},
         kFlagScale, kFlagSeed, kFlagJobs, kFlagNet, kFlagScenario,
         kFlagFaultSeed, kFlagTraceOut, kFlagSimThreads});
    return run(flags);
}
