
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cc" "src/CMakeFiles/mcdsm.dir/apps/app.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/apps/app.cc.o.d"
  "/root/repo/src/apps/barnes.cc" "src/CMakeFiles/mcdsm.dir/apps/barnes.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/apps/barnes.cc.o.d"
  "/root/repo/src/apps/em3d.cc" "src/CMakeFiles/mcdsm.dir/apps/em3d.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/apps/em3d.cc.o.d"
  "/root/repo/src/apps/gauss.cc" "src/CMakeFiles/mcdsm.dir/apps/gauss.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/apps/gauss.cc.o.d"
  "/root/repo/src/apps/ilink.cc" "src/CMakeFiles/mcdsm.dir/apps/ilink.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/apps/ilink.cc.o.d"
  "/root/repo/src/apps/lu.cc" "src/CMakeFiles/mcdsm.dir/apps/lu.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/apps/lu.cc.o.d"
  "/root/repo/src/apps/sor.cc" "src/CMakeFiles/mcdsm.dir/apps/sor.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/apps/sor.cc.o.d"
  "/root/repo/src/apps/tsp.cc" "src/CMakeFiles/mcdsm.dir/apps/tsp.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/apps/tsp.cc.o.d"
  "/root/repo/src/apps/water.cc" "src/CMakeFiles/mcdsm.dir/apps/water.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/apps/water.cc.o.d"
  "/root/repo/src/cache/cache_model.cc" "src/CMakeFiles/mcdsm.dir/cache/cache_model.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/cache/cache_model.cc.o.d"
  "/root/repo/src/cashmere/cashmere.cc" "src/CMakeFiles/mcdsm.dir/cashmere/cashmere.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/cashmere/cashmere.cc.o.d"
  "/root/repo/src/cashmere/directory.cc" "src/CMakeFiles/mcdsm.dir/cashmere/directory.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/cashmere/directory.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/mcdsm.dir/common/log.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/common/log.cc.o.d"
  "/root/repo/src/dsm/null_protocol.cc" "src/CMakeFiles/mcdsm.dir/dsm/null_protocol.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/dsm/null_protocol.cc.o.d"
  "/root/repo/src/dsm/runtime.cc" "src/CMakeFiles/mcdsm.dir/dsm/runtime.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/dsm/runtime.cc.o.d"
  "/root/repo/src/dsm/system.cc" "src/CMakeFiles/mcdsm.dir/dsm/system.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/dsm/system.cc.o.d"
  "/root/repo/src/dsm/trace.cc" "src/CMakeFiles/mcdsm.dir/dsm/trace.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/dsm/trace.cc.o.d"
  "/root/repo/src/harness/runner.cc" "src/CMakeFiles/mcdsm.dir/harness/runner.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/harness/runner.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/mcdsm.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/harness/table.cc.o.d"
  "/root/repo/src/net/mailbox.cc" "src/CMakeFiles/mcdsm.dir/net/mailbox.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/net/mailbox.cc.o.d"
  "/root/repo/src/net/memory_channel.cc" "src/CMakeFiles/mcdsm.dir/net/memory_channel.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/net/memory_channel.cc.o.d"
  "/root/repo/src/sim/fiber.cc" "src/CMakeFiles/mcdsm.dir/sim/fiber.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/sim/fiber.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/mcdsm.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/mcdsm.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/sim/stats.cc.o.d"
  "/root/repo/src/treadmarks/diff.cc" "src/CMakeFiles/mcdsm.dir/treadmarks/diff.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/treadmarks/diff.cc.o.d"
  "/root/repo/src/treadmarks/treadmarks.cc" "src/CMakeFiles/mcdsm.dir/treadmarks/treadmarks.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/treadmarks/treadmarks.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/CMakeFiles/mcdsm.dir/vm/page_table.cc.o" "gcc" "src/CMakeFiles/mcdsm.dir/vm/page_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
