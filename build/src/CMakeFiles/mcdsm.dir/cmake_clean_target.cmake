file(REMOVE_RECURSE
  "libmcdsm.a"
)
