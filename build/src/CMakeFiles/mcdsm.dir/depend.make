# Empty dependencies file for mcdsm.
# This may be replaced when dependencies are built.
