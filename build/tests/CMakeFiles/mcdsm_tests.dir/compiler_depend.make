# Empty compiler generated dependencies file for mcdsm_tests.
# This may be replaced when dependencies are built.
