
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_cashmere.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_cashmere.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_cashmere.cc.o.d"
  "/root/repo/tests/test_consistency.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_consistency.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_consistency.cc.o.d"
  "/root/repo/tests/test_dsm_basic.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_dsm_basic.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_dsm_basic.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_net.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_net.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_net.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_stats_rng.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_stats_rng.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_stats_rng.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_treadmarks.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_treadmarks.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_treadmarks.cc.o.d"
  "/root/repo/tests/test_vm_cache.cc" "tests/CMakeFiles/mcdsm_tests.dir/test_vm_cache.cc.o" "gcc" "tests/CMakeFiles/mcdsm_tests.dir/test_vm_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcdsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
