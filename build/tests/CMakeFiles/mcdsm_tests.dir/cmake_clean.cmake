file(REMOVE_RECURSE
  "CMakeFiles/mcdsm_tests.dir/test_apps.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_apps.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_cashmere.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_cashmere.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_consistency.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_consistency.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_dsm_basic.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_dsm_basic.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_harness.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_harness.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_net.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_net.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_sim.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_sim.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_stats_rng.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_stats_rng.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_trace.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_trace.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_treadmarks.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_treadmarks.cc.o.d"
  "CMakeFiles/mcdsm_tests.dir/test_vm_cache.cc.o"
  "CMakeFiles/mcdsm_tests.dir/test_vm_cache.cc.o.d"
  "mcdsm_tests"
  "mcdsm_tests.pdb"
  "mcdsm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdsm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
