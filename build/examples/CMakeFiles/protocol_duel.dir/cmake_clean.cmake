file(REMOVE_RECURSE
  "CMakeFiles/protocol_duel.dir/protocol_duel.cpp.o"
  "CMakeFiles/protocol_duel.dir/protocol_duel.cpp.o.d"
  "protocol_duel"
  "protocol_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
