# Empty dependencies file for protocol_duel.
# This may be replaced when dependencies are built.
