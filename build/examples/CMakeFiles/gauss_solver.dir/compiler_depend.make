# Empty compiler generated dependencies file for gauss_solver.
# This may be replaced when dependencies are built.
