/**
 * @file
 * Negative tests for the verification layer: each fixture contains a
 * deliberate bug (a protocol that loses updates, an application that
 * inverts lock order or breaks the lock discipline) and asserts that
 * the corresponding detector fires. A clean program and a determinism
 * check round things out — a checker that cries wolf, stays silent, or
 * wobbles between runs is worse than none.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/log.h"
#include "dsm/proc.h"
#include "dsm/protocol.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"

namespace mcdsm {
namespace {

// ---------------------------------------------------------------------------
// StaleProtocol: a toy protocol that skips invalidation entirely.
// ---------------------------------------------------------------------------

constexpr int kStaleReqBarrier = 1;
constexpr int kStaleRepBarrier = kReplyBase + 1;

/**
 * A deliberately broken coherence protocol: every processor computes
 * on its own private copy of each page and no write is ever shipped or
 * invalidated, so updates are silently lost across processors. The
 * barrier itself is real (message rendezvous through processor 0), so
 * the synchronization order is sound — only the data movement is
 * wrong. That is precisely the bug class the coherence-invariant
 * oracle exists for: a read that happens-after a write yet returns
 * stale bytes is a data-value violation no checksum-tolerant app test
 * is guaranteed to catch.
 */
class StaleProtocol final : public Protocol
{
  public:
    void
    attach(DsmRuntime& rt) override
    {
        rt_ = &rt;
    }

    void
    onReadFault(ProcCtx& ctx, PageNum pn) override
    {
        mapPrivate(ctx, pn);
    }

    void
    onWriteFault(ProcCtx& ctx, PageNum pn) override
    {
        mapPrivate(ctx, pn);
    }

    void
    acquire(ProcCtx&, int) override
    {
        mcdsm_panic("StaleProtocol has no locks");
    }

    void
    release(ProcCtx&, int) override
    {
        mcdsm_panic("StaleProtocol has no locks");
    }

    void
    setFlag(ProcCtx&, int) override
    {
        mcdsm_panic("StaleProtocol has no flags");
    }

    void
    waitFlag(ProcCtx&, int) override
    {
        mcdsm_panic("StaleProtocol has no flags");
    }

    void
    barrier(ProcCtx& ctx, int barrier_id) override
    {
        const int nprocs = rt_->nprocs();
        if (nprocs == 1)
            return;
        if (ctx.id == 0) {
            Bar& bar = bars_[barrier_id];
            ctx.noteWait("stale_barrier_mgr", barrier_id);
            rt_->waitEvent(ctx, [&bar, nprocs] {
                return bar.arrived == nprocs - 1;
            });
            for (ProcId q : bar.waiters) {
                Message rep;
                rep.type = kStaleRepBarrier;
                rep.a = static_cast<std::uint64_t>(barrier_id);
                rep.bytes = 32;
                rt_->sendMessage(ctx, q, std::move(rep));
            }
            bar.waiters.clear();
            bar.arrived = 0;
        } else {
            Message req;
            req.type = kStaleReqBarrier;
            req.a = static_cast<std::uint64_t>(barrier_id);
            req.bytes = 32;
            rt_->sendMessage(ctx, 0, std::move(req));
            ctx.noteWait("stale_barrier", barrier_id);
            rt_->waitReply(ctx,
                           ReplyMatch{kStaleRepBarrier, barrier_id, -1});
        }
    }

    void
    serviceRequest(ProcCtx&, Message& msg) override
    {
        mcdsm_assert(msg.type == kStaleReqBarrier,
                     "StaleProtocol: unexpected request");
        Bar& bar = bars_[static_cast<int>(msg.a)];
        bar.arrived += 1;
        bar.waiters.push_back(msg.src);
    }

  private:
    struct Bar
    {
        int arrived = 0;
        std::vector<ProcId> waiters;
    };

    void
    mapPrivate(ProcCtx& ctx, PageNum pn)
    {
        if (ctx.frame(pn) == nullptr) {
            std::uint8_t* f = rt_->allocFrame();
            std::memcpy(f, rt_->initFrame(pn), kPageSize);
            ctx.mapFrame(pn, f);
        }
        ctx.pt.setProtection(pn, ProtRw);
    }

    DsmRuntime* rt_ = nullptr;
    std::map<int, Bar> bars_;
};

TEST(CheckViolations, StaleProtocolTripsDataValueOracle)
{
    DsmConfig cfg;
    cfg.protocol = ProtocolKind::TmkUdpInt; // servicing mode only
    cfg.topo = Topology::standard(2);
    cfg.maxSharedBytes = 1 << 20;
    cfg.checks = CheckConfig::all();

    DsmRuntime rt(cfg, std::make_unique<StaleProtocol>());
    const GAddr a = rt.alloc(sizeof(std::int64_t));
    rt.hostStore<std::int64_t>(a, 0);

    rt.run([&](Proc& p) {
        if (p.id() == 0)
            p.write<std::int64_t>(a, 42);
        p.barrier(0);
        if (p.id() == 1)
            (void)p.read<std::int64_t>(a); // sees stale 0, not 42
    });

    const CheckerSuite* suite = rt.checks();
    ASSERT_NE(suite, nullptr);
    EXPECT_GE(suite->oracle()->valueViolations(), 1u);
    // The write and the read are barrier-ordered: the protocol lost
    // the update, the application did nothing wrong, so the oracle
    // must be the only analysis that fires.
    EXPECT_EQ(suite->raceChecker()->raceCount(), 0u);
    EXPECT_EQ(suite->lockset()->violations(), 0u);
    EXPECT_EQ(suite->lockOrder()->violations(), 0u);
    EXPECT_GE(rt.stats().checkViolations, 1u);
    EXPECT_NE(suite->report().find("invariant"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SWMR: unsynchronized concurrent writes under a real protocol.
// ---------------------------------------------------------------------------

TEST(CheckViolations, UnsyncedWritesTripSwmrInvariant)
{
    DsmConfig cfg;
    cfg.protocol = ProtocolKind::CsmPoll;
    cfg.topo = Topology::standard(2);
    cfg.maxSharedBytes = 1 << 20;
    cfg.checks.invariant = true;

    auto sys = DsmSystem::create(cfg);
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 8);
    sys->run([&](Proc& p) {
        arr.set(p, 0, p.id() + 1); // both procs, no sync: SWMR broken
        p.barrier(0);
    });

    const CheckerSuite* suite = sys->runtime().checks();
    ASSERT_NE(suite, nullptr);
    EXPECT_GE(suite->oracle()->swmrViolations(), 1u);
    EXPECT_GE(sys->stats().checkViolations, 1u);
}

// ---------------------------------------------------------------------------
// Lock-order inversion: a cycle the schedule happened not to trip.
// ---------------------------------------------------------------------------

TEST(CheckViolations, LockOrderInversionIsPredicted)
{
    DsmConfig cfg;
    cfg.protocol = ProtocolKind::CsmPoll;
    cfg.topo = Topology::standard(2);
    cfg.maxSharedBytes = 1 << 20;
    cfg.checks.deadlock = true;

    auto sys = DsmSystem::create(cfg);
    // The barrier separates the two nestings in time, so this run
    // cannot deadlock — exactly the case cycle detection exists for:
    // an adversarial interleaving of the same program can.
    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            p.acquire(0);
            p.acquire(1);
            p.release(1);
            p.release(0);
        }
        p.barrier(0);
        if (p.id() == 1) {
            p.acquire(1);
            p.acquire(0);
            p.release(0);
            p.release(1);
        }
        p.barrier(1);
    });

    const CheckerSuite* suite = sys->runtime().checks();
    ASSERT_NE(suite, nullptr);
    EXPECT_GE(suite->lockOrder()->violations(), 1u);
    EXPECT_NE(suite->report().find("deadlock"), std::string::npos);
    EXPECT_GE(sys->stats().checkViolations, 1u);
}

// ---------------------------------------------------------------------------
// Lockset vs happens-before: a discipline breach this schedule
// serialized. The lockset detector must fire, the vector-clock
// detector must not, and cross-validation must notice they disagree.
// ---------------------------------------------------------------------------

struct LocksetFixtureResult
{
    std::uint64_t locksetViolations = 0;
    std::uint64_t races = 0;
    std::uint64_t disagreements = 0;
    std::string report;
};

LocksetFixtureResult
runLocksetFixture()
{
    DsmConfig cfg;
    cfg.protocol = ProtocolKind::CsmPoll;
    cfg.topo = Topology::standard(2);
    cfg.maxSharedBytes = 1 << 20;
    cfg.checks.race = true;
    cfg.checks.lockset = true;

    auto sys = DsmSystem::create(cfg);
    const GAddr x = sys->alloc(sizeof(std::int64_t));
    const GAddr g = sys->alloc(sizeof(std::int64_t));
    sys->hostStore<std::int64_t>(x, 0);
    sys->hostStore<std::int64_t>(g, 0);

    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            // Writes x under lock 0 and publishes a guard.
            p.acquire(0);
            p.write<std::int64_t>(x, 1);
            p.write<std::int64_t>(g, 1);
            p.release(0);
        } else {
            // Polls the guard under lock 0 — once it reads 1, the
            // write below is lock-chain ordered after proc 0's
            // (no happens-before race) — then writes x under a
            // *different* lock, breaking the discipline.
            for (;;) {
                p.pollPoint();
                p.acquire(0);
                const std::int64_t done = p.read<std::int64_t>(g);
                p.release(0);
                if (done == 1)
                    break;
            }
            p.acquire(1);
            p.write<std::int64_t>(x, 2);
            p.release(1);
        }
    });

    const CheckerSuite* suite = sys->runtime().checks();
    LocksetFixtureResult r;
    r.locksetViolations = suite->lockset()->violations();
    r.races = suite->raceChecker()->raceCount();
    r.disagreements = suite->disagreements();
    r.report = suite->report();
    return r;
}

TEST(CheckViolations, LocksetFiresWhereHappensBeforeCannot)
{
    const LocksetFixtureResult r = runLocksetFixture();
    EXPECT_GE(r.locksetViolations, 1u);
    EXPECT_EQ(r.races, 0u);
    EXPECT_GE(r.disagreements, 1u);
    EXPECT_NE(r.report.find("lockset"), std::string::npos);
    EXPECT_NE(r.report.find("cross-validation"), std::string::npos);
}

TEST(CheckViolations, ReportsAreByteIdenticalAcrossRuns)
{
    const LocksetFixtureResult a = runLocksetFixture();
    const LocksetFixtureResult b = runLocksetFixture();
    ASSERT_FALSE(a.report.empty());
    EXPECT_EQ(a.report, b.report);
    EXPECT_EQ(a.locksetViolations, b.locksetViolations);
    EXPECT_EQ(a.disagreements, b.disagreements);
}

// ---------------------------------------------------------------------------
// A clean program keeps every analysis quiet.
// ---------------------------------------------------------------------------

void
expectClean(ProtocolKind kind)
{
    DsmConfig cfg;
    cfg.protocol = kind;
    cfg.topo = Topology::standard(4);
    cfg.maxSharedBytes = 1 << 20;
    cfg.checks = CheckConfig::all();

    auto sys = DsmSystem::create(cfg);
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 64);
    const GAddr sum = sys->alloc(sizeof(std::int64_t));
    sys->hostStore<std::int64_t>(sum, 0);

    sys->run([&](Proc& p) {
        arr.set(p, p.id(), p.id() + 1); // disjoint slots
        p.barrier(0);
        std::int64_t local = 0;
        for (int i = 0; i < p.nprocs(); ++i)
            local += arr.get(p, i);
        p.acquire(0);
        p.write<std::int64_t>(sum,
                              p.read<std::int64_t>(sum) + local);
        p.release(0);
        p.barrier(1);
    });

    const CheckerSuite* suite = sys->runtime().checks();
    ASSERT_NE(suite, nullptr);
    EXPECT_EQ(suite->violations(), 0u)
        << protocolName(kind) << ":\n"
        << suite->report();
    EXPECT_EQ(suite->report(), "");
    EXPECT_EQ(sys->stats().checkViolations, 0u);
}

TEST(CheckViolations, CleanProgramIsCleanUnderCashmere)
{
    expectClean(ProtocolKind::CsmPoll);
}

TEST(CheckViolations, CleanProgramIsCleanUnderTreadMarks)
{
    expectClean(ProtocolKind::TmkMcPoll);
}

} // namespace
} // namespace mcdsm
