/**
 * @file
 * Deliberately non-deterministic code: detlint must flag every
 * construct below. This file is NOT compiled into any target; it
 * exists so CI proves the lint gate actually fires (the `detlint_bad`
 * ctest entry runs the tool over this file and expects failure).
 */

#include <cstdlib>
#include <ctime>
#include <map>
#include <string>
#include <unordered_map>

namespace detlint_bad {

struct Widget
{
    int id;
};

inline long
sampleWallClock()
{
    return static_cast<long>(time(nullptr)); // wall-clock
}

inline int
sampleRand()
{
    srand(42);      // rand (seeding from code, not configuration)
    return rand(); // rand
}

inline int
sampleUnorderedIteration()
{
    std::unordered_map<int, int> tally;
    tally[1] = 2;
    int sum = 0;
    for (const auto& [k, v] : tally) // unordered-iter
        sum += k * v;
    return sum;
}

inline std::size_t
samplePointerKey(Widget* a, Widget* b)
{
    std::map<Widget*, int> rank; // pointer-key
    rank[a] = 1;
    rank[b] = 2;
    return rank.size();
}

} // namespace detlint_bad
