/**
 * @file
 * TreadMarks protocol unit tests: vector-timestamp algebra, interval
 * logs, diff round-trips, twin/diff lifecycle, lock-chain tenures and
 * lazy-release behavior.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"
#include "sim/rng.h"
#include "treadmarks/intervals.h"
#include "treadmarks/types.h"

namespace mcdsm {
namespace {

// ---------------------------------------------------------------------------
// Vector timestamps
// ---------------------------------------------------------------------------

TEST(VectorClock, MaxAndLeq)
{
    VTime a = {1, 5, 2};
    VTime b = {3, 1, 2};
    EXPECT_FALSE(vtLeq(a, b));
    EXPECT_FALSE(vtLeq(b, a));
    vtMax(a, b);
    EXPECT_EQ(a, (VTime{3, 5, 2}));
    EXPECT_TRUE(vtLeq(b, a));
    EXPECT_EQ(vtSum(a), 10u);
}

TEST(VectorClock, SumMonotoneUnderCausality)
{
    // If a <= b pointwise with a != b, sum(a) < sum(b).
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        VTime a(8), b(8);
        bool strict = false;
        for (int i = 0; i < 8; ++i) {
            a[i] = static_cast<std::uint32_t>(rng.nextBounded(100));
            b[i] = a[i] + static_cast<std::uint32_t>(rng.nextBounded(3));
            strict |= b[i] != a[i];
        }
        if (strict) {
            EXPECT_LT(vtSum(a), vtSum(b));
        }
    }
}

// ---------------------------------------------------------------------------
// Interval log
// ---------------------------------------------------------------------------

IntervalRecPtr
rec(ProcId p, std::uint32_t id, std::vector<PageNum> pages = {})
{
    auto r = makeRc<IntervalRec>();
    r->proc = p;
    r->id = id;
    r->vtWords = 4;
    r->pages = std::move(pages);
    return r;
}

TEST(IntervalLog, AddAndDuplicate)
{
    IntervalLog log(4);
    EXPECT_TRUE(log.add(rec(1, 0)));
    EXPECT_TRUE(log.add(rec(1, 1)));
    EXPECT_FALSE(log.add(rec(1, 0))); // duplicate
    EXPECT_EQ(log.count(1), 2u);
    EXPECT_EQ(log.count(0), 0u);
}

TEST(IntervalLog, CollectSinceReturnsSuffixes)
{
    IntervalLog log(4);
    for (std::uint32_t i = 0; i < 5; ++i)
        log.add(rec(0, i));
    for (std::uint32_t i = 0; i < 3; ++i)
        log.add(rec(2, i));

    auto out = log.collectSince(VTime{3, 0, 1, 0});
    // Expect intervals 3,4 of proc 0 and 1,2 of proc 2.
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0]->proc, 0);
    EXPECT_EQ(out[0]->id, 3u);
    EXPECT_EQ(out[3]->proc, 2);
    EXPECT_EQ(out[3]->id, 2u);
}

TEST(IntervalLog, WireBytesGrowWithNotices)
{
    IntervalLog log(4);
    log.add(rec(0, 0, {1, 2, 3}));
    const std::size_t with = log.bytesSince(VTime(4, 0));
    IntervalLog log2(4);
    log2.add(rec(0, 0, {}));
    EXPECT_GT(with, log2.bytesSince(VTime(4, 0)));
}

// ---------------------------------------------------------------------------
// Diff engine
// ---------------------------------------------------------------------------

TEST(DiffEngine, RoundTripRandomWrites)
{
    Rng rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::uint8_t> twin(kPageSize);
        for (auto& b : twin)
            b = static_cast<std::uint8_t>(rng.next());
        std::vector<std::uint8_t> page = twin;
        const int writes = 1 + static_cast<int>(rng.nextBounded(200));
        for (int w = 0; w < writes; ++w) {
            const std::size_t at = rng.nextBounded(kPageSize);
            page[at] = static_cast<std::uint8_t>(rng.next());
        }

        FlatRuns runs;
        computeRuns(page.data(), twin.data(), runs);
        std::vector<std::uint8_t> rebuilt = twin;
        applyRuns(rebuilt.data(), runs);
        EXPECT_EQ(std::memcmp(rebuilt.data(), page.data(), kPageSize), 0);
    }
}

TEST(DiffEngine, CleanPageYieldsEmptyDiff)
{
    std::vector<std::uint8_t> twin(kPageSize, 7);
    FlatRuns runs;
    computeRuns(twin.data(), twin.data(), runs);
    EXPECT_TRUE(runs.empty());
}

TEST(DiffEngine, RunsCoalesceAdjacentBytes)
{
    std::vector<std::uint8_t> twin(kPageSize, 0), page(kPageSize, 0);
    for (int i = 100; i < 132; ++i)
        page[i] = 9;
    FlatRuns runs;
    computeRuns(page.data(), twin.data(), runs);
    ASSERT_EQ(runs.count(), 1u);
    const FlatRuns::View only = *runs.begin();
    EXPECT_EQ(only.offset, 100);
    EXPECT_EQ(only.len, 32u);

    Diff d;
    d.runs = std::move(runs);
    EXPECT_EQ(d.dataBytes(), 32u);
    EXPECT_EQ(d.wireBytes(), 16u + 32 + 8);
}

TEST(DiffEngine, DisjointDiffsComposeInAnyOrder)
{
    // The multi-writer guarantee: diffs of disjoint writes commute.
    std::vector<std::uint8_t> twin(kPageSize, 0);
    auto page_a = twin, page_b = twin;
    for (int i = 0; i < 512; i += 2)
        page_a[i] = 0xaa;
    for (int i = 1; i < 512; i += 2)
        page_b[i] = 0xbb;
    FlatRuns ra, rb;
    computeRuns(page_a.data(), twin.data(), ra);
    computeRuns(page_b.data(), twin.data(), rb);

    auto ab = twin, ba = twin;
    applyRuns(ab.data(), ra);
    applyRuns(ab.data(), rb);
    applyRuns(ba.data(), rb);
    applyRuns(ba.data(), ra);
    EXPECT_EQ(std::memcmp(ab.data(), ba.data(), kPageSize), 0);
}

// ---------------------------------------------------------------------------
// Protocol behavior (through the public API)
// ---------------------------------------------------------------------------

DsmConfig
cfg(int nprocs)
{
    DsmConfig c;
    c.protocol = ProtocolKind::TmkMcPoll;
    c.topo = Topology::standard(nprocs);
    c.maxSharedBytes = 4 << 20;
    return c;
}

TEST(TreadMarks, TwinCreatedOncePerWriteInterval)
{
    auto sys = DsmSystem::create(cfg(2));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);
    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            for (int i = 0; i < 100; ++i)
                arr.set(p, i, i); // one page, many writes, one twin
        }
        p.barrier(0);
    });
    EXPECT_EQ(sys->stats().procs[0].twins, 1u);
}

TEST(TreadMarks, LazyReleaseewNoMessagesWithoutWaiters)
{
    auto sys = DsmSystem::create(cfg(2));
    GAddr x = sys->alloc(8);
    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            const std::uint64_t before =
                sys->runtime().mail().messagesSentBy(0);
            p.acquire(5); // manager is proc 1 (5 % 2), one exchange
            p.write<std::int64_t>(x, 1);
            const std::uint64_t mid =
                sys->runtime().mail().messagesSentBy(0);
            p.release(5); // lazy: nothing sent
            EXPECT_EQ(sys->runtime().mail().messagesSentBy(0), mid);
            EXPECT_GT(mid, before);
        }
        p.barrier(0);
    });
}

TEST(TreadMarks, DiffsCarryLessDataThanPagesForSparseWrites)
{
    auto sys = DsmSystem::create(cfg(2));
    auto arr = SharedArray<std::int64_t>::allocate(
        *sys, 8 * (kPageSize / 8));
    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            // 8 bytes dirtied in each of 8 pages.
            for (int pg = 0; pg < 8; ++pg)
                arr.set(p, pg * (kPageSize / 8), pg);
        }
        p.barrier(0);
        if (p.id() == 1) {
            for (int pg = 0; pg < 8; ++pg)
                (void)arr.get(p, pg * (kPageSize / 8));
        }
        p.barrier(1);
    });
    const auto& st = sys->stats();
    EXPECT_EQ(st.procs[1].diffsApplied, 8u);
    // Total diff payload is ~64 bytes, not 64 KB of pages.
    EXPECT_LT(st.procs[0].diffBytes, 1024u);
}

TEST(TreadMarks, MultiWriterMergeRequestsDiffsFromEachWriter)
{
    auto sys = DsmSystem::create(cfg(4));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);
    sys->run([&](Proc& p) {
        arr.set(p, p.id(), p.id() + 1); // same page, four writers
        p.barrier(0);
        std::int64_t sum = 0;
        for (int i = 0; i < 4; ++i)
            sum += arr.get(p, i);
        EXPECT_EQ(sum, 10);
        p.barrier(1);
    });
    // Each reader applied diffs from the 3 other writers.
    for (const auto& ps : sys->stats().procs)
        EXPECT_GE(ps.diffsApplied, 3u);
}

TEST(TreadMarks, LockChainTransfersConsistencyInfo)
{
    auto sys = DsmSystem::create(cfg(4));
    GAddr x = sys->alloc(8);
    std::int64_t final_val = -1;
    sys->run([&](Proc& p) {
        // Token-style increments through a lock chain.
        for (int round = 0; round < 8; ++round) {
            p.pollPoint();
            p.acquire(0);
            p.write<std::int64_t>(x, p.read<std::int64_t>(x) + 1);
            p.release(0);
        }
        p.barrier(0);
        if (p.id() == 0)
            final_val = p.read<std::int64_t>(x);
        p.barrier(1);
    });
    EXPECT_EQ(final_val, 32);
}

TEST(TreadMarks, BarrierDistributesAllWriteNotices)
{
    // After a barrier, every processor must see every write — even of
    // pages it has never mapped (the paper's "unnecessary work"
    // remark about barriers).
    auto sys = DsmSystem::create(cfg(4));
    auto arr = SharedArray<std::int64_t>::allocate(
        *sys, 8 * (kPageSize / 8));
    sys->run([&](Proc& p) {
        // Each proc writes two private-ish pages.
        const std::size_t per = kPageSize / 8;
        arr.set(p, (2 * p.id()) * per, p.id());
        arr.set(p, (2 * p.id() + 1) * per, p.id());
        p.barrier(0);
        // Everyone reads everything.
        std::int64_t sum = 0;
        for (int pg = 0; pg < 8; ++pg)
            sum += arr.get(p, pg * per);
        EXPECT_EQ(sum, 2 * (0 + 1 + 2 + 3));
        p.barrier(1);
    });
}

TEST(TreadMarks, FlagTransfersCausalPast)
{
    auto sys = DsmSystem::create(cfg(4));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 4096);
    bool ok = true;
    sys->run([&](Proc& p) {
        // proc 0 -> flag 1 -> proc 1 writes -> flag 2 -> proc 2 ...
        const int id = p.id();
        if (id > 0)
            p.waitFlag(id);
        // Check all predecessors' writes are visible (causal chain).
        for (int q = 0; q < id; ++q) {
            if (arr.get(p, q * 512) != q + 100)
                ok = false;
        }
        arr.set(p, id * 512, id + 100);
        p.setFlag(id + 1);
        p.barrier(0);
    });
    EXPECT_TRUE(ok);
}

TEST(TreadMarks, UdpVariantMovesMoreSlowly)
{
    auto run = [](ProtocolKind k) {
        DsmConfig c;
        c.protocol = k;
        c.topo = Topology::standard(4);
        c.maxSharedBytes = 1 << 20;
        auto sys = DsmSystem::create(c);
        auto arr = SharedArray<std::int64_t>::allocate(*sys, 4096);
        sys->run([&](Proc& p) {
            for (int r = 0; r < 5; ++r) {
                if (p.id() == r % 4)
                    arr.set(p, r, r);
                p.barrier(0);
                (void)arr.get(p, r);
                p.barrier(1);
            }
        });
        return sys->stats().elapsed;
    };
    EXPECT_GT(run(ProtocolKind::TmkUdpInt),
              run(ProtocolKind::TmkMcPoll));
}

} // namespace
} // namespace mcdsm
