/**
 * @file
 * Tests for the fault-injection subsystem (src/fault/): plan and
 * scenario construction, cost-field sweeps, MemoryChannel behavior
 * under degradation/jitter, straggler runs, determinism of every
 * injection, and the Chrome-trace export.
 */

#include <gtest/gtest.h>

#include "common/costs.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "harness/chrome_trace.h"
#include "harness/runner.h"
#include "net/memory_channel.h"
#include "net/topology.h"

namespace mcdsm {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan / scenarios

TEST(FaultPlan, DefaultPlanIsInactive)
{
    FaultPlan p;
    EXPECT_FALSE(p.active());
    EXPECT_FALSE(p.stragglerActive());
    EXPECT_FALSE(p.networkActive());
    EXPECT_FALSE(p.costActive());
}

TEST(FaultPlan, MagnitudeOneIsInertForEveryScenario)
{
    for (const auto& name : scenarioNames()) {
        FaultPlan p = makeScenario(name, 1.0, 42);
        EXPECT_FALSE(p.active()) << name;
        EXPECT_EQ(p.scenario, name);
    }
}

TEST(FaultPlan, ScenariosActivateTheRightKnobs)
{
    FaultPlan deg = makeScenario("link_degrade", 4.0, 1);
    EXPECT_DOUBLE_EQ(deg.linkBwFactor, 0.25);
    EXPECT_EQ(deg.degradedLinks, 0); // all links
    EXPECT_TRUE(deg.networkActive());
    EXPECT_FALSE(deg.stragglerActive());

    FaultPlan one = makeScenario("one_slow_link", 2.0, 1);
    EXPECT_EQ(one.degradedLinks, 1);

    FaultPlan hub = makeScenario("hub_load", 4.0, 1);
    EXPECT_DOUBLE_EQ(hub.hubLoadFraction, 0.75);

    FaultPlan strag = makeScenario("straggler", 3.0, 1);
    EXPECT_EQ(strag.stragglerNodes, 1);
    EXPECT_DOUBLE_EQ(strag.stragglerCompute, 3.0);
    EXPECT_TRUE(strag.stragglerActive());
    EXPECT_FALSE(strag.networkActive());

    FaultPlan sig = makeScenario("slow_interrupts", 8.0, 1);
    EXPECT_EQ(sig.stragglerNodes, -1); // every node
    EXPECT_DOUBLE_EQ(sig.stragglerSignal, 8.0);
    EXPECT_DOUBLE_EQ(sig.stragglerCompute, 1.0);

    FaultPlan cost = makeScenario("cost:mcLatency", 2.0, 1);
    EXPECT_EQ(cost.costField, "mcLatency");
    EXPECT_DOUBLE_EQ(cost.costFactor, 2.0);
    EXPECT_TRUE(cost.costActive());
}

TEST(FaultPlan, SpecParsingHandlesMagnitudes)
{
    FaultPlan p = faultPlanFromSpec("straggler:4", 9);
    EXPECT_EQ(p.scenario, "straggler");
    EXPECT_DOUBLE_EQ(p.magnitude, 4.0);
    EXPECT_EQ(p.seed, 9u);

    // Bare name gets the default magnitude 2.
    EXPECT_DOUBLE_EQ(faultPlanFromSpec("jitter", 1).magnitude, 2.0);

    // cost:<field>:<mag> — the last colon-token is the magnitude.
    FaultPlan c = faultPlanFromSpec("cost:twinCost:8", 1);
    EXPECT_EQ(c.costField, "twinCost");
    EXPECT_DOUBLE_EQ(c.costFactor, 8.0);

    // "null" parses to an inactive plan.
    EXPECT_FALSE(faultPlanFromSpec("null", 1).active());
}

TEST(FaultPlan, CostFactorSweepsAnyField)
{
    CostModel base;
    for (const auto& field : costFieldNames()) {
        CostModel c = base;
        EXPECT_TRUE(applyCostFactor(c, field, 2.0)) << field;
    }
    CostModel c = base;
    EXPECT_FALSE(applyCostFactor(c, "noSuchCost", 2.0));

    ASSERT_TRUE(applyCostFactor(c, "mprotect", 2.0));
    EXPECT_EQ(c.mprotect, 2 * base.mprotect);
    ASSERT_TRUE(applyCostFactor(c, "mcLinkBw", 0.5));
    EXPECT_DOUBLE_EQ(c.mcLinkBw, base.mcLinkBw * 0.5);

    // Factor 1 must not even round-trip through double arithmetic.
    CostModel ident = base;
    ASSERT_TRUE(applyCostFactor(ident, "mprotect", 1.0));
    EXPECT_EQ(ident.mprotect, base.mprotect);
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, SelectionsAndWindowsAreSeedDeterministic)
{
    FaultPlan p = makeScenario("brownout", 4.0, 77);
    Topology topo(8, 8);
    FaultInjector a(p, topo);
    FaultInjector b(p, topo);

    int degraded = 0;
    for (NodeId n = 0; n < 8; ++n) {
        EXPECT_EQ(a.linkDegraded(n), b.linkDegraded(n));
        degraded += a.linkDegraded(n) ? 1 : 0;
    }
    EXPECT_EQ(degraded, 1); // one_slow_link-style pick

    const Time horizon = 50 * kMillisecond;
    const auto wa = a.faultWindows(horizon);
    const auto wb = b.faultWindows(horizon);
    ASSERT_EQ(wa.size(), wb.size());
    ASSERT_FALSE(wa.empty());
    for (std::size_t i = 0; i < wa.size(); ++i) {
        EXPECT_EQ(wa[i].link, wb[i].link);
        EXPECT_EQ(wa[i].begin, wb[i].begin);
        EXPECT_EQ(wa[i].end, wb[i].end);
        EXPECT_EQ(wa[i].end - wa[i].begin, p.brownoutDuty);
        // inBrownout agrees with the enumerated windows.
        EXPECT_TRUE(a.inBrownout(wa[i].link, wa[i].begin));
        EXPECT_FALSE(a.inBrownout(wa[i].link, wa[i].end));
    }
}

TEST(FaultInjector, JitterIsBoundedAndPerLinkStable)
{
    FaultPlan p = makeScenario("jitter", 3.0, 5);
    Topology topo(4, 4);
    FaultInjector a(p, topo);
    FaultInjector b(p, topo);
    for (int i = 0; i < 200; ++i) {
        for (NodeId n = 0; n < 4; ++n) {
            const Time ja = a.latencyJitter(n);
            EXPECT_GE(ja, 0);
            EXPECT_LE(ja, p.latencyJitterMax);
            EXPECT_EQ(ja, b.latencyJitter(n)); // same draw order
        }
    }
}

TEST(FaultInjector, StragglerScalesVmAndSignalCosts)
{
    FaultPlan p = makeScenario("straggler", 4.0, 3);
    Topology topo(4, 4);
    FaultInjector inj(p, topo);
    CostModel base;
    int stragglers = 0;
    for (NodeId n = 0; n < 4; ++n) {
        const CostModel c = inj.nodeCosts(base, n);
        if (inj.straggles(n)) {
            ++stragglers;
            EXPECT_EQ(c.mprotect, 4 * base.mprotect);
            EXPECT_EQ(c.pageFault, 4 * base.pageFault);
            EXPECT_EQ(c.remoteSignalLatency,
                      4 * base.remoteSignalLatency);
            EXPECT_DOUBLE_EQ(inj.computeFactor(n), 4.0);
        } else {
            EXPECT_EQ(c.mprotect, base.mprotect);
            EXPECT_DOUBLE_EQ(inj.computeFactor(n), 1.0);
        }
        // Network untouched by a pure straggler plan.
        EXPECT_DOUBLE_EQ(inj.linkFactor(n, 0), 1.0);
    }
    EXPECT_EQ(stragglers, 1);
    EXPECT_DOUBLE_EQ(inj.hubFactor(), 1.0);
}

// ---------------------------------------------------------------------------
// MemoryChannel under injection

class FaultedMcTest : public ::testing::Test
{
  protected:
    CostModel costs;
    Topology topo{4, 4};
};

TEST_F(FaultedMcTest, IdentityInjectorIsBitIdentical)
{
    // All knobs at their identity values: attaching the injector must
    // not move a single timestamp.
    FaultPlan p;
    p.scenario = "identity";
    MemoryChannel healthy(costs, 4);
    MemoryChannel faulted(costs, 4);
    FaultInjector inj(p, topo);
    faulted.attachFaults(&inj);

    for (int i = 0; i < 50; ++i) {
        const NodeId src = i % 4;
        const NodeId dst = (i + 1 + i / 4) % 4;
        const std::size_t bytes = 64 + 100 * static_cast<std::size_t>(i);
        EXPECT_EQ(healthy.transfer(src, dst, bytes, i * 1000),
                  faulted.transfer(src, dst, bytes, i * 1000));
    }
    EXPECT_EQ(healthy.broadcast(0, 4096, 0), faulted.broadcast(0, 4096, 0));
    EXPECT_EQ(healthy.totalBytes(), faulted.totalBytes());
}

TEST_F(FaultedMcTest, DegradedLinkSlowsLinkBoundTransfer)
{
    FaultPlan p = makeScenario("link_degrade", 2.0, 1); // every link
    MemoryChannel healthy(costs, 4);
    MemoryChannel faulted(costs, 4);
    FaultInjector inj(p, topo);
    faulted.attachFaults(&inj);

    const std::size_t bytes = 1 << 20;
    const Time t_h = healthy.transfer(0, 1, bytes, 0);
    const Time t_f = faulted.transfer(0, 1, bytes, 0);
    // Bandwidth halved: the link leg takes exactly twice as long (the
    // transfer is link-bound: linkBw < aggBw).
    const Time link_time = static_cast<Time>(bytes / costs.mcLinkBw);
    EXPECT_EQ(t_h, link_time + costs.mcLatency);
    EXPECT_NEAR(static_cast<double>(t_f),
                static_cast<double>(2 * link_time + costs.mcLatency),
                1.0);
}

TEST_F(FaultedMcTest, HubLoadStealsAggregateBandwidth)
{
    FaultPlan p = makeScenario("hub_load", 4.0, 1); // 75% stolen
    MemoryChannel faulted(costs, 4);
    FaultInjector inj(p, topo);
    faulted.attachFaults(&inj);

    const std::size_t bytes = 1 << 20;
    const Time t = faulted.transfer(0, 1, bytes, 0);
    // With the hub at a quarter bandwidth the transfer is hub-bound.
    const Time hub_time =
        static_cast<Time>(bytes / (costs.mcAggBw * 0.25));
    EXPECT_EQ(t, hub_time + costs.mcLatency);
}

TEST_F(FaultedMcTest, DeliveryStaysMonotonePerDestinationUnderJitter)
{
    FaultPlan p = makeScenario("jitter", 10.0, 11);
    MemoryChannel mc(costs, 4);
    FaultInjector inj(p, topo);
    mc.attachFaults(&inj);

    Time prev = 0;
    for (int i = 0; i < 300; ++i) {
        const Time a = mc.transfer(i % 3, 3, 64 + i, i * 50);
        EXPECT_GE(a, prev) << "transfer " << i;
        prev = a;
    }
}

TEST_F(FaultedMcTest, BroadcastWaitsForSlowestReceiveLink)
{
    // Degrade every link 8x; the broadcast cannot complete before a
    // point-to-point transfer into any degraded receiver could drain.
    FaultPlan p = makeScenario("link_degrade", 8.0, 1);
    MemoryChannel mc(costs, 4);
    FaultInjector inj(p, topo);
    mc.attachFaults(&inj);

    const std::size_t bytes = 1 << 18;
    const Time done = mc.broadcast(0, bytes, 0);
    const Time slow_rx =
        static_cast<Time>(bytes / (costs.mcLinkBw / 8.0));
    EXPECT_GE(done, slow_rx);

    // And a healthy channel would have been strictly faster.
    MemoryChannel healthy(costs, 4);
    EXPECT_LT(healthy.broadcast(0, bytes, 0), done);
}

TEST_F(FaultedMcTest, ByteAccountingUnchangedByInjection)
{
    FaultPlan p = makeScenario("jitter", 20.0, 2);
    MemoryChannel healthy(costs, 4);
    MemoryChannel faulted(costs, 4);
    FaultInjector inj(p, topo);
    faulted.attachFaults(&inj);

    for (int i = 0; i < 40; ++i) {
        healthy.transfer(i % 4, (i + 1) % 4, 512, i * 10);
        faulted.transfer(i % 4, (i + 1) % 4, 512, i * 10);
        healthy.streamWrite(i % 4, (i + 2) % 4, 64, i * 10);
        faulted.streamWrite(i % 4, (i + 2) % 4, 64, i * 10);
    }
    EXPECT_EQ(healthy.totalBytes(), faulted.totalBytes());
    EXPECT_EQ(healthy.streamBytes(), faulted.streamBytes());
    EXPECT_EQ(healthy.transferCount(), faulted.transferCount());
}

// ---------------------------------------------------------------------------
// End-to-end runs

RunOpts
tinyOpts()
{
    RunOpts o;
    o.scale = AppScale::Tiny;
    return o;
}

TEST(FaultRun, NullScenarioMatchesDefaultRunForAllVariants)
{
    const ProtocolKind kinds[] = {
        ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
        ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
        ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
    };
    for (const char* app : {"sor", "water"}) {
        for (ProtocolKind k : kinds) {
            RunOpts plain = tinyOpts();
            RunOpts nulled = tinyOpts();
            nulled.fault = makeScenario("null", 1.0, 123);
            const ExpResult a = runExperiment(app, k, 4, plain);
            const ExpResult b = runExperiment(app, k, 4, nulled);
            EXPECT_EQ(a.elapsed, b.elapsed)
                << app << "/" << protocolName(k);
            EXPECT_EQ(a.stats.mcBytes, b.stats.mcBytes);
            EXPECT_EQ(a.stats.messages, b.stats.messages);
            ASSERT_EQ(a.stats.procs.size(), b.stats.procs.size());
            for (std::size_t p = 0; p < a.stats.procs.size(); ++p) {
                EXPECT_EQ(a.stats.procs[p].endTime,
                          b.stats.procs[p].endTime);
            }
        }
    }
}

TEST(FaultRun, ActiveScenarioIsReproducibleAndSlower)
{
    RunOpts faulted = tinyOpts();
    faulted.fault = makeScenario("link_degrade", 8.0, 5);
    const ExpResult a =
        runExperiment("sor", ProtocolKind::CsmPoll, 8, faulted);
    const ExpResult b =
        runExperiment("sor", ProtocolKind::CsmPoll, 8, faulted);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.stats.mcBytes, b.stats.mcBytes);

    const ExpResult healthy =
        runExperiment("sor", ProtocolKind::CsmPoll, 8, tinyOpts());
    EXPECT_GT(a.elapsed, healthy.elapsed);
    // Degradation slows the clock, never the answer.
    EXPECT_EQ(a.appResult.checksum, healthy.appResult.checksum);
}

TEST(FaultRun, StragglerNodeBindsTheRun)
{
    RunOpts faulted = tinyOpts();
    faulted.fault = makeScenario("straggler", 6.0, 21);
    const ExpResult r =
        runExperiment("sor", ProtocolKind::TmkMcPoll, 8, faulted);
    const ExpResult healthy =
        runExperiment("sor", ProtocolKind::TmkMcPoll, 8, tinyOpts());
    EXPECT_GT(r.elapsed, healthy.elapsed);

    // The node-level rollup must point at the straggling node.
    FaultInjector inj(faulted.fault, Topology::standard(8));
    ASSERT_EQ(r.stats.nodes.size(), 4u);
    const NodeId slow = r.stats.slowestNode();
    EXPECT_TRUE(inj.straggles(slow));
    int procs = 0;
    for (const auto& n : r.stats.nodes)
        procs += n.procs;
    EXPECT_EQ(procs, 8);
}

TEST(FaultRun, NodeRollupSumsProcStats)
{
    const ExpResult r =
        runExperiment("water", ProtocolKind::CsmPoll, 8, tinyOpts());
    ASSERT_EQ(r.stats.nodes.size(), 4u);
    std::uint64_t node_msgs = 0, proc_msgs = 0;
    Time max_end = 0;
    for (const auto& n : r.stats.nodes) {
        node_msgs += n.messagesSent;
        max_end = std::max(max_end, n.endTime);
    }
    for (const auto& p : r.stats.procs)
        proc_msgs += p.messagesSent;
    EXPECT_EQ(node_msgs, proc_msgs);
    EXPECT_EQ(max_end, r.elapsed);
}

TEST(FaultRun, ChromeTraceExportsEventsAndFaultWindows)
{
    RunOpts o = tinyOpts();
    o.traceCapacity = 1 << 16;
    o.fault = makeScenario("brownout", 4.0, 2);
    // Brown-outs recur every 5 ms; tiny SOR runs long enough on a
    // degraded machine to cross several windows.
    ExpResult r = runExperiment("sor", ProtocolKind::CsmPoll, 4, o);
    ASSERT_FALSE(r.trace.empty());
    EXPECT_FALSE(r.faultWindows.empty());

    const std::string json = chromeTraceJson({r});
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("brownout link"), std::string::npos);
    // Balanced JSON-ish sanity: one trailing ] and no dangling comma.
    EXPECT_EQ(json.rfind(",\n]"), std::string::npos);
}

} // namespace
} // namespace mcdsm
