/**
 * @file
 * Tests for the sharded KV serving workload (src/apps/kv.*) and its
 * ServiceStats plumbing:
 *
 *   1. The verification checksum matches the sequential reference for
 *      all six protocol variants and is invariant in processor count;
 *      GET self-verification (aux) reports zero failures everywhere.
 *   2. Race-cleanliness matrix: the workload is race-free under the
 *      vector-clock detector across variants and under
 *      schedule-perturbation fuzzing.
 *   3. --jobs invariance: bit-identical RunStats — including latency
 *      histograms, percentiles and per-shard counters — between
 *      jobs=1 and jobs=4.
 *   4. ServiceStats sanity: per-phase request accounting, shard
 *      totals, hot-key bounds and percentile ordering.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "harness/pool.h"

namespace mcdsm {
namespace {

constexpr ProtocolKind kVariants[] = {
    ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
    ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
    ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
};

/** Small but non-trivial shape: all three phases, Zipf-hot keys. */
KvConfig
tinyKv()
{
    KvConfig cfg;
    cfg.shards = 4;
    cfg.keysPerShard = 32;
    cfg.valueWords = 4;
    cfg.clientStreams = 4;
    cfg.opsPerStream = 25;
    cfg.zipfTheta = 0.9;
    cfg.meanInterArrival = 50 * kMicrosecond;
    return cfg;
}

RunOpts
kvOpts()
{
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    opts.kv = tinyKv();
    return opts;
}

void
expectSameBits(double a, double b, const char* what)
{
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0) << what;
}

TEST(KvApp, ChecksumMatchesSequentialAcrossVariants)
{
    const RunOpts opts = kvOpts();
    const ExpResult seq = runSequential("kv", opts);
    EXPECT_GT(seq.appResult.checksum, 0.0);
    EXPECT_EQ(seq.appResult.aux, 0.0) << "sequential GET failures";

    for (ProtocolKind k : kVariants) {
        SCOPED_TRACE(protocolName(k));
        const ExpResult r = runExperiment("kv", k, 4, opts);
        expectSameBits(r.appResult.checksum, seq.appResult.checksum,
                       "checksum vs sequential");
        EXPECT_EQ(r.appResult.aux, 0.0) << "GET verification failures";
    }
}

TEST(KvApp, ChecksumInvariantInProcessorCount)
{
    const RunOpts opts = kvOpts();
    const ExpResult a = runExperiment("kv", ProtocolKind::CsmPoll, 2, opts);
    const ExpResult b = runExperiment("kv", ProtocolKind::CsmPoll, 8, opts);
    const ExpResult c =
        runExperiment("kv", ProtocolKind::TmkMcPoll, 8, opts);
    expectSameBits(a.appResult.checksum, b.appResult.checksum,
                   "2 vs 8 procs");
    expectSameBits(a.appResult.checksum, c.appResult.checksum,
                   "csm vs tmk at 8 procs");
}

TEST(KvApp, RaceCleanAcrossVariantsAndSchedules)
{
    RunOpts opts = kvOpts();
    opts.raceDetect = true;

    for (ProtocolKind k : kVariants) {
        SCOPED_TRACE(protocolName(k));
        const ExpResult r = runExperiment("kv", k, 4, opts);
        EXPECT_EQ(r.races, 0u) << r.raceSummary;
        EXPECT_EQ(r.appResult.aux, 0.0);
    }

    // Schedule-perturbation fuzzing: jitter the runnable order and
    // re-check both the race detector and the checksum invariant.
    const ExpResult base =
        runExperiment("kv", ProtocolKind::TmkMcPoll, 4, kvOpts());
    for (std::uint64_t sched_seed : {1ull, 42ull, 99ull}) {
        SCOPED_TRACE(testing::Message() << "schedSeed " << sched_seed);
        RunOpts fuzz = opts;
        fuzz.schedSeed = sched_seed;
        for (ProtocolKind k :
             {ProtocolKind::CsmPoll, ProtocolKind::TmkMcPoll}) {
            const ExpResult r = runExperiment("kv", k, 4, fuzz);
            EXPECT_EQ(r.races, 0u)
                << protocolName(k) << ": " << r.raceSummary;
            EXPECT_EQ(r.appResult.aux, 0.0);
            expectSameBits(r.appResult.checksum, base.appResult.checksum,
                           "checksum under perturbed schedule");
        }
    }
}

TEST(KvApp, JobsInvarianceIncludingServiceStats)
{
    const RunOpts opts = kvOpts();
    std::vector<ExpSpec> specs;
    for (ProtocolKind k : kVariants)
        specs.push_back({"kv", k, 4, opts});
    specs.push_back({"kv", ProtocolKind::None, 1, opts});

    const auto seq = runExperiments(specs, 1);
    const auto par = runExperiments(specs, 4);
    ASSERT_EQ(seq.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(protocolName(specs[i].protocol));
        const ExpResult& a = seq[i];
        const ExpResult& b = par[i];
        EXPECT_EQ(a.elapsed, b.elapsed);
        expectSameBits(a.appResult.checksum, b.appResult.checksum,
                       "checksum");
        expectSameBits(a.appResult.aux, b.appResult.aux, "aux");
        EXPECT_EQ(a.stats.messages, b.stats.messages);

        // The whole service block — histograms, per-shard counters —
        // must be bit-identical, and so must every derived percentile.
        EXPECT_TRUE(a.stats.service == b.stats.service);
        ASSERT_EQ(a.stats.service.phases.size(),
                  b.stats.service.phases.size());
        for (std::size_t p = 0; p < a.stats.service.phases.size(); ++p) {
            const LatencyHistogram& ha = a.stats.service.phases[p].latency;
            const LatencyHistogram& hb = b.stats.service.phases[p].latency;
            EXPECT_EQ(ha.p50(), hb.p50());
            EXPECT_EQ(ha.p90(), hb.p90());
            EXPECT_EQ(ha.p99(), hb.p99());
            EXPECT_EQ(ha.p999(), hb.p999());
        }
    }
}

TEST(KvApp, ServiceStatsSanity)
{
    const KvConfig cfg = tinyKv();
    RunOpts opts = kvOpts();
    const ExpResult r =
        runExperiment("kv", ProtocolKind::CsmPoll, 4, opts);
    const ServiceStats& svc = r.stats.service;

    ASSERT_TRUE(svc.enabled());
    ASSERT_EQ(svc.phases.size(), cfg.phases.size());
    const std::uint64_t per_phase =
        static_cast<std::uint64_t>(cfg.clientStreams) * cfg.opsPerStream;

    for (std::size_t p = 0; p < svc.phases.size(); ++p) {
        const PhaseServiceStats& ph = svc.phases[p];
        SCOPED_TRACE(ph.name);
        EXPECT_EQ(ph.name, cfg.phases[p].name);
        EXPECT_EQ(ph.requests(), per_phase);
        ASSERT_EQ(ph.shards.size(), static_cast<std::size_t>(cfg.shards));

        std::uint64_t req = 0, reads = 0, writes = 0;
        for (const ShardStats& s : ph.shards) {
            req += s.requests;
            reads += s.reads;
            writes += s.writes;
            EXPECT_EQ(s.reads + s.writes, s.requests);
            EXPECT_LE(s.contendedAcquires, s.requests);
            EXPECT_LE(s.hotKeyRequests, s.requests);
            if (s.requests > 0) {
                EXPECT_GT(s.hotKeyRequests, 0u);
                EXPECT_LT(s.hotKey, cfg.keysPerShard);
            }
            EXPECT_GE(s.lockWait, 0);
        }
        EXPECT_EQ(req, per_phase);
        EXPECT_EQ(reads + writes, per_phase);

        // Phase mixes: read_heavy is ~95% GETs, write_heavy ~90% PUTs.
        if (ph.name == "read_heavy") {
            EXPECT_GT(reads, writes * 4);
        }
        if (ph.name == "write_heavy") {
            EXPECT_GT(writes, reads * 2);
        }

        // Percentiles are ordered and within [min, max].
        const LatencyHistogram& h = ph.latency;
        EXPECT_LE(h.min(), h.p50());
        EXPECT_LE(h.p50(), h.p90());
        EXPECT_LE(h.p90(), h.p99());
        EXPECT_LE(h.p99(), h.p999());
        EXPECT_LE(h.p999(), h.max());
    }

    EXPECT_EQ(svc.overallLatency().count(),
              per_phase * svc.phases.size());
    const auto overall = svc.overallShards();
    ASSERT_EQ(overall.size(), static_cast<std::size_t>(cfg.shards));
    std::uint64_t total = 0;
    for (const ShardStats& s : overall)
        total += s.requests;
    EXPECT_EQ(total, per_phase * svc.phases.size());

    // Zipf skew concentrates traffic: the hottest shard must see more
    // than an even share of requests.
    const auto hottest = std::max_element(
        overall.begin(), overall.end(),
        [](const ShardStats& a, const ShardStats& b) {
            return a.requests < b.requests;
        });
    EXPECT_GT(hottest->requests,
              per_phase * svc.phases.size() /
                  static_cast<std::uint64_t>(cfg.shards));
}

TEST(KvApp, HpcAppsHaveNoServiceStats)
{
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    const ExpResult r =
        runExperiment("sor", ProtocolKind::CsmPoll, 4, opts);
    EXPECT_FALSE(r.stats.service.enabled());
}

TEST(KvApp, TraceCarriesRequestCompletions)
{
    RunOpts opts = kvOpts();
    opts.traceCapacity = std::size_t{1} << 16;
    const ExpResult r =
        runExperiment("kv", ProtocolKind::CsmPoll, 4, opts);
    const KvConfig cfg = tinyKv();

    std::uint64_t kv_events = 0;
    for (const TraceEvent& e : r.trace) {
        if (e.kind != TraceKind::KvRequest)
            continue;
        ++kv_events;
        EXPECT_LT(e.peer, cfg.shards); // peer carries the shard
    }
    EXPECT_EQ(kv_events, static_cast<std::uint64_t>(cfg.clientStreams) *
                             cfg.opsPerStream * cfg.phases.size());
}

} // namespace
} // namespace mcdsm
