/**
 * @file
 * Tests for the small utility modules: StatSet, the deterministic
 * RNG, and the RunStats aggregation helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "dsm/stats.h"
#include "sim/rng.h"
#include "sim/stats.h"

namespace mcdsm {
namespace {

TEST(StatSet, AddSetGet)
{
    StatSet s;
    EXPECT_EQ(s.get("x"), 0.0);
    EXPECT_FALSE(s.has("x"));
    s.add("x", 2.5);
    s.add("x", 1.5);
    EXPECT_EQ(s.get("x"), 4.0);
    s.set("x", 1.0);
    EXPECT_EQ(s.get("x"), 1.0);
    EXPECT_TRUE(s.has("x"));
}

TEST(StatSet, MergeSums)
{
    StatSet a, b;
    a.add("x", 1);
    a.add("y", 2);
    b.add("x", 10);
    b.add("z", 3);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 11);
    EXPECT_EQ(a.get("y"), 2);
    EXPECT_EQ(a.get("z"), 3);
}

TEST(StatSet, ToStringListsAll)
{
    StatSet s;
    s.set("alpha", 1);
    s.set("beta", 2);
    const std::string out = s.toString();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.nextBounded(13);
        EXPECT_LT(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 13u); // all residues hit
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    double lo = 1, hi = 0;
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    EXPECT_LT(lo, 0.1);
    EXPECT_GT(hi, 0.9);

    for (int i = 0; i < 100; ++i) {
        const double d = rng.nextDouble(-2.0, 3.0);
        EXPECT_GE(d, -2.0);
        EXPECT_LT(d, 3.0);
    }
}

TEST(Rng, SplitIsDeterministic)
{
    Rng a(55), b(55);
    Rng ca = a.split(), cb = b.split();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(ca.next(), cb.next());
    // The split advanced the parents identically too.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsDoNotCorrelate)
{
    // Parent, child, and sibling-child streams must be pairwise
    // disjoint over a long window — a naive split (reusing the parent
    // state as the child seed) interleaves the same sequence.
    Rng parent(1234);
    Rng c1 = parent.split();
    Rng c2 = parent.split();

    std::set<std::uint64_t> all;
    const int kDraws = 4096;
    for (int i = 0; i < kDraws; ++i) {
        all.insert(parent.next());
        all.insert(c1.next());
        all.insert(c2.next());
    }
    EXPECT_EQ(all.size(), static_cast<std::size_t>(3 * kDraws));
}

TEST(Rng, SplitFromAdjacentSeedsDiverges)
{
    // Adjacent seeds are common in test loops (seed = base + i); their
    // split children must still produce unrelated sequences.
    Rng a(1000), b(1001);
    Rng ca = a.split(), cb = b.split();
    std::set<std::uint64_t> all;
    for (int i = 0; i < 1024; ++i) {
        all.insert(ca.next());
        all.insert(cb.next());
    }
    EXPECT_EQ(all.size(), 2048u);
}

TEST(RunStats, TotalsAcrossProcs)
{
    RunStats rs;
    rs.procs.resize(3);
    rs.procs[0].readFaults = 5;
    rs.procs[1].readFaults = 7;
    rs.procs[2].readFaults = 1;
    rs.procs[0].timeIn[static_cast<int>(TimeCat::User)] = 100;
    rs.procs[2].timeIn[static_cast<int>(TimeCat::User)] = 50;

    EXPECT_EQ(rs.total([](const ProcStats& p) { return p.readFaults; }),
              13u);
    EXPECT_EQ(rs.totalTime(TimeCat::User), 150);
    EXPECT_EQ(rs.totalTime(TimeCat::Poll), 0);
}

TEST(TimeCatNames, AllNamed)
{
    for (int c = 0; c < kTimeCatCount; ++c) {
        const char* n = timeCatName(static_cast<TimeCat>(c));
        EXPECT_NE(std::string(n), "?");
    }
}

} // namespace
} // namespace mcdsm
