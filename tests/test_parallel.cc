/**
 * @file
 * Tests for the parallel experiment engine (harness/pool.h) and the
 * hot-path optimization pass:
 *
 *   1. ThreadPool / parallelFor execute every task exactly once.
 *   2. runExperiments(jobs=4) produces byte-identical ExpResults to
 *      jobs=1 over a mixed grid — the bit-determinism contract that
 *      makes the engine safe to use for paper-figure regeneration.
 *   3. The word-scan computeRuns is byte-for-byte equivalent to a
 *      reference byte scan on random page/twin pairs, including runs
 *      that straddle 8-byte word boundaries, and applyRuns round-trips.
 *   4. Diff::wireBytes merges headers of runs separated by < 8 equal
 *      bytes without ever undercounting data.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "harness/pool.h"
#include "sim/rng.h"
#include "treadmarks/types.h"

namespace mcdsm {
namespace {

// ---------------------------------------------------------------------------
// Pool basics
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskOnce)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);

    // Reusable after wait().
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 101);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    for (int jobs : {1, 2, 3, 4, 8}) {
        std::vector<std::atomic<int>> hits(57);
        parallelFor(hits.size(), jobs, [&](std::size_t i) {
            hits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
}

TEST(ThreadPool, ParallelForHandlesEdgeCases)
{
    int calls = 0;
    parallelFor(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallelFor(1, 4, [&](std::size_t i) { calls += 1 + (int)i; });
    EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Bit-identical results regardless of jobs
// ---------------------------------------------------------------------------

void
expectProcStatsEq(const ProcStats& a, const ProcStats& b)
{
    EXPECT_EQ(a.readFaults, b.readFaults);
    EXPECT_EQ(a.writeFaults, b.writeFaults);
    EXPECT_EQ(a.pageTransfers, b.pageTransfers);
    EXPECT_EQ(a.lockAcquires, b.lockAcquires);
    EXPECT_EQ(a.barriers, b.barriers);
    EXPECT_EQ(a.flagOps, b.flagOps);
    EXPECT_EQ(a.twins, b.twins);
    EXPECT_EQ(a.diffsCreated, b.diffsCreated);
    EXPECT_EQ(a.diffsApplied, b.diffsApplied);
    EXPECT_EQ(a.diffBytes, b.diffBytes);
    EXPECT_EQ(a.writeNoticesSent, b.writeNoticesSent);
    EXPECT_EQ(a.dirUpdates, b.dirUpdates);
    EXPECT_EQ(a.requestsServiced, b.requestsServiced);
    EXPECT_EQ(a.messagesSent, b.messagesSent);
    EXPECT_EQ(a.bytesSent, b.bytesSent);
    EXPECT_EQ(a.cacheAccesses, b.cacheAccesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.vmProtOps, b.vmProtOps);
    for (int c = 0; c < kTimeCatCount; ++c)
        EXPECT_EQ(a.timeIn[c], b.timeIn[c]) << "cat " << c;
    EXPECT_EQ(a.endTime, b.endTime);
}

void
expectResultsEq(const ExpResult& a, const ExpResult& b)
{
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.protocol, b.protocol);
    EXPECT_EQ(a.nprocs, b.nprocs);
    EXPECT_EQ(a.elapsed, b.elapsed);
    // Checksums compared as bit patterns, not via ==: NaN-safe and
    // catches even sign-of-zero divergence.
    EXPECT_EQ(std::memcmp(&a.appResult.checksum, &b.appResult.checksum,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&a.appResult.aux, &b.appResult.aux,
                          sizeof(double)),
              0);
    EXPECT_EQ(a.races, b.races);
    EXPECT_EQ(a.raceSummary, b.raceSummary);
    EXPECT_EQ(a.stats.elapsed, b.stats.elapsed);
    EXPECT_EQ(a.stats.mcBytes, b.stats.mcBytes);
    EXPECT_EQ(a.stats.mcStreamBytes, b.stats.mcStreamBytes);
    EXPECT_EQ(a.stats.messages, b.stats.messages);
    EXPECT_EQ(a.stats.racesDetected, b.stats.racesDetected);
    ASSERT_EQ(a.stats.procs.size(), b.stats.procs.size());
    for (std::size_t p = 0; p < a.stats.procs.size(); ++p) {
        SCOPED_TRACE(testing::Message() << "proc " << p);
        expectProcStatsEq(a.stats.procs[p], b.stats.procs[p]);
    }
}

TEST(RunExperiments, ParallelBitIdenticalToSequential)
{
    RunOpts tiny;
    tiny.scale = AppScale::Tiny;
    RunOpts perturbed = tiny;
    perturbed.schedSeed = 42;
    RunOpts raced = tiny;
    raced.raceDetect = true;

    // A mixed grid: both protocol families, several variants and
    // processor counts, a perturbed schedule and a race-detector run.
    const std::vector<ExpSpec> specs = {
        {"sor", ProtocolKind::TmkMcPoll, 4, tiny},
        {"gauss", ProtocolKind::CsmPoll, 4, tiny},
        {"lu", ProtocolKind::CsmPp, 4, tiny},
        {"sor", ProtocolKind::CsmInt, 2, tiny},
        {"gauss", ProtocolKind::TmkUdpInt, 2, tiny},
        {"sor", ProtocolKind::TmkMcInt, 4, perturbed},
        {"lu", ProtocolKind::TmkMcPoll, 2, raced},
        {"sor", ProtocolKind::None, 1, tiny},
    };

    const auto seq = runExperiments(specs, 1);
    const auto par = runExperiments(specs, 4);
    ASSERT_EQ(seq.size(), specs.size());
    ASSERT_EQ(par.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << specs[i].app << "/"
                     << protocolName(specs[i].protocol) << "/"
                     << specs[i].nprocs);
        expectResultsEq(seq[i], par[i]);
    }

    // A third round at an odd jobs value must match too.
    const auto par3 = runExperiments(specs, 3);
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectResultsEq(seq[i], par3[i]);
}

TEST(RunExperiments, FaultedRunsBitIdenticalAcrossJobs)
{
    // Every fault-injection path (link degradation, hub load, jitter,
    // brown-outs, stragglers, cost sweeps) must be as bit-deterministic
    // under the parallel engine as the healthy simulator: injector
    // state is per-runtime and every draw comes from the plan seed.
    RunOpts tiny;
    tiny.scale = AppScale::Tiny;
    auto faulted = [&](const char* spec) {
        RunOpts o = tiny;
        o.fault = faultPlanFromSpec(spec, 99);
        return o;
    };

    const std::vector<ExpSpec> specs = {
        {"sor", ProtocolKind::CsmPoll, 4, faulted("link_degrade:4")},
        {"gauss", ProtocolKind::TmkMcPoll, 4, faulted("hub_load:4")},
        {"sor", ProtocolKind::TmkMcInt, 4, faulted("jitter:10")},
        {"lu", ProtocolKind::CsmPp, 4, faulted("brownout:4")},
        {"sor", ProtocolKind::TmkUdpInt, 4, faulted("straggler:6")},
        {"gauss", ProtocolKind::CsmInt, 2, faulted("slow_interrupts:4")},
        {"lu", ProtocolKind::CsmPoll, 4, faulted("cost:mcLatency:8")},
        {"sor", ProtocolKind::TmkMcPoll, 4, faulted("one_slow_link:8")},
    };

    const auto seq = runExperiments(specs, 1);
    const auto par4 = runExperiments(specs, 4);
    const auto par3 = runExperiments(specs, 3);
    ASSERT_EQ(seq.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << specs[i].app << "/"
                     << protocolName(specs[i].protocol) << " under "
                     << specs[i].opts.fault.scenario);
        expectResultsEq(seq[i], par4[i]);
        expectResultsEq(seq[i], par3[i]);
    }
}

// ---------------------------------------------------------------------------
// Word-scan diff equivalence
// ---------------------------------------------------------------------------

/** Expanded run representation for the oracle scan below. */
struct RefRun
{
    std::uint16_t offset = 0;
    std::vector<std::uint8_t> bytes;
};

/** The pre-optimization byte-at-a-time scan, kept as the oracle. */
std::vector<RefRun>
referenceRuns(const std::uint8_t* page, const std::uint8_t* twin)
{
    std::vector<RefRun> runs;
    std::size_t i = 0;
    while (i < kPageSize) {
        if (page[i] == twin[i]) {
            ++i;
            continue;
        }
        std::size_t j = i + 1;
        while (j < kPageSize && page[j] != twin[j])
            ++j;
        RefRun run;
        run.offset = static_cast<std::uint16_t>(i);
        run.bytes.assign(page + i, page + j);
        runs.push_back(std::move(run));
        i = j;
    }
    return runs;
}

void
expectSameRuns(const FlatRuns& got, const std::vector<RefRun>& want)
{
    ASSERT_EQ(got.count(), want.size());
    std::size_t r = 0;
    for (const FlatRuns::View v : got) {
        EXPECT_EQ(v.offset, want[r].offset) << "run " << r;
        ASSERT_EQ(v.len, want[r].bytes.size()) << "run " << r;
        EXPECT_EQ(std::memcmp(v.data, want[r].bytes.data(), v.len), 0)
            << "run " << r;
        ++r;
    }
}

TEST(WordScanDiff, MatchesByteScanOnRandomPages)
{
    Rng rng(0xd1ff);
    std::vector<std::uint8_t> page(kPageSize), twin(kPageSize);
    for (int iter = 0; iter < 200; ++iter) {
        // Random base content, shared by page and twin.
        for (std::size_t i = 0; i < kPageSize; ++i)
            twin[i] = static_cast<std::uint8_t>(rng.nextBounded(256));
        std::memcpy(page.data(), twin.data(), kPageSize);
        // Dirty a random number of random spans (lengths 1..40, so
        // plenty of runs start/end mid-word and straddle boundaries).
        const int spans = static_cast<int>(rng.nextBounded(30));
        for (int s = 0; s < spans; ++s) {
            const std::size_t at = rng.nextBounded(kPageSize);
            const std::size_t len =
                std::min<std::size_t>(1 + rng.nextBounded(40),
                                      kPageSize - at);
            for (std::size_t k = 0; k < len; ++k)
                page[at + k] = static_cast<std::uint8_t>(
                    twin[at + k] ^ (1 + rng.nextBounded(255)));
        }
        FlatRuns got;
        computeRuns(page.data(), twin.data(), got);
        const auto want = referenceRuns(page.data(), twin.data());
        SCOPED_TRACE(testing::Message() << "iter " << iter);
        expectSameRuns(got, want);

        // Applying the runs to the twin must reproduce the page.
        std::vector<std::uint8_t> rebuilt = twin;
        applyRuns(rebuilt.data(), got);
        EXPECT_EQ(rebuilt, page);
    }
}

TEST(WordScanDiff, WordBoundaryStraddles)
{
    // Deterministic straddle shapes around every flavour of 8-byte
    // boundary: single bytes either side, runs covering exactly one
    // word, runs ending/starting on a boundary, and a full page.
    std::vector<std::uint8_t> page(kPageSize, 0), twin(kPageSize, 0);
    auto flip = [&](std::size_t i) { page[i] = 0xff; };
    flip(7);
    flip(8); // adjacent across a boundary -> one run [7, 10)
    flip(9);
    flip(16); // exactly one byte at a word start
    flip(31); // exactly one byte at a word end
    for (std::size_t i = 40; i < 48; ++i)
        flip(i); // exactly one aligned word
    for (std::size_t i = 50; i < 75; ++i)
        flip(i); // unaligned span across three words
    flip(kPageSize - 1); // last byte of the page
    FlatRuns straddle;
    computeRuns(page.data(), twin.data(), straddle);
    expectSameRuns(straddle, referenceRuns(page.data(), twin.data()));

    // Fully dirty page: one run of kPageSize bytes.
    std::fill(page.begin(), page.end(), 0x5a);
    FlatRuns full;
    computeRuns(page.data(), twin.data(), full);
    ASSERT_EQ(full.count(), 1u);
    const FlatRuns::View whole = *full.begin();
    EXPECT_EQ(whole.offset, 0);
    EXPECT_EQ(whole.len, kPageSize);

    // Alternating bytes: worst case, every other byte its own run.
    for (std::size_t i = 0; i < kPageSize; ++i)
        page[i] = (i % 2 == 0) ? 1 : 0;
    std::fill(twin.begin(), twin.end(), 0);
    FlatRuns alternating;
    computeRuns(page.data(), twin.data(), alternating);
    expectSameRuns(alternating, referenceRuns(page.data(), twin.data()));
}

// ---------------------------------------------------------------------------
// wireBytes header merging
// ---------------------------------------------------------------------------

TEST(DiffWireBytes, MergesNearbyRunHeaders)
{
    const std::vector<std::uint8_t> fill(kPageSize, 0xab);

    // wireBytes memoizes its result on first call (a diff is
    // immutable once the writer builds it), so each run shape gets
    // its own Diff instead of growing one incrementally.
    Diff one;
    one.runs.append(0, fill.data(), 32);
    EXPECT_EQ(one.wireBytes(), 16u + 8 + 32);

    // Gap of 4 (< 8): second header merges, the 4 gap bytes ship as
    // data — 4 bytes instead of a fresh 8-byte header.
    Diff merged;
    merged.runs.append(0, fill.data(), 32);
    merged.runs.append(36, fill.data(), 10);
    EXPECT_EQ(merged.wireBytes(), 16u + 8 + 32 + 4 + 10);

    // Gap of 8 (>= 8): fresh header is cheaper, no merge.
    Diff d;
    d.runs.append(0, fill.data(), 32);
    d.runs.append(36, fill.data(), 10);
    d.runs.append(54, fill.data(), 6);
    EXPECT_EQ(d.wireBytes(), 16u + 8 + 32 + 4 + 10 + 8 + 6);

    // The merge only affects accounting: dataBytes stays exact.
    EXPECT_EQ(d.dataBytes(), 32u + 10 + 6);

    // Never larger than the unmerged 8-bytes-per-run encoding.
    EXPECT_LE(d.wireBytes(), 16 + d.dataBytes() + 8 * d.runs.count());
}

} // namespace
} // namespace mcdsm
