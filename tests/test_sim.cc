/**
 * @file
 * Unit tests for the simulation engine: fibers and the conservative
 * scheduler.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/fiber.h"
#include "sim/scheduler.h"

namespace mcdsm {
namespace {

TEST(Fiber, RunsToCompletion)
{
    int state = 0;
    Fiber f([&] { state = 42; });
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(state, 42);
}

TEST(Fiber, YieldReturnsControl)
{
    std::vector<int> trace;
    Fiber f([&] {
        trace.push_back(1);
        Fiber::yield();
        trace.push_back(3);
        Fiber::yield();
        trace.push_back(5);
    });
    f.resume();
    trace.push_back(2);
    f.resume();
    trace.push_back(4);
    f.resume();
    EXPECT_TRUE(f.finished());
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksExecution)
{
    EXPECT_EQ(Fiber::current(), nullptr);
    Fiber* seen = nullptr;
    Fiber f([&] { seen = Fiber::current(); });
    f.resume();
    EXPECT_EQ(seen, &f);
    EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Scheduler, SingleTaskAdvancesClock)
{
    Scheduler s;
    Time end = -1;
    s.spawn("t", [&](TaskId) {
        s.advance(100);
        s.advance(50);
        end = s.now();
    });
    EXPECT_TRUE(s.run());
    EXPECT_EQ(end, 150);
    EXPECT_EQ(s.maxFinishTime(), 150);
}

TEST(Scheduler, LowestClockRunsFirst)
{
    Scheduler s;
    std::vector<int> order;
    // Task 0 advances far, then yields; task 1 should run next.
    s.spawn("a", [&](TaskId) {
        order.push_back(0);
        s.advance(1000);
        s.yield();
        order.push_back(2);
    });
    s.spawn("b", [&](TaskId) {
        order.push_back(1);
        s.advance(2000);
        s.yield();
        order.push_back(3);
    });
    EXPECT_TRUE(s.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Scheduler, TieBreakByTaskId)
{
    Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        s.spawn("t", [&order, i, &s](TaskId) {
            order.push_back(i);
            s.yield();
            order.push_back(10 + i);
        });
    }
    EXPECT_TRUE(s.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 10, 11, 12, 13}));
}

TEST(Scheduler, WakeSetsMinimumTime)
{
    Scheduler s;
    Time woke_at = -1;
    TaskId sleeper = s.spawn("sleeper", [&](TaskId) {
        s.block();
        woke_at = s.now();
    });
    s.spawn("waker", [&](TaskId) {
        s.advance(500);
        s.wake(sleeper, 800);
    });
    EXPECT_TRUE(s.run());
    EXPECT_EQ(woke_at, 800);
}

TEST(Scheduler, WakeDoesNotMoveClockBackwards)
{
    Scheduler s;
    Time woke_at = -1;
    TaskId sleeper = s.spawn("sleeper", [&](TaskId) {
        s.advance(1000);
        s.block();
        woke_at = s.now();
    });
    s.spawn("waker", [&](TaskId) { s.wake(sleeper, 10); });
    EXPECT_TRUE(s.run());
    EXPECT_EQ(woke_at, 1000);
}

TEST(Scheduler, PendingWakeConsumedByNextBlock)
{
    Scheduler s;
    Time woke_at = -1;
    // The wake arrives while the sleeper is still runnable; block()
    // must consume it instead of parking forever.
    TaskId sleeper = s.spawn("sleeper", [&](TaskId) {
        s.yield(); // give the waker a chance to run first
        s.block();
        woke_at = s.now();
    });
    s.spawn("waker", [&](TaskId) { s.wake(sleeper, 300); });
    EXPECT_TRUE(s.run());
    EXPECT_EQ(woke_at, 300);
}

TEST(Scheduler, SelfWakeActsAsSleepUntil)
{
    Scheduler s;
    Time woke_at = -1;
    s.spawn("t", [&](TaskId id) {
        s.wake(id, 12345);
        s.block();
        woke_at = s.now();
    });
    EXPECT_TRUE(s.run());
    EXPECT_EQ(woke_at, 12345);
}

TEST(Scheduler, DeadlockDetected)
{
    Scheduler s;
    s.spawn("stuck", [&](TaskId) { s.block(); });
    EXPECT_FALSE(s.run());
    auto blocked = s.blockedTasks();
    ASSERT_EQ(blocked.size(), 1u);
    EXPECT_EQ(blocked[0], "stuck");
}

TEST(Scheduler, ManyTasksDeterministicInterleaving)
{
    // Two identical schedules must produce identical traces.
    auto run_once = [] {
        Scheduler s;
        std::vector<std::pair<int, Time>> trace;
        for (int i = 0; i < 8; ++i) {
            s.spawn("t", [&trace, i, &s](TaskId) {
                for (int k = 0; k < 5; ++k) {
                    s.advance((i * 7 + k * 13) % 29);
                    trace.emplace_back(i, s.now());
                    s.yield();
                }
            });
        }
        EXPECT_TRUE(s.run());
        return trace;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, DeadlockReportNamesTheCulprits)
{
    Scheduler s;
    s.spawn("reader-3", [&](TaskId) { s.block(); });
    s.spawn("finisher", [&](TaskId) { s.advance(10); });
    s.spawn("writer-7", [&](TaskId) { s.block(); });
    EXPECT_FALSE(s.run());
    const std::string report = s.deadlockReport();
    EXPECT_NE(report.find("reader-3"), std::string::npos) << report;
    EXPECT_NE(report.find("writer-7"), std::string::npos) << report;
    EXPECT_EQ(report.find("finisher"), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// Schedule perturbation.
// ---------------------------------------------------------------------------

namespace {

/** A workload with real tie-breaks and wake/block interaction; returns
 *  the (task, time) resume trace. */
std::vector<std::pair<int, Time>>
perturbedTrace(std::uint64_t seed, Time max_jitter)
{
    Scheduler s;
    if (max_jitter >= 0)
        s.perturb(seed, max_jitter);
    std::vector<std::pair<int, Time>> trace;
    std::vector<TaskId> ids;
    for (int i = 0; i < 6; ++i) {
        ids.push_back(s.spawn("t", [&trace, &s, &ids, i](TaskId id) {
            for (int k = 0; k < 8; ++k) {
                trace.emplace_back(i, s.now());
                s.advance((i + k) % 3); // frequent equal-clock ties
                if (k % 2 == 0) {
                    s.yield();
                } else {
                    s.wake(ids[(i + 1) % 6], s.now());
                    s.wake(id, s.now() + 5);
                    s.block();
                }
            }
        }));
    }
    EXPECT_TRUE(s.run());
    return trace;
}

} // namespace

TEST(SchedulerPerturb, SameSeedGivesIdenticalSchedule)
{
    EXPECT_EQ(perturbedTrace(42, 100), perturbedTrace(42, 100));
    EXPECT_EQ(perturbedTrace(7, 0), perturbedTrace(7, 0));
}

TEST(SchedulerPerturb, DifferentSeedsExploreDifferentInterleavings)
{
    // With heavy equal-clock contention at least one of a handful of
    // seeds must deviate from the baseline FIFO order.
    const auto base = perturbedTrace(0, -1); // unperturbed
    bool deviated = false;
    for (std::uint64_t seed = 1; seed <= 8 && !deviated; ++seed)
        deviated = perturbedTrace(seed, 100) != base;
    EXPECT_TRUE(deviated);
}

TEST(SchedulerPerturb, ResumeClocksStayNondecreasing)
{
    // The conservative guarantee: the scheduler always resumes the
    // minimum-clock runnable task, so observed resume times never go
    // backwards — jitter only pushes clocks forward.
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        auto trace = perturbedTrace(seed, 200);
        Time prev = 0;
        for (const auto& [task, t] : trace) {
            EXPECT_GE(t, prev) << "seed " << seed;
            prev = t;
        }
    }
}

TEST(SchedulerPerturb, WakeBeforeBlockStillConsumed)
{
    // The benign wake/block race must survive perturbation: a wake
    // that lands while the target is still runnable is buffered and
    // consumed by its next block().
    for (std::uint64_t seed : {11u, 12u, 13u}) {
        Scheduler s;
        s.perturb(seed, 50);
        Time woke_at = -1;
        TaskId sleeper = s.spawn("sleeper", [&](TaskId) {
            s.yield();
            s.block();
            woke_at = s.now();
        });
        s.spawn("waker", [&](TaskId) { s.wake(sleeper, 300); });
        EXPECT_TRUE(s.run()) << "seed " << seed;
        EXPECT_GE(woke_at, 300) << "seed " << seed;
    }
}

TEST(Scheduler, BlockedTaskWokenByLaterSpawnOrder)
{
    // A chain of wakes across three tasks preserves time monotonicity.
    Scheduler s;
    std::vector<Time> times;
    TaskId c = s.spawn("c", [&](TaskId) {
        s.block();
        times.push_back(s.now());
    });
    TaskId b = s.spawn("b", [&](TaskId) {
        s.block();
        times.push_back(s.now());
        s.wake(c, s.now() + 10);
    });
    s.spawn("a", [&](TaskId) {
        s.advance(100);
        times.push_back(s.now());
        s.wake(b, s.now() + 10);
    });
    EXPECT_TRUE(s.run());
    ASSERT_EQ(times.size(), 3u);
    EXPECT_EQ(times[0], 100);
    EXPECT_EQ(times[1], 110);
    EXPECT_EQ(times[2], 120);
}

// ---------------------------------------------------------------------------
// yield() strictly-earliest fast path: active only in the plain
// sequential loop; provably bypassed under perturbation and under the
// parallel engine. yieldSwitches() counts slow-path yields, so each
// fixture fails if the fast path were (re)enabled in the wrong mode.
// ---------------------------------------------------------------------------

TEST(SchedulerYieldFastPath, SkipsSwitchWhenStrictlyEarliest)
{
    Scheduler s;
    s.spawn("a", [&](TaskId) {
        s.yield(); // only b@10 queued: strictly earliest, no switch
        s.advance(1);
    });
    s.spawn("b", [&](TaskId) { s.advance(1); }, 10);
    EXPECT_TRUE(s.run());
    EXPECT_EQ(s.yieldSwitches(), 0u);
}

TEST(SchedulerYieldFastPath, DisabledUnderPerturbation)
{
    // Identical task structure; the perturbed schedule must pass
    // through the ready queue (the re-queue is a PRNG draw that has
    // to stay in the schedule), so the yield switches out.
    Scheduler s;
    s.perturb(7, 0);
    s.spawn("a", [&](TaskId) {
        s.yield();
        s.advance(1);
    });
    s.spawn("b", [&](TaskId) { s.advance(1); }, 10);
    EXPECT_TRUE(s.run());
    EXPECT_EQ(s.yieldSwitches(), 1u);
}

TEST(EngineYieldFastPath, DisabledUnderSingleWorkerEngine)
{
    Scheduler s;
    std::vector<int> order;
    const TaskId a = s.spawn("a", [&](TaskId) {
        s.yield();
        order.push_back(1);
    });
    const TaskId b =
        s.spawn("b", [&](TaskId) { order.push_back(2); }, 10);
    Engine eng(s, 1, 100);
    eng.assignTask(a, 0);
    eng.assignTask(b, 0);
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(s.yieldSwitches(), 1u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EngineYieldFastPath, SwitchesEvenWithEmptyLocalHeap)
{
    // Worker 0's heap is empty when a yields — the legacy fast-path
    // condition would skip the switch, but "strictly earliest" is not
    // decidable from one worker's heap, so the engine must not.
    Scheduler s;
    const TaskId a = s.spawn("a", [&](TaskId) {
        s.yield();
        s.advance(1);
    });
    const TaskId b = s.spawn("b", [&](TaskId) { s.advance(1); }, 10);
    Engine eng(s, 2, 100);
    eng.assignTask(a, 0);
    eng.assignTask(b, 1);
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(s.yieldSwitches(), 1u);
}

// ---------------------------------------------------------------------------
// Engine determinism at the scheduler level
// ---------------------------------------------------------------------------

TEST(Engine, MatchesSliceOrderAcrossWorkerCounts)
{
    // Three tasks on staggered clocks, pure advance/yield: the slice
    // sequence (and so the log) must be identical for 1 and 3 workers.
    auto run = [](int workers) {
        Scheduler s;
        Engine eng(s, workers, 25);
        std::vector<std::vector<Time>> log(3);
        std::vector<TaskId> ids(3);
        for (int i = 0; i < 3; ++i) {
            ids[i] = s.spawn(
                "t",
                [&s, &log, i](TaskId) {
                    for (int r = 0; r < 30; ++r) {
                        s.advance(10 + 7 * i);
                        log[i].push_back(s.now());
                        s.yield();
                    }
                },
                i * 4);
            eng.assignTask(ids[i], i % workers);
        }
        EXPECT_TRUE(eng.run());
        log.push_back({s.maxFinishTime()});
        return log;
    };
    const auto one = run(1);
    EXPECT_EQ(run(3), one);
}

TEST(Engine, WakeBlockStressAcrossEpochBoundaries)
{
    // Two ping-pong pairs whose wake targets repeatedly land just
    // before and just after epoch horizons (lookahead 50, strides
    // 13..40). Pairs share a worker (cross-worker wakes go through
    // the mailbox in the real system); the full event log must be
    // bit-identical for 1 and 2 workers.
    auto run = [](int workers) {
        Scheduler s;
        Engine eng(s, workers, 50);
        constexpr int kTasks = 4;
        constexpr int kRounds = 48;
        std::vector<std::vector<Time>> log(kTasks);
        std::vector<TaskId> ids(kTasks);
        for (int i = 0; i < kTasks; ++i) {
            const int peer = i ^ 1;
            ids[i] = s.spawn(
                "t",
                [&s, &log, &ids, i, peer](TaskId) {
                    for (int r = 0; r < kRounds; ++r) {
                        s.advance(13 + 9 * i + (r % 5));
                        log[i].push_back(s.now());
                        s.yield();
                        s.wake(ids[peer], s.now() + (r % 3));
                        if (r + 1 < kRounds)
                            s.block();
                    }
                },
                i * 3);
            eng.assignTask(ids[i], (i / 2) % workers);
        }
        EXPECT_TRUE(eng.run());
        log.push_back({s.maxFinishTime()});
        return log;
    };
    const auto one = run(1);
    EXPECT_EQ(run(2), one);
}

} // namespace
} // namespace mcdsm
