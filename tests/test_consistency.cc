/**
 * @file
 * Property-based consistency tests. Random data-race-free programs
 * are executed on every protocol variant and compared against a
 * sequentially-computed golden result; invariants of the accounting
 * and synchronization machinery are checked along the way.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"
#include "sim/rng.h"

namespace mcdsm {
namespace {

const ProtocolKind kAllProtocols[] = {
    ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
    ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
    ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
};

DsmConfig
cfg(ProtocolKind k, int nprocs)
{
    DsmConfig c;
    c.protocol = k;
    c.topo = (k == ProtocolKind::CsmPp && nprocs == 4)
                 ? Topology(4, 4)
                 : Topology::standard(nprocs);
    c.maxSharedBytes = 4 << 20;
    return c;
}

struct PropCase
{
    ProtocolKind protocol;
    std::uint64_t seed;
};

std::string
propName(const ::testing::TestParamInfo<PropCase>& info)
{
    return std::string(protocolName(info.param.protocol)) + "_seed" +
           std::to_string(info.param.seed);
}

class RandomDrfProgram : public ::testing::TestWithParam<PropCase>
{};

/**
 * Random barrier-phased DRF program: in every phase each processor
 * owns a random disjoint slice of the array and mutates it with a
 * deterministic function; after a barrier, procs read a random other
 * slice and fold it into their own. A sequential oracle computes the
 * same phases.
 */
TEST_P(RandomDrfProgram, MatchesSequentialOracle)
{
    const auto [kind, seed] = GetParam();
    constexpr int kProcs = 4;
    constexpr int kN = 4096; // 4 pages of int64
    constexpr int kPhases = 6;

    // --- derive per-phase plan deterministically -----------------------
    Rng plan(seed);
    struct Phase
    {
        int perm[kProcs];  ///< which slice each proc reads
        std::int64_t mul;
    };
    std::vector<Phase> phases(kPhases);
    for (auto& ph : phases) {
        for (int i = 0; i < kProcs; ++i)
            ph.perm[i] = i;
        for (int i = kProcs - 1; i > 0; --i) {
            const int j = static_cast<int>(plan.nextBounded(i + 1));
            std::swap(ph.perm[i], ph.perm[j]);
        }
        ph.mul = 1 + static_cast<std::int64_t>(plan.nextBounded(7));
    }

    // --- sequential oracle ------------------------------------------------
    std::vector<std::int64_t> oracle(kN);
    std::iota(oracle.begin(), oracle.end(), 0);
    constexpr int kSlice = kN / kProcs;
    for (const auto& ph : phases) {
        // Mutate own slice.
        std::vector<std::int64_t> before = oracle;
        for (int q = 0; q < kProcs; ++q)
            for (int i = q * kSlice; i < (q + 1) * kSlice; ++i)
                oracle[i] = oracle[i] * ph.mul + q;
        // Read someone else's slice, fold into own.
        before = oracle;
        for (int q = 0; q < kProcs; ++q) {
            const int src = ph.perm[q];
            for (int i = 0; i < kSlice; ++i) {
                oracle[q * kSlice + i] +=
                    before[src * kSlice + i] % 97;
            }
        }
    }
    const std::int64_t want =
        std::accumulate(oracle.begin(), oracle.end(), std::int64_t{0});

    // --- DSM execution ------------------------------------------------------
    auto sys = DsmSystem::create(cfg(kind, kProcs));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, kN);
    for (int i = 0; i < kN; ++i)
        arr.init(*sys, i, i);

    std::int64_t got = -1;
    sys->run([&](Proc& p) {
        const int q = p.id();
        for (const auto& ph : phases) {
            for (int i = q * kSlice; i < (q + 1) * kSlice; ++i) {
                p.pollPoint();
                arr.set(p, i, arr.get(p, i) * ph.mul + q);
            }
            p.barrier(0);
            const int src = ph.perm[q];
            std::vector<std::int64_t> copy(kSlice);
            for (int i = 0; i < kSlice; ++i)
                copy[i] = arr.get(p, src * kSlice + i);
            p.barrier(1);
            for (int i = 0; i < kSlice; ++i) {
                arr.set(p, q * kSlice + i,
                        arr.get(p, q * kSlice + i) + copy[i] % 97);
            }
            p.barrier(2);
        }
        if (q == 0) {
            std::int64_t sum = 0;
            for (int i = 0; i < kN; ++i)
                sum += arr.get(p, i);
            got = sum;
        }
        p.barrier(3);
    });

    EXPECT_EQ(got, want);
}

std::vector<PropCase>
propMatrix()
{
    std::vector<PropCase> cases;
    for (ProtocolKind k : kAllProtocols)
        for (std::uint64_t seed : {11u, 22u, 33u})
            cases.push_back({k, seed});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDrfProgram,
                         ::testing::ValuesIn(propMatrix()), propName);

// ---------------------------------------------------------------------------
// Mutual exclusion under random contention
// ---------------------------------------------------------------------------

class LockProperty : public ::testing::TestWithParam<ProtocolKind>
{};

INSTANTIATE_TEST_SUITE_P(
    Variants, LockProperty, ::testing::ValuesIn(kAllProtocols),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
        return protocolName(info.param);
    });

TEST_P(LockProperty, CriticalSectionsNeverOverlap)
{
    auto sys = DsmSystem::create(cfg(GetParam(), 8));
    GAddr owner = sys->alloc(8);
    GAddr counter = sys->alloc(8);
    bool overlap = false;
    std::int64_t final_count = -1;

    sys->run([&](Proc& p) {
        Rng rng(p.id() + 99);
        for (int i = 0; i < 10; ++i) {
            p.pollPoint();
            p.compute(static_cast<Time>(rng.nextBounded(50)) *
                      kMicrosecond);
            p.acquire(2);
            // Inside the critical section the owner word must be
            // free, then ours, for the whole section.
            if (p.read<std::int64_t>(owner) != 0)
                overlap = true;
            p.write<std::int64_t>(owner, p.id() + 1);
            p.compute(static_cast<Time>(rng.nextBounded(30)) *
                      kMicrosecond);
            if (p.read<std::int64_t>(owner) != p.id() + 1)
                overlap = true;
            p.write<std::int64_t>(owner, 0);
            p.write<std::int64_t>(counter,
                                  p.read<std::int64_t>(counter) + 1);
            p.release(2);
        }
        p.barrier(0);
        if (p.id() == 0)
            final_count = p.read<std::int64_t>(counter);
        p.barrier(1);
    });

    EXPECT_FALSE(overlap);
    EXPECT_EQ(final_count, 80);
}

// ---------------------------------------------------------------------------
// Barrier semantics
// ---------------------------------------------------------------------------

class BarrierProperty : public ::testing::TestWithParam<ProtocolKind>
{};

INSTANTIATE_TEST_SUITE_P(
    Variants, BarrierProperty, ::testing::ValuesIn(kAllProtocols),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
        return protocolName(info.param);
    });

TEST_P(BarrierProperty, AllArriveBeforeAnyLeaves)
{
    auto sys = DsmSystem::create(cfg(GetParam(), 8));
    // Host-side epoch bookkeeping: fibers run one at a time, so plain
    // variables observed at enter/leave are race-free.
    int arrived = 0;
    bool violated = false;

    sys->run([&](Proc& p) {
        Rng rng(p.id() * 3 + 1);
        for (int round = 0; round < 5; ++round) {
            p.compute(static_cast<Time>(rng.nextBounded(100)) *
                      kMicrosecond);
            ++arrived;
            p.barrier(0);
            // On leaving round r, all 8 arrivals for round r (and
            // possibly early arrivals for r+1) must have happened.
            if (arrived < 8 * (round + 1))
                violated = true;
        }
    });
    EXPECT_FALSE(violated);
}

TEST_P(BarrierProperty, VirtualTimeAdvancesAcrossBarrier)
{
    auto sys = DsmSystem::create(cfg(GetParam(), 4));
    std::vector<Time> before(4), after(4);
    sys->run([&](Proc& p) {
        p.compute((p.id() + 1) * kMillisecond);
        before[p.id()] = p.now();
        p.barrier(0);
        after[p.id()] = p.now();
    });
    const Time slowest = *std::max_element(before.begin(), before.end());
    for (int q = 0; q < 4; ++q)
        EXPECT_GE(after[q], slowest);
}

// ---------------------------------------------------------------------------
// Accounting invariants
// ---------------------------------------------------------------------------

class AccountingProperty : public ::testing::TestWithParam<ProtocolKind>
{};

INSTANTIATE_TEST_SUITE_P(
    Variants, AccountingProperty, ::testing::ValuesIn(kAllProtocols),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
        return protocolName(info.param);
    });

TEST_P(AccountingProperty, BreakdownCoversExecutionTime)
{
    auto sys = DsmSystem::create(cfg(GetParam(), 4));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 8192);
    sys->run([&](Proc& p) {
        for (int r = 0; r < 3; ++r) {
            for (int i = p.id(); i < 8192; i += 4) {
                p.pollPoint();
                arr.set(p, i, i + r);
            }
            p.barrier(0);
            std::int64_t s = 0;
            for (int i = 0; i < 8192; i += 16)
                s += arr.get(p, i);
            p.barrier(1);
        }
    });

    for (const auto& ps : sys->stats().procs) {
        Time sum = 0;
        for (int c = 0; c < kTimeCatCount; ++c) {
            EXPECT_GE(ps.timeIn[c], 0);
            sum += ps.timeIn[c];
        }
        // Every nanosecond of a worker's execution is attributed to
        // exactly one category (lingering service work may add a
        // little after endTime).
        EXPECT_GE(sum, ps.endTime * 99 / 100);
        EXPECT_LE(sum, ps.endTime * 102 / 100 + 10 * kMillisecond);
    }
}

TEST_P(AccountingProperty, ElapsedIsMaxEndTime)
{
    auto sys = DsmSystem::create(cfg(GetParam(), 4));
    sys->run([&](Proc& p) { p.compute((p.id() + 1) * kMillisecond); });
    Time max_end = 0;
    for (const auto& ps : sys->stats().procs)
        max_end = std::max(max_end, ps.endTime);
    EXPECT_EQ(sys->stats().elapsed, max_end);
    EXPECT_GE(sys->stats().elapsed, 4 * kMillisecond);
}

} // namespace
} // namespace mcdsm
