/**
 * @file
 * Large-processor-count coverage for the scaling work:
 *
 *   1. ProcSet (common/bitset.h): the directory presence bitset that
 *      lifted the 64-processor cap — inline-word behavior at P <= 64,
 *      lazy overflow words past it, ascending forEach order.
 *   2. Jobs-invariance at P = 64 and P = 128: one Cashmere and one
 *      TreadMarks variant plus the KV workload must produce
 *      bit-identical results for --jobs=1 and --jobs=2.
 *   3. Small-P goldens: hard-coded simulated times and application
 *      checksums of the pre-restructuring seed. The metadata rework
 *      (presence bitsets, combining-tree barriers, sharer-bitmap
 *      iteration, allocation-free hot paths) is host-side only, so
 *      every one of these bits must survive it.
 *   4. Sparse vector-timestamp deltas (DsmConfig::tmkSparseVt)
 *      change modelled wire bytes, never application results.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bitset.h"
#include "harness/pool.h"
#include "harness/runner.h"

namespace mcdsm {
namespace {

// ---------------------------------------------------------------------------
// ProcSet
// ---------------------------------------------------------------------------

TEST(ProcSet, InlineRangeBasics)
{
    ProcSet s;
    EXPECT_EQ(s.count(), 0);
    for (int p : {0, 1, 17, 63}) {
        EXPECT_FALSE(s.test(p));
        s.set(p);
        EXPECT_TRUE(s.test(p));
    }
    EXPECT_EQ(s.count(), 4);
    EXPECT_EQ(s.countExcept(17), 3);
    EXPECT_EQ(s.countExcept(2), 4);
    s.clear(17);
    EXPECT_FALSE(s.test(17));
    EXPECT_EQ(s.count(), 3);
}

TEST(ProcSet, HighBitsPastTheOldCap)
{
    ProcSet s;
    // Testing an unset high bit must not materialize overflow words.
    EXPECT_FALSE(s.test(64));
    EXPECT_FALSE(s.test(1023));
    for (int p : {64, 65, 127, 128, 511, 1023}) {
        s.set(p);
        EXPECT_TRUE(s.test(p));
    }
    EXPECT_EQ(s.count(), 6);
    s.clear(128);
    EXPECT_FALSE(s.test(128));
    EXPECT_TRUE(s.test(127));
    EXPECT_EQ(s.count(), 5);
    // Clearing a bit whose word was never grown is a no-op.
    ProcSet t;
    t.clear(999);
    EXPECT_EQ(t.count(), 0);
}

TEST(ProcSet, ForEachVisitsAscending)
{
    ProcSet s;
    const std::vector<int> bits{3, 5, 63, 64, 200, 700};
    for (int p : bits)
        s.set(p);
    std::vector<int> seen;
    s.forEach([&](int p) { seen.push_back(p); });
    EXPECT_EQ(seen, bits);
}

// ---------------------------------------------------------------------------
// Protocol-variant support at large P
// ---------------------------------------------------------------------------

TEST(ScaleSupport, VariantsPastThePaperMachine)
{
    // Poll/interrupt variants scale to arbitrary P; csm_pp needs a
    // spare CPU per node and stays capped like the paper's machine.
    EXPECT_TRUE(configSupported(ProtocolKind::CsmPoll, 1024));
    EXPECT_TRUE(configSupported(ProtocolKind::TmkMcPoll, 1024));
    EXPECT_FALSE(configSupported(ProtocolKind::CsmPp, 32));
}

// ---------------------------------------------------------------------------
// Jobs-invariance at P = 64 and P = 128
// ---------------------------------------------------------------------------

void
expectSameResults(const std::vector<ExpResult>& a,
                  const std::vector<ExpResult>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].app + " x " +
                     std::string(protocolName(a[i].protocol)) + " x " +
                     std::to_string(a[i].nprocs));
        EXPECT_EQ(a[i].elapsed, b[i].elapsed);
        EXPECT_EQ(a[i].stats.messages, b[i].stats.messages);
        EXPECT_EQ(std::memcmp(&a[i].appResult.checksum,
                              &b[i].appResult.checksum,
                              sizeof(double)),
                  0);
    }
}

TEST(ScaleDeterminism, JobsInvarianceAt64And128)
{
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    std::vector<ExpSpec> specs;
    for (int np : {64, 128}) {
        specs.push_back({"sor", ProtocolKind::CsmPoll, np, opts});
        specs.push_back({"sor", ProtocolKind::TmkMcPoll, np, opts});
        specs.push_back({"kv", ProtocolKind::CsmPoll, np, opts});
        specs.push_back({"kv", ProtocolKind::TmkMcPoll, np, opts});
    }
    expectSameResults(runExperiments(specs, 1), runExperiments(specs, 2));
}

// ---------------------------------------------------------------------------
// jobs x sim-threads invariance matrix
// ---------------------------------------------------------------------------

TEST(ScaleDeterminism, JobsTimesSimThreadsMatrix)
{
    // Every (jobs, sim-threads) cell in {1,2,4} x {1,2,4} must produce
    // bit-identical results to the serial engine (sim-threads=1): the
    // epoch-barrier engine is defined to be worker-count-invariant, and
    // per-run isolation makes it jobs-invariant. Covers both fabrics
    // (Memory Channel and RDMA verbs) and the kv service workload.
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    std::vector<ExpSpec> specs;
    for (int np : {64, 128}) {
        specs.push_back({"sor", ProtocolKind::TmkMcPoll, np, opts});
        specs.push_back({"kv", ProtocolKind::TmkMcPoll, np, opts});
        RunOpts rdma = opts;
        rdma.net = NetKind::Rdma;
        specs.push_back({"sor", ProtocolKind::TmkMcPoll, np, rdma});
    }

    auto withSimThreads = [&](int st) {
        std::vector<ExpSpec> out = specs;
        for (auto& s : out)
            s.opts.simThreads = st;
        return out;
    };

    const auto base = runExperiments(withSimThreads(1), 1);
    for (int jobs : {1, 2, 4}) {
        for (int st : {1, 2, 4}) {
            if (jobs == 1 && st == 1)
                continue;
            SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                         " sim-threads=" + std::to_string(st));
            const auto cell = runExperiments(withSimThreads(st), jobs);
            ASSERT_EQ(cell.size(), base.size());
            for (std::size_t i = 0; i < base.size(); ++i) {
                SCOPED_TRACE(base[i].app + " x " +
                             std::to_string(base[i].nprocs));
                EXPECT_EQ(cell[i].elapsed, base[i].elapsed);
                EXPECT_EQ(cell[i].stats.messages, base[i].stats.messages);
                EXPECT_EQ(cell[i].stats.mcBytes, base[i].stats.mcBytes);
                EXPECT_EQ(cell[i].stats.mcStreamBytes,
                          base[i].stats.mcStreamBytes);
                EXPECT_EQ(cell[i].stats.netOneSidedBytes,
                          base[i].stats.netOneSidedBytes);
                EXPECT_EQ(cell[i].stats.rdmaReads, base[i].stats.rdmaReads);
                EXPECT_EQ(cell[i].stats.rdmaWrites,
                          base[i].stats.rdmaWrites);
                EXPECT_EQ(std::memcmp(&cell[i].appResult.checksum,
                                      &base[i].appResult.checksum,
                                      sizeof(double)),
                          0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Small-P goldens across the metadata restructuring
// ---------------------------------------------------------------------------

struct Golden
{
    const char* app;
    ProtocolKind protocol;
    int nprocs;
    Time elapsed;               ///< simulated ns
    std::uint64_t checksumBits; ///< bit pattern of AppResult::checksum
};

TEST(ScaleGoldens, SmallPBitsSurviveTheRestructuring)
{
    // Captured from the growth seed (pre-bitset, pre-combining-tree,
    // dense-VT code) at tiny scale, seed 1. The scaling work is
    // host-side restructuring, so simulated time and application
    // bits must match exactly.
    const Golden goldens[] = {
        {"sor", ProtocolKind::CsmPoll, 4, 11920110,
         0x404bd43800000000ull},
        {"sor", ProtocolKind::CsmPoll, 8, 16280711,
         0x404bd43800000000ull},
        {"sor", ProtocolKind::TmkMcPoll, 4, 19840770,
         0x404bd43800000000ull},
        {"sor", ProtocolKind::TmkMcPoll, 8, 26596837,
         0x404bd43800000000ull},
        {"gauss", ProtocolKind::CsmPoll, 4, 103193289,
         0x4050810624dd2f1bull},
        {"gauss", ProtocolKind::CsmPoll, 8, 137574777,
         0x4050810624dd2f1bull},
        {"gauss", ProtocolKind::TmkMcPoll, 4, 63018785,
         0x4050810624dd2f1bull},
        {"gauss", ProtocolKind::TmkMcPoll, 8, 64288099,
         0x4050810624dd2f1bull},
        {"lu", ProtocolKind::CsmPoll, 4, 6098499,
         0x40e11f7f073f9070ull},
        {"lu", ProtocolKind::CsmPoll, 8, 6444888,
         0x40e11f7f073f9070ull},
        {"lu", ProtocolKind::TmkMcPoll, 4, 8398795,
         0x40e11f7f073f9070ull},
        {"lu", ProtocolKind::TmkMcPoll, 8, 8518212,
         0x40e11f7f073f9070ull},
    };
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    for (const Golden& g : goldens) {
        SCOPED_TRACE(std::string(g.app) + " x " +
                     protocolName(g.protocol) + " x " +
                     std::to_string(g.nprocs));
        const ExpResult r =
            runExperiment(g.app, g.protocol, g.nprocs, opts);
        EXPECT_EQ(r.elapsed, g.elapsed);
        std::uint64_t bits = 0;
        std::memcpy(&bits, &r.appResult.checksum, sizeof(bits));
        EXPECT_EQ(bits, g.checksumBits);
    }
}

// ---------------------------------------------------------------------------
// Sparse vector-timestamp deltas
// ---------------------------------------------------------------------------

TEST(ScaleSparseVt, SameApplicationBitsDifferentWireModel)
{
    RunOpts dense;
    dense.scale = AppScale::Tiny;
    RunOpts sparse = dense;
    DsmConfig base;
    base.tmkSparseVt = true;
    sparse.base = base;

    const ExpResult d =
        runExperiment("sor", ProtocolKind::TmkMcPoll, 64, dense);
    const ExpResult s =
        runExperiment("sor", ProtocolKind::TmkMcPoll, 64, sparse);
    const ExpResult s2 =
        runExperiment("sor", ProtocolKind::TmkMcPoll, 64, sparse);

    // Identical computation...
    EXPECT_EQ(std::memcmp(&d.appResult.checksum, &s.appResult.checksum,
                          sizeof(double)),
              0);
    // ...cheaper modelled synchronization (dense ships 4P bytes per
    // timestamp; tiny problems at P=64 are timestamp-bound)...
    EXPECT_LT(s.elapsed, d.elapsed);
    // ...and the sparse path is itself deterministic.
    EXPECT_EQ(s.elapsed, s2.elapsed);
    EXPECT_EQ(s.stats.messages, s2.stats.messages);
}

} // namespace
} // namespace mcdsm
