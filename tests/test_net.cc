/**
 * @file
 * Unit tests for the Memory Channel model and the mailbox layer.
 */

#include <gtest/gtest.h>

#include "common/costs.h"
#include "net/mailbox.h"
#include "net/memory_channel.h"
#include "net/topology.h"
#include "sim/scheduler.h"

namespace mcdsm {
namespace {

class McTest : public ::testing::Test
{
  protected:
    CostModel costs;
};

TEST_F(McTest, SmallTransferArrivesAfterLatency)
{
    MemoryChannel mc(costs, 4);
    Time arr = mc.transfer(0, 1, 8, 0);
    // 8 bytes at 30 MB/s is ~267 ns of link time plus 5.2 us latency.
    EXPECT_GT(arr, costs.mcLatency);
    EXPECT_LT(arr, costs.mcLatency + 2 * kMicrosecond);
}

TEST_F(McTest, BandwidthLimitsLargeTransfer)
{
    MemoryChannel mc(costs, 4);
    Time arr = mc.transfer(0, 1, 8192, 0);
    // 8 KB at 30 MB/s takes ~273 us.
    Time link_time = static_cast<Time>(8192 / costs.mcLinkBw);
    EXPECT_GE(arr, link_time);
    EXPECT_LE(arr, link_time + 20 * kMicrosecond);
}

TEST_F(McTest, BackToBackTransfersSerializeOnLink)
{
    MemoryChannel mc(costs, 4);
    Time a1 = mc.transfer(0, 1, 8192, 0);
    Time a2 = mc.transfer(0, 1, 8192, 0);
    EXPECT_GT(a2, a1);
    // Second transfer waits for the first to clear the link.
    EXPECT_GE(a2 - a1, static_cast<Time>(8192 / costs.mcAggBw) - kMicrosecond);
}

TEST_F(McTest, HubContentionCouplesDistinctPairs)
{
    MemoryChannel mc(costs, 4);
    // Transfers on disjoint node pairs still share the hub.
    Time a1 = mc.transfer(0, 1, 65536, 0);
    Time a2 = mc.transfer(2, 3, 65536, 0);
    EXPECT_GT(a2, a1 - kMicrosecond);
}

TEST_F(McTest, DeliveryTimesMonotonePerDestination)
{
    MemoryChannel mc(costs, 4);
    Time prev = 0;
    for (int i = 0; i < 10; ++i) {
        Time a = mc.transfer(i % 3, 3, 100 + i * 10, i * 100);
        EXPECT_GE(a, prev); // write ordering at the receiver
        prev = a;
    }
}

TEST_F(McTest, BroadcastReachesAllAndCountsBytes)
{
    MemoryChannel mc(costs, 8);
    std::uint64_t before = mc.totalBytes();
    mc.broadcast(2, 32, 0);
    EXPECT_EQ(mc.totalBytes() - before, 32u * 7);
}

TEST_F(McTest, StreamBytesTrackedSeparately)
{
    MemoryChannel mc(costs, 4);
    mc.transfer(0, 1, 100, 0);
    mc.streamWrite(0, 1, 8, 0);
    mc.streamWrite(0, 2, 8, 0);
    EXPECT_EQ(mc.streamBytes(), 16u);
    EXPECT_EQ(mc.totalBytes(), 116u);
}

TEST_F(McTest, LoopbackCrossesPciTwice)
{
    MemoryChannel mc(costs, 4);
    Time remote = mc.transfer(0, 1, 8192, 0);
    MemoryChannel mc2(costs, 4);
    Time loop = mc2.transfer(0, 0, 8192, 0);
    EXPECT_GT(loop, remote);
}

// ---------------------------------------------------------------------------
// Mailbox
// ---------------------------------------------------------------------------

class MailboxTest : public ::testing::Test
{
  protected:
    MailboxTest()
        : topo(4, 2), mc(costs, topo.nodes), mail(sched, mc, costs, topo)
    {}

    CostModel costs;
    Topology topo;
    Scheduler sched;
    MemoryChannel mc;
    MailboxSystem mail;
};

TEST_F(MailboxTest, EndpointNodes)
{
    EXPECT_EQ(mail.endpointCount(), 6);
    EXPECT_EQ(mail.nodeOfEndpoint(0), 0);
    EXPECT_EQ(mail.nodeOfEndpoint(1), 0);
    EXPECT_EQ(mail.nodeOfEndpoint(2), 1);
    EXPECT_EQ(mail.nodeOfEndpoint(3), 1);
    EXPECT_EQ(mail.nodeOfEndpoint(mail.ppEndpoint(0)), 0);
    EXPECT_EQ(mail.nodeOfEndpoint(mail.ppEndpoint(1)), 1);
}

TEST_F(MailboxTest, CrossNodeSendArrivesAfterMcLatency)
{
    Time arrival = -1;
    sched.spawn("s", [&](TaskId) {
        Message m;
        m.type = 1;
        m.bytes = 64;
        arrival = mail.send(0, 2, std::move(m), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    EXPECT_GT(arrival, costs.mcLatency);
    // Receiver sees nothing before the arrival time.
    EXPECT_FALSE(mail.tryReceive(2, arrival - 1).has_value());
    auto got = mail.tryReceive(2, arrival);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, 1);
    EXPECT_EQ(got->src, 0);
    EXPECT_FALSE(got->sameNode);
}

TEST_F(MailboxTest, SameNodeBypassesMemoryChannel)
{
    Time arrival = -1;
    sched.spawn("s", [&](TaskId) {
        Message m;
        m.type = 7;
        arrival = mail.send(0, 1, std::move(m), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(mc.totalBytes(), 0u);
    EXPECT_EQ(arrival, costs.mcPerMessage + costs.smpMessageLatency);
    auto got = mail.tryReceive(1, arrival);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->sameNode);
}

TEST_F(MailboxTest, UdpChargesMoreSenderCpu)
{
    Time t_mc = 0, t_udp = 0;
    sched.spawn("s", [&](TaskId) {
        Message m1;
        m1.bytes = 64;
        mail.send(0, 2, std::move(m1), Transport::McBuffer);
        t_mc = sched.now();
        Message m2;
        m2.bytes = 64;
        mail.send(0, 2, std::move(m2), Transport::Udp);
        t_udp = sched.now() - t_mc;
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(t_mc, costs.mcPerMessage);
    EXPECT_EQ(t_udp, costs.udpPerMessage);
}

TEST_F(MailboxTest, DeliveryOrderIsArrivalOrder)
{
    sched.spawn("s", [&](TaskId) {
        for (int i = 0; i < 5; ++i) {
            Message m;
            m.type = 10 + i;
            m.bytes = 8;
            mail.send(0, 2, std::move(m), Transport::McBuffer);
        }
    });
    EXPECT_TRUE(sched.run());
    int expect = 10;
    while (auto m = mail.tryReceive(2, 1 * kSecond))
        EXPECT_EQ(m->type, expect++);
    EXPECT_EQ(expect, 15);
}

TEST_F(MailboxTest, TryReceiveIfSkipsNonMatching)
{
    sched.spawn("s", [&](TaskId) {
        Message a;
        a.type = 1;
        mail.send(0, 2, std::move(a), Transport::McBuffer);
        Message b;
        b.type = 2;
        mail.send(0, 2, std::move(b), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    auto got = mail.tryReceiveIf(2, 1 * kSecond, [](const Message& m) {
        return m.type == 2;
    });
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, 2);
    // Type 1 is still queued, in order.
    auto first = mail.tryReceive(2, 1 * kSecond);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->type, 1);
}

TEST_F(MailboxTest, SendWakesBoundTask)
{
    Time woke = -1;
    TaskId receiver = sched.spawn("r", [&](TaskId) {
        sched.block();
        woke = sched.now();
    });
    mail.bindTask(2, receiver);
    sched.spawn("s", [&](TaskId) {
        Message m;
        m.bytes = 16;
        mail.send(0, 2, std::move(m), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    EXPECT_GT(woke, costs.mcLatency);
    EXPECT_EQ(woke, mail.earliestArrival(2));
}

TEST_F(MailboxTest, StatsPerSender)
{
    sched.spawn("s", [&](TaskId) {
        Message m;
        m.bytes = 100;
        mail.send(0, 2, std::move(m), Transport::McBuffer);
        Message n;
        n.bytes = 50;
        mail.send(0, 3, std::move(n), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(mail.messagesSentBy(0), 2u);
    EXPECT_EQ(mail.bytesSentBy(0), 150u);
    EXPECT_EQ(mail.totalMessages(), 2u);
}

TEST_F(MailboxTest, MinActionableEarlyExit)
{
    sched.spawn("s", [&](TaskId) {
        Message a;
        a.type = 1;
        a.bytes = 8;
        mail.send(0, 2, std::move(a), Transport::McBuffer);
        Message b;
        b.type = 2;
        b.bytes = 8;
        mail.send(0, 2, std::move(b), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    // Requests delayed by 1 ms, replies at arrival.
    Time t = mail.minActionable(2, [](const Message& m) {
        return m.type == 1 ? m.arrival + kMillisecond : m.arrival;
    });
    Time earliest = mail.earliestArrival(2);
    EXPECT_GT(t, earliest);
    EXPECT_LE(t, earliest + 2 * kMillisecond);
}

} // namespace
} // namespace mcdsm
