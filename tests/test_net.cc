/**
 * @file
 * Unit tests for the network backends (Memory Channel and RDMA
 * verbs), the backend factory, and the mailbox layer, plus the
 * apps x variants x backends race-clean matrix.
 */

#include <gtest/gtest.h>

#include "common/costs.h"
#include "harness/pool.h"
#include "harness/runner.h"
#include "net/backend.h"
#include "net/mailbox.h"
#include "net/memory_channel.h"
#include "net/rdma.h"
#include "net/topology.h"
#include "sim/scheduler.h"

namespace mcdsm {
namespace {

class McTest : public ::testing::Test
{
  protected:
    CostModel costs;
};

TEST_F(McTest, SmallTransferArrivesAfterLatency)
{
    MemoryChannel mc(costs, 4);
    Time arr = mc.transfer(0, 1, 8, 0);
    // 8 bytes at 30 MB/s is ~267 ns of link time plus 5.2 us latency.
    EXPECT_GT(arr, costs.mcLatency);
    EXPECT_LT(arr, costs.mcLatency + 2 * kMicrosecond);
}

TEST_F(McTest, BandwidthLimitsLargeTransfer)
{
    MemoryChannel mc(costs, 4);
    Time arr = mc.transfer(0, 1, 8192, 0);
    // 8 KB at 30 MB/s takes ~273 us.
    Time link_time = static_cast<Time>(8192 / costs.mcLinkBw);
    EXPECT_GE(arr, link_time);
    EXPECT_LE(arr, link_time + 20 * kMicrosecond);
}

TEST_F(McTest, BackToBackTransfersSerializeOnLink)
{
    MemoryChannel mc(costs, 4);
    Time a1 = mc.transfer(0, 1, 8192, 0);
    Time a2 = mc.transfer(0, 1, 8192, 0);
    EXPECT_GT(a2, a1);
    // Second transfer waits for the first to clear the link.
    EXPECT_GE(a2 - a1, static_cast<Time>(8192 / costs.mcAggBw) - kMicrosecond);
}

TEST_F(McTest, HubContentionCouplesDistinctPairs)
{
    MemoryChannel mc(costs, 4);
    // Transfers on disjoint node pairs still share the hub.
    Time a1 = mc.transfer(0, 1, 65536, 0);
    Time a2 = mc.transfer(2, 3, 65536, 0);
    EXPECT_GT(a2, a1 - kMicrosecond);
}

TEST_F(McTest, DeliveryTimesMonotonePerDestination)
{
    MemoryChannel mc(costs, 4);
    Time prev = 0;
    for (int i = 0; i < 10; ++i) {
        Time a = mc.transfer(i % 3, 3, 100 + i * 10, i * 100);
        EXPECT_GE(a, prev); // write ordering at the receiver
        prev = a;
    }
}

TEST_F(McTest, BroadcastReachesAllAndCountsBytes)
{
    MemoryChannel mc(costs, 8);
    std::uint64_t before = mc.totalBytes();
    mc.broadcast(2, 32, 0);
    EXPECT_EQ(mc.totalBytes() - before, 32u * 7);
}

TEST_F(McTest, StreamBytesTrackedSeparately)
{
    MemoryChannel mc(costs, 4);
    mc.transfer(0, 1, 100, 0);
    mc.streamWrite(0, 1, 8, 0);
    mc.streamWrite(0, 2, 8, 0);
    EXPECT_EQ(mc.streamBytes(), 16u);
    EXPECT_EQ(mc.totalBytes(), 116u);
}

TEST_F(McTest, LoopbackCrossesPciTwice)
{
    MemoryChannel mc(costs, 4);
    Time remote = mc.transfer(0, 1, 8192, 0);
    MemoryChannel mc2(costs, 4);
    Time loop = mc2.transfer(0, 0, 8192, 0);
    EXPECT_GT(loop, remote);
}

// ---------------------------------------------------------------------------
// Backend factory and the NetworkBackend interface
// ---------------------------------------------------------------------------

TEST(NetBackend, NameRoundTripAndRejection)
{
    NetKind kind;
    ASSERT_TRUE(netFromName("mc", &kind));
    EXPECT_EQ(kind, NetKind::Mc);
    ASSERT_TRUE(netFromName("rdma", &kind));
    EXPECT_EQ(kind, NetKind::Rdma);
    EXPECT_FALSE(netFromName("ethernet", &kind));
    EXPECT_FALSE(netFromName("", &kind));
    EXPECT_STREQ(netName(NetKind::Mc), "mc");
    EXPECT_STREQ(netName(NetKind::Rdma), "rdma");
}

TEST(NetBackend, McThroughInterfaceMatchesDirectUse)
{
    // The factory-made Memory Channel must be arithmetically identical
    // to the concrete class: same op sequence, same times, same
    // counters. This is the backend-equivalence guarantee behind the
    // --net=mc bit-identity of every pre-existing configuration.
    CostModel costs;
    MemoryChannel direct(costs, 4);
    auto iface = makeNetworkBackend(NetKind::Mc, costs, 4);
    ASSERT_NE(iface, nullptr);
    EXPECT_FALSE(iface->supportsOneSided());

    Time t = 0;
    for (int i = 0; i < 32; ++i) {
        const NodeId src = i % 4;
        const NodeId dst = (i + 1 + i / 4) % 4;
        const std::size_t bytes = 8 + 512 * (i % 5);
        switch (i % 3) {
          case 0:
            EXPECT_EQ(direct.transfer(src, dst, bytes, t),
                      iface->transfer(src, dst, bytes, t));
            break;
          case 1:
            EXPECT_EQ(direct.broadcast(src, bytes % 64 + 8, t),
                      iface->broadcast(src, bytes % 64 + 8, t));
            break;
          case 2:
            EXPECT_EQ(direct.streamWrite(src, dst, 8, t),
                      iface->streamWrite(src, dst, 8, t));
            break;
        }
        t += 100 * (i % 7);
    }
    EXPECT_EQ(direct.totalBytes(), iface->totalBytes());
    EXPECT_EQ(direct.streamBytes(), iface->streamBytes());
    EXPECT_EQ(direct.transferCount(), iface->transferCount());
    EXPECT_EQ(iface->oneSidedBytes(), 0u);
    EXPECT_EQ(iface->doorbells(), 0u);
}

// ---------------------------------------------------------------------------
// RDMA cost model
// ---------------------------------------------------------------------------

class RdmaTest : public ::testing::Test
{
  protected:
    CostModel costs;

    Time
    linkTime(std::size_t bytes) const
    {
        return static_cast<Time>(static_cast<double>(bytes) /
                                 costs.rdmaLinkBw);
    }
};

TEST_F(RdmaTest, ReadPaysDoorbellAndTwoPropagations)
{
    RdmaBackend net(costs, 4);
    const Time arr = net.readRemote(0, 1, 8, 0);
    // Doorbell, request propagation, data on the responder's port,
    // completion propagates with the tail of the data.
    EXPECT_EQ(arr, costs.rdmaDoorbellCost + 2 * costs.rdmaLatency +
                       linkTime(8));
    EXPECT_EQ(net.readVerbs(), 1u);
    EXPECT_EQ(net.oneSidedBytes(), 8u);
    EXPECT_EQ(net.doorbells(), 1u);
}

TEST_F(RdmaTest, PostedWriteIsOneWayCheaperThanRead)
{
    RdmaBackend net(costs, 4);
    const Time w = net.writeRemote(0, 1, 256, 0);
    EXPECT_EQ(w, costs.rdmaDoorbellCost + costs.rdmaLatency +
                     linkTime(256));
    RdmaBackend net2(costs, 4);
    EXPECT_LT(w, net2.readRemote(0, 1, 256, 0));
}

TEST_F(RdmaTest, AtomicsMoveSixteenWireBytesThroughNicUnit)
{
    RdmaBackend net(costs, 4);
    const Time expect = costs.rdmaDoorbellCost + costs.rdmaLatency +
                        linkTime(NetworkBackend::kAtomicWireBytes) +
                        costs.rdmaNicAtomic + costs.rdmaLatency;
    EXPECT_EQ(net.atomicCas(0, 1, 0), expect);
    // A second atomic aimed at the same responder queues behind the
    // first on that node's receive port.
    EXPECT_GT(net.atomicFaa(2, 1, 0), expect);
    // On quiet ports FAA prices identically to CAS.
    RdmaBackend quiet(costs, 4);
    EXPECT_EQ(quiet.atomicFaa(2, 1, 0), expect);
    EXPECT_EQ(net.casVerbs(), 1u);
    EXPECT_EQ(net.faaVerbs(), 1u);
    EXPECT_EQ(net.oneSidedBytes(),
              2 * NetworkBackend::kAtomicWireBytes);
}

TEST_F(RdmaTest, DoorbellBatchingSavesAllButOneDoorbell)
{
    constexpr int kOps = 6;
    // Unbatched: each read from a distinct responder rings its own
    // doorbell.
    RdmaBackend solo(costs, 8);
    Time solo_done = 0;
    for (int i = 0; i < kOps; ++i)
        solo_done =
            std::max(solo_done, solo.readRemote(0, 1 + i, 512, 0));
    EXPECT_EQ(solo.doorbells(), static_cast<std::uint64_t>(kOps));

    // Batched: one doorbell covers the region; ops still serialise on
    // the shared ports, so completion is no earlier than a lone read
    // and the whole region costs (kOps-1) fewer doorbells.
    RdmaBackend batched(costs, 8);
    batched.batchBegin(0);
    for (int i = 0; i < kOps; ++i)
        EXPECT_EQ(batched.readRemote(0, 1 + i, 512, 0), -1);
    const Time done = batched.batchEnd(0, 0);
    EXPECT_EQ(batched.doorbells(), 1u);
    EXPECT_GE(done, costs.rdmaDoorbellCost + 2 * costs.rdmaLatency +
                        linkTime(512));
    EXPECT_LE(done, solo_done + kOps * costs.rdmaDoorbellCost);
    EXPECT_EQ(batched.readVerbs(), static_cast<std::uint64_t>(kOps));
}

TEST_F(RdmaTest, EmptyBatchRingsNoDoorbell)
{
    RdmaBackend net(costs, 4);
    net.batchBegin(2);
    EXPECT_EQ(net.batchEnd(2, 1000), 0);
    EXPECT_EQ(net.doorbells(), 0u);
}

TEST_F(RdmaTest, BandwidthFarAboveMemoryChannel)
{
    // An 8 KB page moves ~40x faster than on the Memory Channel; the
    // fixed verb latency is ~6x lower.
    RdmaBackend rdma(costs, 4);
    MemoryChannel mc(costs, 4);
    const Time r = rdma.readRemote(0, 1, 8192, 0);
    const Time m = mc.transfer(1, 0, 8192, 0);
    EXPECT_LT(r * 10, m);
}

TEST_F(RdmaTest, BroadcastSerialisesFanoutOnSourcePort)
{
    RdmaBackend net(costs, 8);
    const std::uint64_t before = net.totalBytes();
    const Time done = net.broadcast(3, 8, 0);
    EXPECT_EQ(net.totalBytes() - before, 8u * 7);
    // One doorbell-priced post of 7 serialised 8-byte writes.
    EXPECT_GE(done, costs.rdmaDoorbellCost + costs.rdmaLatency +
                        linkTime(8 * 7));
    // A second broadcast queues behind the first on the source port.
    const Time done2 = net.broadcast(3, 8, 0);
    EXPECT_GT(done2, done);
}

TEST_F(RdmaTest, StreamWritesSkipTheDoorbell)
{
    RdmaBackend net(costs, 4);
    const Time s = net.streamWrite(0, 1, 8, 0);
    EXPECT_EQ(s, costs.rdmaLatency + linkTime(8));
    EXPECT_EQ(net.streamBytes(), 8u);
    EXPECT_EQ(net.doorbells(), 0u);
    EXPECT_EQ(net.oneSidedBytes(), 0u);
}

TEST_F(RdmaTest, CostSweepScalesVerbTimes)
{
    // Sensitivity sweeps rewrite CostModel fields before the backend
    // is built; the model must follow them.
    CostModel slow = costs;
    slow.rdmaLatency *= 3;
    slow.rdmaLinkBw /= 4;
    RdmaBackend base(costs, 4);
    RdmaBackend degraded(slow, 4);
    const Time b = base.readRemote(0, 1, 4096, 0);
    const Time d = degraded.readRemote(0, 1, 4096, 0);
    EXPECT_EQ(d - b, 2 * (slow.rdmaLatency - costs.rdmaLatency) +
                         (static_cast<Time>(4096 / slow.rdmaLinkBw) -
                          static_cast<Time>(4096 / costs.rdmaLinkBw)));
}

// ---------------------------------------------------------------------------
// apps x variants x backends matrix
// ---------------------------------------------------------------------------

TEST(NetMatrix, AppsVariantsBackendsRaceCleanAndJobsInvariant)
{
    // Small apps x protocol x backend grid: every cell must pass the
    // full verification suite with zero findings, and --net=rdma must
    // be exactly as (plan, seed, jobs)-reproducible as --net=mc: the
    // simulated clock, wire bytes and application checksum of a
    // serial rerun match the parallel sweep bit for bit.
    const std::string apps[] = {"sor", "gauss"};
    const ProtocolKind kinds[] = {ProtocolKind::CsmPoll,
                                  ProtocolKind::TmkMcPoll};
    const NetKind nets[] = {NetKind::Mc, NetKind::Rdma};

    struct Cell
    {
        std::string app;
        ProtocolKind kind;
        NetKind net;
    };
    std::vector<Cell> cells;
    for (const auto& app : apps)
        for (ProtocolKind k : kinds)
            for (NetKind n : nets)
                cells.push_back({app, k, n});

    auto runCell = [](const Cell& c) {
        RunOpts opts;
        opts.scale = AppScale::Tiny;
        opts.net = c.net;
        opts.checks = CheckConfig::all();
        return runExperiment(c.app, c.kind, 4, opts);
    };

    std::vector<ExpResult> par(cells.size());
    parallelFor(cells.size(), 4,
                [&](std::size_t i) { par[i] = runCell(cells[i]); });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << cells[i].app << "/"
                     << protocolName(cells[i].kind) << "/"
                     << netName(cells[i].net));
        EXPECT_EQ(par[i].checkViolations, 0u) << par[i].checkReport;
        const ExpResult serial = runCell(cells[i]);
        EXPECT_EQ(serial.elapsed, par[i].elapsed);
        EXPECT_EQ(serial.stats.mcBytes, par[i].stats.mcBytes);
        EXPECT_EQ(serial.stats.netOneSidedBytes,
                  par[i].stats.netOneSidedBytes);
        EXPECT_EQ(serial.appResult.checksum, par[i].appResult.checksum);
        if (cells[i].net == NetKind::Rdma &&
            cells[i].kind == ProtocolKind::CsmPoll) {
            // The RDMA era actually engages: one-sided traffic exists
            // and verbs are visible in the stats columns.
            EXPECT_GT(par[i].stats.netOneSidedBytes, 0u);
            EXPECT_GT(par[i].stats.rdmaReads + par[i].stats.rdmaCasOps +
                          par[i].stats.rdmaFaaOps,
                      0u);
        }
        if (cells[i].net == NetKind::Mc) {
            EXPECT_EQ(par[i].stats.netOneSidedBytes, 0u);
            EXPECT_EQ(par[i].stats.rdmaDoorbells, 0u);
        }
    }
}

// ---------------------------------------------------------------------------
// Mailbox
// ---------------------------------------------------------------------------

class MailboxTest : public ::testing::Test
{
  protected:
    MailboxTest()
        : topo(4, 2), mc(costs, topo.nodes), mail(sched, mc, costs, topo)
    {}

    CostModel costs;
    Topology topo;
    Scheduler sched;
    MemoryChannel mc;
    MailboxSystem mail;
};

TEST_F(MailboxTest, EndpointNodes)
{
    EXPECT_EQ(mail.endpointCount(), 6);
    EXPECT_EQ(mail.nodeOfEndpoint(0), 0);
    EXPECT_EQ(mail.nodeOfEndpoint(1), 0);
    EXPECT_EQ(mail.nodeOfEndpoint(2), 1);
    EXPECT_EQ(mail.nodeOfEndpoint(3), 1);
    EXPECT_EQ(mail.nodeOfEndpoint(mail.ppEndpoint(0)), 0);
    EXPECT_EQ(mail.nodeOfEndpoint(mail.ppEndpoint(1)), 1);
}

TEST_F(MailboxTest, CrossNodeSendArrivesAfterMcLatency)
{
    Time arrival = -1;
    sched.spawn("s", [&](TaskId) {
        Message m;
        m.type = 1;
        m.bytes = 64;
        arrival = mail.send(0, 2, std::move(m), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    EXPECT_GT(arrival, costs.mcLatency);
    // Receiver sees nothing before the arrival time.
    EXPECT_FALSE(mail.tryReceive(2, arrival - 1).has_value());
    auto got = mail.tryReceive(2, arrival);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, 1);
    EXPECT_EQ(got->src, 0);
    EXPECT_FALSE(got->sameNode);
}

TEST_F(MailboxTest, SameNodeBypassesMemoryChannel)
{
    Time arrival = -1;
    sched.spawn("s", [&](TaskId) {
        Message m;
        m.type = 7;
        arrival = mail.send(0, 1, std::move(m), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(mc.totalBytes(), 0u);
    EXPECT_EQ(arrival, costs.mcPerMessage + costs.smpMessageLatency);
    auto got = mail.tryReceive(1, arrival);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->sameNode);
}

TEST_F(MailboxTest, UdpChargesMoreSenderCpu)
{
    Time t_mc = 0, t_udp = 0;
    sched.spawn("s", [&](TaskId) {
        Message m1;
        m1.bytes = 64;
        mail.send(0, 2, std::move(m1), Transport::McBuffer);
        t_mc = sched.now();
        Message m2;
        m2.bytes = 64;
        mail.send(0, 2, std::move(m2), Transport::Udp);
        t_udp = sched.now() - t_mc;
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(t_mc, costs.mcPerMessage);
    EXPECT_EQ(t_udp, costs.udpPerMessage);
}

TEST_F(MailboxTest, DeliveryOrderIsArrivalOrder)
{
    sched.spawn("s", [&](TaskId) {
        for (int i = 0; i < 5; ++i) {
            Message m;
            m.type = 10 + i;
            m.bytes = 8;
            mail.send(0, 2, std::move(m), Transport::McBuffer);
        }
    });
    EXPECT_TRUE(sched.run());
    int expect = 10;
    while (auto m = mail.tryReceive(2, 1 * kSecond))
        EXPECT_EQ(m->type, expect++);
    EXPECT_EQ(expect, 15);
}

TEST_F(MailboxTest, TryReceiveIfSkipsNonMatching)
{
    sched.spawn("s", [&](TaskId) {
        Message a;
        a.type = 1;
        mail.send(0, 2, std::move(a), Transport::McBuffer);
        Message b;
        b.type = 2;
        mail.send(0, 2, std::move(b), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    auto got = mail.tryReceiveIf(2, 1 * kSecond, [](const Message& m) {
        return m.type == 2;
    });
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, 2);
    // Type 1 is still queued, in order.
    auto first = mail.tryReceive(2, 1 * kSecond);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->type, 1);
}

TEST_F(MailboxTest, SendWakesBoundTask)
{
    Time woke = -1;
    TaskId receiver = sched.spawn("r", [&](TaskId) {
        sched.block();
        woke = sched.now();
    });
    mail.bindTask(2, receiver);
    sched.spawn("s", [&](TaskId) {
        Message m;
        m.bytes = 16;
        mail.send(0, 2, std::move(m), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    EXPECT_GT(woke, costs.mcLatency);
    EXPECT_EQ(woke, mail.earliestArrival(2));
}

TEST_F(MailboxTest, StatsPerSender)
{
    sched.spawn("s", [&](TaskId) {
        Message m;
        m.bytes = 100;
        mail.send(0, 2, std::move(m), Transport::McBuffer);
        Message n;
        n.bytes = 50;
        mail.send(0, 3, std::move(n), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    EXPECT_EQ(mail.messagesSentBy(0), 2u);
    EXPECT_EQ(mail.bytesSentBy(0), 150u);
    EXPECT_EQ(mail.totalMessages(), 2u);
}

TEST_F(MailboxTest, MinActionableEarlyExit)
{
    sched.spawn("s", [&](TaskId) {
        Message a;
        a.type = 1;
        a.bytes = 8;
        mail.send(0, 2, std::move(a), Transport::McBuffer);
        Message b;
        b.type = 2;
        b.bytes = 8;
        mail.send(0, 2, std::move(b), Transport::McBuffer);
    });
    EXPECT_TRUE(sched.run());
    // Requests delayed by 1 ms, replies at arrival.
    Time t = mail.minActionable(2, [](const Message& m) {
        return m.type == 1 ? m.arrival + kMillisecond : m.arrival;
    });
    Time earliest = mail.earliestArrival(2);
    EXPECT_GT(t, earliest);
    EXPECT_LE(t, earliest + 2 * kMillisecond);
}

} // namespace
} // namespace mcdsm
