/**
 * @file
 * Tests for the bench flag parser (harness/flags.h): both `--flag=v`
 * and `--flag v` spellings must work for every flag, unknown flags
 * and stray positionals are rejected, missing required values error,
 * and optional/boolean flags never swallow a following flag.
 */

#include <gtest/gtest.h>

#include "harness/flags.h"

namespace mcdsm {
namespace {

const std::vector<FlagInfo> kKnown = {
    {"scale", "problem scale"},
    {"procs", "processor counts"},
    {"jobs", "worker threads"},
    {"json", "report file", FlagArg::Optional},
    {"grid", "run the grid", FlagArg::None},
};

TEST(Flags, EqualsAndSeparatedFormsAgree)
{
    Flags eq({"--scale=tiny", "--procs=4,8", "--jobs=3"});
    Flags sep({"--scale", "tiny", "--procs", "4,8", "--jobs", "3"});
    Flags mixed({"--scale", "tiny", "--procs=4,8", "--jobs", "3"});
    for (Flags* f : {&eq, &sep, &mixed}) {
        ASSERT_EQ(f->normalize(kKnown), "");
        EXPECT_EQ(f->get("scale", ""), "tiny");
        EXPECT_EQ(f->get("procs", ""), "4,8");
        EXPECT_EQ(f->get("jobs", ""), "3");
    }
}

TEST(Flags, DefaultsWhenAbsent)
{
    Flags f({"--scale=tiny"});
    ASSERT_EQ(f.normalize(kKnown), "");
    EXPECT_EQ(f.get("jobs", "7"), "7");
    EXPECT_FALSE(f.has("jobs"));
    EXPECT_TRUE(f.has("scale"));
}

TEST(Flags, UnknownFlagRejected)
{
    Flags f({"--scale=tiny", "--bogus=1"});
    const std::string err = f.normalize(kKnown);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("--bogus"), std::string::npos);
    // On error the argument list is unchanged (no partial rewrite).
    EXPECT_EQ(f.raw().size(), 2u);
    EXPECT_EQ(f.raw()[1], "--bogus=1");
}

TEST(Flags, UnknownSeparatedFlagRejected)
{
    Flags f({"--bogus", "value"});
    EXPECT_NE(f.normalize(kKnown), "");
}

TEST(Flags, PositionalArgumentRejected)
{
    Flags f({"--scale=tiny", "stray"});
    const std::string err = f.normalize(kKnown);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("stray"), std::string::npos);
}

TEST(Flags, MissingRequiredValueAtEnd)
{
    Flags f({"--scale"});
    const std::string err = f.normalize(kKnown);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("--scale"), std::string::npos);
}

TEST(Flags, RequiredValueNeverTakenFromNextFlag)
{
    // `--scale --jobs 3`: --jobs must not become scale's value.
    Flags f({"--scale", "--jobs", "3"});
    EXPECT_NE(f.normalize(kKnown), "");
}

TEST(Flags, OptionalFlagWithAndWithoutValue)
{
    Flags bare({"--json"});
    ASSERT_EQ(bare.normalize(kKnown), "");
    EXPECT_TRUE(bare.has("json"));
    EXPECT_EQ(bare.get("json", ""), "");

    Flags with({"--json", "out.json"});
    ASSERT_EQ(with.normalize(kKnown), "");
    EXPECT_EQ(with.get("json", ""), "out.json");

    Flags inl({"--json=out.json"});
    ASSERT_EQ(inl.normalize(kKnown), "");
    EXPECT_EQ(inl.get("json", ""), "out.json");

    // A following flag is never consumed as the optional value.
    Flags then_flag({"--json", "--grid"});
    ASSERT_EQ(then_flag.normalize(kKnown), "");
    EXPECT_EQ(then_flag.get("json", "def"), "def");
    EXPECT_TRUE(then_flag.has("json"));
    EXPECT_TRUE(then_flag.has("grid"));
}

TEST(Flags, BooleanFlagNeverConsumesValue)
{
    // `--grid --scale tiny` and `--grid` followed by nothing both
    // parse; `--grid tiny` is a stray positional.
    Flags ok({"--grid", "--scale", "tiny"});
    ASSERT_EQ(ok.normalize(kKnown), "");
    EXPECT_TRUE(ok.has("grid"));
    EXPECT_EQ(ok.get("scale", ""), "tiny");

    Flags bad({"--grid", "tiny"});
    EXPECT_NE(bad.normalize(kKnown), "");
}

TEST(Flags, HelpIsImplicitlyKnown)
{
    Flags f({"--help"});
    ASSERT_EQ(f.normalize(kKnown), "");
    EXPECT_TRUE(f.has("help"));
}

TEST(Flags, EmptyArgumentsNormalize)
{
    Flags f(std::vector<std::string>{});
    EXPECT_EQ(f.normalize(kKnown), "");
    EXPECT_FALSE(f.has("scale"));
}

TEST(Flags, ValueMayContainEquals)
{
    Flags f({"--scale=a=b", "--procs", "c=d"});
    ASSERT_EQ(f.normalize(kKnown), "");
    EXPECT_EQ(f.get("scale", ""), "a=b");
    EXPECT_EQ(f.get("procs", ""), "c=d");
}

} // namespace
} // namespace mcdsm
