/**
 * @file
 * Tests for the zero-churn memory subsystem (src/mem/) and the
 * scheduler/fiber reuse machinery it rides with:
 *
 *   1. Arena: bump allocation, alignment, chunk growth, profiler
 *      attribution of chunk allocations.
 *   2. BufferPool: LIFO block reuse, slab refill accounting, release
 *      poisoning, unpooled (general-purpose-heap) mode, PoolBuf
 *      ownership and move semantics, MCDSM_NO_POOL parsing.
 *   3. The pooled-vs-heap bit-equality matrix: every protocol variant
 *      on two applications produces identical simulated results with
 *      the pool on and off, including under a parallel (--jobs 4)
 *      engine — the contract that makes DsmConfig::memPool a pure
 *      host-side choice.
 *   4. Scheduler: wake()/wakeIfBlocked() on a Finished task is a
 *      harmless no-op (regression: protocol timers firing after a
 *      worker exits), and the ready-heap resumes tasks in exact
 *      (time, spawn-order) order.
 *   5. Fiber stacks are recycled across simulations on a thread.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "harness/pool.h"
#include "harness/runner.h"
#include "mem/arena.h"
#include "mem/buffer_pool.h"
#include "sim/fiber.h"
#include "sim/scheduler.h"

namespace mcdsm {
namespace {

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(Arena, BumpAllocatesAndAligns)
{
    AllocProfiler prof;
    Arena arena(&prof, 1024);
    void* a = arena.alloc(3, 1);
    void* b = arena.alloc(8, 8);
    void* c = arena.alloc(1, alignof(std::max_align_t));
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) %
                  alignof(std::max_align_t),
              0u);
    EXPECT_EQ(arena.chunkCount(), 1u);
    // All three came from one chunk: one heap allocation, site Other.
    EXPECT_EQ(prof.stats().heapAllocs(), 1u);
    EXPECT_GE(prof.stats()
                  .site[static_cast<int>(MemSite::Other)]
                  .heapBytes,
              1024u);
}

TEST(Arena, GrowsByChunksAndOversizedRequests)
{
    Arena arena(nullptr, 256);
    for (int i = 0; i < 8; ++i)
        arena.alloc(100);
    EXPECT_GE(arena.chunkCount(), 3u);
    // A request larger than the chunk size gets its own chunk.
    void* big = arena.alloc(5000);
    ASSERT_NE(big, nullptr);
    std::memset(big, 0x5c, 5000); // must really own 5000 bytes
    EXPECT_GE(arena.allocatedBytes(), 5000u);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(BufferPool, ReusesBlocksLifo)
{
    AllocProfiler prof;
    BufferPool pool(&prof, /*pooled=*/true);
    std::uint8_t* a = pool.acquire(MemSite::Frame);
    ASSERT_NE(a, nullptr);
    // First acquire carves a whole slab; the rest sit on the freelist.
    EXPECT_EQ(pool.blocksCreated(), BufferPool::kSlabBlocks);
    EXPECT_EQ(pool.freeBlocks(), BufferPool::kSlabBlocks - 1);
    EXPECT_EQ(pool.outstanding(), 1u);

    pool.release(a, MemSite::Frame);
    EXPECT_EQ(pool.outstanding(), 0u);
    // LIFO: the block just released comes back first.
    std::uint8_t* b = pool.acquire(MemSite::Frame);
    EXPECT_EQ(b, a);
    pool.release(b, MemSite::Frame);

    // Steady state costs zero heap allocations: only the slab's arena
    // chunk was ever heap-allocated.
    const std::uint64_t heap_before = prof.stats().heapAllocs();
    for (int i = 0; i < 100; ++i) {
        std::uint8_t* p = pool.acquire(MemSite::Frame);
        pool.release(p, MemSite::Frame);
    }
    EXPECT_EQ(prof.stats().heapAllocs(), heap_before);
    EXPECT_GE(prof.stats().poolHits(), 100u);
}

TEST(BufferPool, PoisonsReleasedBlocks)
{
    BufferPool pool(nullptr, /*pooled=*/true);
    pool.setPoison(true);
    std::uint8_t* p = pool.acquire(MemSite::Frame);
    std::memset(p, 0xAA, kPageSize);
    pool.release(p, MemSite::Frame);
    // The block is arena-owned, so inspecting it after release is
    // safe; it must carry the poison pattern end to end.
    for (std::size_t i = 0; i < kPageSize; ++i)
        ASSERT_EQ(p[i], BufferPool::kPoisonByte) << "byte " << i;
}

TEST(BufferPool, UnpooledModeUsesTheHeap)
{
    AllocProfiler prof;
    BufferPool pool(&prof, /*pooled=*/false);
    EXPECT_FALSE(pool.pooled());
    std::uint8_t* a = pool.acquire(MemSite::Message);
    std::uint8_t* b = pool.acquire(MemSite::Message);
    EXPECT_EQ(pool.freeBlocks(), 0u);
    EXPECT_EQ(prof.stats().heapAllocs(), 2u);
    EXPECT_EQ(prof.stats().poolHits(), 0u);
    pool.release(a, MemSite::Message);
    EXPECT_EQ(pool.outstanding(), 1u);
    // b is deliberately left outstanding: the destructor reclaims it
    // (leak checkers must stay clean even for parked blocks).
    (void)b;
}

TEST(BufferPool, EnvKillSwitchParsing)
{
    const char* saved = std::getenv("MCDSM_NO_POOL");
    const std::string saved_val = saved ? saved : "";

    unsetenv("MCDSM_NO_POOL");
    EXPECT_TRUE(BufferPool::enabledFromEnv());
    setenv("MCDSM_NO_POOL", "", 1);
    EXPECT_TRUE(BufferPool::enabledFromEnv());
    setenv("MCDSM_NO_POOL", "0", 1);
    EXPECT_TRUE(BufferPool::enabledFromEnv());
    setenv("MCDSM_NO_POOL", "1", 1);
    EXPECT_FALSE(BufferPool::enabledFromEnv());

    if (saved)
        setenv("MCDSM_NO_POOL", saved_val.c_str(), 1);
    else
        unsetenv("MCDSM_NO_POOL");
}

TEST(PoolBuf, PooledAssignMoveAndReset)
{
    AllocProfiler prof;
    BufferPool pool(&prof, /*pooled=*/true);
    std::vector<std::uint8_t> src(kPageSize);
    for (std::size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<std::uint8_t>(i * 7);

    PoolBuf buf;
    EXPECT_TRUE(buf.empty());
    buf.assign(pool, MemSite::Message, src.data(), src.size());
    ASSERT_EQ(buf.size(), kPageSize);
    EXPECT_EQ(std::memcmp(buf.data(), src.data(), kPageSize), 0);
    EXPECT_EQ(pool.outstanding(), 1u);

    // Move transfers ownership; the source releases nothing.
    PoolBuf moved = std::move(buf);
    EXPECT_TRUE(buf.empty());
    ASSERT_EQ(moved.size(), kPageSize);
    EXPECT_EQ(std::memcmp(moved.data(), src.data(), kPageSize), 0);
    EXPECT_EQ(pool.outstanding(), 1u);

    moved.reset();
    EXPECT_TRUE(moved.empty());
    EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PoolBuf, OversizedPayloadFallsBackToHeap)
{
    AllocProfiler prof;
    BufferPool pool(&prof, /*pooled=*/true);
    std::vector<std::uint8_t> big(kPageSize * 3, 0x42);
    {
        PoolBuf buf;
        buf.assign(pool, MemSite::Message, big.data(), big.size());
        ASSERT_EQ(buf.size(), big.size());
        EXPECT_EQ(std::memcmp(buf.data(), big.data(), big.size()), 0);
        // Not a pool block: nothing outstanding, one heap allocation.
        EXPECT_EQ(pool.outstanding(), 0u);
        EXPECT_EQ(prof.stats().heapAllocs(), 1u);
    } // destructor must delete[] the heap buffer (ASan-checked in CI)
}

/**
 * Pool thread-safety contract: the pool itself is thread-confined,
 * but independent pools on independent threads must not interfere
 * (e.g. via shared globals). Mirrors the --jobs execution model.
 */
TEST(BufferPool, IndependentPoolsAcrossThreads)
{
    std::vector<std::uint64_t> hits(8, 0);
    parallelFor(hits.size(), 4, [&](std::size_t t) {
        AllocProfiler prof;
        BufferPool pool(&prof, true);
        for (int i = 0; i < 200; ++i) {
            std::uint8_t* p = pool.acquire(MemSite::Frame);
            p[0] = static_cast<std::uint8_t>(t);
            ASSERT_EQ(p[0], static_cast<std::uint8_t>(t));
            pool.release(p, MemSite::Frame);
        }
        hits[t] = prof.stats().poolHits();
    });
    for (std::size_t t = 0; t < hits.size(); ++t)
        EXPECT_GE(hits[t], 199u) << "thread task " << t;
}

// ---------------------------------------------------------------------------
// Pooled-vs-heap bit-equality matrix
// ---------------------------------------------------------------------------

void
expectSimIdentical(const ExpResult& a, const ExpResult& b)
{
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(std::memcmp(&a.appResult.checksum, &b.appResult.checksum,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&a.appResult.aux, &b.appResult.aux,
                          sizeof(double)),
              0);
    EXPECT_EQ(a.stats.elapsed, b.stats.elapsed);
    EXPECT_EQ(a.stats.mcBytes, b.stats.mcBytes);
    EXPECT_EQ(a.stats.mcStreamBytes, b.stats.mcStreamBytes);
    EXPECT_EQ(a.stats.messages, b.stats.messages);
    ASSERT_EQ(a.stats.procs.size(), b.stats.procs.size());
    for (std::size_t p = 0; p < a.stats.procs.size(); ++p) {
        const ProcStats& x = a.stats.procs[p];
        const ProcStats& y = b.stats.procs[p];
        EXPECT_EQ(x.readFaults, y.readFaults) << "proc " << p;
        EXPECT_EQ(x.writeFaults, y.writeFaults) << "proc " << p;
        EXPECT_EQ(x.pageTransfers, y.pageTransfers) << "proc " << p;
        EXPECT_EQ(x.twins, y.twins) << "proc " << p;
        EXPECT_EQ(x.diffsCreated, y.diffsCreated) << "proc " << p;
        EXPECT_EQ(x.diffsApplied, y.diffsApplied) << "proc " << p;
        EXPECT_EQ(x.diffBytes, y.diffBytes) << "proc " << p;
        EXPECT_EQ(x.messagesSent, y.messagesSent) << "proc " << p;
        EXPECT_EQ(x.bytesSent, y.bytesSent) << "proc " << p;
        EXPECT_EQ(x.endTime, y.endTime) << "proc " << p;
        for (int c = 0; c < kTimeCatCount; ++c)
            EXPECT_EQ(x.timeIn[c], y.timeIn[c])
                << "proc " << p << " cat " << c;
    }
}

TEST(PoolMatrix, EveryVariantBitIdenticalWithAndWithoutPool)
{
    const ProtocolKind kVariants[] = {
        ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
        ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
        ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
    };
    const char* kApps[] = {"sor", "water"};

    struct Cell
    {
        const char* app;
        ProtocolKind protocol;
    };
    std::vector<Cell> cells;
    for (const char* app : kApps)
        for (ProtocolKind k : kVariants)
            cells.push_back({app, k});

    // Run the pooled and unpooled halves of the matrix through the
    // parallel engine (4 workers), exercising pool construction and
    // teardown concurrently on the pool's real execution model.
    std::vector<ExpResult> pooled(cells.size()), heap(cells.size());
    parallelFor(cells.size() * 2, 4, [&](std::size_t i) {
        const Cell& c = cells[i % cells.size()];
        RunOpts opts;
        opts.scale = AppScale::Tiny;
        opts.seed = 1;
        opts.memPool = i < cells.size();
        ExpResult r = runExperiment(c.app, c.protocol, 4, opts);
        (opts.memPool ? pooled : heap)[i % cells.size()] = std::move(r);
    });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << cells[i].app << "/"
                     << protocolName(cells[i].protocol));
        expectSimIdentical(pooled[i], heap[i]);
        // The two runs must differ where expected: the pooled run
        // serves page-sized buffers from freelists, the heap run
        // cannot.
        EXPECT_GT(pooled[i].stats.mem.poolHits(), 0u);
        EXPECT_EQ(heap[i].stats.mem.poolHits(), 0u);
        EXPECT_GT(heap[i].stats.mem.heapAllocs(),
                  pooled[i].stats.mem.heapAllocs());
    }
}

// ---------------------------------------------------------------------------
// Scheduler regressions
// ---------------------------------------------------------------------------

TEST(SchedulerWake, WakeAfterFinishIsANoOp)
{
    Scheduler s;
    TaskId short_lived = s.spawn("short", [&](TaskId) {
        s.advance(10);
    });
    s.spawn("long", [&](TaskId) {
        s.advance(1000);
        s.yield(); // "short" has certainly finished by now
        // Regression: a timer or mailbox hint firing at a task that
        // already exited must not resurrect or corrupt it.
        s.wake(short_lived, s.now() + 5);
        s.wakeIfBlocked(short_lived, s.now() + 5);
        s.advance(10);
    });
    EXPECT_TRUE(s.run());
    EXPECT_EQ(s.maxFinishTime(), 1010);
}

TEST(SchedulerHeap, ResumesInClockThenSpawnOrder)
{
    // Spawn with shuffled start times; the ready heap must resume in
    // ascending (time, spawn-seq) order exactly like the std::set the
    // heap replaced.
    const Time starts[] = {40, 10, 30, 10, 20, 0, 40, 10};
    Scheduler s;
    std::vector<int> order;
    for (std::size_t i = 0; i < std::size(starts); ++i) {
        s.spawn("t", [&, i](TaskId) { order.push_back((int)i); },
                starts[i]);
    }
    EXPECT_TRUE(s.run());
    // Expected: sort spawn indices by (start, index).
    std::vector<int> want(std::size(starts));
    for (std::size_t i = 0; i < want.size(); ++i)
        want[i] = (int)i;
    std::stable_sort(want.begin(), want.end(),
                     [&](int a, int b) { return starts[a] < starts[b]; });
    EXPECT_EQ(order, want);
}

TEST(FiberStacks, RecycledAcrossSchedulers)
{
    auto ping_pong = [] {
        Scheduler s;
        for (int t = 0; t < 4; ++t) {
            s.spawn("t", [&](TaskId) {
                for (int i = 0; i < 3; ++i) {
                    s.advance(1);
                    s.yield();
                }
            });
        }
        EXPECT_TRUE(s.run());
    };
    ping_pong(); // populate this thread's stack cache
    const std::uint64_t reused_before = Fiber::stacksReused();
    ping_pong();
    EXPECT_GE(Fiber::stacksReused(), reused_before + 4);
}

} // namespace
} // namespace mcdsm
