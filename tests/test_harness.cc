/**
 * @file
 * Tests for the experiment harness (runner, topology ladder, table
 * formatting) and the cost-model helpers.
 */

#include <gtest/gtest.h>

#include "common/costs.h"
#include "harness/runner.h"
#include "harness/table.h"

namespace mcdsm {
namespace {

TEST(Topology, StandardLadderMatchesPaper)
{
    // 1; 2 on separate nodes; 4 = 1x4; 8 = 2x4; 12 = 3x4; 16 = 2x8;
    // 24 = 3x8; 32 = 4x8.
    struct Want
    {
        int procs, nodes, per;
    };
    const Want wants[] = {{1, 1, 1},  {2, 2, 1},  {4, 4, 1},
                          {8, 4, 2},  {12, 4, 3}, {16, 8, 2},
                          {24, 8, 3}, {32, 8, 4}};
    for (const auto& w : wants) {
        Topology t = Topology::standard(w.procs);
        EXPECT_EQ(t.nodes, w.nodes) << w.procs;
        EXPECT_EQ(t.procsPerNode, w.per) << w.procs;
        EXPECT_EQ(t.nodeOf(w.procs - 1), w.nodes - 1);
    }
}

TEST(Topology, NodeMapping)
{
    Topology t(16, 8);
    EXPECT_EQ(t.nodeOf(0), 0);
    EXPECT_EQ(t.nodeOf(1), 0);
    EXPECT_EQ(t.nodeOf(2), 1);
    EXPECT_EQ(t.firstProcOf(3), 6);
    EXPECT_TRUE(t.sameNode(4, 5));
    EXPECT_FALSE(t.sameNode(3, 4));
}

TEST(Runner, ConfigSupportMatrix)
{
    EXPECT_TRUE(configSupported(ProtocolKind::CsmPoll, 32));
    EXPECT_FALSE(configSupported(ProtocolKind::CsmPp, 32));
    EXPECT_TRUE(configSupported(ProtocolKind::CsmPp, 24));
    EXPECT_FALSE(configSupported(ProtocolKind::TmkMcPoll, 3));
    EXPECT_TRUE(configSupported(ProtocolKind::TmkMcPoll, 12));
}

TEST(Runner, ProtocolNamesRoundTrip)
{
    const ProtocolKind kinds[] = {
        ProtocolKind::None,      ProtocolKind::CsmPp,
        ProtocolKind::CsmInt,    ProtocolKind::CsmPoll,
        ProtocolKind::TmkUdpInt, ProtocolKind::TmkMcInt,
        ProtocolKind::TmkMcPoll,
    };
    for (ProtocolKind k : kinds)
        EXPECT_EQ(protocolFromName(protocolName(k)), k);
}

TEST(Runner, SequentialAndParallelProduceStats)
{
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    ExpResult seq = runSequential("sor", opts);
    EXPECT_GT(seq.elapsed, 0);
    EXPECT_EQ(seq.nprocs, 1);

    ExpResult par =
        runExperiment("sor", ProtocolKind::CsmPoll, 4, opts);
    EXPECT_EQ(par.nprocs, 4);
    EXPECT_EQ(par.stats.procs.size(), 4u);
    EXPECT_GT(par.stats.messages, 0u);
}

TEST(Runner, SegmentSizedToApplication)
{
    // Large should not fatal on segment exhaustion for any app.
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    for (const char* app : kAppNames) {
        ExpResult r = runExperiment(app, ProtocolKind::TmkMcPoll, 2,
                                    opts);
        EXPECT_GT(r.elapsed, 0) << app;
    }
}

TEST(TextTable, FormatsAlignedColumns)
{
    TextTable t({"a", "long_header", "c"});
    t.addRow({"x", "1", "2.50"});
    t.addRow({"yyyy", "22", "3.00"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("long_header"), std::string::npos);
    EXPECT_NE(s.find("yyyy"), std::string::npos);
    // Header, separator, two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TextTable, NumberHelpers)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::count(123456), "123456");
}

TEST(CostModel, DiffCostsScaleWithSize)
{
    CostModel c;
    EXPECT_EQ(c.diffCreate(0), c.diffCreateMin);
    EXPECT_EQ(c.diffCreate(kPageSize), c.diffCreateMax);
    EXPECT_GT(c.diffCreate(kPageSize / 2), c.diffCreateMin);
    EXPECT_LT(c.diffCreate(kPageSize / 2), c.diffCreateMax);
    EXPECT_GT(c.diffApply(1000), c.diffApply(10));
}

} // namespace
} // namespace mcdsm
