/**
 * @file
 * Unit tests for the vector-clock happens-before race detector:
 * canonical racy and race-free access patterns, chunk granularity,
 * read-share promotion, report contents and the report cap — plus an
 * end-to-end check that the runtime hooks feed the detector under a
 * real protocol.
 */

#include <gtest/gtest.h>

#include "check/race_detector.h"
#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"

namespace mcdsm {
namespace {

constexpr int kNp = 4;

RaceChecker
makeChecker(std::size_t max_reports = 64)
{
    return RaceChecker(kNp, /*page_count=*/16, /*chunk_shift=*/2,
                       max_reports);
}

TEST(RaceChecker, WriteWriteRace)
{
    auto rc = makeChecker();
    rc.onWrite(0, 0x100, 4, 10);
    rc.onWrite(1, 0x100, 4, 20);
    EXPECT_EQ(rc.raceCount(), 1u);
    ASSERT_EQ(rc.reports().size(), 1u);
    const RaceReport& r = rc.reports()[0];
    EXPECT_EQ(r.firstProc, 0);
    EXPECT_EQ(r.secondProc, 1);
    EXPECT_TRUE(r.firstIsWrite);
    EXPECT_TRUE(r.secondIsWrite);
    EXPECT_EQ(r.when, 20);
}

TEST(RaceChecker, WriteThenReadRace)
{
    auto rc = makeChecker();
    rc.onWrite(0, 0x40, 8, 1);
    rc.onRead(1, 0x40, 8, 2);
    EXPECT_EQ(rc.raceCount(), 1u);
    EXPECT_TRUE(rc.reports()[0].firstIsWrite);
    EXPECT_FALSE(rc.reports()[0].secondIsWrite);
}

TEST(RaceChecker, ReadThenWriteRace)
{
    auto rc = makeChecker();
    rc.onRead(2, 0x40, 4, 1);
    rc.onWrite(3, 0x40, 4, 2);
    EXPECT_EQ(rc.raceCount(), 1u);
    EXPECT_FALSE(rc.reports()[0].firstIsWrite);
    EXPECT_TRUE(rc.reports()[0].secondIsWrite);
}

TEST(RaceChecker, ConcurrentReadsAreNotARace)
{
    auto rc = makeChecker();
    for (int p = 0; p < kNp; ++p)
        rc.onRead(p, 0x200, 8, p);
    EXPECT_EQ(rc.raceCount(), 0u);
}

TEST(RaceChecker, DisjointChunksNoRace)
{
    auto rc = makeChecker();
    rc.onWrite(0, 0x100, 4, 1);
    rc.onWrite(1, 0x104, 4, 2); // adjacent chunk: no overlap
    EXPECT_EQ(rc.raceCount(), 0u);
}

TEST(RaceChecker, LockOrdersAccesses)
{
    auto rc = makeChecker();
    rc.afterAcquire(0, 7);
    rc.onWrite(0, 0x80, 4, 1);
    rc.beforeRelease(0, 7);
    rc.afterAcquire(1, 7);
    rc.onWrite(1, 0x80, 4, 2);
    rc.onRead(1, 0x80, 4, 3);
    rc.beforeRelease(1, 7);
    EXPECT_EQ(rc.raceCount(), 0u);
}

TEST(RaceChecker, DifferentLocksDoNotOrder)
{
    auto rc = makeChecker();
    rc.afterAcquire(0, 1);
    rc.onWrite(0, 0x80, 4, 1);
    rc.beforeRelease(0, 1);
    rc.afterAcquire(1, 2); // a different lock: no edge
    rc.onWrite(1, 0x80, 4, 2);
    rc.beforeRelease(1, 2);
    EXPECT_EQ(rc.raceCount(), 1u);
}

TEST(RaceChecker, FlagOrdersSetBeforeWait)
{
    auto rc = makeChecker();
    rc.onWrite(0, 0x300, 8, 1);
    rc.beforeFlagSet(0, 42);
    rc.afterFlagWait(1, 42);
    rc.onRead(1, 0x300, 8, 2);
    rc.onWrite(1, 0x300, 8, 3);
    EXPECT_EQ(rc.raceCount(), 0u);
}

TEST(RaceChecker, BarrierSeparatesPhases)
{
    auto rc = makeChecker();
    // Phase 1: every proc writes its own slot.
    for (int p = 0; p < kNp; ++p)
        rc.onWrite(p, 0x400 + 4 * p, 4, p);
    for (int p = 0; p < kNp; ++p)
        rc.barrierEnter(p, 0);
    for (int p = 0; p < kNp; ++p)
        rc.barrierLeave(p, 0);
    // Phase 2: everyone reads everything; proc 0 rewrites all slots.
    for (int p = 0; p < kNp; ++p) {
        for (int q = 0; q < kNp; ++q)
            rc.onRead(p, 0x400 + 4 * q, 4, 10 + p);
    }
    for (int p = 0; p < kNp; ++p)
        rc.barrierEnter(p, 1);
    for (int p = 0; p < kNp; ++p)
        rc.barrierLeave(p, 1);
    for (int q = 0; q < kNp; ++q)
        rc.onWrite(0, 0x400 + 4 * q, 4, 20);
    EXPECT_EQ(rc.raceCount(), 0u);
}

TEST(RaceChecker, WriteRacesWithOneOfManyReaders)
{
    auto rc = makeChecker();
    rc.onRead(0, 0x500, 4, 1);
    rc.onRead(1, 0x500, 4, 2); // promotes to a shared read vector
    rc.onRead(2, 0x500, 4, 3);
    rc.onWrite(3, 0x500, 4, 4);
    EXPECT_GE(rc.raceCount(), 1u);
    EXPECT_FALSE(rc.reports()[0].firstIsWrite);
    EXPECT_EQ(rc.reports()[0].secondProc, 3);
}

TEST(RaceChecker, RepeatedBarrierEpisodes)
{
    auto rc = makeChecker();
    for (int episode = 0; episode < 3; ++episode) {
        const int w = episode % kNp;
        rc.onWrite(w, 0x600, 4, episode * 10);
        for (int p = 0; p < kNp; ++p)
            rc.barrierEnter(p, 5);
        for (int p = 0; p < kNp; ++p)
            rc.barrierLeave(p, 5);
    }
    EXPECT_EQ(rc.raceCount(), 0u);
}

TEST(RaceChecker, MultiChunkAccessMergesIntoOneReport)
{
    auto rc = makeChecker();
    rc.onWrite(0, 0x100, 16, 1); // four 4-byte chunks
    rc.onWrite(1, 0x100, 16, 2);
    EXPECT_EQ(rc.raceCount(), 1u);
    ASSERT_EQ(rc.reports().size(), 1u);
    EXPECT_EQ(rc.reports()[0].beginOff, 0x100u);
    EXPECT_EQ(rc.reports()[0].endOff, 0x110u);
}

TEST(RaceChecker, ReportCapKeepsCounting)
{
    auto rc = makeChecker(/*max_reports=*/2);
    for (int i = 0; i < 5; ++i) {
        // Distinct pages so the merge heuristic cannot combine them.
        rc.onWrite(0, static_cast<GAddr>(i) * kPageSize, 4, 2 * i);
        rc.onWrite(1, static_cast<GAddr>(i) * kPageSize, 4, 2 * i + 1);
    }
    EXPECT_EQ(rc.raceCount(), 5u);
    EXPECT_EQ(rc.reports().size(), 2u);
}

TEST(RaceChecker, ReportCarriesSyncContextAndLocation)
{
    auto rc = makeChecker();
    rc.afterAcquire(0, 3);
    rc.onWrite(0, kPageSize + 0x20, 4, 1);
    rc.beforeRelease(0, 3);
    rc.barrierEnter(1, 9); // not a full episode: no edge to proc 0
    rc.onRead(1, kPageSize + 0x20, 4, 2);
    ASSERT_EQ(rc.raceCount(), 1u);
    const RaceReport& r = rc.reports()[0];
    EXPECT_EQ(r.page, 1u);
    EXPECT_EQ(r.beginOff, 0x20u);
    EXPECT_EQ(r.endOff, 0x24u);
    EXPECT_NE(r.firstSync.find("acquire(lock 3)"), std::string::npos);
    EXPECT_NE(r.secondSync.find("start"), std::string::npos);
    EXPECT_NE(r.toString().find("page 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: the runtime hooks feed the detector under a real protocol.
// ---------------------------------------------------------------------------

std::uint64_t
runTwoProcProgram(bool racy, ProtocolKind kind)
{
    DsmConfig cfg;
    cfg.protocol = kind;
    cfg.topo = Topology::standard(2);
    cfg.maxSharedBytes = 1 << 20;
    cfg.raceDetect = true;
    auto sys = DsmSystem::create(cfg);
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 64);
    sys->run([&](Proc& p) {
        if (racy) {
            arr.set(p, 0, p.id() + 1); // both procs, no sync
        } else {
            arr.set(p, p.id(), p.id() + 1); // disjoint elements
        }
        p.barrier(0);
        std::int64_t sum = 0;
        for (int i = 0; i < 2; ++i)
            sum += arr.get(p, i);
        (void)sum;
    });
    return sys->stats().racesDetected;
}

TEST(RaceCheckerEndToEnd, CleanProgramHasNoRaces)
{
    EXPECT_EQ(runTwoProcProgram(false, ProtocolKind::TmkMcPoll), 0u);
    EXPECT_EQ(runTwoProcProgram(false, ProtocolKind::CsmPoll), 0u);
}

TEST(RaceCheckerEndToEnd, RacyProgramIsReported)
{
    EXPECT_GE(runTwoProcProgram(true, ProtocolKind::TmkMcPoll), 1u);
    EXPECT_GE(runTwoProcProgram(true, ProtocolKind::CsmPoll), 1u);
}

TEST(RaceCheckerEndToEnd, RacyReadAnnotationSuppressesReport)
{
    DsmConfig cfg;
    cfg.protocol = ProtocolKind::TmkMcPoll;
    cfg.topo = Topology::standard(2);
    cfg.maxSharedBytes = 1 << 20;
    cfg.raceDetect = true;
    auto sys = DsmSystem::create(cfg);
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 8);
    sys->run([&](Proc& p) {
        if (p.id() == 0)
            arr.set(p, 0, 7);
        else
            (void)arr.getRacy(p, 0); // annotated racy read
        p.barrier(0);
    });
    EXPECT_EQ(sys->stats().racesDetected, 0u);
}

} // namespace
} // namespace mcdsm
