/**
 * @file
 * Tests for the protocol event-trace facility.
 */

#include <gtest/gtest.h>

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"
#include "dsm/trace.h"

namespace mcdsm {
namespace {

TEST(TraceRing, DisabledRecordsNothing)
{
    TraceRing ring;
    EXPECT_FALSE(ring.enabled());
    ring.record(1, 0, TraceKind::ReadFault, 7);
    EXPECT_TRUE(ring.events().empty());
    EXPECT_EQ(ring.recorded(), 0u);
}

TEST(TraceRing, KeepsChronologicalOrder)
{
    TraceRing ring(8);
    for (Time t = 0; t < 5; ++t)
        ring.record(t * 10, 0, TraceKind::LockAcquire, t);
    auto evs = ring.events();
    ASSERT_EQ(evs.size(), 5u);
    for (std::size_t i = 1; i < evs.size(); ++i)
        EXPECT_GT(evs[i].time, evs[i - 1].time);
    EXPECT_FALSE(ring.dropped());
}

TEST(TraceRing, WrapsAndReportsDrop)
{
    TraceRing ring(4);
    for (Time t = 0; t < 10; ++t)
        ring.record(t, 0, TraceKind::BarrierEnter, 0);
    EXPECT_TRUE(ring.dropped());
    EXPECT_EQ(ring.recorded(), 10u);
    auto evs = ring.events();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs.front().time, 6);
    EXPECT_EQ(evs.back().time, 9);
}

TEST(TraceRing, FilterByKind)
{
    TraceRing ring(16);
    ring.record(1, 0, TraceKind::ReadFault, 5);
    ring.record(2, 1, TraceKind::WriteFault, 5);
    ring.record(3, 0, TraceKind::ReadFault, 6);
    auto reads = ring.eventsOfKind(TraceKind::ReadFault);
    ASSERT_EQ(reads.size(), 2u);
    EXPECT_EQ(reads[0].arg, 5u);
    EXPECT_EQ(reads[1].arg, 6u);
}

TEST(TraceRing, DumpIsHumanReadable)
{
    TraceRing ring(4);
    ring.record(1234, 2, TraceKind::MessageSend, 15, 3);
    const std::string s = ring.dump();
    EXPECT_NE(s.find("message_send"), std::string::npos);
    EXPECT_NE(s.find("p2"), std::string::npos);
    EXPECT_NE(s.find("peer=3"), std::string::npos);
}

TEST(Trace, RuntimeRecordsProtocolEvents)
{
    DsmConfig cfg;
    cfg.protocol = ProtocolKind::TmkMcPoll;
    cfg.topo = Topology::standard(2);
    cfg.maxSharedBytes = 1 << 20;
    cfg.traceCapacity = 4096;
    auto sys = DsmSystem::create(cfg);
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);

    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            p.acquire(0);
            arr.set(p, 0, 42);
            p.release(0);
        }
        p.barrier(0);
        if (p.id() == 1)
            (void)arr.get(p, 0);
        p.barrier(1);
    });

    const TraceRing& trace = sys->runtime().trace();
    EXPECT_TRUE(trace.enabled());

    // The write fault precedes the reader's read fault in time.
    auto wf = trace.eventsOfKind(TraceKind::WriteFault);
    auto rf = trace.eventsOfKind(TraceKind::ReadFault);
    ASSERT_GE(wf.size(), 1u);
    ASSERT_GE(rf.size(), 1u);
    EXPECT_EQ(wf[0].proc, 0);
    EXPECT_LT(wf[0].time, rf.back().time);

    // Lock acquire precedes its release; barriers entered by both.
    auto acq = trace.eventsOfKind(TraceKind::LockAcquire);
    auto rel = trace.eventsOfKind(TraceKind::LockRelease);
    ASSERT_EQ(acq.size(), 1u);
    ASSERT_EQ(rel.size(), 1u);
    EXPECT_LT(acq[0].time, rel[0].time);

    auto enters = trace.eventsOfKind(TraceKind::BarrierEnter);
    EXPECT_EQ(enters.size(), 4u); // 2 procs x 2 barriers

    // TreadMarks barriers exchange messages.
    EXPECT_FALSE(trace.eventsOfKind(TraceKind::MessageSend).empty());
}

TEST(Trace, DisabledByDefaultCostsNothing)
{
    DsmConfig cfg;
    cfg.protocol = ProtocolKind::CsmPoll;
    cfg.topo = Topology::standard(2);
    cfg.maxSharedBytes = 1 << 20;
    auto sys = DsmSystem::create(cfg);
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 64);
    sys->run([&](Proc& p) {
        arr.set(p, p.id(), 1);
        p.barrier(0);
    });
    EXPECT_FALSE(sys->runtime().trace().enabled());
    EXPECT_TRUE(sys->runtime().trace().events().empty());
}

} // namespace
} // namespace mcdsm
