/**
 * @file
 * Cashmere protocol unit tests: directory state transitions,
 * first-touch homing, superpages, exclusive mode, NLE handling,
 * write-notice deduplication, write doubling and write-through.
 */

#include <gtest/gtest.h>

#include "cashmere/cashmere.h"
#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"

namespace mcdsm {
namespace {

DsmConfig
cfg(int nprocs, int nodes)
{
    DsmConfig c;
    c.protocol = ProtocolKind::CsmPoll;
    c.topo = Topology(nprocs, nodes);
    c.maxSharedBytes = 4 << 20;
    return c;
}

TEST(Directory, SharerBits)
{
    DirEntry e;
    EXPECT_EQ(e.otherSharers(0), 0);
    e.addSharer(3);
    e.addSharer(17);
    EXPECT_TRUE(e.isPresent(3));
    EXPECT_TRUE(e.isPresent(17));
    EXPECT_FALSE(e.isPresent(4));
    EXPECT_EQ(e.otherSharers(3), 1);
    EXPECT_EQ(e.otherSharers(5), 2);
    e.removeSharer(3);
    EXPECT_FALSE(e.isPresent(3));
    EXPECT_EQ(e.otherSharers(5), 1);
}

TEST(Directory, FirstTouchAssignsWholeSuperpage)
{
    Directory d(64, 4);
    EXPECT_FALSE(d.homeAssigned(10));
    EXPECT_TRUE(d.assignHome(10, 2));
    // Pages 8..11 share the superpage.
    EXPECT_EQ(d.home(8), 2);
    EXPECT_EQ(d.home(11), 2);
    EXPECT_EQ(d.home(12), kNoNode);
    // Second claim loses.
    EXPECT_FALSE(d.assignHome(9, 3));
    EXPECT_EQ(d.home(9), 2);
    EXPECT_EQ(d.homeAssignments(), 1u);
}

TEST(Directory, SuperpageSizeFromTableEntries)
{
    DsmConfig c;
    EXPECT_EQ(c.effectiveSuperpagePages(512), 1);
    EXPECT_EQ(c.effectiveSuperpagePages(4096), 1);
    EXPECT_EQ(c.effectiveSuperpagePages(4097), 2);
    EXPECT_EQ(c.effectiveSuperpagePages(40960), 10);
    c.superpagePages = 8;
    EXPECT_EQ(c.effectiveSuperpagePages(512), 8);
}

TEST(Cashmere, FirstTouchHomesPageAtToucher)
{
    auto sys = DsmSystem::create(cfg(4, 4));
    auto arr = SharedArray<std::int64_t>::allocate(
        *sys, 4 * (kPageSize / 8));
    sys->run([&](Proc& p) {
        // Each proc touches its own page first.
        arr.set(p, p.id() * (kPageSize / 8), p.id());
        p.barrier(0);
    });
    // All write-through was node-local: only small control writes
    // (barrier notifications) cross the wire, no page data.
    EXPECT_LT(sys->stats().mcStreamBytes, 200u);
}

TEST(Cashmere, RemoteHomeGeneratesWriteThroughTraffic)
{
    auto sys = DsmSystem::create(cfg(2, 2));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);
    sys->run([&](Proc& p) {
        if (p.id() == 0)
            arr.set(p, 0, 1); // proc 0 homes the page on node 0
        p.barrier(0);
        if (p.id() == 1) {
            for (int i = 0; i < 100; ++i)
                arr.set(p, i, i); // remote write-through
        }
        p.barrier(1);
    });
    EXPECT_GE(sys->stats().mcStreamBytes, 100u * 8);
}

TEST(Cashmere, ExclusiveModeEliminatesRepeatFaults)
{
    auto sys = DsmSystem::create(cfg(2, 2));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);
    sys->run([&](Proc& p) {
        // Proc 0 writes its page in many barrier epochs; no one else
        // touches it, so after the first release it stays exclusive.
        for (int round = 0; round < 10; ++round) {
            if (p.id() == 0)
                arr.set(p, 0, round);
            p.barrier(0);
        }
    });
    // One write fault total (not one per round).
    EXPECT_EQ(sys->stats().procs[0].writeFaults, 1u);
    EXPECT_EQ(sys->stats().procs[0].writeNoticesSent, 0u);
}

TEST(Cashmere, ExclusiveModeDisabledFaultsEachInterval)
{
    DsmConfig c = cfg(2, 2);
    c.cashmereExclusiveMode = false;
    auto sys = DsmSystem::create(c);
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);
    sys->run([&](Proc& p) {
        for (int round = 0; round < 10; ++round) {
            if (p.id() == 0)
                arr.set(p, 0, round);
            p.barrier(0);
        }
    });
    // Downgraded to read-only at every release: a fault per round.
    EXPECT_EQ(sys->stats().procs[0].writeFaults, 10u);
}

TEST(Cashmere, NleEndsExclusiveMode)
{
    auto sys = DsmSystem::create(cfg(2, 2));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);
    std::int64_t seen = -1;
    sys->run([&](Proc& p) {
        if (p.id() == 0)
            arr.set(p, 0, 42); // exclusive after first barrier
        p.barrier(0);
        if (p.id() == 0)
            arr.set(p, 1, 43); // still exclusive, no fault
        p.barrier(1);
        if (p.id() == 1)
            seen = arr.get(p, 0); // reader posts NLE to proc 0
        p.barrier(2);
        // Second barrier: proc 0's release here is guaranteed to see
        // the NLE descriptor (the reader's fault preceded its arrival
        // at barrier 2) and downgrade the page.
        p.barrier(3);
        if (p.id() == 0)
            arr.set(p, 2, 44); // exclusive was revoked: write fault
        p.barrier(5);
        if (p.id() == 1)
            seen += arr.get(p, 2);
        p.barrier(4);
    });
    EXPECT_EQ(seen, 42 + 44);
    // Two write faults on proc 0: initial, and after NLE revocation.
    EXPECT_EQ(sys->stats().procs[0].writeFaults, 2u);
    // Proc 0's release after the NLE sent a write notice to proc 1.
    EXPECT_GE(sys->stats().procs[0].writeNoticesSent, 1u);
}

TEST(Cashmere, WriteNoticesAreDeduplicated)
{
    auto sys = DsmSystem::create(cfg(2, 2));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);
    sys->run([&](Proc& p) {
        // Both procs share the page throughout.
        (void)arr.get(p, p.id());
        p.barrier(0);
        if (p.id() == 0) {
            // Many release episodes without proc 1 consuming the
            // notices (locks release without proc1 acquiring).
            for (int i = 0; i < 5; ++i) {
                p.acquire(0);
                arr.set(p, 0, i);
                p.release(0);
            }
        }
        p.barrier(1);
    });
    // The bitmap suppresses duplicates: at most one pending notice
    // per (proc, page) — so fewer than one notice per release.
    EXPECT_LE(sys->stats().procs[0].writeNoticesSent, 3u);
}

TEST(Cashmere, PageTransfersCountedAtRequester)
{
    auto sys = DsmSystem::create(cfg(2, 2));
    auto arr = SharedArray<std::int64_t>::allocate(
        *sys, 4 * (kPageSize / 8));
    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            for (int pg = 0; pg < 4; ++pg)
                arr.set(p, pg * (kPageSize / 8), pg);
        }
        p.barrier(0);
        if (p.id() == 1) {
            for (int pg = 0; pg < 4; ++pg)
                (void)arr.get(p, pg * (kPageSize / 8));
        }
        p.barrier(1);
    });
    EXPECT_EQ(sys->stats().procs[1].pageTransfers, 4u);
    EXPECT_EQ(sys->stats().procs[0].pageTransfers, 0u);
}

TEST(Cashmere, SameNodeFetchUsesNoMessages)
{
    // Two procs on ONE node: canonical copies are local memory.
    auto sys = DsmSystem::create(cfg(2, 1));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);
    std::int64_t seen = -1;
    sys->run([&](Proc& p) {
        if (p.id() == 0)
            arr.set(p, 7, 77);
        p.barrier(0);
        if (p.id() == 1)
            seen = arr.get(p, 7);
        p.barrier(1);
    });
    EXPECT_EQ(seen, 77);
    EXPECT_EQ(sys->stats().procs[1].pageTransfers, 0u);
    EXPECT_EQ(sys->stats().mcBytes, 0u);
}

TEST(Cashmere, ReleaseStallsForWriteThrough)
{
    // A release after heavy remote write-through must drain: the
    // releasing processor's CommWait reflects the bandwidth backlog.
    auto sys = DsmSystem::create(cfg(2, 2));
    auto arr = SharedArray<std::int64_t>::allocate(
        *sys, 2 * (kPageSize / 8));
    sys->run([&](Proc& p) {
        if (p.id() == 1)
            arr.set(p, 0, 1); // homes the page on node 1
        p.barrier(0);
        if (p.id() == 0) {
            for (std::size_t i = 0; i < kPageSize / 8; ++i)
                arr.set(p, i, static_cast<std::int64_t>(i));
            const Time before = p.now();
            p.acquire(0);
            p.release(0);
            // 8 KB at ~30 MB/s is ~270 us of backlog; the release
            // (inside acquire+release here) must have waited for it.
            EXPECT_GT(p.now() - before, 50 * kMicrosecond);
        }
        p.barrier(1);
    });
}

} // namespace
} // namespace mcdsm
