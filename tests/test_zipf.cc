/**
 * @file
 * Statistical property tests for the Zipfian rank generator
 * (sim/zipf.h): empirical frequencies against the analytic CDF across
 * skews, exact sequence determinism per seed, and independence of
 * Rng::split-derived streams.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "sim/zipf.h"

namespace mcdsm {
namespace {

/** Empirical rank counts over @p n samples. */
std::vector<std::uint64_t>
sampleCounts(ZipfGenerator& gen, int samples)
{
    std::vector<std::uint64_t> counts(gen.ranks(), 0);
    for (int i = 0; i < samples; ++i) {
        const std::size_t r = gen.next();
        EXPECT_LT(r, gen.ranks());
        counts[r] += 1;
    }
    return counts;
}

TEST(Zipf, AnalyticCdfIsADistribution)
{
    for (double theta : {0.0, 0.5, 0.9, 0.99, 1.2}) {
        ZipfGenerator gen(100, theta, Rng(1));
        double prev = 0.0;
        double psum = 0.0;
        for (std::size_t k = 0; k < gen.ranks(); ++k) {
            EXPECT_GE(gen.cdf(k), prev) << "theta=" << theta;
            EXPECT_GT(gen.probability(k), 0.0) << "theta=" << theta;
            psum += gen.probability(k);
            prev = gen.cdf(k);
        }
        EXPECT_DOUBLE_EQ(gen.cdf(gen.ranks() - 1), 1.0);
        EXPECT_NEAR(psum, 1.0, 1e-9);
        // Skewed distributions are monotone decreasing in rank.
        if (theta > 0.0) {
            EXPECT_GT(gen.probability(0), gen.probability(99));
        }
    }
}

TEST(Zipf, ThetaZeroIsUniform)
{
    ZipfGenerator gen(64, 0.0, Rng(3));
    for (std::size_t k = 0; k < 64; ++k)
        EXPECT_NEAR(gen.probability(k), 1.0 / 64, 1e-12);

    const int n = 128000;
    const auto counts = sampleCounts(gen, n);
    // Each rank expects n/64 = 2000 hits; 6 sigma ~ 265.
    for (std::size_t k = 0; k < counts.size(); ++k)
        EXPECT_NEAR(static_cast<double>(counts[k]), 2000.0, 270.0)
            << "rank " << k;
}

TEST(Zipf, EmpiricalCdfMatchesAnalytic)
{
    // For each skew, the empirical CDF at several checkpoints must sit
    // within 0.01 of the analytic CDF (sampling std at n=200k is
    // <= 0.0012, so this is an 8-sigma bound).
    const int n = 200000;
    for (double theta : {0.0, 0.5, 0.9, 1.2}) {
        ZipfGenerator gen(
            100, theta,
            Rng(1000 + static_cast<std::uint64_t>(theta * 10)));
        const auto counts = sampleCounts(gen, n);
        std::uint64_t cum = 0;
        std::size_t check = 0;
        const std::size_t checkpoints[] = {0, 4, 9, 24, 49, 74, 99};
        for (std::size_t k = 0; k < counts.size(); ++k) {
            cum += counts[k];
            if (check < std::size(checkpoints) &&
                k == checkpoints[check]) {
                const double emp =
                    static_cast<double>(cum) / static_cast<double>(n);
                EXPECT_NEAR(emp, gen.cdf(k), 0.01)
                    << "theta=" << theta << " k=" << k;
                ++check;
            }
        }
        EXPECT_EQ(cum, static_cast<std::uint64_t>(n));
    }
}

TEST(Zipf, TopRankFrequencyMatchesProbability)
{
    // The classic hot-key check: rank 0 of Zipf(0.99) must be as hot
    // as the analytic mass says (within 5% relative at n=200k).
    const int n = 200000;
    ZipfGenerator gen(1000, 0.99, Rng(7));
    const auto counts = sampleCounts(gen, n);
    const double want = gen.probability(0) * n;
    EXPECT_NEAR(static_cast<double>(counts[0]), want, 0.05 * want);
    // And the top-10 together.
    double want10 = gen.cdf(9) * n;
    std::uint64_t got10 = 0;
    for (int k = 0; k < 10; ++k)
        got10 += counts[k];
    EXPECT_NEAR(static_cast<double>(got10), want10, 0.03 * want10);
}

TEST(Zipf, IdenticalSeedsIdenticalSequences)
{
    ZipfGenerator a(512, 0.9, Rng(42));
    ZipfGenerator b(512, 0.9, Rng(42));
    for (int i = 0; i < 4096; ++i)
        ASSERT_EQ(a.next(), b.next()) << "draw " << i;
}

TEST(Zipf, DifferentSeedsDiverge)
{
    ZipfGenerator a(512, 0.9, Rng(42));
    ZipfGenerator b(512, 0.9, Rng(43));
    int differ = 0;
    for (int i = 0; i < 1024; ++i)
        differ += a.next() != b.next();
    EXPECT_GT(differ, 0);
}

TEST(Zipf, SplitStreamsAreIndependent)
{
    // Two generators seeded from sibling Rng::split children must
    // produce uncorrelated streams: they differ, and neither is a
    // shifted copy of the other (checked via agreement fraction
    // against the collision baseline).
    Rng parent(555);
    ZipfGenerator a(64, 0.9, parent.split());
    ZipfGenerator b(64, 0.9, parent.split());

    const int n = 8192;
    std::vector<std::size_t> sa(n), sb(n);
    for (int i = 0; i < n; ++i) {
        sa[i] = a.next();
        sb[i] = b.next();
    }
    // Agreement at equal positions should be near the chance collision
    // rate sum(p_k^2) — far below 50%, never near 100%.
    ZipfGenerator ref(64, 0.9, Rng(1));
    double collide = 0;
    for (std::size_t k = 0; k < 64; ++k)
        collide += ref.probability(k) * ref.probability(k);
    int agree = 0;
    for (int i = 0; i < n; ++i)
        agree += sa[i] == sb[i];
    const double agree_frac = static_cast<double>(agree) / n;
    EXPECT_LT(agree_frac, collide + 0.05);

    // The parent stream itself stays usable and distinct.
    ZipfGenerator c(64, 0.9, parent);
    int differ = 0;
    for (int i = 0; i < 1024; ++i)
        differ += c.next() != (i < n ? sa[i] : 0);
    EXPECT_GT(differ, 0);
}

TEST(Zipf, SingleRankAlwaysZero)
{
    ZipfGenerator gen(1, 0.9, Rng(9));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(gen.next(), 0u);
    EXPECT_DOUBLE_EQ(gen.cdf(0), 1.0);
}

} // namespace
} // namespace mcdsm
