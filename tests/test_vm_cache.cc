/**
 * @file
 * Unit tests for the VM page table and the two-level cache model.
 */

#include <gtest/gtest.h>

#include "cache/cache_model.h"
#include "cashmere/cashmere.h"
#include "vm/page_table.h"

namespace mcdsm {
namespace {

TEST(PageTable, StartsUnmapped)
{
    PageTable pt(16);
    for (PageNum pn = 0; pn < 16; ++pn) {
        EXPECT_FALSE(pt.canRead(pn));
        EXPECT_FALSE(pt.canWrite(pn));
    }
    EXPECT_EQ(pt.mappedPages(), 0u);
}

TEST(PageTable, ProtectionTransitions)
{
    PageTable pt(4);
    pt.setProtection(1, ProtRead);
    EXPECT_TRUE(pt.canRead(1));
    EXPECT_FALSE(pt.canWrite(1));
    pt.setProtection(1, ProtRw);
    EXPECT_TRUE(pt.canRead(1));
    EXPECT_TRUE(pt.canWrite(1));
    pt.setProtection(1, ProtNone);
    EXPECT_FALSE(pt.canRead(1));
    EXPECT_EQ(pt.protectOps(), 3u);
}

TEST(PageTable, MappedPagesCount)
{
    PageTable pt(8);
    pt.setProtection(0, ProtRead);
    pt.setProtection(1, ProtRw);
    EXPECT_EQ(pt.mappedPages(), 2u);
    pt.setProtection(0, ProtNone);
    EXPECT_EQ(pt.mappedPages(), 1u);
    pt.setProtection(1, ProtRead); // still mapped
    EXPECT_EQ(pt.mappedPages(), 1u);
}

// ---------------------------------------------------------------------------
// Cache model
// ---------------------------------------------------------------------------

class CacheTest : public ::testing::Test
{
  protected:
    CostModel costs;
    CacheConfig cfg; // 16 KB L1, 1 MB L2, 64 B lines
};

TEST_F(CacheTest, FirstAccessMissesBoth)
{
    CacheModel c(cfg, costs);
    EXPECT_EQ(c.access(0x1000), costs.memTime);
    EXPECT_EQ(c.l1Misses(), 1u);
    EXPECT_EQ(c.l2Misses(), 1u);
}

TEST_F(CacheTest, SecondAccessHitsL1)
{
    CacheModel c(cfg, costs);
    c.access(0x1000);
    EXPECT_EQ(c.access(0x1000), 0);
    EXPECT_EQ(c.access(0x1000 + 63), 0); // same line
    EXPECT_EQ(c.l1Misses(), 1u);
}

TEST_F(CacheTest, L1ConflictFallsBackToL2)
{
    CacheModel c(cfg, costs);
    c.access(0x0);
    c.access(0x4000); // 16 KB apart: same L1 set, different L2 set
    EXPECT_EQ(c.access(0x0), costs.l2HitTime);
    EXPECT_EQ(c.l2Misses(), 2u);
}

TEST_F(CacheTest, WorkingSetFitsL1)
{
    CacheModel c(cfg, costs);
    // 8 KB working set: after the first sweep everything hits.
    for (int rep = 0; rep < 3; ++rep) {
        for (std::uint64_t a = 0; a < 8192; a += 8)
            c.access(a);
    }
    EXPECT_EQ(c.l1Misses(), 8192u / 64);
}

TEST_F(CacheTest, DoubledWritesBlowUpL1WorkingSet)
{
    // The key mechanism behind the paper's LU/Gauss findings: a 16 KB
    // working set fits L1, but doubling each write to +kDoubleOffset
    // makes the effective footprint 24 KB and L1 starts thrashing.
    CostModel costs2;
    CacheConfig cfg2;

    auto misses_with_doubling = [&](bool doubling) {
        CacheModel c(cfg2, costs2);
        // Warm: 16 KB primary working set (two 8 KB blocks).
        for (int rep = 0; rep < 4; ++rep) {
            for (std::uint64_t a = 0; a < 16384; a += 8) {
                c.access(a);
                if (doubling && a < 8192)
                    c.access(a + Cashmere::kDoubleOffset);
            }
        }
        return c.l1Misses();
    };

    auto base = misses_with_doubling(false);
    auto doubled = misses_with_doubling(true);
    EXPECT_GT(doubled, 4 * base);
}

TEST_F(CacheTest, DoubleOffsetMapsToDifferentL1Line)
{
    // Verify the paper's address arithmetic: local and doubled
    // addresses must land in different L1 sets.
    const std::uint64_t a = 0x12340;
    const std::uint64_t d = a + Cashmere::kDoubleOffset;
    const std::uint64_t l1_sets = cfg.l1Bytes / cfg.lineSize;
    EXPECT_NE((a / cfg.lineSize) % l1_sets, (d / cfg.lineSize) % l1_sets);
}

TEST_F(CacheTest, TouchRangeCostsPerLine)
{
    CacheModel c(cfg, costs);
    Time t = c.touchRange(0, kPageSize);
    EXPECT_EQ(t, static_cast<Time>(kPageSize / 64) * costs.memTime);
    // Second touch: all L1-resident (8 KB < 16 KB).
    EXPECT_EQ(c.touchRange(0, kPageSize), 0);
}

TEST_F(CacheTest, InvalidateRangeForcesRefetch)
{
    CacheModel c(cfg, costs);
    c.touchRange(0, kPageSize);
    c.invalidateRange(0, kPageSize);
    EXPECT_GT(c.touchRange(0, kPageSize), 0);
}

TEST_F(CacheTest, L2CapacityEffect)
{
    // A 2 MB working set cannot live in a 1 MB L2; a 512 KB one can.
    CacheModel big(cfg, costs);
    for (int rep = 0; rep < 2; ++rep)
        for (std::uint64_t a = 0; a < (2u << 20); a += 64)
            big.access(a);
    // Second sweep of a 2 MB set still misses L2 (direct-mapped wrap).
    std::uint64_t second_sweep_l2 = big.l2Misses() - (2u << 20) / 64;
    EXPECT_GT(second_sweep_l2, 0u);

    CacheModel small(cfg, costs);
    for (int rep = 0; rep < 2; ++rep)
        for (std::uint64_t a = 0; a < (512u << 10); a += 64)
            small.access(a);
    EXPECT_EQ(small.l2Misses(), (512u << 10) / 64);
}

TEST(CacheGeometry, RejectsNonPowerOfTwo)
{
    CostModel costs;
    CacheConfig bad;
    bad.l1Bytes = 10000;
    EXPECT_DEATH(CacheModel(bad, costs), "power of two");
}

} // namespace
} // namespace mcdsm
