/**
 * @file
 * End-to-end DSM runtime tests: shared reads/writes, locks, barriers
 * and flags across all protocol variants at small scale.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"

namespace mcdsm {
namespace {

DsmConfig
makeCfg(ProtocolKind k, int nprocs)
{
    DsmConfig cfg;
    cfg.protocol = k;
    if (k == ProtocolKind::None) {
        cfg.topo = Topology(1, 1);
    } else if (nprocs <= 4 && k == ProtocolKind::CsmPp) {
        // pp needs a spare CPU per node: spread 1 proc/node.
        cfg.topo = Topology(nprocs, nprocs);
    } else {
        cfg.topo = Topology::standard(nprocs);
    }
    cfg.maxSharedBytes = 4 << 20;
    return cfg;
}

const ProtocolKind kAllProtocols[] = {
    ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
    ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
    ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
};

class AllProtocols : public ::testing::TestWithParam<ProtocolKind>
{};

INSTANTIATE_TEST_SUITE_P(
    Variants, AllProtocols, ::testing::ValuesIn(kAllProtocols),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
        return protocolName(info.param);
    });

TEST(DsmBasic, SequentialBaselineReadsHostData)
{
    auto sys = DsmSystem::create(makeCfg(ProtocolKind::None, 1));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 100);
    for (int i = 0; i < 100; ++i)
        arr.init(*sys, i, i * 3);

    std::int64_t sum = 0;
    sys->run([&](Proc& p) {
        for (int i = 0; i < 100; ++i)
            sum += arr.get(p, i);
        arr.set(p, 0, 777);
    });
    EXPECT_EQ(sum, 99 * 100 / 2 * 3);
    EXPECT_EQ(arr.host(*sys, 0), 777);
    // The sequential baseline charges no protocol cost.
    EXPECT_EQ(sys->stats().procs[0].timeIn[(int)TimeCat::Protocol], 0);
    EXPECT_EQ(sys->stats().messages, 0u);
}

TEST_P(AllProtocols, SingleWriterReadBack)
{
    auto sys = DsmSystem::create(makeCfg(GetParam(), 2));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 1024);
    std::int64_t seen = -1;

    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            for (int i = 0; i < 1024; ++i)
                arr.set(p, i, 1000 + i);
        }
        p.barrier(0);
        if (p.id() == 1)
            seen = arr.get(p, 512);
        p.barrier(0);
    });
    EXPECT_EQ(seen, 1512);
}

TEST_P(AllProtocols, InitImageVisibleToAll)
{
    auto sys = DsmSystem::create(makeCfg(GetParam(), 4));
    auto arr = SharedArray<std::int32_t>::allocate(*sys, 4096);
    for (int i = 0; i < 4096; ++i)
        arr.init(*sys, i, i ^ 0x5a5a);

    std::vector<std::int64_t> sums(4, 0);
    sys->run([&](Proc& p) {
        std::int64_t s = 0;
        for (int i = p.id(); i < 4096; i += p.nprocs())
            s += arr.get(p, i);
        sums[p.id()] = s;
    });
    std::int64_t expect = 0;
    for (int i = 0; i < 4096; ++i)
        expect += i ^ 0x5a5a;
    EXPECT_EQ(sums[0] + sums[1] + sums[2] + sums[3], expect);
}

TEST_P(AllProtocols, LockProtectedCounter)
{
    auto sys = DsmSystem::create(makeCfg(GetParam(), 4));
    GAddr counter = sys->alloc(sizeof(std::int64_t));
    sys->hostStore<std::int64_t>(counter, 0);
    constexpr int kIters = 25;

    sys->run([&](Proc& p) {
        for (int i = 0; i < kIters; ++i) {
            p.pollPoint();
            p.acquire(3);
            auto v = p.read<std::int64_t>(counter);
            p.write<std::int64_t>(counter, v + 1);
            p.release(3);
        }
    });

    // Read back through a fresh run-less check: have proc 0 verify.
    auto sys2 = DsmSystem::create(makeCfg(GetParam(), 4));
    (void)sys2;
    // Verify inside the same run instead: rerun with a final barrier.
    auto sys3 = DsmSystem::create(makeCfg(GetParam(), 4));
    GAddr c3 = sys3->alloc(sizeof(std::int64_t));
    sys3->hostStore<std::int64_t>(c3, 0);
    std::int64_t final_val = -1;
    sys3->run([&](Proc& p) {
        for (int i = 0; i < kIters; ++i) {
            p.pollPoint();
            p.acquire(3);
            auto v = p.read<std::int64_t>(c3);
            p.write<std::int64_t>(c3, v + 1);
            p.release(3);
        }
        p.barrier(0);
        if (p.id() == 0)
            final_val = p.read<std::int64_t>(c3);
    });
    EXPECT_EQ(final_val, 4 * kIters);
}

TEST_P(AllProtocols, BarrierOrdersPhases)
{
    auto sys = DsmSystem::create(makeCfg(GetParam(), 4));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 4);
    bool ok = true;

    sys->run([&](Proc& p) {
        // Phase 1: each proc writes its slot (pages are shared —
        // false sharing on one page, multi-writer).
        arr.set(p, p.id(), p.id() + 1);
        p.barrier(0);
        // Phase 2: everyone checks everyone.
        std::int64_t sum = 0;
        for (int i = 0; i < 4; ++i)
            sum += arr.get(p, i);
        if (sum != 1 + 2 + 3 + 4)
            ok = false;
        p.barrier(1);
    });
    EXPECT_TRUE(ok);
}

TEST_P(AllProtocols, RepeatedBarrierEpochs)
{
    auto sys = DsmSystem::create(makeCfg(GetParam(), 4));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 8);
    bool ok = true;

    sys->run([&](Proc& p) {
        for (int round = 0; round < 10; ++round) {
            p.pollPoint();
            if (p.id() == round % 4)
                arr.set(p, round % 8, round);
            p.barrier(0);
            if (arr.get(p, round % 8) != round)
                ok = false;
            p.barrier(0);
        }
    });
    EXPECT_TRUE(ok);
}

TEST_P(AllProtocols, FlagsProvideReleaseAcquire)
{
    auto sys = DsmSystem::create(makeCfg(GetParam(), 4));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 64);
    std::vector<std::int64_t> got(4, -1);

    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            for (int i = 0; i < 64; ++i)
                arr.set(p, i, 4242 + i);
            p.setFlag(5);
        } else {
            p.waitFlag(5);
            got[p.id()] = arr.get(p, 63);
        }
        p.barrier(0);
    });
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(got[i], 4242 + 63) << "proc " << i;
}

TEST_P(AllProtocols, ProducerConsumerChain)
{
    auto sys = DsmSystem::create(makeCfg(GetParam(), 4));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 4096);
    std::int64_t last = -1;

    sys->run([&](Proc& p) {
        const int id = p.id();
        const int n = p.nprocs();
        if (id > 0)
            p.waitFlag(id - 1);
        // Each proc increments a window written by its predecessor.
        for (int i = 0; i < 512; ++i) {
            p.pollPoint();
            auto v = arr.get(p, i);
            arr.set(p, i, v + id + 1);
        }
        p.setFlag(id);
        p.barrier(0);
        if (id == n - 1)
            last = arr.get(p, 100);
    });
    EXPECT_EQ(last, 1 + 2 + 3 + 4);
}

TEST_P(AllProtocols, MultiWriterFalseSharing)
{
    // All four processors write disjoint quarters of the same pages
    // concurrently — the multi-writer case both protocols must merge.
    auto sys = DsmSystem::create(makeCfg(GetParam(), 4));
    const int n = 4096;
    auto arr = SharedArray<std::int64_t>::allocate(*sys, n);
    bool ok = true;

    sys->run([&](Proc& p) {
        const int id = p.id();
        for (int i = id; i < n; i += 4) {
            p.pollPoint();
            arr.set(p, i, id * 100000 + i);
        }
        p.barrier(0);
        for (int i = 0; i < n; ++i) {
            const std::int64_t want = (i % 4) * 100000 + i;
            if (arr.get(p, i) != want)
                ok = false;
        }
        p.barrier(1);
    });
    EXPECT_TRUE(ok);
}

TEST_P(AllProtocols, StatsArePopulated)
{
    auto sys = DsmSystem::create(makeCfg(GetParam(), 2));
    auto arr = SharedArray<std::int64_t>::allocate(*sys, 2048);
    sys->run([&](Proc& p) {
        if (p.id() == 0) {
            for (int i = 0; i < 2048; ++i)
                arr.set(p, i, i);
        }
        p.barrier(0);
        std::int64_t s = 0;
        for (int i = 0; i < 2048; ++i)
            s += arr.get(p, i);
        p.barrier(1);
        p.computeOps(100);
    });
    const RunStats& st = sys->stats();
    ASSERT_EQ(st.procs.size(), 2u);
    EXPECT_GT(st.elapsed, 0);
    EXPECT_GT(st.procs[0].writeFaults, 0u);
    EXPECT_GT(st.procs[1].readFaults, 0u);
    EXPECT_EQ(st.procs[0].barriers, 2u);
    EXPECT_GT(st.procs[0].timeIn[(int)TimeCat::User], 0);
    EXPECT_GT(st.procs[1].timeIn[(int)TimeCat::CommWait], 0);
    if (isCashmere(GetParam())) {
        EXPECT_GT(st.procs[1].pageTransfers, 0u);
        EXPECT_GT(st.procs[0].timeIn[(int)TimeCat::Doubling], 0);
        EXPECT_GT(st.mcStreamBytes, 0u);
    } else {
        EXPECT_GT(st.procs[0].twins, 0u);
        EXPECT_GT(st.procs[0].diffsCreated, 0u);
        EXPECT_GT(st.procs[1].diffsApplied, 0u);
    }
    EXPECT_GT(st.messages, 0u);
}

TEST(DsmBasic, ElapsedGrowsWithWork)
{
    auto run = [](int iters) {
        auto sys = DsmSystem::create(makeCfg(ProtocolKind::CsmPoll, 2));
        auto arr = SharedArray<std::int64_t>::allocate(*sys, 16);
        sys->run([&](Proc& p) {
            for (int i = 0; i < iters; ++i) {
                p.pollPoint();
                p.computeOps(100);
                arr.set(p, p.id(), i);
            }
            p.barrier(0);
        });
        return sys->stats().elapsed;
    };
    EXPECT_GT(run(1000), run(10));
}

} // namespace
} // namespace mcdsm
