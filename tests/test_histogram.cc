/**
 * @file
 * Tests for the HDR-style log-bucketed latency histogram
 * (common/histogram.h): bucket geometry (contiguity, bounded relative
 * error, exactness below kSubBuckets), percentiles against
 * closed-form distributions (uniform, two-point, exponential),
 * single-sample and empty edge cases, and merge/multiplicity
 * equivalences.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "sim/rng.h"

namespace mcdsm {
namespace {

// ---------------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------------

TEST(HistogramGeometry, ExactBelowSubBuckets)
{
    for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
        const std::size_t i = LatencyHistogram::bucketIndex(v);
        EXPECT_EQ(i, v);
        EXPECT_EQ(LatencyHistogram::bucketLow(i), v);
        EXPECT_EQ(LatencyHistogram::bucketHigh(i), v);
    }
}

TEST(HistogramGeometry, ValueWithinItsBucket)
{
    // Boundary values around every interesting edge: sub-bucket end,
    // powers of two, and large 64-bit values.
    const std::uint64_t samples[] = {
        0,    1,    31,       32,        33,        63,
        64,   65,   127,      128,       1023,      1024,
        4095, 4096, 1u << 20, (1u << 20) + 1, std::uint64_t{1} << 40,
        (std::uint64_t{1} << 40) + 12345, ~std::uint64_t{0}};
    for (std::uint64_t v : samples) {
        const std::size_t i = LatencyHistogram::bucketIndex(v);
        EXPECT_LE(LatencyHistogram::bucketLow(i), v) << "v=" << v;
        EXPECT_GE(LatencyHistogram::bucketHigh(i), v) << "v=" << v;
    }
}

TEST(HistogramGeometry, BucketsAreContiguous)
{
    // high(i) + 1 == low(i+1) over every bucket a 48-bit latency can
    // reach: no gaps, no overlaps.
    const std::size_t top =
        LatencyHistogram::bucketIndex(std::uint64_t{1} << 48);
    for (std::size_t i = 0; i < top; ++i) {
        EXPECT_EQ(LatencyHistogram::bucketHigh(i) + 1,
                  LatencyHistogram::bucketLow(i + 1))
            << "bucket " << i;
    }
}

TEST(HistogramGeometry, RelativeErrorBounded)
{
    // Above the exact range the bucket width must stay within
    // low/kSubBuckets: the documented ~3.1% quantization bound.
    const std::size_t top =
        LatencyHistogram::bucketIndex(std::uint64_t{1} << 48);
    for (std::size_t i = 2 * LatencyHistogram::kSubBuckets; i < top;
         ++i) {
        const std::uint64_t lo = LatencyHistogram::bucketLow(i);
        const std::uint64_t width = LatencyHistogram::bucketHigh(i) - lo;
        EXPECT_LE(width, lo / LatencyHistogram::kSubBuckets)
            << "bucket " << i;
    }
}

// ---------------------------------------------------------------------------
// Edge cases
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyHistogram)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.p999(), 0u);
}

TEST(Histogram, SingleSampleAllPercentilesEqualIt)
{
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{17},
                            std::uint64_t{100000},
                            std::uint64_t{1} << 40}) {
        LatencyHistogram h;
        h.record(v);
        EXPECT_EQ(h.count(), 1u);
        EXPECT_EQ(h.min(), v);
        EXPECT_EQ(h.max(), v);
        EXPECT_EQ(h.mean(), static_cast<double>(v));
        for (double q : {0.0, 0.01, 0.5, 0.9, 0.99, 0.999, 1.0})
            EXPECT_EQ(h.percentile(q), v) << "q=" << q << " v=" << v;
    }
}

TEST(Histogram, PercentileZeroAndOneHitExtremes)
{
    LatencyHistogram h;
    h.record(3);
    h.record(50000);
    h.record(123456789);
    EXPECT_EQ(h.percentile(0.0), h.min());
    EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(Histogram, BucketBoundarySamples)
{
    // Exactly on bucket edges: each must land in its own bucket and
    // percentiles walk them in order.
    LatencyHistogram h;
    const std::uint64_t lo = LatencyHistogram::bucketLow(100);
    const std::uint64_t hi = LatencyHistogram::bucketHigh(100);
    h.record(lo);
    h.record(hi);
    h.record(hi + 1); // first value of bucket 101
    EXPECT_EQ(h.bucketCount(100), 2u);
    EXPECT_EQ(h.bucketCount(101), 1u);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), lo);
    EXPECT_EQ(h.max(), hi + 1);
}

// ---------------------------------------------------------------------------
// Closed-form distributions
// ---------------------------------------------------------------------------

/** |got - want| as a fraction of want. */
double
relErr(std::uint64_t got, double want)
{
    return std::abs(static_cast<double>(got) - want) / want;
}

TEST(HistogramPercentiles, UniformClosedForm)
{
    // 1..N once each: quantile q is q*N, up to bucket resolution.
    const std::uint64_t n = 100000;
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= n; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), n);
    // Bucket quantization bound is 1/32 (~3.1%); allow 3.2%.
    EXPECT_LT(relErr(h.p50(), 0.50 * n), 0.032);
    EXPECT_LT(relErr(h.p90(), 0.90 * n), 0.032);
    EXPECT_LT(relErr(h.p99(), 0.99 * n), 0.032);
    EXPECT_LT(relErr(h.p999(), 0.999 * n), 0.032);
    EXPECT_LT(std::abs(h.mean() - (n + 1) / 2.0) / (n / 2.0), 1e-9);
}

TEST(HistogramPercentiles, TwoPointClosedForm)
{
    // 900 samples at 10, 100 at 1000: quantiles below 0.9 are exactly
    // 10 (exact bucket), above it exactly 1000.
    LatencyHistogram h;
    h.record(10, 900);
    h.record(1000, 100);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.p50(), 10u);
    EXPECT_EQ(h.p90(), 10u);   // rank 900 is the last 10
    EXPECT_EQ(h.p99(), 1000u); // rank 990 is a 1000 (max-clamped)
    EXPECT_EQ(h.p999(), 1000u);
    EXPECT_EQ(h.percentile(0.901), 1000u);
    EXPECT_EQ(h.mean(), (900.0 * 10 + 100.0 * 1000) / 1000.0);
}

TEST(HistogramPercentiles, ExponentialClosedForm)
{
    // Exponential with mean m: quantile q is -m*ln(1-q).
    const double mean = 10000.0;
    const int n = 200000;
    Rng rng(0x4157u);
    LatencyHistogram h;
    for (int i = 0; i < n; ++i) {
        const double u = rng.nextDouble();
        h.record(static_cast<std::uint64_t>(-mean * std::log1p(-u)));
    }
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(n));
    // 3.1% bucket error + sampling error at n=200k: 5% covers the
    // body, 8% the extreme tail.
    EXPECT_LT(relErr(h.p50(), mean * std::log(2.0)), 0.05);
    EXPECT_LT(relErr(h.p90(), mean * std::log(10.0)), 0.05);
    EXPECT_LT(relErr(h.p99(), mean * std::log(100.0)), 0.05);
    EXPECT_LT(relErr(h.p999(), mean * std::log(1000.0)), 0.08);
    EXPECT_LT(std::abs(h.mean() - mean) / mean, 0.02);
}

// ---------------------------------------------------------------------------
// Merge / multiplicity
// ---------------------------------------------------------------------------

TEST(Histogram, MergeEqualsCombinedRecording)
{
    Rng rng(77);
    LatencyHistogram a, b, all;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.nextBounded(1u << 20);
        ((i % 2 == 0) ? a : b).record(v);
        all.record(v);
    }
    LatencyHistogram merged = a;
    merged.merge(b);
    EXPECT_TRUE(merged == all);
    EXPECT_EQ(merged.p99(), all.p99());

    // Merging an empty histogram changes nothing.
    LatencyHistogram empty;
    merged.merge(empty);
    EXPECT_TRUE(merged == all);
    // Merging INTO an empty one copies.
    empty.merge(all);
    EXPECT_TRUE(empty == all);
}

TEST(Histogram, MultiplicityEqualsRepeatedRecords)
{
    LatencyHistogram a, b;
    a.record(500, 37);
    for (int i = 0; i < 37; ++i)
        b.record(500);
    EXPECT_TRUE(a == b);
    a.record(500, 0); // n=0 is a no-op
    EXPECT_TRUE(a == b);
}

} // namespace
} // namespace mcdsm
