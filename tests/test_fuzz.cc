/**
 * @file
 * Schedule-fuzzing harness: generate random phase-structured shared
 * memory programs, run them under every protocol variant with a
 * seeded perturbed schedule and the race detector on, and assert
 *
 *   1. race-free programs produce their analytically computed golden
 *      checksum under *every* perturbed interleaving, with zero race
 *      reports (no false positives), and
 *   2. programs with one deliberately injected unsynchronized access
 *      are flagged (no false negatives — the injected pair has no
 *      happens-before path, so it must be caught regardless of the
 *      interleaving the perturbation picks).
 *
 * Every failure is reproducible from the (variant, seed) pair printed
 * in the scoped trace; MCDSM_FUZZ_ITERS scales the number of programs
 * per variant (default 40, CI uses 200).
 *
 * The seed sweep runs through the parallel experiment engine
 * (MCDSM_JOBS workers, default hardware threads): each iteration is a
 * self-contained simulation, outcomes are collected into pre-sized
 * slots and all gtest assertions happen on the main thread (gtest's
 * EXPECT macros are not thread-safe).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <vector>

#include "dsm/proc.h"
#include "dsm/shared_array.h"
#include "dsm/system.h"
#include "harness/pool.h"
#include "sim/rng.h"

namespace mcdsm {
namespace {

constexpr int kP = 4;  // processors
constexpr int kN = 64; // elements per buffer

/** Owner of element @p i during phase @p ph (rotates each phase). */
int
owner(int ph, int i)
{
    return (i + ph) % kP;
}

/** Deterministic value the owner writes to element @p i in @p ph. */
std::int32_t
val(int ph, int i)
{
    return static_cast<std::int32_t>(ph * 1009 + i * 31 + owner(ph, i));
}

int
flagId(int ph, int p)
{
    return ph * kP + p;
}

/**
 * A generated program. Phases alternate between two buffers: each
 * phase reads the buffer written by the previous phase, writes the
 * other one (each element by its owner), passes a value through a
 * flag chain, bumps a lock-protected counter and hits a barrier.
 * Every cross-processor data flow is ordered by one of those three
 * mechanisms — unless `racy` injects one unsynchronized access.
 */
struct Program
{
    int phases = 2;
    /** reads[ph][p]: previous-buffer indices proc p reads in ph. */
    std::vector<std::array<std::vector<int>, kP>> reads;

    bool racy = false;
    bool racyWrite = false; // write-write vs read-write injection
    int racyPhase = 0;
    int racyProc = 0;
    int racyIndex = 0;
};

Program
genProgram(std::uint64_t seed, bool racy)
{
    Rng rng(seed);
    Program prog;
    prog.phases = 2 + static_cast<int>(rng.nextBounded(3)); // 2..4
    prog.reads.resize(prog.phases);
    for (int ph = 1; ph < prog.phases; ++ph) {
        for (int p = 0; p < kP; ++p) {
            const int k = static_cast<int>(rng.nextBounded(6));
            for (int j = 0; j < k; ++j)
                prog.reads[ph][p].push_back(
                    static_cast<int>(rng.nextBounded(kN)));
        }
    }
    if (racy) {
        prog.racy = true;
        prog.racyWrite = rng.nextBounded(2) == 0;
        prog.racyPhase =
            static_cast<int>(rng.nextBounded(prog.phases));
        prog.racyIndex = static_cast<int>(rng.nextBounded(kN));
        const int own = owner(prog.racyPhase, prog.racyIndex);
        prog.racyProc =
            (own + 1 + static_cast<int>(rng.nextBounded(kP - 1))) % kP;
    }
    return prog;
}

/** Mirror of the worker's data flow, evaluated on deterministic values.
 *  The hash accumulates in std::uint64_t: the multiply chain is meant
 *  to wrap, and unsigned wraparound is defined behaviour. */
std::uint64_t
expectedChecksum(const Program& prog)
{
    std::array<std::int64_t, kP> sum{};
    for (int ph = 0; ph < prog.phases; ++ph) {
        for (int p = 0; p < kP; ++p) {
            if (ph > 0) {
                for (int idx : prog.reads[ph][p])
                    sum[p] += val(ph - 1, idx);
            }
            sum[p] += ph * 100 + (p + 1) % kP; // mailbox from neighbour
        }
    }
    std::uint64_t cks = 0;
    for (int q = 0; q < kP; ++q)
        cks = cks * 31 + static_cast<std::uint64_t>(sum[q]);
    cks = cks * 31 + static_cast<std::uint64_t>(prog.phases) * kP *
                         (kP + 1) / 2; // lock-protected counter
    for (int i = 0; i < kN; ++i)
        cks = cks * 7 + static_cast<std::uint64_t>(val(prog.phases - 1, i));
    return cks;
}

struct FuzzOutcome
{
    std::uint64_t checksum = 0;
    std::uint64_t races = 0;
    std::string raceSummary;
};

FuzzOutcome
runProgram(const Program& prog, ProtocolKind kind,
           std::uint64_t sched_seed, NetKind net = NetKind::Mc)
{
    DsmConfig cfg;
    cfg.protocol = kind;
    cfg.net = net;
    cfg.topo = Topology::standard(kP);
    cfg.maxSharedBytes = 1 << 20;
    cfg.raceDetect = true;
    cfg.schedSeed = sched_seed;
    cfg.schedMaxJitter = 150;
    auto sys = DsmSystem::create(cfg);

    auto bufA = SharedArray<std::int32_t>::allocate(*sys, kN);
    auto bufB = SharedArray<std::int32_t>::allocate(*sys, kN);
    auto mail = SharedArray<std::int32_t>::allocate(*sys, kP);
    auto fin = SharedArray<std::int64_t>::allocate(*sys, kP);
    auto ctr = SharedArray<std::int64_t>::allocate(*sys, 1);

    std::uint64_t got = 0;
    sys->run([&](Proc& p) {
        const int pid = p.id();
        std::int64_t sum = 0;
        for (int ph = 0; ph < prog.phases; ++ph) {
            p.pollPoint();
            auto& cur = (ph % 2 == 0) ? bufA : bufB;
            auto& prev = (ph % 2 == 0) ? bufB : bufA;
            // Reads of the previous phase's buffer: ordered by the
            // barrier that ended it; nothing writes `prev` this phase.
            if (ph > 0) {
                for (int idx : prog.reads[ph][pid])
                    sum += prev.get(p, idx);
            }
            // Injected read-write race: read an element some *other*
            // proc writes this phase, with no connecting sync.
            if (prog.racy && !prog.racyWrite && ph == prog.racyPhase &&
                pid == prog.racyProc) {
                sum += cur.get(p, prog.racyIndex);
            }
            for (int i = 0; i < kN; ++i) {
                if (owner(ph, i) == pid)
                    cur.set(p, i, val(ph, i));
            }
            // Injected write-write race: clobber an element owned by
            // another proc.
            if (prog.racy && prog.racyWrite && ph == prog.racyPhase &&
                pid == prog.racyProc) {
                cur.set(p, prog.racyIndex, -1);
            }
            // Flag chain: publish a mailbox value to the left
            // neighbour (set happens-before the neighbour's wait).
            mail.set(p, pid, ph * 100 + pid);
            p.setFlag(flagId(ph, pid));
            p.waitFlag(flagId(ph, (pid + 1) % kP));
            sum += mail.get(p, (pid + 1) % kP);
            // Lock-protected shared counter.
            p.acquire(0);
            ctr.set(p, 0, ctr.get(p, 0) + pid + 1);
            p.release(0);
            p.barrier(ph);
        }
        fin.set(p, pid, sum);
        p.barrier(prog.phases);
        if (pid == 0) {
            std::uint64_t cks = 0;
            for (int q = 0; q < kP; ++q)
                cks = cks * 31 + static_cast<std::uint64_t>(fin.get(p, q));
            cks = cks * 31 + static_cast<std::uint64_t>(ctr.get(p, 0));
            auto& last = ((prog.phases - 1) % 2 == 0) ? bufA : bufB;
            for (int i = 0; i < kN; ++i)
                cks = cks * 7 + static_cast<std::uint64_t>(last.get(p, i));
            got = cks;
        }
        p.barrier(prog.phases + 1);
    });

    FuzzOutcome out;
    out.checksum = got;
    out.races = sys->stats().racesDetected;
    if (const RaceChecker* rc = sys->runtime().raceChecker())
        out.raceSummary = rc->summary();
    return out;
}

int
fuzzIters()
{
    if (const char* env = std::getenv("MCDSM_FUZZ_ITERS")) {
        const int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    return 40;
}

class FuzzAllVariants : public ::testing::TestWithParam<ProtocolKind>
{
};

TEST_P(FuzzAllVariants, RandomProgramsGoldenAndRaceVerdicts)
{
    const ProtocolKind kind = GetParam();
    const int iters = fuzzIters();
    const int jobs = jobsFromEnv(defaultJobs());

    // Run the sweep in parallel, verify serially.
    std::vector<Program> progs(iters);
    std::vector<FuzzOutcome> outs(iters);
    parallelFor(static_cast<std::size_t>(iters), jobs,
                [&](std::size_t i) {
                    const std::uint64_t seed = 0x5eed0000ull + i;
                    const bool racy = (i % 2) == 1;
                    const std::uint64_t sched_seed = seed * 31 + 7;
                    progs[i] = genProgram(seed, racy);
                    outs[i] = runProgram(progs[i], kind, sched_seed);
                });

    for (int i = 0; i < iters; ++i) {
        const std::uint64_t seed = 0x5eed0000ull + i;
        const bool racy = (i % 2) == 1;
        const std::uint64_t sched_seed = seed * 31 + 7; // never 0
        SCOPED_TRACE(testing::Message()
                     << protocolName(kind) << " seed=" << seed
                     << " schedSeed=" << sched_seed
                     << (racy ? " racy" : " clean"));
        const FuzzOutcome& out = outs[i];
        if (racy) {
            EXPECT_GE(out.races, 1u)
                << "injected race escaped detection";
        } else {
            EXPECT_EQ(out.races, 0u)
                << "false positive:\n"
                << out.raceSummary;
            EXPECT_EQ(out.checksum, expectedChecksum(progs[i]))
                << "golden value changed under perturbed schedule";
        }
    }
}

TEST_P(FuzzAllVariants, PerturbedScheduleMatchesBaseline)
{
    // The same program under the unperturbed schedule (schedSeed 0)
    // and several perturbed ones must agree on the golden checksum.
    const ProtocolKind kind = GetParam();
    const Program prog = genProgram(0xba5e, false);
    const std::uint64_t want = expectedChecksum(prog);
    std::vector<FuzzOutcome> outs(4);
    parallelFor(outs.size(), jobsFromEnv(defaultJobs()),
                [&](std::size_t s) {
                    outs[s] = runProgram(prog, kind,
                                         static_cast<std::uint64_t>(s));
                });
    EXPECT_EQ(outs[0].checksum, want);
    EXPECT_EQ(outs[0].races, 0u) << outs[0].raceSummary;
    for (std::uint64_t s = 1; s <= 3; ++s) {
        SCOPED_TRACE(testing::Message()
                     << protocolName(kind) << " schedSeed=" << s);
        EXPECT_EQ(outs[s].checksum, want);
        EXPECT_EQ(outs[s].races, 0u) << outs[s].raceSummary;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, FuzzAllVariants,
    ::testing::Values(ProtocolKind::CsmPp, ProtocolKind::CsmInt,
                      ProtocolKind::CsmPoll, ProtocolKind::TmkUdpInt,
                      ProtocolKind::TmkMcInt, ProtocolKind::TmkMcPoll),
    [](const testing::TestParamInfo<ProtocolKind>& info) {
        return std::string(protocolName(info.param));
    });

// ---------------------------------------------------------------------------
// RDMA backend: the same fuzzing contract must hold when directory
// presence bits move by NIC CAS/FAA, pages by one-sided reads and
// diffs by doorbell-batched pulls. A lost or doubled atomic would
// corrupt the directory and surface as a wrong checksum or a phantom
// race under some perturbed interleaving.
// ---------------------------------------------------------------------------

class RdmaFuzz : public ::testing::TestWithParam<ProtocolKind>
{
};

TEST_P(RdmaFuzz, RandomProgramsGoldenAndRaceVerdicts)
{
    const ProtocolKind kind = GetParam();
    const int iters = fuzzIters();
    const int jobs = jobsFromEnv(defaultJobs());

    std::vector<Program> progs(iters);
    std::vector<FuzzOutcome> outs(iters);
    parallelFor(static_cast<std::size_t>(iters), jobs,
                [&](std::size_t i) {
                    const std::uint64_t seed = 0xd0a0000ull + i;
                    const bool racy = (i % 2) == 1;
                    const std::uint64_t sched_seed = seed * 31 + 7;
                    progs[i] = genProgram(seed, racy);
                    outs[i] = runProgram(progs[i], kind, sched_seed,
                                         NetKind::Rdma);
                });

    for (int i = 0; i < iters; ++i) {
        const std::uint64_t seed = 0xd0a0000ull + i;
        const bool racy = (i % 2) == 1;
        const std::uint64_t sched_seed = seed * 31 + 7;
        SCOPED_TRACE(testing::Message()
                     << protocolName(kind) << "/rdma seed=" << seed
                     << " schedSeed=" << sched_seed
                     << (racy ? " racy" : " clean"));
        const FuzzOutcome& out = outs[i];
        if (racy) {
            EXPECT_GE(out.races, 1u)
                << "injected race escaped detection";
        } else {
            EXPECT_EQ(out.races, 0u)
                << "false positive:\n"
                << out.raceSummary;
            EXPECT_EQ(out.checksum, expectedChecksum(progs[i]))
                << "golden value changed under perturbed schedule";
        }
    }
}

TEST_P(RdmaFuzz, AtomicsStableAcrossPerturbedSchedules)
{
    // One clean program, the baseline plus several perturbed
    // schedules, on the RDMA backend: every run must land on the
    // analytic checksum (CAS/FAA atomicity) with zero race reports,
    // and agree with the Memory Channel backend's result.
    const ProtocolKind kind = GetParam();
    const Program prog = genProgram(0xace5, false);
    const std::uint64_t want = expectedChecksum(prog);
    std::vector<FuzzOutcome> outs(5);
    parallelFor(outs.size(), jobsFromEnv(defaultJobs()),
                [&](std::size_t s) {
                    outs[s] = s == 4 ? runProgram(prog, kind, 1,
                                                  NetKind::Mc)
                                     : runProgram(
                                           prog, kind,
                                           static_cast<std::uint64_t>(s),
                                           NetKind::Rdma);
                });
    for (std::size_t s = 0; s < outs.size(); ++s) {
        SCOPED_TRACE(testing::Message()
                     << protocolName(kind)
                     << (s == 4 ? "/mc schedSeed=1" : "/rdma schedSeed=")
                     << (s == 4 ? "" : std::to_string(s)));
        EXPECT_EQ(outs[s].checksum, want);
        EXPECT_EQ(outs[s].races, 0u) << outs[s].raceSummary;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, RdmaFuzz,
    ::testing::Values(ProtocolKind::CsmPp, ProtocolKind::CsmInt,
                      ProtocolKind::CsmPoll, ProtocolKind::TmkUdpInt,
                      ProtocolKind::TmkMcInt, ProtocolKind::TmkMcPoll),
    [](const testing::TestParamInfo<ProtocolKind>& info) {
        return std::string(protocolName(info.param));
    });

} // namespace
} // namespace mcdsm
