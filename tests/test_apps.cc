/**
 * @file
 * Application integration tests: every application, on every protocol
 * variant, at several processor counts, must produce the sequential
 * reference result. This is the end-to-end coherence check — a
 * protocol bug shows up as a wrong checksum, not just wrong timing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "harness/runner.h"
#include "sim/rng.h"

namespace mcdsm {
namespace {

struct Case
{
    const char* app;
    ProtocolKind protocol;
    int nprocs;
};

std::string
caseName(const ::testing::TestParamInfo<Case>& info)
{
    return std::string(info.param.app) + "_" +
           protocolName(info.param.protocol) + "_" +
           std::to_string(info.param.nprocs) + "p";
}

/** Relative tolerance: FP reduction order differs across P. */
double
tolFor(const std::string& app)
{
    if (app == "tsp")
        return 0.0; // integer optimum, exact
    if (app == "water" || app == "barnes")
        return 1e-4; // force-merge order varies with lock schedule
    return 1e-9;
}

// Sequential checksums are computed once per app (they do not depend
// on protocol or processor count).
std::map<std::string, double>&
seqChecksums()
{
    static std::map<std::string, double> memo;
    return memo;
}

double
seqChecksum(const std::string& app)
{
    auto& memo = seqChecksums();
    auto it = memo.find(app);
    if (it != memo.end())
        return it->second;
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    double v = runSequential(app, opts).appResult.checksum;
    memo[app] = v;
    return v;
}

class AppMatrix : public ::testing::TestWithParam<Case>
{};

TEST_P(AppMatrix, MatchesSequentialResult)
{
    const Case& c = GetParam();
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    ExpResult r = runExperiment(c.app, c.protocol, c.nprocs, opts);

    const double want = seqChecksum(c.app);
    const double got = r.appResult.checksum;
    const double tol = tolFor(c.app);
    if (tol == 0.0) {
        EXPECT_EQ(got, want);
    } else {
        EXPECT_NEAR(got, want,
                    std::max(1e-12, std::abs(want)) * tol)
            << "checksum mismatch for " << c.app;
    }
    EXPECT_GT(r.elapsed, 0);
}

std::vector<Case>
buildMatrix()
{
    std::vector<Case> cases;
    const ProtocolKind kinds[] = {
        ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
        ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
        ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
    };
    for (const char* app : kAppNames) {
        for (ProtocolKind k : kinds) {
            for (int np : {2, 4, 8}) {
                if (configSupported(k, np))
                    cases.push_back({app, k, np});
            }
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppMatrix,
                         ::testing::ValuesIn(buildMatrix()), caseName);

// ---------------------------------------------------------------------------
// Race-detector matrix: every application on every variant must be
// race-free under the vector-clock checker (intentionally racy reads,
// like TSP's bound refresh, are annotated in the app and exempt), and
// the checker must not perturb the computed result.
// ---------------------------------------------------------------------------

class RaceCleanMatrix : public ::testing::TestWithParam<Case>
{};

TEST_P(RaceCleanMatrix, NoRacesAndGoldenUnchanged)
{
    const Case& c = GetParam();
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    opts.raceDetect = true;
    ExpResult r = runExperiment(c.app, c.protocol, c.nprocs, opts);

    EXPECT_EQ(r.races, 0u) << r.raceSummary;

    const double want = seqChecksum(c.app);
    const double got = r.appResult.checksum;
    const double tol = tolFor(c.app);
    if (tol == 0.0) {
        EXPECT_EQ(got, want);
    } else {
        EXPECT_NEAR(got, want, std::max(1e-12, std::abs(want)) * tol);
    }
}

std::vector<Case>
buildRaceMatrix()
{
    std::vector<Case> cases;
    const ProtocolKind kinds[] = {
        ProtocolKind::CsmPp,     ProtocolKind::CsmInt,
        ProtocolKind::CsmPoll,   ProtocolKind::TmkUdpInt,
        ProtocolKind::TmkMcInt,  ProtocolKind::TmkMcPoll,
    };
    for (const char* app : kAppNames) {
        for (ProtocolKind k : kinds)
            cases.push_back({app, k, 4});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllApps, RaceCleanMatrix,
                         ::testing::ValuesIn(buildRaceMatrix()),
                         caseName);

// ---------------------------------------------------------------------------
// Algorithm-level sanity checks (independent golden values).
// ---------------------------------------------------------------------------

TEST(AppAlgorithms, GaussSolvesTheSystem)
{
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    ExpResult r = runSequential("gauss", opts);
    // aux carries the max deviation from the known solution x_j =
    // 1 + 0.001 j.
    EXPECT_LT(r.appResult.aux, 1e-8);
}

TEST(AppAlgorithms, GaussParallelSolvesTheSystem)
{
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    ExpResult r =
        runExperiment("gauss", ProtocolKind::TmkMcPoll, 4, opts);
    EXPECT_LT(r.appResult.aux, 1e-8);
}

TEST(AppAlgorithms, TspFindsTheBruteForceOptimum)
{
    // Independently recompute the optimum by brute force on the same
    // instance (9 cities => 8! permutations).
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    ExpResult r = runSequential("tsp", opts);

    // Rebuild the distance matrix exactly as TspApp::configure does.
    const int n = 9;
    Rng rng(opts.seed);
    std::vector<int> x(n), y(n);
    for (int i = 0; i < n; ++i) {
        x[i] = static_cast<int>(rng.nextBounded(1000));
        y[i] = static_cast<int>(rng.nextBounded(1000));
    }
    auto dist = [&](int i, int j) {
        const double dx = x[i] - x[j];
        const double dy = y[i] - y[j];
        return static_cast<int>(std::sqrt(dx * dx + dy * dy));
    };
    std::vector<int> perm;
    for (int i = 1; i < n; ++i)
        perm.push_back(i);
    int best = 1 << 28;
    do {
        int cost = dist(0, perm[0]);
        for (int i = 0; i + 1 < n - 1; ++i)
            cost += dist(perm[i], perm[i + 1]);
        cost += dist(perm[n - 2], 0);
        best = std::min(best, cost);
    } while (std::next_permutation(perm.begin(), perm.end()));

    EXPECT_EQ(static_cast<int>(r.appResult.checksum), best);
}

TEST(AppAlgorithms, SorConvergesTowardBoundary)
{
    // With a hot top edge and enough iterations the interior warms
    // up: checksum must exceed the initial interior sum (zero).
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    ExpResult r = runSequential("sor", opts);
    EXPECT_GT(r.appResult.checksum, 0.0);
}

TEST(AppAlgorithms, SequentialRunsAreDeterministic)
{
    for (const char* app : kAppNames) {
        RunOpts opts;
        opts.scale = AppScale::Tiny;
        ExpResult a = runSequential(app, opts);
        ExpResult b = runSequential(app, opts);
        EXPECT_EQ(a.appResult.checksum, b.appResult.checksum) << app;
        EXPECT_EQ(a.elapsed, b.elapsed) << app;
    }
}

TEST(AppAlgorithms, ParallelRunsAreDeterministic)
{
    RunOpts opts;
    opts.scale = AppScale::Tiny;
    ExpResult a = runExperiment("sor", ProtocolKind::CsmPoll, 4, opts);
    ExpResult b = runExperiment("sor", ProtocolKind::CsmPoll, 4, opts);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.stats.messages, b.stats.messages);
}

} // namespace
} // namespace mcdsm
